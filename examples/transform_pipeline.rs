//! Transform pipeline inspection: shows what control replication does
//! to a program, stage by stage (the Fig. 4 progression).
//!
//! Prints the source program, the collected data uses with their
//! region-tree disjointness matrix (§2.3), the transformed SPMD body
//! with its copies and collectives, the effect of the placement passes
//! (§3.2), and the dynamically evaluated exchange pairs (§3.3).
//!
//! ```text
//! cargo run --release --example transform_pipeline
//! ```

use control_replication::apps::circuit::{circuit_program, generate_graph, CircuitConfig};
use control_replication::cr::{
    bases_provably_disjoint, collect_accesses, control_replicate, CrOptions,
};
use control_replication::runtime::build_exchange_plan;

fn main() {
    let cfg = CircuitConfig {
        pieces: 4,
        nodes_per_piece: 32,
        wires_per_piece: 96,
        cross_fraction: 0.15,
        steps: 3,
        substeps: 6,
        seed: 99,
    };
    let graph = generate_graph(&cfg);
    let (program, _) = circuit_program(cfg, &graph);

    println!("──────────────── source (implicitly parallel) ────────────────");
    println!("{program:?}");

    println!("──────────────── §2.3 access analysis ────────────────");
    let uses = collect_accesses(&program, &program.body).expect("analyzable");
    for u in &uses {
        println!(
            "  use {:?}: fields {:?}, reads={}, writes={}, reduces={:?}",
            u.base, u.fields, u.reads, u.writes, u.reduce_ops
        );
    }
    println!("  disjointness matrix (region-tree proof, §2.3):");
    for a in &uses {
        for b in &uses {
            let d = bases_provably_disjoint(&program.forest, a.base, b.base);
            print!("   {}", if d { "⊥" } else { "?" });
        }
        println!("   ← {:?}", a.base);
    }

    println!("──────────────── §3 control replication (4 shards) ───────────");
    let spmd = control_replicate(program, &CrOptions::new(4)).expect("CR");
    println!("{spmd:?}");
    println!("stats: {:#?}", spmd.stats);

    println!("──────────────── §3.3 dynamic intersections ──────────────────");
    let plan = build_exchange_plan(&spmd);
    println!(
        "shallow: {:.3} ms, complete: {:.3} ms",
        plan.setup.shallow_seconds * 1e3,
        plan.setup.complete_seconds * 1e3
    );
    for (i, pairs) in plan.pairs.iter().enumerate() {
        println!("  intersection #{i}: {} non-empty pairs", pairs.len());
        for p in pairs.iter().take(4) {
            println!(
                "    shard {} → shard {}: {} elements ({:?} → {:?})",
                p.src_owner,
                p.dst_owner,
                p.elements.volume(),
                p.src_key,
                p.dst_key
            );
        }
        if pairs.len() > 4 {
            println!("    … {} more", pairs.len() - 4);
        }
    }

    println!("──────────────── §3.2 placement ablation ─────────────────────");
    let (program2, _) = circuit_program(cfg, &graph);
    let mut opts = CrOptions::new(4);
    opts.optimize_placement = false;
    opts.skip_disjoint_pairs = false;
    let naive = control_replicate(program2, &opts).expect("CR");
    println!(
        "copies: naive insertion = {}, optimized = {} \
         (tree-pruned {} pairs; placement removed {} redundant + {} dead)",
        naive.count_copies(),
        spmd.count_copies(),
        spmd.stats.pairs_proven_disjoint,
        spmd.stats.copies_removed_redundant,
        spmd.stats.copies_removed_dead
    );
}
