//! Stencil demo: the PRK 2-D star stencil (§5.1 / Fig. 6 workload) run
//! three ways — sequential reference, implicitly parallel (Legion-style
//! dynamic dependence analysis), and control-replicated SPMD — with
//! results cross-checked bit-for-bit. The SPMD run is recorded with the
//! structured tracer: an ASCII timeline of the shard schedules is
//! printed and the log is certified by the Spy-style dependence
//! validator.
//!
//! ```text
//! cargo run --release --example stencil_demo [grid_side]
//! ```

use control_replication::apps::stencil::{
    init_stencil, reference_stencil, stencil_program, StencilConfig,
};
use control_replication::cr::{control_replicate, CrOptions, ForestOracle};
use control_replication::geometry::DynPoint;
use control_replication::ir::{interp, Store};
use control_replication::runtime::{execute_implicit, execute_spmd_traced, ImplicitOptions};
use control_replication::trace::{ascii_timeline, validate, Tracer};
use std::time::Instant;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("grid side"))
        .unwrap_or(256);
    let cfg = StencilConfig {
        n,
        ntx: 4,
        nty: 4,
        radius: 2,
        steps: 10,
    };
    println!(
        "PRK star stencil: {}×{} grid, radius {}, {} steps, {}×{} tiles",
        cfg.n, cfg.n, cfg.radius, cfg.steps, cfg.ntx, cfg.nty
    );

    // Sequential.
    let (prog, h) = stencil_program(cfg);
    let mut seq = Store::new(&prog);
    init_stencil(&prog, &mut seq, &h);
    let t = Instant::now();
    let (_, stats) = interp::run(&prog, &mut seq);
    println!(
        "sequential      : {:>8.1} ms  ({} point tasks)",
        t.elapsed().as_secs_f64() * 1e3,
        stats.tasks_executed
    );

    // Implicit parallel.
    let (prog_i, h_i) = stencil_program(cfg);
    let mut imp = Store::new(&prog_i);
    init_stencil(&prog_i, &mut imp, &h_i);
    let t = Instant::now();
    let (_, istats) = execute_implicit(&prog_i, &mut imp, ImplicitOptions::with_workers(4));
    println!(
        "implicit (4 wk) : {:>8.1} ms  ({} tasks, {} dependence checks, {} edges)",
        t.elapsed().as_secs_f64() * 1e3,
        istats.tasks_launched,
        istats.dependence_checks,
        istats.dependence_edges
    );

    // Control-replicated SPMD.
    let (prog_c, h_c) = stencil_program(cfg);
    let mut crs = Store::new(&prog_c);
    init_stencil(&prog_c, &mut crs, &h_c);
    let spmd = control_replicate(prog_c, &CrOptions::new(4)).expect("CR");
    let tracer = Tracer::enabled();
    let t = Instant::now();
    let r = execute_spmd_traced(&spmd, &mut crs, &tracer);
    println!(
        "CR SPMD (4 sh)  : {:>8.1} ms  ({} tasks, {} msgs, {} halo elements)",
        t.elapsed().as_secs_f64() * 1e3,
        r.stats.tasks_executed,
        r.stats.messages_sent,
        r.stats.elements_sent
    );

    // Verify everything against the direct reference computation.
    let reference = reference_stencil(cfg);
    let insts = [
        ("sequential", &seq, &prog.forest),
        ("implicit", &imp, &prog_i.forest),
        ("CR", &crs, &spmd.forest),
    ];
    for (name, store, forest) in insts {
        let inst = store.instance_in(forest, h.grid);
        for i in 0..cfg.n as i64 {
            for j in 0..cfg.n as i64 {
                let got = inst.read_f64(h.f_out, DynPoint::new(&[i, j]));
                let want = reference[i as usize][j as usize].1;
                assert!(
                    (got - want).abs() < 1e-11,
                    "{name} wrong at ({i},{j}): {got} vs {want}"
                );
            }
        }
    }
    println!("all three executions match the direct reference ✓");

    // The recorded SPMD schedule, and its certification: every
    // conflicting access pair must be ordered by program order or a
    // delivered copy (§3.4).
    let trace = tracer.take();
    println!("\n--- shard timeline ({} events) ---", trace.num_events());
    print!("{}", ascii_timeline(&trace, 72));
    let report = validate(&trace, &ForestOracle::new(&spmd.forest)).expect("well-formed log");
    println!("{}", report.summary());
    assert!(report.ok(), "spy violations: {:?}", report.violations);
}
