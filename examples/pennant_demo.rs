//! PENNANT demo (§5.3 / Fig. 8 workload): Lagrangian hydrodynamics with
//! *dynamic time stepping* — the per-step dt comes from a Min scalar
//! reduction across all zones (§4.4's dynamic collective), driving the
//! `While` loop's replicated trip count.
//!
//! ```text
//! cargo run --release --example pennant_demo
//! ```

use control_replication::apps::pennant::{
    build_mesh, init_pennant, pennant_program, PennantConfig,
};
use control_replication::cr::{control_replicate, CrOptions};
use control_replication::ir::{interp, Store};
use control_replication::runtime::execute_spmd;

fn main() {
    let cfg = PennantConfig {
        nzx: 24,
        nzy: 12,
        pieces: 4,
        tstop: 6e-2,
        dtmax: 2e-2,
    };
    println!(
        "PENNANT Sedov-like blast: {}×{} zones, {} pieces, tstop {}",
        cfg.nzx, cfg.nzy, cfg.pieces, cfg.tstop
    );
    let mesh = build_mesh(&cfg);

    // Sequential.
    let (prog, h) = pennant_program(cfg, &mesh);
    let mut seq = Store::new(&prog);
    init_pennant(&prog, &mut seq, &h, &cfg, &mesh);
    let (seq_env, seq_stats) = interp::run(&prog, &mut seq);
    println!(
        "sequential: {} dynamic steps, final t = {:.5}, final dt = {:.5}",
        seq_stats.loop_iterations, seq_env[0], seq_env[1]
    );

    // Control-replicated.
    let mesh2 = build_mesh(&cfg);
    let (prog_c, h_c) = pennant_program(cfg, &mesh2);
    let mut crs = Store::new(&prog_c);
    init_pennant(&prog_c, &mut crs, &h_c, &cfg, &mesh2);
    let spmd = control_replicate(prog_c, &CrOptions::new(4)).expect("CR");
    let r = execute_spmd(&spmd, &mut crs);
    println!(
        "CR SPMD   : final t = {:.5}, final dt = {:.5} ({} collectives, {} msgs)",
        r.env[0], r.env[1], r.stats.collectives, r.stats.messages_sent
    );
    assert_eq!(
        seq_env, r.env,
        "the dynamically-computed dt sequence must replicate exactly"
    );

    // The blast wave: report the radial extent of moving points.
    let inst = crs.instance_in(&spmd.forest, h_c.points);
    let mut moving = 0usize;
    let mut max_speed = 0.0f64;
    for p in spmd.forest.domain(h_c.points).iter() {
        let vx = inst.read_f64(h_c.f_vx, p);
        let vy = inst.read_f64(h_c.f_vy, p);
        let s = (vx * vx + vy * vy).sqrt();
        if s > 1e-9 {
            moving += 1;
        }
        max_speed = max_speed.max(s);
    }
    println!(
        "blast front: {moving} points moving, peak speed {max_speed:.3} \
         (dt sequence identical on every shard ✓)"
    );
}
