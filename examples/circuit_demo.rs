//! Circuit demo (§5.4 / Fig. 9 workload): a sparse circuit on a random
//! unstructured graph, run through control replication with reduction
//! privileges (§4.3) doing the cross-piece charge scatter.
//!
//! Prints the voltage relaxation over time and the exchange statistics.
//!
//! ```text
//! cargo run --release --example circuit_demo [pieces]
//! ```

use control_replication::apps::circuit::{
    circuit_program, generate_graph, init_circuit, CircuitConfig,
};
use control_replication::cr::{control_replicate, CrOptions};
use control_replication::ir::{interp, Store};
use control_replication::runtime::execute_spmd;

fn main() {
    let pieces: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("pieces"))
        .unwrap_or(8);
    let cfg = CircuitConfig {
        pieces,
        nodes_per_piece: 512,
        wires_per_piece: 2048,
        cross_fraction: 0.1,
        steps: 5,
        substeps: 10,
        seed: 2017,
    };
    println!(
        "circuit: {} pieces × ({} nodes + {} wires), {:.0}% crossing wires",
        cfg.pieces,
        cfg.nodes_per_piece,
        cfg.wires_per_piece,
        cfg.cross_fraction * 100.0
    );

    let graph = generate_graph(&cfg);

    // Watch the voltage spread relax over several rounds of 5 steps.
    let spread = |store: &Store,
                  forest: &control_replication::region::RegionForest,
                  h: &control_replication::apps::circuit::CircuitHandles| {
        let inst = store.instance_in(forest, h.nodes);
        let mut mx = f64::MIN;
        let mut mn = f64::MAX;
        for p in forest.domain(h.nodes).iter() {
            let v = inst.read_f64(h.f_voltage, p);
            mx = mx.max(v);
            mn = mn.min(v);
        }
        mx - mn
    };

    // Sequential reference for one round.
    let (prog, h) = circuit_program(cfg, &graph);
    let mut seq = Store::new(&prog);
    init_circuit(&prog, &mut seq, &h, &graph);
    interp::run(&prog, &mut seq);
    let seq_spread = spread(&seq, &prog.forest, &h);

    // Control-replicated rounds.
    let (prog_c, h_c) = circuit_program(cfg, &graph);
    let mut store = Store::new(&prog_c);
    init_circuit(&prog_c, &mut store, &h_c, &graph);
    println!(
        "voltage spread before: {:.4}",
        spread(&store, &prog_c.forest, &h_c)
    );
    let spmd = control_replicate(prog_c, &CrOptions::new(4)).expect("CR");
    for round in 1..=4 {
        let r = execute_spmd(&spmd, &mut store);
        println!(
            "round {round}: spread {:.4}  ({} msgs, {} elements exchanged)",
            spread(&store, &spmd.forest, &h_c),
            r.stats.messages_sent,
            r.stats.elements_sent
        );
    }
    let one_round = {
        // Re-run one round from scratch to compare against sequential.
        let (prog2, h2) = circuit_program(cfg, &graph);
        let mut s2 = Store::new(&prog2);
        init_circuit(&prog2, &mut s2, &h2, &graph);
        let spmd2 = control_replicate(prog2, &CrOptions::new(4)).unwrap();
        execute_spmd(&spmd2, &mut s2);
        spread(&s2, &spmd2.forest, &h2)
    };
    assert!(
        (one_round - seq_spread).abs() < 1e-9 * seq_spread.max(1.0),
        "CR round diverged from sequential: {one_round} vs {seq_spread}"
    );
    println!("first round matches sequential execution ✓");
}
