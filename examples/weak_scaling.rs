//! Weak-scaling sandbox: sweep any of the four applications across a
//! node range on the simulated machine and print the Fig. 6–9-style
//! comparison plus where the implicit version's control overhead
//! crosses the per-step compute (the scalability argument of §1).
//!
//! ```text
//! cargo run --release --example weak_scaling -- stencil 256
//! cargo run --release --example weak_scaling -- pennant 1024
//! ```

use control_replication::apps::{circuit, miniaero, pennant, stencil};
use control_replication::machine::{
    format_table, node_counts_to, simulate_cr, simulate_implicit, MachineConfig, ScalingSeries,
    TimestepSpec,
};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "stencil".into());
    let max_nodes: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("max nodes"))
        .unwrap_or(128);
    let spec_of: fn(usize, &MachineConfig) -> TimestepSpec = match app.as_str() {
        "stencil" => stencil::stencil_spec,
        "miniaero" => miniaero::miniaero_spec,
        "pennant" => pennant::pennant_spec,
        "circuit" => circuit::circuit_spec,
        other => panic!("unknown app {other}; use stencil|miniaero|pennant|circuit"),
    };

    let steps = 4;
    let mut cr = ScalingSeries::new("Regent (with CR)");
    let mut nocr = ScalingSeries::new("Regent (w/o CR)");
    let mut crossover = None;
    for nodes in node_counts_to(max_nodes) {
        let machine = MachineConfig::piz_daint(nodes);
        let spec = spec_of(nodes, &machine);
        // §1's argument: the control thread does O(N) work per step.
        let control_per_step: f64 = spec
            .phases
            .iter()
            .map(|p| {
                let inflight = nodes as f64 * p.tasks_per_node as f64;
                inflight
                    * (machine.task_analysis_time + machine.task_analysis_window_cost * inflight)
            })
            .sum();
        let compute_per_step: f64 = spec
            .phases
            .iter()
            .map(|p| {
                p.task_compute_s
                    * (p.tasks_per_node as f64 / machine.regent_compute_cores() as f64).ceil()
            })
            .sum();
        if crossover.is_none() && control_per_step > compute_per_step {
            crossover = Some(nodes);
        }
        cr.push(nodes, simulate_cr(&machine, &spec, steps));
        nocr.push(nodes, simulate_implicit(&machine, &spec, steps));
    }
    println!("=== {app}: weak scaling (throughput per node) ===");
    println!("{}", format_table(&[cr.clone(), nocr.clone()]));
    if let Some(n) = crossover {
        println!(
            "control overhead exceeds per-step compute at ~{n} nodes — the \
             single control thread becomes the bottleneck there (§1)."
        );
    }
    if let (Some(e1), Some(e2)) = (cr.efficiency_at(max_nodes), nocr.efficiency_at(max_nodes)) {
        println!(
            "parallel efficiency at {max_nodes} nodes: with CR {:.1}%, without {:.1}%",
            e1 * 100.0,
            e2 * 100.0
        );
    }
}
