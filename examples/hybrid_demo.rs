//! Hybrid demo: control replication as a *local* transformation (§2.2).
//!
//! A program with a non-replicable global pass between two replicable
//! simulation loops runs hybrid: the loops execute as SPMD shards, the
//! global pass sequentially, with region data and scalars threading
//! through every segment.
//!
//! ```text
//! cargo run --release --example hybrid_demo
//! ```

use control_replication::cr::{replicate_ranges, CrOptions, Segment};
use control_replication::geometry::Domain;
use control_replication::ir::{
    expr::{c, var},
    interp, ProgramBuilder, RegionArg, RegionParam, Store, TaskDecl,
};
use control_replication::region::{ops, FieldSpace, FieldType, RegionId};
use control_replication::runtime::execute_hybrid;
use std::sync::Arc;

const N: u64 = 4096;
const PARTS: u64 = 8;

fn build() -> (control_replication::ir::Program, regent_region::FieldId) {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(N), fs);
    let p = ops::block(&mut b.forest, r, PARTS as usize);
    let diffuse = b.task(TaskDecl {
        name: "diffuse".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 1,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let s = ctx.scalars[0];
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let v = ctx.read_f64(0, x, q);
                ctx.write_f64(0, x, q, v * (1.0 - s) + s * (q.coord(0) % 17) as f64);
            }
        }),
        cost_per_element: 2.0,
    });
    // A global pass no index launch can express: sorts nothing, but
    // computes a whole-region norm and rescales — inherently single.
    let normalize = b.task(TaskDecl {
        name: "global_normalize".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 0,
        returns_value: true,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            let mut norm = 0.0;
            for q in dom.iter() {
                let v = ctx.read_f64(0, x, q);
                norm += v * v;
            }
            let norm = norm.sqrt().max(1e-12);
            for q in dom.iter() {
                let v = ctx.read_f64(0, x, q);
                ctx.write_f64(0, x, q, v / norm);
            }
            ctx.set_return(norm);
        }),
        cost_per_element: 3.0,
    });
    let rate = b.scalar("rate", 0.25);
    let norm = b.scalar("norm", 0.0);
    // Replicable range 1: five diffusion steps.
    let l = b.for_loop(c(5.0));
    b.index_launch_full(
        diffuse,
        PARTS,
        vec![RegionArg::Part(p)],
        vec![var(rate)],
        None,
    );
    b.end(l);
    // Sequential global pass.
    b.call_full(normalize, vec![r], vec![], Some(norm));
    // Replicable range 2: three more steps with a rate derived from the
    // sequentially-computed norm.
    b.set_scalar(rate, c(1.0).add(var(norm)).mul(c(1e-4)));
    let l = b.for_loop(c(3.0));
    b.index_launch_full(
        diffuse,
        PARTS,
        vec![RegionArg::Part(p)],
        vec![var(rate)],
        None,
    );
    b.end(l);
    (b.build(), x)
}

fn main() {
    // Sequential reference.
    let (prog, x) = build();
    let mut seq = Store::new(&prog);
    seq.fill_f64(&prog, RegionId(0), x, |q| (q.coord(0) % 13) as f64);
    let (seq_env, _) = interp::run(&prog, &mut seq);

    // Hybrid execution.
    let (prog2, x2) = build();
    let mut store = Store::new(&prog2);
    store.fill_f64(&prog2, RegionId(0), x2, |q| (q.coord(0) % 13) as f64);
    let hybrid = replicate_ranges(prog2, &CrOptions::new(4)).expect("hybrid CR");
    println!("program split into {} segments:", hybrid.segments.len());
    for (i, s) in hybrid.segments.iter().enumerate() {
        match s {
            Segment::Replicated(spmd) => println!(
                "  #{i}: SPMD ({} shards, {} copies, {} uses)",
                spmd.num_shards,
                spmd.count_copies(),
                spmd.uses.len()
            ),
            Segment::Sequential(stmts) => {
                println!("  #{i}: sequential ({} stmt(s))", stmts.len())
            }
        }
    }
    let result = execute_hybrid(&hybrid, &mut store);
    println!(
        "ran {} replicated segments ({} SPMD tasks, {} msgs) and {} sequential task(s)",
        result.replicated_segments,
        result.spmd_stats.tasks_executed,
        result.spmd_stats.messages_sent,
        result.sequential_tasks
    );
    assert_eq!(seq_env, result.env);
    let a = seq.instance(&prog, RegionId(0));
    let b = store.instance(&hybrid.base, RegionId(0));
    for q in prog.forest.domain(RegionId(0)).iter() {
        assert_eq!(a.read_f64(x, q), b.read_f64(x, q));
    }
    println!(
        "norm computed sequentially = {:.4}; hybrid result bit-identical to sequential ✓",
        result.env[1]
    );
}
