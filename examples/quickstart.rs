//! Quickstart: the paper's running example (Fig. 2) end to end.
//!
//! Builds an implicitly parallel program with two regions, a block
//! partition of each, and an image partition capturing an arbitrary
//! access function `h`; control-replicates it; executes it on the
//! multithreaded SPMD runtime; and checks the result against the
//! sequential interpreter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use control_replication::cr::{control_replicate, CrOptions};
use control_replication::geometry::{Domain, DynPoint};
use control_replication::ir::{
    expr::c, interp, ProgramBuilder, RegionArg, RegionParam, Store, TaskDecl,
};
use control_replication::region::{ops, FieldSpace, FieldType, RegionId};
use control_replication::runtime::execute_spmd;
use std::sync::Arc;

const N: u64 = 1 << 16; // elements per region
const NT: u64 = 16; // launch points ("tiles")
const STEPS: u64 = 10;

fn main() {
    let h = |i: i64| (i * 31 + 7).rem_euclid(N as i64);
    let fa = control_replication::region::FieldId(0);

    // --- Sequential reference ------------------------------------------
    let init = |prog: &control_replication::ir::Program, store: &mut Store| {
        store.fill_f64(prog, RegionId(0), fa, |p| (p.coord(0) % 97) as f64);
    };
    let prog_seq = build_program(h);
    let mut seq_store = Store::new(&prog_seq);
    init(&prog_seq, &mut seq_store);
    let t0 = std::time::Instant::now();
    interp::run(&prog_seq, &mut seq_store);
    let t_seq = t0.elapsed();

    // --- Control replication + SPMD execution --------------------------
    // (The transform consumes its input program, so build a second one.)
    let shards = std::thread::available_parallelism().map_or(4, |v| v.get().clamp(2, 8));
    println!("control-replicating for {shards} shards…");
    let rebuilt = build_program(h);
    let mut cr_store = Store::new(&rebuilt);
    init(&rebuilt, &mut cr_store);
    let spmd = control_replicate(rebuilt, &CrOptions::new(shards)).expect("CR failed");
    println!(
        "  inserted {} coherence copies, proved {} pairs disjoint",
        spmd.stats.copies_inserted, spmd.stats.pairs_proven_disjoint,
    );
    let t1 = std::time::Instant::now();
    let result = execute_spmd(&spmd, &mut cr_store);
    let t_cr = t1.elapsed();
    println!(
        "  shallow intersections: {:.2} ms, complete: {:.2} ms, {} exchange pairs",
        result.setup.shallow_seconds * 1e3,
        result.setup.complete_seconds * 1e3,
        result.setup.num_pairs
    );
    println!(
        "  {} point tasks executed, {} cross-shard messages, {} elements moved",
        result.stats.tasks_executed, result.stats.messages_sent, result.stats.elements_sent
    );

    // --- Verify ----------------------------------------------------------
    let seq_inst = seq_store.instance(&prog_seq, RegionId(0));
    let cr_inst = cr_store.instance_in(&spmd.forest, RegionId(0));
    let mut checked = 0u64;
    for p in prog_seq.forest.domain(RegionId(0)).iter() {
        assert_eq!(
            seq_inst.read_f64(fa, p),
            cr_inst.read_f64(fa, p),
            "mismatch at {p:?}"
        );
        checked += 1;
    }
    println!(
        "verified {checked} elements bit-identical to sequential semantics \
         (seq {t_seq:.2?}, SPMD {t_cr:.2?})"
    );
}

/// Builds the Fig. 2 program around the access function `h`.
fn build_program(
    h: impl Fn(i64) -> i64 + Copy + Send + Sync + 'static,
) -> control_replication::ir::Program {
    let mut b = ProgramBuilder::new();
    let fs_a = FieldSpace::of(&[("a", FieldType::F64)]);
    let fa = fs_a.lookup("a").unwrap();
    let fs_b = FieldSpace::of(&[("b", FieldType::F64)]);
    let fb = fs_b.lookup("b").unwrap();
    let ra = b.forest.create_region(Domain::range(N), fs_a);
    let rb = b.forest.create_region(Domain::range(N), fs_b);
    let pa = ops::block(&mut b.forest, ra, NT as usize);
    let pb = ops::block(&mut b.forest, rb, NT as usize);
    let qb = ops::image(&mut b.forest, rb, pa, move |p, sink| {
        sink.push(DynPoint::from(h(p.coord(0))));
    });
    let tf = b.task(TaskDecl {
        name: "TF".into(),
        params: vec![RegionParam::read_write(&[fb]), RegionParam::read(&[fa])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let v = ctx.read_f64(1, fa, p);
                ctx.write_f64(0, fb, p, 0.5 * v + 1.0);
            }
        }),
        cost_per_element: 1.0,
    });
    let tg = b.task(TaskDecl {
        name: "TG".into(),
        params: vec![RegionParam::read_write(&[fa]), RegionParam::read(&[fb])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let v = ctx.read_f64(1, fb, DynPoint::from(h(p.coord(0))));
                ctx.write_f64(0, fa, p, 0.9 * v);
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(STEPS as f64));
    b.index_launch(tf, NT, vec![RegionArg::Part(pb), RegionArg::Part(pa)]);
    b.index_launch(tg, NT, vec![RegionArg::Part(pa), RegionArg::Part(qb)]);
    b.end(l);
    b.build()
}
