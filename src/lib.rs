pub use regent_apps as apps;
pub use regent_cr as cr;
pub use regent_geometry as geometry;
pub use regent_ir as ir;
pub use regent_machine as machine;
pub use regent_region as region;
pub use regent_runtime as runtime;
pub use regent_trace as trace;
