//! Property-based end-to-end test: for randomized programs over
//! randomized partition geometry — block partitions, arbitrary image
//! partitions (random access functions `h`), reduction scatters, and
//! random shard counts / transform options — control-replicated SPMD
//! execution must reproduce the sequential interpreter's results.
//!
//! This is the paper's key guarantee exercised adversarially: "the
//! control replication transformation is guaranteed to succeed for any
//! programmer-specified partitions of the data, even though the
//! partitions can be arbitrary" (§1).
//!
//! Gated behind the `proptest-tests` cargo feature: proptest is not
//! part of the offline dependency set, so the default `cargo test`
//! skips this file (see the workspace Cargo.toml for how to restore
//! the dev-dependency).

#![cfg(feature = "proptest-tests")]

use control_replication::cr::{control_replicate, CrOptions, SyncMode};
use control_replication::geometry::{Domain, DynPoint};
use control_replication::ir::{
    expr::c, interp, Privilege, Program, ProgramBuilder, RegionArg, RegionParam, Store, TaskDecl,
};
use control_replication::region::{ops, FieldSpace, FieldType, ReductionOp, RegionId};
use proptest::prelude::*;
use std::sync::Arc;

/// Parameters of a random program.
#[derive(Debug, Clone)]
struct Params {
    n: u64,
    parts: usize,
    steps: u64,
    // h(i) = (i*mul + off) mod n — arbitrary, possibly non-local and
    // non-injective gather map.
    h_mul: i64,
    h_off: i64,
    // scatter map for the reduction.
    s_mul: i64,
    s_off: i64,
    shards: usize,
    barrier_sync: bool,
    optimize_placement: bool,
    skip_disjoint: bool,
}

fn arb_params() -> impl Strategy<Value = Params> {
    (
        16u64..80,
        2usize..7,
        1u64..4,
        1i64..12,
        0i64..32,
        1i64..9,
        0i64..16,
        1usize..7,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(n, parts, steps, h_mul, h_off, s_mul, s_off, shards, bs, op, sd)| Params {
                n,
                parts,
                steps,
                h_mul,
                h_off,
                s_mul,
                s_off,
                shards,
                barrier_sync: bs,
                optimize_placement: op,
                skip_disjoint: sd,
            },
        )
}

/// Builds the random program: two region trees A and B.
///
/// Per step:
/// 1. `TF`: write `b` of PB[i] from `a` of PA[i].
/// 2. `TG`: write `a` of PA[j] from a gather `b[h(j·…)]` through the
///    image partition QB.
/// 3. `TR`: reduce-add `g(a)` into B through the scatter image GB.
/// 4. `TC`: fold the reduction accumulator field `acc` into `b` and
///    clear it (read-write sweep giving the reduction a flush path).
fn build(p: &Params) -> Program {
    let n = p.n;
    let h_mul = p.h_mul;
    let h_off = p.h_off;
    let s_mul = p.s_mul;
    let s_off = p.s_off;
    let h = move |i: i64| (i * h_mul + h_off).rem_euclid(n as i64);
    let s = move |i: i64| (i * s_mul + s_off).rem_euclid(n as i64);

    let mut b = ProgramBuilder::new();
    let fsa = FieldSpace::of(&[("a", FieldType::F64)]);
    let fa = fsa.lookup("a").unwrap();
    let fsb = FieldSpace::of(&[("b", FieldType::F64), ("acc", FieldType::F64)]);
    let fb = fsb.lookup("b").unwrap();
    let facc = fsb.lookup("acc").unwrap();
    let ra = b.forest.create_region(Domain::range(n), fsa);
    let rb = b.forest.create_region(Domain::range(n), fsb);
    let pa = ops::block(&mut b.forest, ra, p.parts);
    let pb = ops::block(&mut b.forest, rb, p.parts);
    let qb = ops::image(&mut b.forest, rb, pa, move |pt, sink| {
        sink.push(DynPoint::from(h(pt.coord(0))));
    });
    let gb = ops::image(&mut b.forest, rb, pa, move |pt, sink| {
        sink.push(DynPoint::from(s(pt.coord(0))));
    });

    let tf = b.task(TaskDecl {
        name: "TF".into(),
        params: vec![RegionParam::read_write(&[fb]), RegionParam::read(&[fa])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let v = ctx.read_f64(1, fa, q);
                ctx.write_f64(0, fb, q, 0.5 * v + 0.25);
            }
        }),
        cost_per_element: 1.0,
    });
    let tg = b.task(TaskDecl {
        name: "TG".into(),
        params: vec![RegionParam::read_write(&[fa]), RegionParam::read(&[fb])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let v = ctx.read_f64(1, fb, DynPoint::from(h(q.coord(0))));
                ctx.write_f64(0, fa, q, 0.75 * v - 0.125);
            }
        }),
        cost_per_element: 1.0,
    });
    let tr = b.task(TaskDecl {
        name: "TR".into(),
        params: vec![
            RegionParam::read(&[fa]),
            RegionParam {
                privilege: Privilege::Reduce(ReductionOp::Add),
                fields: vec![facc],
            },
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let v = ctx.read_f64(0, fa, q);
                ctx.reduce_f64(1, facc, DynPoint::from(s(q.coord(0))), v * 0.125);
            }
        }),
        cost_per_element: 1.0,
    });
    let tc = b.task(TaskDecl {
        name: "TC".into(),
        params: vec![RegionParam::read_write(&[fb, facc])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let acc = ctx.read_f64(0, facc, q);
                let v = ctx.read_f64(0, fb, q);
                ctx.write_f64(0, fb, q, v + acc);
                ctx.write_f64(0, facc, q, 0.0);
            }
        }),
        cost_per_element: 1.0,
    });

    let parts = p.parts as u64;
    let l = b.for_loop(c(p.steps as f64));
    b.index_launch(tf, parts, vec![RegionArg::Part(pb), RegionArg::Part(pa)]);
    b.index_launch(tg, parts, vec![RegionArg::Part(pa), RegionArg::Part(qb)]);
    b.index_launch(tr, parts, vec![RegionArg::Part(pa), RegionArg::Part(gb)]);
    b.index_launch(tc, parts, vec![RegionArg::Part(pb)]);
    b.end(l);
    b.build()
}

fn init(prog: &Program, store: &mut Store) {
    store.fill_f64(
        prog,
        RegionId(0),
        regent_region_field(prog, RegionId(0), "a"),
        |q| ((q.coord(0) * 37) % 11) as f64 - 5.0,
    );
    store.fill_f64(
        prog,
        RegionId(1),
        regent_region_field(prog, RegionId(1), "b"),
        |q| ((q.coord(0) * 13) % 7) as f64,
    );
}

fn regent_region_field(
    prog: &Program,
    r: RegionId,
    name: &str,
) -> control_replication::region::FieldId {
    prog.forest.fields(r).lookup(name).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn cr_matches_sequential_on_random_programs(p in arb_params()) {
        // Sequential reference.
        let prog = build(&p);
        let mut seq = Store::new(&prog);
        init(&prog, &mut seq);
        let (seq_env, _) = interp::run(&prog, &mut seq);

        // Control replicated.
        let prog2 = build(&p);
        let mut crs = Store::new(&prog2);
        init(&prog2, &mut crs);
        let mut opts = CrOptions::new(p.shards);
        opts.sync = if p.barrier_sync { SyncMode::Barrier } else { SyncMode::PointToPoint };
        opts.optimize_placement = p.optimize_placement;
        opts.skip_disjoint_pairs = p.skip_disjoint;
        let spmd = control_replicate(prog2, &opts).expect("transform must succeed");
        let result = control_replication::runtime::execute_spmd(&spmd, &mut crs);
        prop_assert_eq!(seq_env.clone(), result.env);

        // The implicitly parallel executor must agree as well (it
        // serializes reductions, so it is bit-identical to sequential).
        let prog3 = build(&p);
        let mut imp = Store::new(&prog3);
        init(&prog3, &mut imp);
        let (imp_env, _) = control_replication::runtime::execute_implicit(
            &prog3,
            &mut imp,
            control_replication::runtime::ImplicitOptions::with_workers(
                1 + (p.shards % 3),
            ),
        );
        prop_assert_eq!(seq_env, imp_env);

        for root in [RegionId(0), RegionId(1)] {
            let a = seq.instance(&prog, root);
            let b = crs.instance_in(&spmd.forest, root);
            let c_imp = imp.instance(&prog3, root);
            let fields = prog.forest.fields(root);
            for (fid, def) in fields.iter() {
                for q in prog.forest.domain(root).iter() {
                    let x = a.read_f64(fid, q);
                    let y = b.read_f64(fid, q);
                    let scale = x.abs().max(y.abs()).max(1.0);
                    prop_assert!(
                        (x - y).abs() <= 1e-12 * scale,
                        "{:?}.{} at {:?}: seq={} cr={} ({:?})",
                        root, def.name, q, x, y, p
                    );
                    // Implicit executor: bit-identical.
                    prop_assert_eq!(x, c_imp.read_f64(fid, q));
                }
            }
        }
    }
}
