//! Cross-crate integration tests on the public API of the workspace
//! root: projection normalization feeding control replication, target
//! detection, and the full pipeline on mixed programs.

use control_replication::cr::{control_replicate, find_replicable_ranges, CrOptions};
use control_replication::geometry::Domain;
use control_replication::ir::{
    expr::c, interp, normalize_projections, Program, ProgramBuilder, Projection, RegionArg,
    RegionParam, Store, TaskDecl,
};
use control_replication::region::{ops, FieldSpace, FieldType, RegionId};
use control_replication::runtime::execute_spmd;
use std::sync::Arc;

/// A ring-shift program: every step, task i reads its right neighbour's
/// block through the projected argument `p[(i+1) mod NT]` and writes
/// its own block — the `p[f(i)]` form §2.2 requires normalizing.
fn ring_shift_program(n: u64, parts: u64, steps: u64) -> (Program, regent_region::FieldId) {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("cur", FieldType::F64), ("nxt", FieldType::F64)]);
    let cur = fs.lookup("cur").unwrap();
    let nxt = fs.lookup("nxt").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts as usize);
    let shift = b.task(TaskDecl {
        name: "shift".into(),
        params: vec![RegionParam::read_write(&[nxt]), RegionParam::read(&[cur])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            // New block value = sum of the neighbour block's elements
            // plus own index.
            let src = ctx.domain(1).clone();
            let mut acc = 0.0;
            for q in src.iter() {
                acc += ctx.read_f64(1, cur, q);
            }
            let dst = ctx.domain(0).clone();
            for q in dst.iter() {
                ctx.write_f64(0, nxt, q, acc + q.coord(0) as f64);
            }
        }),
        cost_per_element: 1.0,
    });
    let commit = b.task(TaskDecl {
        name: "commit".into(),
        params: vec![RegionParam::read_write(&[cur]), RegionParam::read(&[nxt])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let v = ctx.read_f64(1, nxt, q);
                ctx.write_f64(0, cur, q, v);
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(steps as f64));
    b.index_launch(
        shift,
        parts,
        vec![
            RegionArg::Part(p),
            RegionArg::PartProj(
                p,
                Projection::AffineOffset {
                    offset: 1,
                    modulus: Some(parts),
                },
            ),
        ],
    );
    b.index_launch(commit, parts, vec![RegionArg::Part(p), RegionArg::Part(p)]);
    b.end(l);
    (b.build(), cur)
}

#[test]
fn projected_arguments_normalize_and_replicate() {
    let (prog, cur) = ring_shift_program(48, 6, 4);
    let mut seq = Store::new(&prog);
    seq.fill_f64(&prog, RegionId(0), cur, |p| (p.coord(0) % 5) as f64);
    let (_, _) = interp::run(&prog, &mut seq);

    for ns in [1, 2, 4] {
        let (prog2, cur2) = ring_shift_program(48, 6, 4);
        let mut crs = Store::new(&prog2);
        crs.fill_f64(&prog2, RegionId(0), cur2, |p| (p.coord(0) % 5) as f64);
        // control_replicate normalizes projections internally (§2.2).
        let spmd = control_replicate(prog2, &CrOptions::new(ns)).unwrap();
        execute_spmd(&spmd, &mut crs);
        let a = seq.instance(&prog, RegionId(0));
        let b = crs.instance_in(&spmd.forest, RegionId(0));
        for p in prog.forest.domain(RegionId(0)).iter() {
            assert_eq!(a.read_f64(cur, p), b.read_f64(cur, p), "at {p:?} ns={ns}");
        }
    }
}

#[test]
fn normalization_is_explicitly_available() {
    let (mut prog, _) = ring_shift_program(24, 4, 2);
    let before = prog.forest.num_partitions();
    let stats = normalize_projections(&mut prog);
    assert_eq!(stats.rewritten, 1);
    assert_eq!(prog.forest.num_partitions(), before + 1);
    // Idempotent.
    let again = normalize_projections(&mut prog);
    assert_eq!(again.rewritten, 0);
}

#[test]
fn mixed_program_ranges_detected() {
    // A program with a non-replicable single launch between two
    // replicable loops: the analysis reports two maximal ranges
    // (§2.2: "applied automatically to the largest set of statements
    // that meet the requirements").
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(16), fs);
    let p = ops::block(&mut b.forest, r, 4);
    let t = b.task(TaskDecl {
        name: "t".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(2.0));
    b.index_launch(t, 4, vec![RegionArg::Part(p)]);
    b.end(l);
    b.call(t, vec![r]); // single launch: not replicable
    let l = b.for_loop(c(2.0));
    b.index_launch(t, 4, vec![RegionArg::Part(p)]);
    b.end(l);
    let prog = b.build();
    let ranges = find_replicable_ranges(&prog, &prog.body);
    assert_eq!(ranges.len(), 2);
    assert_eq!((ranges[0].start, ranges[0].end), (0, 1));
    assert_eq!((ranges[1].start, ranges[1].end), (2, 3));
}

#[test]
fn whole_region_read_argument_is_broadcast() {
    // A read-only whole-region argument in an index launch: every
    // shard holds a replica, refreshed by copies from writers.
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64), ("sum", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let sum = fs.lookup("sum").unwrap();
    let r = b.forest.create_region(Domain::range(16), fs);
    let p = ops::block(&mut b.forest, r, 4);
    // Task: x[p] += global_sum_readout — reads the whole region,
    // writes its own block.
    let t = b.task(TaskDecl {
        name: "gather_all".into(),
        params: vec![RegionParam::read_write(&[sum]), RegionParam::read(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let whole = ctx.domain(1).clone();
            let mut acc = 0.0;
            for q in whole.iter() {
                acc += ctx.read_f64(1, x, q);
            }
            let own = ctx.domain(0).clone();
            for q in own.iter() {
                ctx.write_f64(0, sum, q, acc);
            }
        }),
        cost_per_element: 1.0,
    });
    let upd = b.task(TaskDecl {
        name: "update_x".into(),
        params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[sum])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let own = ctx.domain(0).clone();
            for q in own.iter() {
                let v = ctx.read_f64(0, x, q);
                let s = ctx.read_f64(1, sum, q);
                ctx.write_f64(0, x, q, v + 1e-3 * s);
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(3.0));
    b.index_launch(t, 4, vec![RegionArg::Part(p), RegionArg::Region(r)]);
    b.index_launch(upd, 4, vec![RegionArg::Part(p), RegionArg::Part(p)]);
    b.end(l);
    let prog = b.build();

    let run_seq = || {
        let mut b2 = Store::new(&prog);
        b2.fill_f64(&prog, r, x, |p| p.coord(0) as f64);
        let _ = interp::run(&prog, &mut b2);
        b2
    };
    let seq = run_seq();

    // Rebuild for CR (same closure-free structure, deterministic).
    let mut crs = Store::new(&prog);
    crs.fill_f64(&prog, r, x, |p| p.coord(0) as f64);
    // We can't reuse `prog` (moved), so clone pieces via a fresh build:
    // here simply re-run through CR on a second identical build.
    let rebuild = || {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64), ("sum", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let sum = fs.lookup("sum").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(TaskDecl {
            name: "gather_all".into(),
            params: vec![RegionParam::read_write(&[sum]), RegionParam::read(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let whole = ctx.domain(1).clone();
                let mut acc = 0.0;
                for q in whole.iter() {
                    acc += ctx.read_f64(1, x, q);
                }
                let own = ctx.domain(0).clone();
                for q in own.iter() {
                    ctx.write_f64(0, sum, q, acc);
                }
            }),
            cost_per_element: 1.0,
        });
        let upd = b.task(TaskDecl {
            name: "update_x".into(),
            params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[sum])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let own = ctx.domain(0).clone();
                for q in own.iter() {
                    let v = ctx.read_f64(0, x, q);
                    let s = ctx.read_f64(1, sum, q);
                    ctx.write_f64(0, x, q, v + 1e-3 * s);
                }
            }),
            cost_per_element: 1.0,
        });
        let l = b.for_loop(c(3.0));
        b.index_launch(t, 4, vec![RegionArg::Part(p), RegionArg::Region(r)]);
        b.index_launch(upd, 4, vec![RegionArg::Part(p), RegionArg::Part(p)]);
        b.end(l);
        b.build()
    };
    for ns in [1, 2, 3] {
        let prog2 = rebuild();
        let mut crs = Store::new(&prog2);
        crs.fill_f64(&prog2, RegionId(0), x, |p| p.coord(0) as f64);
        let spmd = control_replicate(prog2, &CrOptions::new(ns)).unwrap();
        execute_spmd(&spmd, &mut crs);
        let a = seq.instance(&prog, RegionId(0));
        let bb = crs.instance_in(&spmd.forest, RegionId(0));
        for q in prog.forest.domain(RegionId(0)).iter() {
            assert_eq!(a.read_f64(x, q), bb.read_f64(x, q), "x at {q:?} ns={ns}");
            assert_eq!(a.read_f64(sum, q), bb.read_f64(sum, q), "sum at {q:?}");
        }
    }
}

#[test]
fn hybrid_range_local_replication_matches_sequential() {
    // §2.2: control replication "need not be applied only at the top
    // level" — a mixed program with a non-replicable single launch
    // between two replicable loops runs hybrid: the loops as SPMD
    // shards, the single launch sequentially, with region data and a
    // scalar threading through all segments.
    use control_replication::cr::replicate_ranges;
    use control_replication::ir::expr::var;
    use control_replication::runtime::execute_hybrid;

    let build = || {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(24), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let scale = b.scalar("scale", 2.0);
        let bump = b.task(TaskDecl {
            name: "bump".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 1,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let s = ctx.scalars[0];
                let dom = ctx.domain(0).clone();
                for q in dom.iter() {
                    let v = ctx.read_f64(0, x, q);
                    ctx.write_f64(0, x, q, v * s + 1.0);
                }
            }),
            cost_per_element: 1.0,
        });
        let whole = b.task(TaskDecl {
            name: "whole_region_pass".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 0,
            returns_value: true,
            kernel: Arc::new(move |ctx| {
                // A global, non-replicable pass: normalizes by the max.
                let dom = ctx.domain(0).clone();
                let mut mx: f64 = 1.0;
                for q in dom.iter() {
                    mx = mx.max(ctx.read_f64(0, x, q).abs());
                }
                for q in dom.iter() {
                    let v = ctx.read_f64(0, x, q);
                    ctx.write_f64(0, x, q, v / mx);
                }
                ctx.set_return(mx);
            }),
            cost_per_element: 1.0,
        });
        let peak = b.scalar("peak", 0.0);
        // Replicable range 1.
        let l = b.for_loop(c(3.0));
        b.index_launch_full(bump, 4, vec![RegionArg::Part(p)], vec![var(scale)], None);
        b.end(l);
        // Sequential segment: whole-region normalize, returns the peak.
        b.call_full(whole, vec![r], vec![], Some(peak));
        // Replicable range 2: uses the scalar produced sequentially.
        let l = b.for_loop(c(2.0));
        b.index_launch_full(bump, 4, vec![RegionArg::Part(p)], vec![var(peak)], None);
        b.end(l);
        (b.build(), x)
    };

    // Sequential reference.
    let (prog, x) = build();
    let mut seq = Store::new(&prog);
    seq.fill_f64(&prog, RegionId(0), x, |q| (q.coord(0) % 7) as f64 - 3.0);
    let (seq_env, _) = interp::run(&prog, &mut seq);

    for ns in [1, 2, 3] {
        let (prog2, x2) = build();
        let mut store = Store::new(&prog2);
        store.fill_f64(&prog2, RegionId(0), x2, |q| (q.coord(0) % 7) as f64 - 3.0);
        let hybrid = replicate_ranges(prog2, &CrOptions::new(ns)).unwrap();
        assert_eq!(hybrid.num_replicated(), 2);
        let result = execute_hybrid(&hybrid, &mut store);
        assert_eq!(seq_env, result.env, "ns={ns}");
        assert_eq!(result.replicated_segments, 2);
        assert!(result.sequential_tasks >= 1);
        let a = seq.instance(&prog, RegionId(0));
        let b = store.instance(&hybrid.base, RegionId(0));
        for q in prog.forest.domain(RegionId(0)).iter() {
            assert_eq!(a.read_f64(x, q), b.read_f64(x, q), "at {q:?} ns={ns}");
        }
    }
}
