//! # regent-cr — control replication
//!
//! The paper's primary contribution (*Control Replication: Compiling
//! Implicit Parallelism to Efficient SPMD with Logical Regions*,
//! SC'17): a compiler transformation turning implicitly parallel
//! programs over logical regions into long-running SPMD shards with
//! explicit copies and point-to-point synchronization.
//!
//! * [`analysis`] — partition-granularity access collection, the
//!   region-tree disjointness test lifted to uses, and target detection
//!   (§2.2–2.3).
//! * [`replicate`] — the transform pipeline: data replication (§3.1),
//!   region reductions (§4.3), scalar reductions (§4.4),
//!   synchronization insertion (§3.4), shard creation (§3.5).
//! * [`placement`] — copy placement optimization (§3.2).
//! * [`spmd`] — the SPMD target form, including the intersection
//!   declarations evaluated dynamically at startup (§3.3).
//!
//! Execution engines for the SPMD form live in `regent-runtime`; a
//! discrete-event distributed machine model lives in `regent-machine`.

#![warn(missing_docs)]

pub mod analysis;
pub mod hybrid;
pub mod placement;
pub mod replicate;
pub mod spmd;

pub use analysis::{
    bases_provably_disjoint, collect_accesses, find_replicable_ranges, CrError, ReplicableRange,
};
pub use hybrid::{replicate_ranges, HybridProgram, Segment};
pub use placement::{MembershipRemap, PlacementStats};
pub use replicate::{control_replicate, control_replicate_traced, CrOptions, SyncMode};
pub use spmd::{
    block_range, owner_of, CopyId, CopySource, CopyStmt, CrStats, DomainId, ForestOracle,
    IntersectDecl, IntersectId, LaunchId, SpmdArg, SpmdLaunch, SpmdProgram, SpmdStmt, TempDecl,
    TempId, UseBase, UseDecl,
};
