//! The SPMD target form produced by control replication.
//!
//! A [`SpmdProgram`] is the Fig. 4d result: a single *shard body* that
//! every shard executes with its own slice of each launch domain, plus
//! the allocation tables (partition instances, whole-region replicas,
//! reduction temporaries) and the intersection declarations the runtime
//! evaluates dynamically (§3.3). Synchronization is implicit in the
//! consumer-applied copy protocol (§3.4): the producer shard of a copy
//! pair sends, the consumer shard receives and applies at its own copy
//! point — receives are the point-to-point synchronization, and an
//! optional global-barrier mode reproduces the naive Fig. 4c scheme for
//! ablation.

use regent_ir::{ScalarExpr, ScalarId, TaskDecl, TaskId};
use regent_region::{Color, FieldId, PartitionId, ReductionOp, RegionForest, RegionId};
use std::fmt;

/// Index into [`SpmdProgram::launch_domains`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DomainId(pub u32);

/// Index into [`SpmdProgram::temps`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TempId(pub u32);

/// Index into [`SpmdProgram::intersects`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IntersectId(pub u32);

/// Unique id of a copy statement (stable across placement passes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CopyId(pub u32);

/// Unique id of a launch statement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LaunchId(pub u32);

/// A *data use*: the storage-bearing entity a shard allocates instances
/// for. Copies and intersections are declared between uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UseBase {
    /// A partition: shard `x` holds one instance per owned color.
    Part(PartitionId),
    /// A whole region replicated on every shard.
    Whole(RegionId),
}

/// Allocation record for one use.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// What is being allocated.
    pub base: UseBase,
    /// The launch domain whose block distribution assigns ownership of
    /// partition colors (unused for whole-region uses).
    pub domain: DomainId,
    /// Union of all fields accessed through this use.
    pub fields: Vec<FieldId>,
    /// True when some launch reads through this use.
    pub reads: bool,
    /// True when some launch writes through this use.
    pub writes: bool,
    /// True when some launch reduces through this use.
    pub reduces: bool,
}

impl UseDecl {
    /// Instances are materialized only for uses that are read or
    /// written directly; reduce-only uses exist purely as temp shapes.
    pub fn needs_instances(&self) -> bool {
        self.reads || self.writes
    }
}

/// A reduction temporary (§4.3): per-launch-point storage initialized to
/// the operator identity, folded into destination instances by reduction
/// copies.
#[derive(Clone, Debug)]
pub struct TempDecl {
    /// The shape of the temp: one instance per owned color of the
    /// partition, or one whole-region instance per shard.
    pub base: UseBase,
    /// The launch domain assigning ownership.
    pub domain: DomainId,
    /// Reduction operator.
    pub op: ReductionOp,
    /// Fields reduced.
    pub fields: Vec<FieldId>,
}

/// Source of a copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CopySource {
    /// A use's instances (normal coherence copy).
    Use(usize),
    /// A reduction temp (reduction copy, §4.3).
    Temp(TempId),
}

/// An intersection declaration: the runtime computes, once at startup
/// (the paper's LICM hoists them there, §3.3), the shallow pair list and
/// the per-pair exact element sets between two use/temp shapes.
#[derive(Clone, Debug)]
pub struct IntersectDecl {
    /// Source shape.
    pub src: CopySource,
    /// Destination use (index into [`SpmdProgram::uses`]).
    pub dst: usize,
}

/// A copy statement: move (or fold) field data from `src` to `dst` over
/// the precomputed intersection pairs.
#[derive(Clone, Debug)]
pub struct CopyStmt {
    /// Stable id.
    pub id: CopyId,
    /// Source shape.
    pub src: CopySource,
    /// Destination use (index into [`SpmdProgram::uses`]).
    pub dst: usize,
    /// Fields moved.
    pub fields: Vec<FieldId>,
    /// `Some(op)` makes this a reduction copy.
    pub reduction: Option<ReductionOp>,
    /// Which precomputed intersection drives the pair list.
    pub intersection: IntersectId,
}

/// One region argument of an SPMD launch.
#[derive(Clone, Copy, Debug)]
pub enum SpmdArg {
    /// Read or write through a use's instances.
    Use(usize),
    /// Fold into a reduction temp.
    Temp(TempId),
}

/// An index launch restricted to the executing shard's owned colors.
#[derive(Clone, Debug)]
pub struct SpmdLaunch {
    /// Stable id.
    pub id: LaunchId,
    /// The task.
    pub task: TaskId,
    /// The launch domain (ownership splitter).
    pub domain: DomainId,
    /// Region arguments.
    pub args: Vec<SpmdArg>,
    /// Scalar arguments (evaluated in the shard's replicated env).
    pub scalar_args: Vec<ScalarExpr>,
    /// Local scalar reduction; the matching [`SpmdStmt::AllReduce`] is
    /// emitted immediately after by the transform (§4.4).
    pub reduce_result: Option<(ScalarId, ReductionOp)>,
}

/// A statement of the replicated shard body.
#[derive(Clone, Debug)]
pub enum SpmdStmt {
    /// Launch the shard's owned points of an index launch.
    Launch(SpmdLaunch),
    /// Exchange/fold data between shards.
    Copy(CopyStmt),
    /// Reset a reduction temp to the operator identity.
    ResetTemp(TempId),
    /// Fold a scalar across all shards with a dynamic collective
    /// (§4.4) and broadcast the result.
    AllReduce {
        /// The scalar variable.
        var: ScalarId,
        /// Fold operator.
        op: ReductionOp,
    },
    /// Replicated scalar assignment.
    SetScalar {
        /// Destination.
        var: ScalarId,
        /// Value.
        expr: ScalarExpr,
    },
    /// Counted loop (replicated trip count).
    For {
        /// Trip count expression.
        count: ScalarExpr,
        /// Body.
        body: Vec<SpmdStmt>,
    },
    /// While loop (replicated condition).
    While {
        /// Condition.
        cond: ScalarExpr,
        /// Body.
        body: Vec<SpmdStmt>,
    },
    /// Conditional (replicated condition).
    If {
        /// Condition.
        cond: ScalarExpr,
        /// Then branch.
        then_body: Vec<SpmdStmt>,
        /// Else branch.
        else_body: Vec<SpmdStmt>,
    },
    /// Global barrier — emitted only in the naive synchronization mode
    /// (Fig. 4c) for the ablation study.
    Barrier,
}

/// Statistics reported by the transform passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrStats {
    /// Coherence copies inserted by data replication (§3.1).
    pub copies_inserted: usize,
    /// Reduction copies inserted (§4.3).
    pub reduction_copies_inserted: usize,
    /// Copies removed as redundant (available-copy analysis, §3.2).
    pub copies_removed_redundant: usize,
    /// Copies removed as dead (liveness, §3.2).
    pub copies_removed_dead: usize,
    /// Copy pairs statically skipped because the region tree proves the
    /// partitions disjoint (§3.1 / §4.5).
    pub pairs_proven_disjoint: usize,
    /// Scalar collectives emitted (§4.4).
    pub scalar_collectives: usize,
    /// Barriers emitted (naive mode only).
    pub barriers: usize,
}

impl CrStats {
    /// Records the transform's statistics as `Counter` events on a
    /// `cr-stats` track, so compile-time decisions (copies inserted and
    /// removed, pairs proven disjoint) land in the same trace file as
    /// the execution they shaped.
    pub fn emit_trace(&self, tracer: &std::sync::Arc<regent_trace::Tracer>) {
        let mut tb = tracer.buffer("cr-stats");
        let counters: [(&'static str, usize); 7] = [
            ("copies_inserted", self.copies_inserted),
            ("reduction_copies_inserted", self.reduction_copies_inserted),
            ("copies_removed_redundant", self.copies_removed_redundant),
            ("copies_removed_dead", self.copies_removed_dead),
            ("pairs_proven_disjoint", self.pairs_proven_disjoint),
            ("scalar_collectives", self.scalar_collectives),
            ("barriers", self.barriers),
        ];
        for (i, (name, v)) in counters.into_iter().enumerate() {
            tb.push(
                i as u64,
                0,
                regent_trace::EventKind::Counter {
                    name,
                    value: v as f64,
                },
            );
        }
        tb.flush();
    }
}

/// A [`regent_trace::OverlapOracle`] backed by the real region forest:
/// two regions may alias only when they belong to the same tree and
/// their domains actually intersect. This is what lets the Spy
/// validator skip access pairs the region system proves independent.
pub struct ForestOracle<'a> {
    forest: &'a RegionForest,
}

impl<'a> ForestOracle<'a> {
    /// Creates an oracle over `forest`.
    pub fn new(forest: &'a RegionForest) -> Self {
        ForestOracle { forest }
    }
}

impl regent_trace::OverlapOracle for ForestOracle<'_> {
    fn overlaps(&self, a: u32, b: u32) -> bool {
        let n = self.forest.num_regions() as u32;
        if a >= n || b >= n {
            // Unknown region ids: stay conservative.
            return true;
        }
        let (a, b) = (RegionId(a), RegionId(b));
        self.forest.root_of(a) == self.forest.root_of(b) && !self.forest.dynamically_disjoint(a, b)
    }
}

/// The complete SPMD program: replicated body + allocation and
/// intersection tables.
pub struct SpmdProgram {
    /// The region forest (moved from the source program, possibly with
    /// normalization partitions added).
    pub forest: RegionForest,
    /// Task declarations (shared with the source).
    pub tasks: Vec<TaskDecl>,
    /// Scalar declarations.
    pub scalars: Vec<regent_ir::ScalarDecl>,
    /// Number of shards the body was compiled for.
    pub num_shards: usize,
    /// Deduplicated launch domains (color lists).
    pub launch_domains: Vec<Vec<Color>>,
    /// Data uses (instance allocation table).
    pub uses: Vec<UseDecl>,
    /// Reduction temporaries.
    pub temps: Vec<TempDecl>,
    /// Intersection declarations the runtime evaluates at startup.
    pub intersects: Vec<IntersectDecl>,
    /// The replicated shard body.
    pub body: Vec<SpmdStmt>,
    /// Transform statistics.
    pub stats: CrStats,
}

impl SpmdProgram {
    /// The task declaration for `t`.
    pub fn task(&self, t: TaskId) -> &TaskDecl {
        &self.tasks[t.0 as usize]
    }

    /// The colors shard `shard` owns within launch domain `d`
    /// (§3.5: `SI = block(I, X)` — a block split of the color list).
    pub fn owned_colors(&self, d: DomainId, shard: usize) -> &[Color] {
        let domain = &self.launch_domains[d.0 as usize];
        let (start, end) = block_range(domain.len(), self.num_shards, shard);
        &domain[start..end]
    }

    /// The shard owning position `pos` of launch domain `d`.
    pub fn owner_of_pos(&self, d: DomainId, pos: usize) -> usize {
        owner_of(
            self.launch_domains[d.0 as usize].len(),
            self.num_shards,
            pos,
        )
    }

    /// The shard owning color `c` of launch domain `d`, or `None` when
    /// the color is not in the domain.
    pub fn owner_of_color(&self, d: DomainId, c: Color) -> Option<usize> {
        let domain = &self.launch_domains[d.0 as usize];
        domain
            .iter()
            .position(|&x| x == c)
            .map(|pos| self.owner_of_pos(d, pos))
    }

    /// Total number of copy statements in the body.
    pub fn count_copies(&self) -> usize {
        fn walk(stmts: &[SpmdStmt], n: &mut usize) {
            for s in stmts {
                match s {
                    SpmdStmt::Copy(_) => *n += 1,
                    SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => walk(body, n),
                    SpmdStmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, n);
                        walk(else_body, n);
                    }
                    _ => {}
                }
            }
        }
        let mut n = 0;
        walk(&self.body, &mut n);
        n
    }
}

/// The `[start, end)` slice of `len` items that block-distribution
/// assigns to `shard` out of `num_shards` (remainder spread over the
/// leading shards, matching `Rect::block_split`).
pub fn block_range(len: usize, num_shards: usize, shard: usize) -> (usize, usize) {
    let base = len / num_shards;
    let rem = len % num_shards;
    let start = shard * base + shard.min(rem);
    let size = base + usize::from(shard < rem);
    (start, start + size)
}

/// The shard owning position `pos` under block distribution.
pub fn owner_of(len: usize, num_shards: usize, pos: usize) -> usize {
    debug_assert!(pos < len);
    let base = len / num_shards;
    let rem = len % num_shards;
    let big = rem * (base + 1);
    if pos < big {
        pos / (base + 1)
    } else {
        // base == 0 here would mean more shards than items, in which
        // case every position is below `big`.
        debug_assert!(
            base > 0,
            "position {pos} beyond block distribution of {len} items"
        );
        rem + (pos - big) / base
    }
}

impl fmt::Debug for SpmdProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SpmdProgram: {} shards, {} uses, {} temps, {} intersections, {} copies",
            self.num_shards,
            self.uses.len(),
            self.temps.len(),
            self.intersects.len(),
            self.count_copies()
        )?;
        fmt_stmts(f, &self.body, 2)
    }
}

fn fmt_stmts(f: &mut fmt::Formatter<'_>, stmts: &[SpmdStmt], indent: usize) -> fmt::Result {
    for s in stmts {
        match s {
            SpmdStmt::Launch(l) => writeln!(
                f,
                "{:indent$}launch {:?} task={:?} args={:?}",
                "",
                l.id,
                l.task,
                l.args,
                indent = indent
            )?,
            SpmdStmt::Copy(c) => writeln!(
                f,
                "{:indent$}copy {:?} {:?} -> use#{} {}",
                "",
                c.id,
                c.src,
                c.dst,
                if c.reduction.is_some() {
                    "(reduce)"
                } else {
                    ""
                },
                indent = indent
            )?,
            SpmdStmt::ResetTemp(t) => writeln!(f, "{:indent$}reset {:?}", "", t, indent = indent)?,
            SpmdStmt::AllReduce { var, op } => writeln!(
                f,
                "{:indent$}allreduce {:?} {:?}",
                "",
                var,
                op,
                indent = indent
            )?,
            SpmdStmt::SetScalar { var, expr } => {
                writeln!(f, "{:indent$}{var:?} = {expr:?}", "", indent = indent)?
            }
            SpmdStmt::For { count, body } => {
                writeln!(f, "{:indent$}for {count:?}:", "", indent = indent)?;
                fmt_stmts(f, body, indent + 2)?;
            }
            SpmdStmt::While { cond, body } => {
                writeln!(f, "{:indent$}while {cond:?}:", "", indent = indent)?;
                fmt_stmts(f, body, indent + 2)?;
            }
            SpmdStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                writeln!(f, "{:indent$}if {cond:?}:", "", indent = indent)?;
                fmt_stmts(f, then_body, indent + 2)?;
                if !else_body.is_empty() {
                    writeln!(f, "{:indent$}else:", "", indent = indent)?;
                    fmt_stmts(f, else_body, indent + 2)?;
                }
            }
            SpmdStmt::Barrier => writeln!(f, "{:indent$}barrier", "", indent = indent)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_all() {
        for len in [0usize, 1, 5, 10, 17] {
            for ns in [1usize, 2, 3, 7] {
                let mut covered = 0;
                let mut prev_end = 0;
                for s in 0..ns {
                    let (a, b) = block_range(len, ns, s);
                    assert_eq!(a, prev_end);
                    prev_end = b;
                    covered += b - a;
                }
                assert_eq!(covered, len, "len={len} ns={ns}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn owner_matches_range() {
        for len in [1usize, 4, 9, 16, 23] {
            for ns in [1usize, 2, 3, 5, 8] {
                for pos in 0..len {
                    let owner = owner_of(len, ns, pos);
                    let (a, b) = block_range(len, ns, owner);
                    assert!(a <= pos && pos < b, "len={len} ns={ns} pos={pos}");
                }
            }
        }
    }

    #[test]
    fn balanced_distribution() {
        // Sizes differ by at most one.
        for len in [10usize, 11, 99] {
            for ns in [3usize, 4, 7] {
                let sizes: Vec<usize> = (0..ns)
                    .map(|s| {
                        let (a, b) = block_range(len, ns, s);
                        b - a
                    })
                    .collect();
                let mx = sizes.iter().max().unwrap();
                let mn = sizes.iter().min().unwrap();
                assert!(mx - mn <= 1);
            }
        }
    }
}
