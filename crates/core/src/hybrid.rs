//! Range-local control replication (§2.2).
//!
//! "An important feature of control replication is that it is a local
//! transformation, applying to a single collection of loops. Thus, it
//! need not be applied only at the top level, and can in fact be
//! applied independently to different parts of a program."
//!
//! [`replicate_ranges`] finds the maximal replicable ranges of a
//! program's top-level statement list and compiles *each range* into
//! its own SPMD body, leaving the remaining statements for ordinary
//! implicit/sequential execution. The result is a [`HybridProgram`]
//! whose segments alternate between the two forms; data flows between
//! them through the root store (the initialization/finalization copies
//! of §3.1 happen at every range boundary), and the scalar environment
//! threads through all segments.

use crate::analysis::{find_replicable_ranges, CrError};
use crate::replicate::{control_replicate, CrOptions};
use crate::spmd::SpmdProgram;
use regent_ir::{Program, Stmt};

/// One segment of a hybrid program.
#[allow(clippy::large_enum_variant)] // a handful of segments per program
pub enum Segment {
    /// A control-replicated range, executed as SPMD shards.
    Replicated(SpmdProgram),
    /// Statements outside every replicable range, executed with
    /// ordinary sequential/implicit semantics.
    Sequential(Vec<Stmt>),
}

/// A program partitioned into alternating sequential and
/// control-replicated segments.
pub struct HybridProgram {
    /// The original program (with an empty body — its forest, tasks and
    /// scalar declarations serve the sequential segments).
    pub base: Program,
    /// The segments, in program order.
    pub segments: Vec<Segment>,
}

impl HybridProgram {
    /// Number of replicated segments.
    pub fn num_replicated(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Replicated(_)))
            .count()
    }
}

/// Applies control replication to every maximal replicable range of the
/// program's top-level body (§2.2), leaving the rest sequential.
///
/// Each range is compiled against its own snapshot of the region
/// forest, so normalization partitions created for one range do not
/// perturb the others.
pub fn replicate_ranges(program: Program, opts: &CrOptions) -> Result<HybridProgram, CrError> {
    let ranges = find_replicable_ranges(&program, &program.body);
    let Program {
        forest,
        tasks,
        scalars,
        body,
    } = program;
    let mut segments = Vec::new();
    let mut cursor = 0usize;
    let mut stmts: Vec<Option<Stmt>> = body.into_iter().map(Some).collect();
    for range in &ranges {
        if range.start > cursor {
            let seq: Vec<Stmt> = stmts[cursor..range.start]
                .iter_mut()
                .map(|s| s.take().unwrap())
                .collect();
            segments.push(Segment::Sequential(seq));
        }
        let range_body: Vec<Stmt> = stmts[range.start..range.end]
            .iter_mut()
            .map(|s| s.take().unwrap())
            .collect();
        let sub = Program {
            forest: forest.clone(),
            tasks: tasks.clone(),
            scalars: scalars.clone(),
            body: range_body,
        };
        segments.push(Segment::Replicated(control_replicate(sub, opts)?));
        cursor = range.end;
    }
    if cursor < stmts.len() {
        let seq: Vec<Stmt> = stmts[cursor..]
            .iter_mut()
            .map(|s| s.take().unwrap())
            .collect();
        segments.push(Segment::Sequential(seq));
    }
    Ok(HybridProgram {
        base: Program {
            forest,
            tasks,
            scalars,
            body: Vec::new(),
        },
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_geometry::Domain;
    use regent_ir::{expr::c, ProgramBuilder, RegionArg, RegionParam, TaskDecl};
    use regent_region::{ops, FieldSpace, FieldType};
    use std::sync::Arc;

    #[test]
    fn splits_into_alternating_segments() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(TaskDecl {
            name: "t".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(|_| {}),
            cost_per_element: 1.0,
        });
        let l = b.for_loop(c(2.0));
        b.index_launch(t, 4, vec![RegionArg::Part(p)]);
        b.end(l);
        b.call(t, vec![r]); // sequential-only
        b.index_launch(t, 4, vec![RegionArg::Part(p)]);
        let prog = b.build();
        let hybrid = replicate_ranges(prog, &CrOptions::new(2)).unwrap();
        assert_eq!(hybrid.segments.len(), 3);
        assert_eq!(hybrid.num_replicated(), 2);
        assert!(matches!(hybrid.segments[0], Segment::Replicated(_)));
        assert!(matches!(hybrid.segments[1], Segment::Sequential(ref v) if v.len() == 1));
        assert!(matches!(hybrid.segments[2], Segment::Replicated(_)));
    }

    #[test]
    fn fully_sequential_program_single_segment() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(8), fs);
        let t = b.task(TaskDecl {
            name: "t".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(|_| {}),
            cost_per_element: 1.0,
        });
        b.call(t, vec![r]);
        let hybrid = replicate_ranges(b.build(), &CrOptions::new(2)).unwrap();
        assert_eq!(hybrid.segments.len(), 1);
        assert_eq!(hybrid.num_replicated(), 0);
    }
}
