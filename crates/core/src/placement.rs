//! Copy placement optimization (§3.2).
//!
//! "To improve copy placement, we employ variants of partial redundancy
//! elimination and loop invariant code motion. ... Loops are viewed as
//! operations on partitions" — the analyses below run at exactly that
//! granularity: a statement reads/writes *uses* (partitions or
//! whole-region replicas), and copies move data between uses.
//!
//! Two passes run over the structured SPMD body:
//!
//! * **Available-copy elimination** (forward): a copy `src → dst` is
//!   redundant when an identical copy is available on every path and
//!   neither `src` nor `dst` has been written since. Loops are solved to
//!   a fixpoint over the back edge.
//! * **Dead-copy elimination** (backward): a copy is dead when its
//!   destination is never read afterwards (on any path, including the
//!   loop back edge) and the destination is not flushed at
//!   finalization (i.e. it is not a written use).
//!
//! Initialization copies and the dynamic intersection computations are
//! already placed at program start by construction (the paper reaches
//! the same placement through LICM, §3.3: "the shallow intersections
//! were all lifted up to the beginning of the program execution").

use crate::spmd::{owner_of, CopySource, SpmdArg, SpmdStmt, TempId, UseDecl};
use regent_ir::{Privilege, TaskDecl};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Elastic membership: shard-ownership remapping.
// ---------------------------------------------------------------------

/// The survivor relabeling that removes one dead shard from an N-shard
/// membership. A compiled SPMD program is shard-agnostic — ownership is
/// always *derived* from `(domain length, shard count)` through the
/// contiguous block split ([`crate::spmd::block_range`]) — so shrinking
/// the membership is purely a relabeling plus a re-derivation: survivor
/// `s` keeps its identity as `new_id(s)`, and every color's new owner
/// follows from the block split at `new_shards`. The DES crash model
/// and the real executors' live failover share this plan so simulated
/// and real recovery redistribute state the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipRemap {
    /// Shards before the loss.
    pub old_shards: usize,
    /// Shards after the loss (`old_shards − 1`).
    pub new_shards: usize,
    /// The old shard id removed from the membership.
    pub dead: u32,
}

impl MembershipRemap {
    /// Plans the removal of `dead` from an `old_shards`-strong
    /// membership. `None` when the membership cannot shrink (already a
    /// single shard) or `dead` is not a member.
    pub fn shrink(old_shards: usize, dead: u32) -> Option<MembershipRemap> {
        if old_shards <= 1 || (dead as usize) >= old_shards {
            return None;
        }
        Some(MembershipRemap {
            old_shards,
            new_shards: old_shards - 1,
            dead,
        })
    }

    /// The old identity of new shard `new_shard`: survivors below the
    /// dead shard keep their id, survivors above shift down by one.
    pub fn old_id(&self, new_shard: usize) -> usize {
        debug_assert!(new_shard < self.new_shards);
        if new_shard < self.dead as usize {
            new_shard
        } else {
            new_shard + 1
        }
    }

    /// The new identity of surviving old shard `old_shard`; `None` for
    /// the dead shard.
    pub fn new_id(&self, old_shard: usize) -> Option<usize> {
        use std::cmp::Ordering;
        match (old_shard as u32).cmp(&self.dead) {
            Ordering::Less => Some(old_shard),
            Ordering::Equal => None,
            Ordering::Greater => Some(old_shard - 1),
        }
    }

    /// The *new* owner (a new shard id) of position `pos` in a launch
    /// domain of `len` colors, under the shrunken membership's block
    /// split.
    pub fn new_owner(&self, len: usize, pos: usize) -> usize {
        owner_of(len, self.new_shards, pos)
    }

    /// The *old* owner (an old shard id) of position `pos` under the
    /// pre-loss membership — where the data to redistribute lives.
    pub fn old_owner(&self, len: usize, pos: usize) -> usize {
        owner_of(len, self.old_shards, pos)
    }
}

/// Result of the placement passes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlacementStats {
    /// Copies removed by available-copy elimination.
    pub removed_redundant: usize,
    /// Copies removed by dead-copy elimination.
    pub removed_dead: usize,
}

/// A copy identity for availability tracking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CopyKey {
    src: SrcKey,
    dst: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum SrcKey {
    Use(usize),
    Temp(u32),
}

fn src_key(s: CopySource) -> SrcKey {
    match s {
        CopySource::Use(u) => SrcKey::Use(u),
        CopySource::Temp(TempId(t)) => SrcKey::Temp(t),
    }
}

/// Runs both placement passes in order, mutating the body in place.
pub fn optimize(body: &mut Vec<SpmdStmt>, uses: &[UseDecl], tasks: &[TaskDecl]) -> PlacementStats {
    PlacementStats {
        removed_redundant: eliminate_redundant(body, tasks),
        removed_dead: eliminate_dead(body, uses, tasks),
    }
}

// ---------------------------------------------------------------------
// Forward pass: available copies.
// ---------------------------------------------------------------------

type Avail = BTreeSet<CopyKey>;

fn intersect(a: &Avail, b: &Avail) -> Avail {
    a.intersection(b).copied().collect()
}

/// Kills every availability fact invalidated by a write to use `u`.
fn kill_use(state: &mut Avail, u: usize) {
    state.retain(|k| k.dst != u && k.src != SrcKey::Use(u));
}

fn kill_temp(state: &mut Avail, t: TempId) {
    state.retain(|k| k.src != SrcKey::Temp(t.0));
}

/// Applies one statement's transfer function; when `remove` is set,
/// replaces redundant copies with `None` markers via the returned list.
fn fwd_transfer(
    stmts: &mut [SpmdStmt],
    state: &mut Avail,
    tasks: &[TaskDecl],
    remove: bool,
    removed: &mut Vec<bool>,
    idx_base: &mut usize,
) {
    for s in stmts.iter_mut() {
        let my_idx = *idx_base;
        *idx_base += 1;
        match s {
            SpmdStmt::Launch(l) => {
                let decl = &tasks[l.task.0 as usize];
                for (i, a) in l.args.iter().enumerate() {
                    match a {
                        SpmdArg::Use(u) => {
                            if matches!(decl.params[i].privilege, Privilege::ReadWrite) {
                                kill_use(state, *u);
                            }
                        }
                        SpmdArg::Temp(t) => kill_temp(state, *t),
                    }
                }
            }
            SpmdStmt::Copy(c) => {
                let key = CopyKey {
                    src: src_key(c.src),
                    dst: c.dst,
                };
                if state.contains(&key) {
                    if remove {
                        removed[my_idx] = true;
                    }
                } else {
                    // The copy writes its destination: any older fact
                    // about dst (as a source or destination) is stale.
                    kill_use(state, c.dst);
                    state.insert(key);
                }
            }
            SpmdStmt::ResetTemp(t) => kill_temp(state, *t),
            SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => {
                // Fixpoint over the back edge; the loop may run zero
                // times, so the exit state also meets the entry state.
                let entry_idx = *idx_base;
                let mut entry = state.clone();
                loop {
                    let mut probe = entry.clone();
                    let mut scratch_idx = entry_idx;
                    let mut scratch_removed = vec![false; removed.len()];
                    fwd_transfer(
                        body,
                        &mut probe,
                        tasks,
                        false,
                        &mut scratch_removed,
                        &mut scratch_idx,
                    );
                    let next = intersect(&entry, &probe);
                    if next == entry {
                        break;
                    }
                    entry = next;
                }
                let mut body_state = entry.clone();
                let mut body_idx = entry_idx;
                fwd_transfer(body, &mut body_state, tasks, remove, removed, &mut body_idx);
                *idx_base = body_idx;
                // After the loop: it may have run zero times.
                *state = intersect(state, &intersect(&entry, &body_state));
            }
            SpmdStmt::If {
                then_body,
                else_body,
                ..
            } => {
                let mut s1 = state.clone();
                let mut s2 = state.clone();
                fwd_transfer(then_body, &mut s1, tasks, remove, removed, idx_base);
                fwd_transfer(else_body, &mut s2, tasks, remove, removed, idx_base);
                *state = intersect(&s1, &s2);
            }
            SpmdStmt::AllReduce { .. } | SpmdStmt::SetScalar { .. } | SpmdStmt::Barrier => {}
        }
    }
}

fn count_stmts(stmts: &[SpmdStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => 1 + count_stmts(body),
            SpmdStmt::If {
                then_body,
                else_body,
                ..
            } => 1 + count_stmts(then_body) + count_stmts(else_body),
            _ => 1,
        })
        .sum()
}

fn prune(stmts: &mut Vec<SpmdStmt>, removed: &[bool], idx_base: &mut usize) {
    let mut keep = Vec::with_capacity(stmts.len());
    for mut s in stmts.drain(..) {
        let my_idx = *idx_base;
        *idx_base += 1;
        match &mut s {
            SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => {
                prune(body, removed, idx_base);
            }
            SpmdStmt::If {
                then_body,
                else_body,
                ..
            } => {
                prune(then_body, removed, idx_base);
                prune(else_body, removed, idx_base);
            }
            _ => {}
        }
        if !(matches!(s, SpmdStmt::Copy(_)) && removed[my_idx]) {
            keep.push(s);
        }
    }
    *stmts = keep;
}

fn eliminate_redundant(body: &mut Vec<SpmdStmt>, tasks: &[TaskDecl]) -> usize {
    let n = count_stmts(body);
    let mut removed = vec![false; n];
    let mut state = Avail::new();
    let mut idx = 0usize;
    fwd_transfer(body, &mut state, tasks, true, &mut removed, &mut idx);
    let count = removed.iter().filter(|&&r| r).count();
    if count > 0 {
        let mut idx = 0usize;
        prune(body, &removed, &mut idx);
    }
    count
}

// ---------------------------------------------------------------------
// Backward pass: dead copies.
// ---------------------------------------------------------------------

type Live = BTreeSet<usize>;

/// Pre-order subtree size of one statement (itself + nested bodies).
fn stmt_size(s: &SpmdStmt) -> usize {
    match s {
        SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => 1 + count_stmts(body),
        SpmdStmt::If {
            then_body,
            else_body,
            ..
        } => 1 + count_stmts(then_body) + count_stmts(else_body),
        _ => 1,
    }
}

/// Computes the backward transfer of `stmts` given liveness after them;
/// marks dead copies when `remove` is set. `idx_end` is the pre-order
/// index one past the last statement's subtree; on return it is the
/// pre-order index of the first statement.
fn bwd_transfer(
    stmts: &mut [SpmdStmt],
    live: &mut Live,
    tasks: &[TaskDecl],
    remove: bool,
    removed: &mut Vec<bool>,
    idx_end: &mut usize,
) {
    for s in stmts.iter_mut().rev() {
        let my_idx = *idx_end - stmt_size(s);
        match s {
            SpmdStmt::Launch(l) => {
                let decl = &tasks[l.task.0 as usize];
                for (i, a) in l.args.iter().enumerate() {
                    if let SpmdArg::Use(u) = a {
                        // Read and read-write arguments read the use.
                        // (Writes are partial — no kills.)
                        match decl.params[i].privilege {
                            Privilege::Read | Privilege::ReadWrite => {
                                live.insert(*u);
                            }
                            Privilege::Reduce(_) => {}
                        }
                    }
                }
            }
            SpmdStmt::Copy(c) => {
                if !live.contains(&c.dst) {
                    if remove {
                        removed[my_idx] = true;
                    }
                } else if let CopySource::Use(u) = c.src {
                    // The copy reads its source.
                    live.insert(u);
                }
            }
            SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => {
                // Fixpoint: data live at body entry flows around the
                // back edge into the body's exit liveness.
                let exit_idx = *idx_end;
                let mut after = live.clone();
                loop {
                    let mut probe = after.clone();
                    let mut scratch_idx = exit_idx;
                    let mut scratch_removed = vec![false; removed.len()];
                    bwd_transfer(
                        body,
                        &mut probe,
                        tasks,
                        false,
                        &mut scratch_removed,
                        &mut scratch_idx,
                    );
                    let next: Live = after.union(&probe).copied().collect();
                    if next == after {
                        break;
                    }
                    after = next;
                }
                let mut body_live = after.clone();
                let mut body_idx = exit_idx;
                bwd_transfer(body, &mut body_live, tasks, remove, removed, &mut body_idx);
                debug_assert_eq!(body_idx, my_idx + 1);
                *live = live.union(&body_live).copied().collect();
            }
            SpmdStmt::If {
                then_body,
                else_body,
                ..
            } => {
                let mut l1 = live.clone();
                let mut l2 = live.clone();
                let mut cursor = *idx_end;
                bwd_transfer(else_body, &mut l2, tasks, remove, removed, &mut cursor);
                bwd_transfer(then_body, &mut l1, tasks, remove, removed, &mut cursor);
                debug_assert_eq!(cursor, my_idx + 1);
                *live = l1.union(&l2).copied().collect();
            }
            SpmdStmt::ResetTemp(_)
            | SpmdStmt::AllReduce { .. }
            | SpmdStmt::SetScalar { .. }
            | SpmdStmt::Barrier => {}
        }
        *idx_end = my_idx;
    }
}

fn eliminate_dead(body: &mut Vec<SpmdStmt>, uses: &[UseDecl], tasks: &[TaskDecl]) -> usize {
    let n = count_stmts(body);
    let mut removed = vec![false; n];
    // At program end, written uses are flushed back to the root store —
    // they are live-out.
    let mut live: Live = uses
        .iter()
        .enumerate()
        .filter(|(_, u)| u.writes)
        .map(|(i, _)| i)
        .collect();
    let mut idx = n;
    bwd_transfer(body, &mut live, tasks, true, &mut removed, &mut idx);
    let count = removed.iter().filter(|&&r| r).count();
    if count > 0 {
        let mut idx = 0usize;
        prune(body, &removed, &mut idx);
    }
    count
}

#[cfg(test)]
mod membership_tests {
    use super::MembershipRemap;
    use crate::spmd::block_range;

    #[test]
    fn shrink_rejects_degenerate_memberships() {
        assert!(MembershipRemap::shrink(1, 0).is_none());
        assert!(MembershipRemap::shrink(0, 0).is_none());
        assert!(MembershipRemap::shrink(4, 4).is_none());
        assert!(MembershipRemap::shrink(4, 2).is_some());
    }

    #[test]
    fn relabel_is_a_bijection_onto_survivors() {
        for old in 2..8usize {
            for dead in 0..old as u32 {
                let m = MembershipRemap::shrink(old, dead).unwrap();
                assert_eq!(m.new_shards, old - 1);
                let mut seen = vec![false; old];
                for s in 0..m.new_shards {
                    let o = m.old_id(s);
                    assert_ne!(o as u32, dead, "dead shard must not survive");
                    assert!(!seen[o], "old shard {o} mapped twice");
                    seen[o] = true;
                    assert_eq!(m.new_id(o), Some(s), "old_id/new_id must invert");
                }
                assert_eq!(m.new_id(dead as usize), None);
            }
        }
    }

    #[test]
    fn new_ownership_covers_every_color_exactly_once() {
        for old in 2..6usize {
            for dead in 0..old as u32 {
                let m = MembershipRemap::shrink(old, dead).unwrap();
                for len in [1usize, 3, 7, 16] {
                    let mut owners = vec![0u32; len];
                    for s in 0..m.new_shards {
                        let (lo, hi) = block_range(len, m.new_shards, s);
                        for (c, n) in owners.iter_mut().enumerate().take(hi).skip(lo) {
                            *n += 1;
                            assert_eq!(m.new_owner(len, c), s);
                        }
                    }
                    assert!(owners.iter().all(|&n| n == 1), "colors must partition");
                }
            }
        }
    }
}
