//! The control replication transform (§3).
//!
//! Pipeline, mirroring the paper's phases:
//!
//! 1. *Target checks* — validation, projection normalization (§2.2),
//!    access collection (§2.3).
//! 2. *Data replication* (§3.1) — every use gets its own storage;
//!    coherence copies are inserted after each writing launch toward
//!    every aliased read use; statically-disjoint pairs are skipped
//!    using the region tree (this is where hierarchical private/ghost
//!    trees, §4.5, pay off).
//! 3. *Region reductions* (§4.3) — reduce-privilege arguments are
//!    redirected to identity-initialized temporaries; reduction copies
//!    fold them into every overlapping instance.
//! 4. *Scalar reductions* (§4.4) — index launches returning scalars
//!    fold locally, then a dynamic collective folds across shards.
//! 5. *Copy placement* (§3.2) — redundant and dead copies are removed
//!    (see [`crate::placement`]).
//! 6. *Synchronization* (§3.4) — the default consumer-applied protocol
//!    needs no separate statements (receives are the point-to-point
//!    sync); the naive mode brackets every copy with global barriers as
//!    in Fig. 4c.
//! 7. *Shard creation* (§3.5) — the body is emitted once; ownership is
//!    a block distribution of each launch domain over `num_shards`.

use crate::analysis::{bases_provably_disjoint, collect_accesses, AccessSummary, CrError};
use crate::placement;
use crate::spmd::{
    CopyId, CopySource, CopyStmt, CrStats, DomainId, IntersectDecl, IntersectId, LaunchId, SpmdArg,
    SpmdLaunch, SpmdProgram, SpmdStmt, TempDecl, TempId, UseBase, UseDecl,
};
use regent_geometry::Domain;
use regent_ir::{normalize_projections, validate, Privilege, Program, RegionArg, Stmt};
use regent_region::{Color, RegionForest};
use regent_trace::{EventKind, TraceBuf, Tracer};
use std::collections::HashMap;

/// Synchronization strategy (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SyncMode {
    /// Point-to-point: the consumer-applied copy protocol synchronizes
    /// exactly the shards with non-empty intersections.
    #[default]
    PointToPoint,
    /// Naive global barriers around every copy (Fig. 4c) — ablation.
    Barrier,
}

/// Options controlling the transform (the ablation switches of
/// DESIGN.md).
#[derive(Clone, Debug)]
pub struct CrOptions {
    /// Number of shards to compile for (§3.5: `NS`).
    pub num_shards: usize,
    /// Synchronization strategy.
    pub sync: SyncMode,
    /// Run the copy placement optimizations of §3.2.
    pub optimize_placement: bool,
    /// Use the region tree to statically skip copies between provably
    /// disjoint uses (§3.1); disabling emits copies between all pairs.
    pub skip_disjoint_pairs: bool,
}

impl CrOptions {
    /// Default options for `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        CrOptions {
            num_shards,
            sync: SyncMode::PointToPoint,
            optimize_placement: true,
            skip_disjoint_pairs: true,
        }
    }
}

/// The dynamic footprint of a use: the union of elements its instances
/// cover.
fn use_footprint(forest: &RegionForest, base: UseBase) -> Domain {
    match base {
        UseBase::Part(p) => regent_region::ops::union_of_children(forest, p),
        UseBase::Whole(r) => forest.domain(r).clone(),
    }
}

struct Builder<'a> {
    program: &'a Program,
    opts: &'a CrOptions,
    uses: Vec<UseDecl>,
    use_index: HashMap<UseBase, usize>,
    launch_domains: Vec<Vec<Color>>,
    domain_index: HashMap<Vec<Color>, DomainId>,
    temps: Vec<TempDecl>,
    intersects: Vec<IntersectDecl>,
    intersect_index: HashMap<(CopySource, usize), IntersectId>,
    next_copy: u32,
    next_launch: u32,
    stats: CrStats,
}

impl<'a> Builder<'a> {
    fn domain_id(&mut self, colors: &[Color]) -> DomainId {
        if let Some(&d) = self.domain_index.get(colors) {
            return d;
        }
        let d = DomainId(self.launch_domains.len() as u32);
        self.launch_domains.push(colors.to_vec());
        self.domain_index.insert(colors.to_vec(), d);
        d
    }

    fn intersect_id(&mut self, src: CopySource, dst: usize) -> IntersectId {
        if let Some(&i) = self.intersect_index.get(&(src, dst)) {
            return i;
        }
        let i = IntersectId(self.intersects.len() as u32);
        self.intersects.push(IntersectDecl { src, dst });
        self.intersect_index.insert((src, dst), i);
        i
    }

    fn temp_id(
        &mut self,
        base: UseBase,
        domain: DomainId,
        op: regent_region::ReductionOp,
        fields: &[regent_region::FieldId],
    ) -> TempId {
        if let Some(i) = self
            .temps
            .iter()
            .position(|t| t.base == base && t.domain == domain && t.op == op && t.fields == fields)
        {
            return TempId(i as u32);
        }
        let tid = TempId(self.temps.len() as u32);
        self.temps.push(TempDecl {
            base,
            domain,
            op,
            fields: fields.to_vec(),
        });
        tid
    }

    fn fresh_copy_id(&mut self) -> CopyId {
        let id = CopyId(self.next_copy);
        self.next_copy += 1;
        id
    }

    fn fresh_launch_id(&mut self) -> LaunchId {
        let id = LaunchId(self.next_launch);
        self.next_launch += 1;
        id
    }

    /// Destination uses that a write/reduction through `base` must be
    /// propagated to: every instance-bearing use not statically proven
    /// disjoint (excluding `base`'s own instances, which the writer
    /// updates directly — for-writes only).
    fn copy_targets(&self, base: UseBase, include_self: bool) -> Vec<usize> {
        let forest = &self.program.forest;
        let root = forest.root_of(crate::analysis::base_region(forest, base));
        self.uses
            .iter()
            .enumerate()
            .filter(|(_, u)| u.needs_instances())
            .filter(|(_, u)| include_self || u.base != base)
            // Uses of a different region tree hold unrelated data and
            // are never copy targets, with or without the static
            // disjointness optimization.
            .filter(|(_, u)| forest.root_of(crate::analysis::base_region(forest, u.base)) == root)
            .filter(|(_, u)| {
                if self.opts.skip_disjoint_pairs {
                    !bases_provably_disjoint(forest, base, u.base)
                } else {
                    true
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn transform_stmts(&mut self, stmts: &[Stmt]) -> Vec<SpmdStmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::IndexLaunch(il) => self.transform_launch(il, &mut out),
                Stmt::SingleLaunch(_) => {
                    unreachable!("single launches rejected by collect_accesses")
                }
                Stmt::For { count, body } => {
                    let body = self.transform_stmts(body);
                    out.push(SpmdStmt::For {
                        count: count.clone(),
                        body,
                    });
                }
                Stmt::While { cond, body } => {
                    let body = self.transform_stmts(body);
                    out.push(SpmdStmt::While {
                        cond: cond.clone(),
                        body,
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let then_body = self.transform_stmts(then_body);
                    let else_body = self.transform_stmts(else_body);
                    out.push(SpmdStmt::If {
                        cond: cond.clone(),
                        then_body,
                        else_body,
                    });
                }
                Stmt::SetScalar { var, expr } => out.push(SpmdStmt::SetScalar {
                    var: *var,
                    expr: expr.clone(),
                }),
            }
        }
        out
    }

    fn transform_launch(&mut self, il: &regent_ir::IndexLaunch, out: &mut Vec<SpmdStmt>) {
        let decl = self.program.task(il.task);
        let domain = self.domain_id(&il.launch_domain);
        let mut args = Vec::with_capacity(il.args.len());
        // (base, temp) pairs for post-launch reduction copies, and the
        // bases written read-write for post-launch coherence copies.
        let mut reduction_sources: Vec<(UseBase, TempId)> = Vec::new();
        let mut written_bases: Vec<(UseBase, Vec<regent_region::FieldId>)> = Vec::new();
        for (idx, arg) in il.args.iter().enumerate() {
            let param = &decl.params[idx];
            let base = match arg {
                RegionArg::Part(p) => UseBase::Part(*p),
                RegionArg::Region(r) => UseBase::Whole(*r),
                RegionArg::PartProj(..) => unreachable!("normalized"),
            };
            match param.privilege {
                Privilege::Read | Privilege::ReadWrite => {
                    let u = self.use_index[&base];
                    args.push(SpmdArg::Use(u));
                    if matches!(param.privilege, Privilege::ReadWrite) {
                        written_bases.push((base, param.fields.clone()));
                    }
                }
                Privilege::Reduce(op) => {
                    // §4.3: an identity-initialized temporary, reset
                    // before this launch. Temps with identical shape
                    // (base, domain, operator, fields) are shared
                    // across launch sites: a shard executes its body
                    // sequentially and every site brackets the temp
                    // with reset…apply, so live ranges never overlap.
                    let tid = self.temp_id(base, domain, op, &param.fields);
                    out.push(SpmdStmt::ResetTemp(tid));
                    args.push(SpmdArg::Temp(tid));
                    reduction_sources.push((base, tid));
                }
            }
        }
        out.push(SpmdStmt::Launch(SpmdLaunch {
            id: self.fresh_launch_id(),
            task: il.task,
            domain,
            args,
            scalar_args: il.scalar_args.clone(),
            reduce_result: il.reduce_result,
        }));
        if let Some((var, op)) = il.reduce_result {
            out.push(SpmdStmt::AllReduce { var, op });
            self.stats.scalar_collectives += 1;
        }
        // §3.1: propagate written fields to every aliased use.
        for (base, written_fields) in written_bases {
            let targets = self.copy_targets(base, false);
            let total_candidates = self
                .uses
                .iter()
                .filter(|u| u.needs_instances() && u.base != base)
                .count();
            self.stats.pairs_proven_disjoint += total_candidates - targets.len();
            let src_use = self.use_index[&base];
            for dst in targets {
                // Field-granular interference: only the written fields
                // that the destination also touches move.
                let fields: Vec<_> = written_fields
                    .iter()
                    .copied()
                    .filter(|f| self.uses[dst].fields.contains(f))
                    .collect();
                if fields.is_empty() {
                    continue;
                }
                let id = self.fresh_copy_id();
                let intersection = self.intersect_id(CopySource::Use(src_use), dst);
                self.emit_copy(
                    out,
                    CopyStmt {
                        id,
                        src: CopySource::Use(src_use),
                        dst,
                        fields,
                        reduction: None,
                        intersection,
                    },
                );
                self.stats.copies_inserted += 1;
            }
        }
        // §4.3: fold every temporary into all overlapping instances.
        for (base, tid) in reduction_sources {
            let op = self.temps[tid.0 as usize].op;
            let targets = self.copy_targets(base, true);
            for dst in targets {
                let id = self.fresh_copy_id();
                let intersection = self.intersect_id(CopySource::Temp(tid), dst);
                let fields = self.temps[tid.0 as usize]
                    .fields
                    .iter()
                    .copied()
                    .filter(|f| self.uses[dst].fields.contains(f))
                    .collect::<Vec<_>>();
                if fields.is_empty() {
                    continue;
                }
                self.emit_copy(
                    out,
                    CopyStmt {
                        id,
                        src: CopySource::Temp(tid),
                        dst,
                        fields,
                        reduction: Some(op),
                        intersection,
                    },
                );
                self.stats.reduction_copies_inserted += 1;
            }
        }
    }

    fn emit_copy(&mut self, out: &mut Vec<SpmdStmt>, copy: CopyStmt) {
        if self.opts.sync == SyncMode::Barrier {
            // Fig. 4c: a barrier before the copy (write-after-read) and
            // one after (read-after-write).
            out.push(SpmdStmt::Barrier);
            out.push(SpmdStmt::Copy(copy));
            out.push(SpmdStmt::Barrier);
            self.stats.barriers += 2;
        } else {
            out.push(SpmdStmt::Copy(copy));
        }
    }
}

/// Runs control replication on a whole program, producing its SPMD
/// equivalent.
///
/// The entire body must satisfy the target requirements of §2.2; use
/// [`crate::analysis::find_replicable_ranges`] to locate eligible
/// fragments of mixed programs first.
pub fn control_replicate(program: Program, opts: &CrOptions) -> Result<SpmdProgram, CrError> {
    let tracer = Tracer::disabled();
    control_replicate_traced(program, opts, &mut tracer.buffer("cr"))
}

/// [`control_replicate`] recording one `Pass` span per compiler phase
/// into `tb` — the CR pipeline's own compile-time profile.
pub fn control_replicate_traced(
    mut program: Program,
    opts: &CrOptions,
    tb: &mut TraceBuf,
) -> Result<SpmdProgram, CrError> {
    if opts.num_shards == 0 {
        return Err(CrError("num_shards must be positive".into()));
    }
    let t0 = tb.now();
    if let Err(errs) = validate(&program) {
        return Err(CrError(format!("program invalid: {}", errs[0].0)));
    }
    tb.span_since(t0, EventKind::Pass { name: "validate" });
    let t0 = tb.now();
    normalize_projections(&mut program);
    tb.span_since(
        t0,
        EventKind::Pass {
            name: "normalize-projections",
        },
    );
    let t0 = tb.now();
    let summaries = collect_accesses(&program, &program.body)?;
    tb.span_since(
        t0,
        EventKind::Pass {
            name: "collect-accesses",
        },
    );
    let t0 = tb.now();
    check_coverage(&program.forest, &summaries)?;
    tb.span_since(
        t0,
        EventKind::Pass {
            name: "check-coverage",
        },
    );

    let mut b = Builder {
        program: &program,
        opts,
        uses: Vec::new(),
        use_index: HashMap::new(),
        launch_domains: Vec::new(),
        domain_index: HashMap::new(),
        temps: Vec::new(),
        intersects: Vec::new(),
        intersect_index: HashMap::new(),
        next_copy: 0,
        next_launch: 0,
        stats: CrStats::default(),
    };
    // Materialize the use table first (copy targets need the full set).
    for s in &summaries {
        let d = b.domain_id(&s.domain);
        let idx = b.uses.len();
        b.uses.push(UseDecl {
            base: s.base,
            domain: d,
            fields: s.fields.clone(),
            reads: s.reads,
            writes: s.writes,
            reduces: !s.reduce_ops.is_empty(),
        });
        b.use_index.insert(s.base, idx);
    }
    let t0 = tb.now();
    let mut body = b.transform_stmts(&program.body);
    tb.span_since(t0, EventKind::Pass { name: "transform" });
    let mut stats = b.stats;
    if opts.optimize_placement {
        let t0 = tb.now();
        let placed = placement::optimize(&mut body, &b.uses, &program.tasks);
        tb.span_since(t0, EventKind::Pass { name: "placement" });
        stats.copies_removed_redundant = placed.removed_redundant;
        stats.copies_removed_dead = placed.removed_dead;
    }
    // Drop intersections orphaned by placement (keep table dense for
    // runtime simplicity; orphans are simply never referenced).
    let Builder {
        uses,
        launch_domains,
        temps,
        intersects,
        ..
    } = b;
    let Program {
        forest,
        tasks,
        scalars,
        ..
    } = program;
    Ok(SpmdProgram {
        forest,
        tasks,
        scalars,
        num_shards: opts.num_shards,
        launch_domains,
        uses,
        temps,
        intersects,
        body,
        stats,
    })
}

/// Verifies that every element a reduction may touch is covered by some
/// read-write use — otherwise folded contributions would never reach the
/// root store at finalization and sequential semantics would be lost.
fn check_coverage(forest: &RegionForest, summaries: &[AccessSummary]) -> Result<(), CrError> {
    let rw_cover: Vec<(regent_region::RegionId, Domain)> = summaries
        .iter()
        .filter(|s| s.writes)
        .map(|s| {
            let root = forest.root_of(crate::analysis::base_region(forest, s.base));
            (root, use_footprint(forest, s.base))
        })
        .collect();
    for s in summaries.iter().filter(|s| !s.reduce_ops.is_empty()) {
        let root = forest.root_of(crate::analysis::base_region(forest, s.base));
        let fp = use_footprint(forest, s.base);
        let mut rem = fp;
        for (croot, c) in &rw_cover {
            if *croot == root {
                rem = rem.subtract(c);
            }
            if rem.is_empty() {
                break;
            }
        }
        if !rem.is_empty() {
            return Err(CrError(format!(
                "reduction through {:?} touches {} element(s) not covered by any \
                 read-write use; their folded values could never be flushed back \
                 (add a read-write pass over them or widen a written partition)",
                s.base,
                rem.volume()
            )));
        }
    }
    Ok(())
}
