//! Compile-time analysis for control replication (§2.2–2.3).
//!
//! Everything here operates at the granularity of *partitions and
//! privileges*, never individual memory accesses — the property that
//! makes the analysis simple, reliable and guaranteed to succeed for any
//! programmer-specified partitions (§1). The two key products are:
//!
//! * [`collect_accesses`] — the table of data uses (partition/region ×
//!   privilege × fields) appearing in the target statements, and
//! * [`bases_provably_disjoint`] — the region-tree disjointness test
//!   lifted to uses, which decides where coherence copies can be
//!   statically omitted (§3.1, §4.5).

use crate::spmd::UseBase;
use regent_ir::{Privilege, Program, RegionArg, Stmt};
use regent_region::{Color, FieldId, RegionForest};
use std::collections::HashMap;
use std::fmt;

/// An error that makes a program (or statement range) ineligible for
/// control replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrError(pub String);

impl fmt::Display for CrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "control replication error: {}", self.0)
    }
}

impl std::error::Error for CrError {}

/// The access summary of one data use across the whole target range.
#[derive(Debug, Clone)]
pub struct AccessSummary {
    /// The storage-bearing entity.
    pub base: UseBase,
    /// The launch domain (color list) associated with the use. All
    /// launches touching a partition must use the same domain, or
    /// ownership would be ambiguous.
    pub domain: Vec<Color>,
    /// Union of fields accessed.
    pub fields: Vec<FieldId>,
    /// Read somewhere in the range.
    pub reads: bool,
    /// Written somewhere in the range.
    pub writes: bool,
    /// Reduced somewhere in the range (with these operators).
    pub reduce_ops: Vec<regent_region::ReductionOp>,
}

impl AccessSummary {
    fn merge_fields(&mut self, fields: &[FieldId]) {
        for f in fields {
            if !self.fields.contains(f) {
                self.fields.push(*f);
            }
        }
        self.fields.sort_unstable();
    }
}

/// Walks the statements and produces one [`AccessSummary`] per distinct
/// use base, in first-appearance order.
///
/// # Errors
/// * a partition used with two different launch domains;
/// * an unnormalized `p[f(i)]` argument (run
///   [`regent_ir::normalize_projections`] first);
/// * a read-write argument over an aliased partition (the points of the
///   launch would race);
/// * a single launch inside the range (not replicable).
pub fn collect_accesses(program: &Program, stmts: &[Stmt]) -> Result<Vec<AccessSummary>, CrError> {
    let mut order: Vec<UseBase> = Vec::new();
    let mut map: HashMap<UseBase, AccessSummary> = HashMap::new();
    collect_stmts(program, stmts, &mut order, &mut map)?;
    Ok(order.into_iter().map(|b| map.remove(&b).unwrap()).collect())
}

fn collect_stmts(
    program: &Program,
    stmts: &[Stmt],
    order: &mut Vec<UseBase>,
    map: &mut HashMap<UseBase, AccessSummary>,
) -> Result<(), CrError> {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => {
                let decl = program.task(il.task);
                check_intra_launch_parallel(program, il)?;
                for (idx, arg) in il.args.iter().enumerate() {
                    let param = &decl.params[idx];
                    let base = match arg {
                        RegionArg::Part(p) => {
                            if matches!(param.privilege, Privilege::ReadWrite)
                                && program.forest.partition(*p).disjointness
                                    == regent_region::Disjointness::Aliased
                            {
                                return Err(CrError(format!(
                                    "task {} takes read-write argument over aliased \
                                     partition {p:?}; points of the launch may race",
                                    decl.name
                                )));
                            }
                            UseBase::Part(*p)
                        }
                        RegionArg::PartProj(p, _) => {
                            return Err(CrError(format!(
                                "projected argument {p:?}[f(i)] not normalized; run \
                                 normalize_projections before control replication"
                            )));
                        }
                        RegionArg::Region(r) => {
                            if matches!(param.privilege, Privilege::ReadWrite) {
                                return Err(CrError(format!(
                                    "task {} takes whole region {r:?} read-write in an \
                                     index launch",
                                    decl.name
                                )));
                            }
                            UseBase::Whole(*r)
                        }
                    };
                    let entry = map.entry(base).or_insert_with(|| {
                        order.push(base);
                        AccessSummary {
                            base,
                            domain: il.launch_domain.clone(),
                            fields: Vec::new(),
                            reads: false,
                            writes: false,
                            reduce_ops: Vec::new(),
                        }
                    });
                    if matches!(base, UseBase::Part(_)) && entry.domain != il.launch_domain {
                        return Err(CrError(format!(
                            "partition use {base:?} appears under two different launch \
                             domains; shard ownership would be ambiguous"
                        )));
                    }
                    entry.merge_fields(&param.fields);
                    match param.privilege {
                        Privilege::Read => entry.reads = true,
                        Privilege::ReadWrite => {
                            entry.reads = true;
                            entry.writes = true;
                        }
                        Privilege::Reduce(op) => {
                            if !entry.reduce_ops.contains(&op) {
                                entry.reduce_ops.push(op);
                            }
                        }
                    }
                }
            }
            Stmt::SingleLaunch(sl) => {
                return Err(CrError(format!(
                    "single launch of task {} inside the replicated range; control \
                     replication targets loops of index launches (§2.2)",
                    program.task(sl.task).name
                )));
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                collect_stmts(program, body, order, map)?
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_stmts(program, then_body, order, map)?;
                collect_stmts(program, else_body, order, map)?;
            }
            Stmt::SetScalar { .. } => {}
        }
    }
    Ok(())
}

/// Rejects index launches whose points depend on each other: §2.2
/// targets "loops of task calls with no loop-carried dependencies" —
/// a point task reading (or writing) elements another point of the
/// *same* launch writes is not a parallel loop, and the sequential
/// semantics of such a launch cannot be preserved by any SPMD schedule
/// that runs its points concurrently.
///
/// Interference is field-granular (Regent privileges are per-field): a
/// halo read of field `in` never conflicts with a write of field `out`
/// even over the same elements.
fn check_intra_launch_parallel(
    program: &Program,
    il: &regent_ir::IndexLaunch,
) -> Result<(), CrError> {
    let decl = program.task(il.task);
    let arg_base = |arg: &RegionArg| match arg {
        RegionArg::Part(p) => Some(UseBase::Part(*p)),
        RegionArg::Region(r) => Some(UseBase::Whole(*r)),
        RegionArg::PartProj(..) => None,
    };
    for i in 0..il.args.len() {
        for j in (i + 1)..il.args.len() {
            let (pi, pj) = (&decl.params[i], &decl.params[j]);
            if pi.privilege.compatible(&pj.privilege) {
                continue;
            }
            if !pi.fields.iter().any(|f| pj.fields.contains(f)) {
                continue;
            }
            let (Some(bi), Some(bj)) = (arg_base(&il.args[i]), arg_base(&il.args[j])) else {
                continue; // projections are checked post-normalization
            };
            if !bases_provably_disjoint(&program.forest, bi, bj) {
                return Err(CrError(format!(
                    "task {}: arguments {i} and {j} may overlap with incompatible \
                     privileges on shared fields — the points of this index launch \
                     are not independent (§2.2 requires parallel inner loops)",
                    decl.name
                )));
            }
        }
    }
    Ok(())
}

/// The region a use base covers (the partition's parent or the region
/// itself).
pub fn base_region(forest: &RegionForest, base: UseBase) -> regent_region::RegionId {
    match base {
        UseBase::Part(p) => forest.partition(p).parent,
        UseBase::Whole(r) => r,
    }
}

/// Lifts the region-tree disjointness test of §2.3 to use bases: `true`
/// only when *no* subregion of `a` can share an element with any
/// subregion of `b`.
///
/// Two different partitions (or a partition and a whole region) are
/// proven disjoint exactly when their covering regions are proven
/// disjoint by the tree — which is what makes the hierarchical
/// private/ghost pattern of §4.5 effective: partitions living under the
/// `all_private` subtree are statically non-interfering with partitions
/// under `all_ghost`.
pub fn bases_provably_disjoint(forest: &RegionForest, a: UseBase, b: UseBase) -> bool {
    if a == b {
        // Same-base interference is decided by the partition's own
        // disjointness (a disjoint partition cannot interfere with
        // itself across colors).
        return match a {
            UseBase::Part(p) => {
                forest.partition(p).disjointness == regent_region::Disjointness::Disjoint
            }
            // A whole region trivially overlaps itself.
            UseBase::Whole(_) => false,
        };
    }
    let ra = base_region(forest, a);
    let rb = base_region(forest, b);
    if forest.provably_disjoint(ra, rb) {
        return true;
    }
    // Finer test: if one covering region is an ancestor of the other (or
    // they are partitions of the same region), compare child-wise using
    // the tree. We conservatively test all child pairs only when both
    // partitions are small; otherwise give up (the dynamic intersection
    // pass will still find zero pairs at runtime).
    const CHILDWISE_LIMIT: usize = 64;
    if let (UseBase::Part(pa), UseBase::Part(pb)) = (a, b) {
        let na = forest.partition(pa).len();
        let nb = forest.partition(pb).len();
        if na * nb <= CHILDWISE_LIMIT * CHILDWISE_LIMIT {
            return forest.partition(pa).child_regions().all(|ca| {
                forest
                    .partition(pb)
                    .child_regions()
                    .all(|cb| forest.provably_disjoint(ca, cb))
            });
        }
    }
    false
}

/// A maximal range of consecutive top-level statements to which control
/// replication applies (§2.2: "the optimization is applied automatically
/// to the largest set of statements that meet the requirements").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicableRange {
    /// Start index (inclusive) in the statement list.
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
}

/// Finds the maximal replicable ranges of a statement list.
pub fn find_replicable_ranges(program: &Program, stmts: &[Stmt]) -> Vec<ReplicableRange> {
    let mut ranges = Vec::new();
    let mut start = None;
    for (i, s) in stmts.iter().enumerate() {
        let ok = stmt_replicable(program, s);
        match (ok, start) {
            (true, None) => start = Some(i),
            (false, Some(st)) => {
                ranges.push(ReplicableRange { start: st, end: i });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(st) = start {
        ranges.push(ReplicableRange {
            start: st,
            end: stmts.len(),
        });
    }
    ranges
}

fn stmt_replicable(program: &Program, s: &Stmt) -> bool {
    match s {
        Stmt::IndexLaunch(il) => {
            let decl = program.task(il.task);
            il.args.iter().enumerate().all(|(idx, a)| match a {
                RegionArg::Part(p) => {
                    !(matches!(decl.params[idx].privilege, Privilege::ReadWrite)
                        && program.forest.partition(*p).disjointness
                            == regent_region::Disjointness::Aliased)
                }
                RegionArg::PartProj(..) => false,
                RegionArg::Region(_) => !matches!(decl.params[idx].privilege, Privilege::ReadWrite),
            })
        }
        Stmt::SingleLaunch(_) => false,
        Stmt::For { body, .. } | Stmt::While { body, .. } => {
            body.iter().all(|s| stmt_replicable(program, s))
        }
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            then_body.iter().all(|s| stmt_replicable(program, s))
                && else_body.iter().all(|s| stmt_replicable(program, s))
        }
        Stmt::SetScalar { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_geometry::Domain;
    use regent_ir::{ProgramBuilder, RegionParam, TaskDecl};
    use regent_region::{ops, FieldSpace, FieldType};
    use std::sync::Arc;

    fn noop(params: Vec<RegionParam>) -> TaskDecl {
        TaskDecl {
            name: "noop".into(),
            params,
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(|_| {}),
            cost_per_element: 1.0,
        }
    }

    /// Fig. 2 shape: two trees A and B, block partitions, shifted image.
    fn fig2_like() -> (
        Program,
        regent_region::PartitionId,
        regent_region::PartitionId,
        regent_region::PartitionId,
    ) {
        let mut b = ProgramBuilder::new();
        let fsa = FieldSpace::of(&[("a", FieldType::F64)]);
        let fa = fsa.lookup("a").unwrap();
        let fsb = FieldSpace::of(&[("b", FieldType::F64)]);
        let fb = fsb.lookup("b").unwrap();
        let ra = b.forest.create_region(Domain::range(16), fsa);
        let rb = b.forest.create_region(Domain::range(16), fsb);
        let pa = ops::block(&mut b.forest, ra, 4);
        let pb = ops::block(&mut b.forest, rb, 4);
        let qb = ops::image(&mut b.forest, rb, pb, |p, sink| {
            sink.push(regent_geometry::DynPoint::from((p.coord(0) + 1) % 16));
        });
        let tf = b.task(noop(vec![
            RegionParam::read_write(&[fb]),
            RegionParam::read(&[fa]),
        ]));
        let tg = b.task(noop(vec![
            RegionParam::read_write(&[fa]),
            RegionParam::read(&[fb]),
        ]));
        let l = b.for_loop(regent_ir::expr::c(3.0));
        b.index_launch(tf, 4, vec![RegionArg::Part(pb), RegionArg::Part(pa)]);
        b.index_launch(tg, 4, vec![RegionArg::Part(pa), RegionArg::Part(qb)]);
        b.end(l);
        (b.build(), pa, pb, qb)
    }

    #[test]
    fn collects_fig2_uses() {
        let (prog, pa, pb, qb) = fig2_like();
        let uses = collect_accesses(&prog, &prog.body).unwrap();
        assert_eq!(uses.len(), 3);
        let find = |base: UseBase| uses.iter().find(|u| u.base == base).unwrap();
        let ua = find(UseBase::Part(pa));
        assert!(ua.reads && ua.writes);
        let ub = find(UseBase::Part(pb));
        assert!(ub.reads && ub.writes);
        let uq = find(UseBase::Part(qb));
        assert!(uq.reads && !uq.writes);
    }

    #[test]
    fn fig2_disjointness_matrix() {
        // §3.1: "PA ... can be proven to be disjoint from PB and QB
        // using the region tree analysis", while PB and QB may alias.
        let (prog, pa, pb, qb) = fig2_like();
        let f = &prog.forest;
        assert!(bases_provably_disjoint(
            f,
            UseBase::Part(pa),
            UseBase::Part(pb)
        ));
        assert!(bases_provably_disjoint(
            f,
            UseBase::Part(pa),
            UseBase::Part(qb)
        ));
        assert!(!bases_provably_disjoint(
            f,
            UseBase::Part(pb),
            UseBase::Part(qb)
        ));
        // Self tests.
        assert!(bases_provably_disjoint(
            f,
            UseBase::Part(pa),
            UseBase::Part(pa)
        ));
        assert!(!bases_provably_disjoint(
            f,
            UseBase::Part(qb),
            UseBase::Part(qb)
        ));
    }

    #[test]
    fn whole_region_overlaps_its_partitions() {
        let (prog, pa, _, _) = fig2_like();
        let ra = prog.forest.partition(pa).parent;
        assert!(!bases_provably_disjoint(
            &prog.forest,
            UseBase::Whole(ra),
            UseBase::Part(pa)
        ));
        assert!(!bases_provably_disjoint(
            &prog.forest,
            UseBase::Whole(ra),
            UseBase::Whole(ra)
        ));
    }

    #[test]
    fn single_launch_rejected() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(8), fs);
        let t = b.task(noop(vec![RegionParam::read(&[x])]));
        b.call(t, vec![r]);
        let prog = b.build();
        assert!(collect_accesses(&prog, &prog.body).is_err());
        assert!(find_replicable_ranges(&prog, &prog.body).is_empty());
    }

    #[test]
    fn replicable_ranges_split_on_single_launch() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = ops::block(&mut b.forest, r, 2);
        let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
        let tr = b.task(noop(vec![RegionParam::read_write(&[x])]));
        b.index_launch(t, 2, vec![RegionArg::Part(p)]);
        b.call(tr, vec![r]); // not replicable
        b.index_launch(t, 2, vec![RegionArg::Part(p)]);
        b.index_launch(t, 2, vec![RegionArg::Part(p)]);
        let prog = b.build();
        let ranges = find_replicable_ranges(&prog, &prog.body);
        assert_eq!(
            ranges,
            vec![
                ReplicableRange { start: 0, end: 1 },
                ReplicableRange { start: 2, end: 4 }
            ]
        );
    }

    #[test]
    fn aliased_rw_rejected() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = ops::block(&mut b.forest, r, 2);
        let q = ops::image_fn(&mut b.forest, r, p, |pt| pt); // aliased identity
        let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
        b.index_launch(t, 2, vec![RegionArg::Part(q)]);
        let prog = b.build();
        let err = collect_accesses(&prog, &prog.body).unwrap_err();
        assert!(err.0.contains("race"));
    }

    #[test]
    fn domain_mismatch_rejected() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(noop(vec![RegionParam::read(&[x])]));
        b.index_launch(t, 4, vec![RegionArg::Part(p)]);
        b.index_launch(t, 2, vec![RegionArg::Part(p)]); // same partition, 2 points
        let prog = b.build();
        let err = collect_accesses(&prog, &prog.body).unwrap_err();
        assert!(err.0.contains("ambiguous"));
    }
}
