//! Direct tests of the copy placement optimization (§3.2) on
//! hand-constructed SPMD bodies: available-copy elimination across
//! straight-line code, branches and loop back edges, and dead-copy
//! elimination against the finalization flush.

use regent_cr::placement::optimize;
use regent_cr::{
    CopyId, CopySource, CopyStmt, DomainId, IntersectId, LaunchId, SpmdArg, SpmdLaunch, SpmdStmt,
    UseBase, UseDecl,
};
use regent_ir::{expr::c, Privilege, RegionParam, TaskDecl};
use regent_region::{FieldId, PartitionId};
use std::sync::Arc;

fn task(params: Vec<RegionParam>) -> TaskDecl {
    TaskDecl {
        name: "t".into(),
        params,
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    }
}

fn use_decl(idx: u32, reads: bool, writes: bool) -> UseDecl {
    UseDecl {
        base: UseBase::Part(PartitionId(idx)),
        domain: DomainId(0),
        fields: vec![FieldId(0)],
        reads,
        writes,
        reduces: false,
    }
}

fn copy(id: u32, src: usize, dst: usize) -> SpmdStmt {
    SpmdStmt::Copy(CopyStmt {
        id: CopyId(id),
        src: CopySource::Use(src),
        dst,
        fields: vec![FieldId(0)],
        reduction: None,
        intersection: IntersectId(0),
    })
}

fn launch(id: u32, args: Vec<SpmdArg>, task_id: u32) -> SpmdStmt {
    SpmdStmt::Launch(SpmdLaunch {
        id: LaunchId(id),
        task: regent_ir::TaskId(task_id),
        domain: DomainId(0),
        args,
        scalar_args: vec![],
        reduce_result: None,
    })
}

fn count_copies(body: &[SpmdStmt]) -> usize {
    body.iter()
        .map(|s| match s {
            SpmdStmt::Copy(_) => 1,
            SpmdStmt::For { body, .. } | SpmdStmt::While { body, .. } => count_copies(body),
            SpmdStmt::If {
                then_body,
                else_body,
                ..
            } => count_copies(then_body) + count_copies(else_body),
            _ => 0,
        })
        .sum()
}

#[test]
fn back_to_back_identical_copies_deduplicated() {
    // copy 0→1; copy 0→1 (no intervening write): second is redundant.
    // (use 1 is written elsewhere, so it is flush-live and the first
    // copy survives the dead pass.)
    let uses = vec![use_decl(0, true, true), use_decl(1, true, true)];
    let tasks = vec![task(vec![])];
    let mut body = vec![copy(0, 0, 1), copy(1, 0, 1)];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 1);
    assert_eq!(count_copies(&body), 1);
}

#[test]
fn write_between_copies_blocks_dedup() {
    // copy 0→1; launch writes use 0; copy 0→1: both needed.
    let uses = vec![use_decl(0, true, true), use_decl(1, true, true)];
    let tasks = vec![task(vec![RegionParam {
        privilege: Privilege::ReadWrite,
        fields: vec![FieldId(0)],
    }])];
    let mut body = vec![
        copy(0, 0, 1),
        launch(0, vec![SpmdArg::Use(0)], 0),
        copy(1, 0, 1),
    ];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 0);
    assert_eq!(count_copies(&body), 2);
}

#[test]
fn loop_invariant_copy_removed_on_second_trip() {
    // A loop whose body copies 0→1 but never writes 0: the copy is
    // available around the back edge, so it is removed entirely (the
    // data was already coherent from initialization).
    let uses = vec![use_decl(0, true, true), use_decl(1, true, false)];
    let tasks = vec![task(vec![RegionParam {
        privilege: Privilege::Read,
        fields: vec![FieldId(0)],
    }])];
    let mut body = vec![
        copy(0, 0, 1),
        SpmdStmt::For {
            count: c(5.0),
            body: vec![
                copy(1, 0, 1), // redundant: available from before the loop
                launch(0, vec![SpmdArg::Use(1)], 0),
            ],
        },
    ];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 1);
    assert_eq!(count_copies(&body), 1);
}

#[test]
fn loop_with_writer_keeps_copy() {
    // The classic Fig. 4a shape: write inside the loop, copy after it.
    let uses = vec![use_decl(0, true, true), use_decl(1, true, false)];
    let tasks = vec![
        task(vec![RegionParam {
            privilege: Privilege::ReadWrite,
            fields: vec![FieldId(0)],
        }]),
        task(vec![RegionParam {
            privilege: Privilege::Read,
            fields: vec![FieldId(0)],
        }]),
    ];
    let mut body = vec![SpmdStmt::For {
        count: c(5.0),
        body: vec![
            launch(0, vec![SpmdArg::Use(0)], 0), // writes 0
            copy(0, 0, 1),
            launch(1, vec![SpmdArg::Use(1)], 1), // reads 1
        ],
    }];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 0);
    assert_eq!(stats.removed_dead, 0);
    assert_eq!(count_copies(&body), 1);
}

#[test]
fn branch_kills_partial_availability() {
    // copy 0→1; if (...) { write 0 }; copy 0→1 — the second copy is
    // needed because one path invalidates the first.
    let uses = vec![use_decl(0, true, true), use_decl(1, true, true)];
    let tasks = vec![task(vec![RegionParam {
        privilege: Privilege::ReadWrite,
        fields: vec![FieldId(0)],
    }])];
    let mut body = vec![
        copy(0, 0, 1),
        SpmdStmt::If {
            cond: c(1.0),
            then_body: vec![launch(0, vec![SpmdArg::Use(0)], 0)],
            else_body: vec![],
        },
        copy(1, 0, 1),
    ];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 0);
    assert_eq!(count_copies(&body), 2);
}

#[test]
fn branch_preserves_availability_when_both_paths_copy() {
    // if { copy 0→1 } else { copy 0→1 }; copy 0→1 — the trailing copy
    // is redundant (available on both paths).
    let uses = vec![use_decl(0, true, true), use_decl(1, true, true)];
    let tasks: Vec<TaskDecl> = vec![];
    let mut body = vec![
        SpmdStmt::If {
            cond: c(1.0),
            then_body: vec![copy(0, 0, 1)],
            else_body: vec![copy(1, 0, 1)],
        },
        copy(2, 0, 1),
    ];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 1);
    assert_eq!(count_copies(&body), 2);
}

#[test]
fn dead_copy_to_never_read_use_removed() {
    // Use 1 is never read and never written (→ not flushed): a copy
    // into it is dead.
    let uses = vec![use_decl(0, true, true), use_decl(1, false, false)];
    let tasks: Vec<TaskDecl> = vec![];
    let mut body = vec![copy(0, 0, 1)];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_dead, 1);
    assert_eq!(count_copies(&body), 0);
}

#[test]
fn copy_to_written_use_is_live_via_flush() {
    // Use 1 is written somewhere → flushed at finalization → a copy
    // into it stays live even with no explicit reader.
    let uses = vec![use_decl(0, true, true), use_decl(1, false, true)];
    let tasks: Vec<TaskDecl> = vec![];
    let mut body = vec![copy(0, 0, 1)];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_dead, 0);
    assert_eq!(count_copies(&body), 1);
}

#[test]
fn copy_live_through_loop_backedge() {
    // The copy's destination is read at the *top* of the loop body on
    // the next iteration — liveness must flow around the back edge.
    let uses = vec![use_decl(0, true, true), use_decl(1, true, false)];
    let tasks = vec![
        task(vec![RegionParam {
            privilege: Privilege::Read,
            fields: vec![FieldId(0)],
        }]),
        task(vec![RegionParam {
            privilege: Privilege::ReadWrite,
            fields: vec![FieldId(0)],
        }]),
    ];
    let mut body = vec![SpmdStmt::For {
        count: c(3.0),
        body: vec![
            launch(0, vec![SpmdArg::Use(1)], 0), // reads 1
            launch(1, vec![SpmdArg::Use(0)], 1), // writes 0
            copy(0, 0, 1),                       // feeds next iteration
        ],
    }];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_dead, 0, "backedge read keeps the copy live");
    assert_eq!(count_copies(&body), 1);
}

#[test]
fn reset_temp_invalidates_temp_sourced_copies() {
    use regent_cr::TempId;
    let uses = vec![use_decl(0, true, true)];
    let tasks: Vec<TaskDecl> = vec![];
    let tcopy = |id: u32| {
        SpmdStmt::Copy(CopyStmt {
            id: CopyId(id),
            src: CopySource::Temp(TempId(0)),
            dst: 0,
            fields: vec![FieldId(0)],
            reduction: Some(regent_region::ReductionOp::Add),
            intersection: IntersectId(0),
        })
    };
    // reduce-copy; reset; reduce-copy: both must survive (the reset
    // invalidates availability).
    let mut body = vec![tcopy(0), SpmdStmt::ResetTemp(TempId(0)), tcopy(1)];
    let stats = optimize(&mut body, &uses, &tasks);
    assert_eq!(stats.removed_redundant, 0);
    assert_eq!(count_copies(&body), 2);
}
