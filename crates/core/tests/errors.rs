//! Error-path tests for the control replication transform: every
//! rejection the pipeline can produce, with the diagnostic a user would
//! see.

use regent_cr::{control_replicate, CrOptions};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{expr::c, Privilege, ProgramBuilder, RegionArg, RegionParam, TaskDecl};
use regent_region::{ops, FieldSpace, FieldType, ReductionOp};
use std::sync::Arc;

fn noop(params: Vec<RegionParam>) -> TaskDecl {
    TaskDecl {
        name: "noop".into(),
        params,
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    }
}

#[test]
fn zero_shards_rejected() {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let p = ops::block(&mut b.forest, r, 2);
    let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
    b.index_launch(t, 2, vec![RegionArg::Part(p)]);
    let err = control_replicate(b.build(), &CrOptions::new(0)).unwrap_err();
    assert!(err.0.contains("num_shards"));
}

#[test]
fn invalid_program_rejected_with_validation_message() {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let p = ops::block(&mut b.forest, r, 2);
    // Arity mismatch: task expects 2 args.
    let t = b.task(noop(vec![
        RegionParam::read_write(&[x]),
        RegionParam::read(&[x]),
    ]));
    b.index_launch(t, 2, vec![RegionArg::Part(p)]);
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    assert!(err.0.contains("program invalid"), "{}", err.0);
}

#[test]
fn single_launch_in_body_rejected() {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
    b.call(t, vec![r]);
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    assert!(err.0.contains("single launch"), "{}", err.0);
    assert!(err.0.contains("§2.2"), "cites the paper: {}", err.0);
}

#[test]
fn aliased_read_write_rejected() {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let p = ops::block(&mut b.forest, r, 2);
    let q = ops::image_fn(&mut b.forest, r, p, |pt| pt); // aliased
    let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
    b.index_launch(t, 2, vec![RegionArg::Part(q)]);
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    assert!(err.0.contains("race"), "{}", err.0);
}

#[test]
fn intra_launch_dependency_rejected() {
    // A launch whose points read, on a shared field, data other points
    // write — not a parallel loop.
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(16), fs);
    let p = ops::block(&mut b.forest, r, 4);
    let halo = ops::image(&mut b.forest, r, p, |pt, sink| {
        sink.push(DynPoint::from(pt.coord(0) - 1));
        sink.push(DynPoint::from(pt.coord(0) + 1));
    });
    let t = b.task(noop(vec![
        RegionParam::read_write(&[x]),
        RegionParam::read(&[x]), // same field as the write!
    ]));
    b.index_launch(t, 4, vec![RegionArg::Part(p), RegionArg::Part(halo)]);
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    assert!(err.0.contains("not independent"), "{}", err.0);
}

#[test]
fn uncovered_reduction_rejected() {
    // A reduction whose folded values could never be flushed back: no
    // read-write use covers the reduced elements.
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("q", FieldType::F64)]);
    let q = fs.lookup("q").unwrap();
    let nodes = b.forest.create_region(Domain::range(8), fs);
    let efs = FieldSpace::of(&[("w", FieldType::F64)]);
    let w = efs.lookup("w").unwrap();
    let edges = b.forest.create_region(Domain::range(16), efs);
    let pe = ops::block(&mut b.forest, edges, 2);
    let gn = ops::image_fn(&mut b.forest, nodes, pe, |pt| {
        DynPoint::from(pt.coord(0) % 8)
    });
    let t = b.task(noop(vec![
        RegionParam::read(&[w]),
        RegionParam {
            privilege: Privilege::Reduce(ReductionOp::Add),
            fields: vec![q],
        },
    ]));
    // Only the reduction touches the nodes tree — nothing read-writes it.
    b.index_launch(t, 2, vec![RegionArg::Part(pe), RegionArg::Part(gn)]);
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    assert!(err.0.contains("never be flushed"), "{}", err.0);
}

#[test]
fn domain_mismatch_rejected() {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let p = ops::block(&mut b.forest, r, 4);
    let t = b.task(noop(vec![RegionParam::read(&[x])]));
    b.index_launch(t, 4, vec![RegionArg::Part(p)]);
    b.index_launch(t, 2, vec![RegionArg::Part(p)]); // different domain
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    assert!(err.0.contains("ambiguous"), "{}", err.0);
}

#[test]
fn error_display_formats() {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
    b.call(t, vec![r]);
    let err = control_replicate(b.build(), &CrOptions::new(2)).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.starts_with("control replication error:"));
    // It is a std::error::Error.
    let _: &dyn std::error::Error = &err;
}

#[test]
fn while_loop_with_launches_is_accepted() {
    // Sanity: the restrictions above must not reject well-formed
    // dynamic control flow.
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(8), fs);
    let p = ops::block(&mut b.forest, r, 2);
    let t = b.task(noop(vec![RegionParam::read_write(&[x])]));
    let i = b.scalar("i", 0.0);
    let w = b.while_loop(regent_ir::expr::var(i).lt(c(3.0)));
    b.index_launch(t, 2, vec![RegionArg::Part(p)]);
    b.set_scalar(i, regent_ir::expr::var(i).add(c(1.0)));
    b.end(w);
    assert!(control_replicate(b.build(), &CrOptions::new(2)).is_ok());
}
