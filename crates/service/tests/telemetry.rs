//! Scoped per-job tracing under concurrency: when the service runs
//! with `trace_jobs` enabled, jobs of *different* apps and strategies
//! interleaving on the worker pool must each come back with a private
//! trace that (a) Spy-certifies against that job's own region forest,
//! (b) carries a blame decomposition that sums exactly to its own
//! critical path, and (c) is indistinguishable from the trace the same
//! job produces running alone — no event from a neighbour ever leaks
//! into a scoped recorder.

use regent_cr::{control_replicate, CrOptions, ForestOracle};
use regent_serve::{jobs, JobOutcome, JobSpec, Service, ServiceConfig, Strategy};
use regent_trace::{blame_report, import_trace, validate, SpyReport, Trace};

/// Rebuilds the job's region forest the same way the attempt did
/// (factories are deterministic) and certifies `trace` against it.
fn certify(spec: &JobSpec, shards: usize, trace: &Trace) -> SpyReport {
    let (prog, _store) = (spec.factory)();
    let report = match spec.strategy {
        Strategy::Spmd => {
            let spmd = control_replicate(prog, &CrOptions::new(shards)).expect("control_replicate");
            validate(trace, &ForestOracle::new(&spmd.forest))
        }
        Strategy::Implicit => validate(trace, &ForestOracle::new(&prog.forest)),
        other => panic!("test does not certify {} traces", other.label()),
    }
    .expect("structurally valid scoped log");
    assert!(
        report.ok(),
        "{}: spy violations in scoped trace: {:?}",
        spec.name,
        report.violations
    );
    assert!(
        report.certified > 0,
        "{}: no dependences exercised",
        spec.name
    );
    report
}

/// Blame must be attributable entirely to this job's own record: the
/// per-phase decomposition sums to the trace's own critical path.
fn assert_blame_self_contained(spec: &JobSpec, trace: &Trace) {
    let rep = blame_report(trace).expect("blame on scoped trace");
    assert_eq!(
        rep.total.total(),
        rep.critical_path_ns,
        "{}: blame does not sum to this job's critical path",
        spec.name
    );
}

/// The three jobs the isolation tests interleave: distinct apps AND
/// distinct strategies, so any cross-recorder leak would certify
/// against the wrong forest and fail loudly.
fn mixed_specs() -> Vec<JobSpec> {
    vec![
        jobs::stencil_job(1, Strategy::Spmd, 2),
        jobs::circuit_job(2, Strategy::Implicit, 2),
        jobs::pennant_job(3, Strategy::Spmd, 2),
    ]
}

/// Runs one job alone on a fresh single-worker service and returns its
/// `(tasks, digest)` fingerprint — the isolation baseline.
fn solo_fingerprint(spec: JobSpec) -> (usize, u64) {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::new().with_job_tracing()
    });
    let h = svc.submit(spec.clone()).expect("solo job admitted");
    let outcome = h.wait();
    let (digest, shards, trace) = match &outcome {
        JobOutcome::Completed {
            digest,
            shards,
            trace,
            ..
        } => (*digest, *shards, trace.clone().expect("solo scoped trace")),
        other => panic!("{}: solo run failed: {other:?}", spec.name),
    };
    svc.shutdown();
    let report = certify(&spec, shards, &trace);
    (report.tasks, digest)
}

#[test]
fn concurrent_jobs_produce_isolated_certifiable_traces() {
    let specs = mixed_specs();
    let baselines: Vec<(usize, u64)> = specs.iter().map(|s| solo_fingerprint(s.clone())).collect();

    // One worker per job: all three run truly concurrently.
    let svc = Service::start(ServiceConfig {
        workers: 3,
        ..ServiceConfig::new().with_job_tracing()
    });
    let handles: Vec<_> = specs
        .iter()
        .map(|s| svc.submit(s.clone()).expect("admitted"))
        .collect();
    let outcomes: Vec<JobOutcome> = handles.iter().map(|h| h.wait()).collect();
    svc.shutdown();

    for ((spec, outcome), (solo_tasks, solo_digest)) in specs.iter().zip(&outcomes).zip(&baselines)
    {
        let JobOutcome::Completed {
            digest,
            shards,
            trace,
            ..
        } = outcome
        else {
            panic!("{}: expected completion, got {outcome:?}", spec.name);
        };
        let trace = trace.as_deref().expect("scoped trace on completion");
        let report = certify(spec, *shards, trace);
        assert_blame_self_contained(spec, trace);
        // Isolation: interleaved execution left exactly the record a
        // solitary run leaves — same task count, same result digest.
        assert_eq!(
            report.tasks, *solo_tasks,
            "{}: task count diverged from the solo run",
            spec.name
        );
        assert_eq!(
            digest, solo_digest,
            "{}: result digest diverged from the solo run",
            spec.name
        );
    }
}

#[test]
fn trace_dir_dumps_one_certifiable_file_per_job() {
    let dir = std::env::temp_dir().join(format!("regent-trace-dir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = Service::start(ServiceConfig {
        workers: 3,
        trace_jobs: true,
        trace_dir: Some(dir.clone()),
        ..ServiceConfig::new()
    });
    let specs = mixed_specs();
    let handles: Vec<_> = specs
        .iter()
        .map(|s| svc.submit(s.clone()).expect("admitted"))
        .collect();
    let outcomes: Vec<JobOutcome> = handles.iter().map(|h| h.wait()).collect();
    svc.shutdown();

    for ((spec, handle), outcome) in specs.iter().zip(&handles).zip(&outcomes) {
        let JobOutcome::Completed { shards, .. } = outcome else {
            panic!("{}: expected completion, got {outcome:?}", spec.name);
        };
        let path = dir.join(format!(
            "tenant{}-job{}-{}.trace.json",
            spec.tenant,
            handle.job,
            spec.strategy.label()
        ));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing dump {}: {e}", path.display()));
        let trace = import_trace(&text).expect("dumped trace parses");
        certify(spec, *shards, &trace);
    }
    let files = std::fs::read_dir(&dir).expect("trace dir").count();
    assert_eq!(files, specs.len(), "exactly one dump per completed job");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_off_leaves_no_trace_on_outcomes() {
    let svc = Service::start(ServiceConfig::new());
    let h = svc
        .submit(jobs::stencil_job(1, Strategy::Spmd, 2))
        .expect("admitted");
    let outcome = h.wait();
    svc.shutdown();
    assert!(outcome.is_completed());
    assert!(
        outcome.trace().is_none(),
        "trace_jobs off must not allocate per-job recorders"
    );
}
