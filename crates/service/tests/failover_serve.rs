//! End-to-end shard failover through the service: with
//! `cfg.failover` armed and a kill schedule in `REGENT_KILL`, a
//! supervised job whose shard dies mid-run completes on the surviving
//! membership with a digest bit-identical to the sequential reference
//! — the loss is absorbed inside one supervised attempt, invisible to
//! admission, retry accounting, and the caller except for the reported
//! shard count.
//!
//! Own test binary: `REGENT_KILL` is process-global and would leak
//! into the classic service tests.

use regent_ir::interp;
use regent_serve::{digest_store, jobs, JobOutcome, JobSpec, Service, ServiceConfig, Strategy};

fn solo_digest(factory: &regent_serve::ProgramFactory) -> u64 {
    let (prog, mut store) = factory();
    let roots = prog.root_regions();
    let (env, _) = interp::run(&prog, &mut store);
    digest_store(&prog.forest, &store, &roots, &env)
}

#[test]
fn killed_shard_jobs_complete_on_survivors() {
    // Kill shard 1 at the epoch-2 boundary of every failover-routed
    // job in this process.
    std::env::set_var("REGENT_KILL", "1@2");

    let cfg = ServiceConfig {
        failover: Some(1),
        ..ServiceConfig::new()
    };
    let svc = Service::start(cfg);
    let baseline = solo_digest(&jobs::stencil_factory(24, 6));

    // All three failover-capable strategies, 3 shards each.
    let strategies = [Strategy::Spmd, Strategy::Log, Strategy::Hybrid];
    let handles: Vec<_> = strategies
        .iter()
        .map(|&s| {
            let spec = JobSpec::new(
                1,
                format!("stencil-failover/{}", s.label()),
                s,
                3,
                8,
                jobs::stencil_factory(24, 6),
            );
            svc.submit(spec).expect("admitted")
        })
        .collect();

    for (h, &s) in handles.iter().zip(strategies.iter()) {
        match h.wait() {
            JobOutcome::Completed {
                attempts,
                digest,
                shards,
                ..
            } => {
                assert_eq!(
                    attempts,
                    1,
                    "{}: the loss must be absorbed inside the attempt, not retried",
                    s.label()
                );
                assert_eq!(
                    shards,
                    2,
                    "{}: the reported membership must reflect the eviction",
                    s.label()
                );
                // Stencil has no reductions, so the shrunken run is
                // bit-identical to the sequential reference.
                assert_eq!(digest, baseline, "{}: result diverged", s.label());
            }
            other => panic!("{}: expected completion, got {other:?}", s.label()),
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.quarantined, 0, "failover must not quarantine");
    svc.shutdown();
}
