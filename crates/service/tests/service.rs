//! Service-level robustness tests: the soak invariant (every admitted
//! job reaches exactly one terminal outcome), overload shedding,
//! deadline cancellation, transient retry with checkpoint resume, and
//! tenant isolation under a quarantined panic.

use regent_ir::interp;
use regent_serve::{digest_store, jobs, JobOutcome, JobSpec, Service, ServiceConfig, Strategy};
use std::sync::Arc;
use std::time::Duration;

/// Reference digest: run the factory's program under the sequential
/// interpreter, outside the service.
fn solo_digest(factory: &regent_serve::ProgramFactory) -> u64 {
    let (prog, mut store) = factory();
    let roots = prog.root_regions();
    let (env, _) = interp::run(&prog, &mut store);
    digest_store(&prog.forest, &store, &roots, &env)
}

#[test]
fn all_strategies_complete_and_agree() {
    let svc = Service::start(ServiceConfig::new());
    let baseline = solo_digest(&jobs::stencil_factory(24, 6));
    let handles: Vec<_> = Strategy::ALL
        .iter()
        .map(|&s| svc.submit(jobs::stencil_job(1, s, 2)).expect("admitted"))
        .collect();
    for (h, &s) in handles.iter().zip(Strategy::ALL.iter()) {
        match h.wait() {
            JobOutcome::Completed {
                digest, attempts, ..
            } => {
                assert_eq!(attempts, 1, "{}: unexpected retry", s.label());
                // Stencil has no reductions, so every strategy is
                // bit-identical to the sequential reference.
                assert_eq!(digest, baseline, "{}: result diverged", s.label());
            }
            other => panic!("{}: expected completion, got {other:?}", s.label()),
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.shed, 0);
    svc.shutdown();
}

#[test]
fn overload_sheds_with_overloaded() {
    let cfg = ServiceConfig {
        workers: 1,
        queue_depth: 2,
        shed_budget: 1_000,
        ..ServiceConfig::new()
    };
    let svc = Service::start(cfg);
    // Occupy the single worker long enough for the flood to hit the
    // queue-depth limit deterministically.
    let slow = Arc::new(|| {
        std::thread::sleep(Duration::from_millis(120));
        jobs::stencil_factory(24, 2)()
    });
    let first = svc
        .submit(JobSpec::new(1, "slow", Strategy::Sequential, 1, 1, slow))
        .expect("first job admitted");
    std::thread::sleep(Duration::from_millis(20)); // let the worker pick it up
    let mut admitted = vec![first];
    let mut shed = 0usize;
    for i in 0..10 {
        match svc.submit(jobs::stencil_job(1, Strategy::Sequential, 1)) {
            Ok(h) => admitted.push(h),
            Err(over) => {
                shed += 1;
                assert!(over.queued >= 2, "shed below queue depth: {over} (job {i})");
            }
        }
    }
    assert!(shed > 0, "flood past a busy depth-2 queue must shed");
    for h in &admitted {
        assert!(h.wait().is_completed(), "admitted jobs must complete");
    }
    let stats = svc.stats();
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(stats.completed, admitted.len() as u64);
    svc.shutdown();
}

#[test]
fn cost_budget_sheds_before_queue_depth() {
    let cfg = ServiceConfig {
        workers: 1,
        queue_depth: 100,
        shed_budget: 20,
        ..ServiceConfig::new()
    };
    let svc = Service::start(cfg);
    let slow = Arc::new(|| {
        std::thread::sleep(Duration::from_millis(80));
        jobs::stencil_factory(24, 2)()
    });
    svc.submit(JobSpec::new(1, "slow", Strategy::Sequential, 1, 1, slow))
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(15));
    let mut shed_budget_hit = false;
    for _ in 0..6 {
        // cost 8 each: the third queued job projects past budget 20.
        if let Err(over) = svc.submit(jobs::stencil_job(1, Strategy::Sequential, 1)) {
            assert_eq!(over.budget, 20, "cost budget should be the binding limit");
            shed_budget_hit = true;
        }
    }
    assert!(shed_budget_hit, "cost budget never bound");
    svc.shutdown();
}

#[test]
fn deadline_budget_cancels() {
    let cfg = ServiceConfig {
        workers: 1,
        deadline: Some(Duration::from_millis(20)),
        ..ServiceConfig::new()
    };
    let svc = Service::start(cfg);
    // The factory burns the whole budget before the executor starts;
    // the SPMD executor's first epoch-boundary check then fires the
    // deadline cooperatively.
    let slow = Arc::new(|| {
        std::thread::sleep(Duration::from_millis(80));
        jobs::stencil_factory(24, 4)()
    });
    let h = svc
        .submit(JobSpec::new(1, "late", Strategy::Spmd, 2, 4, slow))
        .expect("admitted");
    match h.wait() {
        JobOutcome::Cancelled { reason } => {
            assert!(reason.contains("deadline"), "unexpected reason: {reason}")
        }
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
    assert_eq!(svc.stats().cancelled, 1);
    svc.shutdown();
}

#[test]
fn transient_fault_retries_and_resumes_bit_identical() {
    let svc = Service::start(ServiceConfig::new());
    let baseline = solo_digest(&jobs::stencil_factory(24, 6));
    let spec = jobs::stencil_job(3, Strategy::Spmd, 2).with_transient_at(2);
    let h = svc.submit(spec).expect("admitted");
    match h.wait() {
        JobOutcome::Completed {
            attempts, digest, ..
        } => {
            assert_eq!(attempts, 2, "transient must consume exactly one retry");
            assert_eq!(
                digest, baseline,
                "retry resumed from checkpoint must stay bit-identical"
            );
        }
        other => panic!("expected retried completion, got {other:?}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.quarantined, 0);
    svc.shutdown();
}

#[test]
fn quarantine_isolates_tenants() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::new()
    });
    let baseline = solo_digest(&jobs::stencil_factory(24, 6));
    let bomb: regent_serve::ProgramFactory = Arc::new(|| panic!("kernel bug: boom"));
    let bad = svc
        .submit(JobSpec::new(1, "boom", Strategy::Sequential, 1, 1, bomb))
        .expect("admitted");
    let good: Vec<_> = (0..4)
        .map(|_| {
            svc.submit(jobs::stencil_job(2, Strategy::Spmd, 2))
                .expect("admitted")
        })
        .collect();
    match bad.wait() {
        JobOutcome::Quarantined { error } => {
            assert!(error.contains("kernel bug"), "unexpected error: {error}")
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    for h in &good {
        match h.wait() {
            JobOutcome::Completed { digest, .. } => assert_eq!(
                digest, baseline,
                "neighbour tenant's results perturbed by a quarantined panic"
            ),
            other => panic!("neighbour job died with the panicking tenant: {other:?}"),
        }
    }
    // The panicking job's worker recycled itself: the pool must still
    // serve new work afterwards.
    let after = svc
        .submit(jobs::stencil_job(2, Strategy::Log, 2))
        .expect("admitted");
    assert!(
        after.wait().is_completed(),
        "pool not recycled after quarantine"
    );
    assert_eq!(svc.stats().quarantined, 1);
    svc.shutdown();
}

#[test]
fn degradation_halves_shard_cap_under_sustained_sheds() {
    let cfg = ServiceConfig {
        workers: 1,
        queue_depth: 1,
        degrade_after: 3,
        ..ServiceConfig::new()
    };
    let svc = Service::start(cfg);
    let slow = Arc::new(|| {
        std::thread::sleep(Duration::from_millis(100));
        jobs::stencil_factory(24, 2)()
    });
    svc.submit(JobSpec::new(9, "slow", Strategy::Sequential, 1, 1, slow))
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(15));
    svc.submit(jobs::stencil_job(9, Strategy::Sequential, 1))
        .expect("one queued job fits");
    let mut sheds = 0;
    while svc.stats().degraded == 0 && sheds < 20 {
        if svc
            .submit(jobs::stencil_job(9, Strategy::Sequential, 1))
            .is_err()
        {
            sheds += 1;
        }
    }
    assert!(svc.stats().degraded >= 1, "sustained sheds must degrade");
    assert_eq!(
        svc.tenant_shard_cap(9),
        Some(2),
        "cap should halve from the default 4"
    );
    svc.shutdown();
}

#[test]
fn trace_records_service_events() {
    use regent_trace::{EventKind, Tracer};
    let tracer = Tracer::enabled();
    let cfg = ServiceConfig {
        workers: 1,
        queue_depth: 1,
        ..ServiceConfig::new()
    }
    .with_tracer(Arc::clone(&tracer));
    let svc = Service::start(cfg);
    let slow = Arc::new(|| {
        std::thread::sleep(Duration::from_millis(60));
        jobs::stencil_factory(24, 2)()
    });
    let first = svc
        .submit(JobSpec::new(1, "slow", Strategy::Sequential, 1, 1, slow))
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(10));
    svc.submit(jobs::stencil_job(1, Strategy::Sequential, 1))
        .expect("queued");
    let mut shed = 0;
    while shed == 0 {
        if svc
            .submit(jobs::stencil_job(1, Strategy::Sequential, 1))
            .is_err()
        {
            shed += 1;
        }
    }
    let retry = loop {
        // Shed rejections just mean the queue is still saturated; keep
        // offering until the retry job is admitted.
        if let Ok(h) = svc.submit(jobs::stencil_job(1, Strategy::Spmd, 2).with_transient_at(1)) {
            break h;
        }
    };
    assert!(first.wait().is_completed());
    assert!(retry.wait().is_completed());
    svc.shutdown();
    let trace = tracer.take();
    let mut admits = 0;
    let mut sheds = 0;
    let mut retries = 0;
    let mut admit_wait_ns = 0u64;
    for t in &trace.tracks {
        for e in &t.events {
            match e.kind {
                EventKind::JobAdmit { .. } => {
                    admits += 1;
                    admit_wait_ns += e.dur;
                }
                EventKind::JobShed { .. } => sheds += 1,
                EventKind::JobRetry { .. } => retries += 1,
                _ => {}
            }
        }
    }
    assert_eq!(admits, 3, "one JobAdmit span per dispatched job");
    assert!(sheds >= 1, "the saturated queue must record sheds");
    assert_eq!(retries, 1);
    assert!(
        admit_wait_ns > 0,
        "queued jobs must record nonzero queue wait"
    );
}

/// The soak acceptance invariant: under offered load well past the
/// shed threshold, with seeded fault injection active, every job ends
/// in exactly one of {completed, shed-with-Overloaded,
/// deadline-cancelled, retried-then-completed} — and nothing is
/// quarantined or lost.
#[test]
fn soak_every_job_reaches_exactly_one_outcome() {
    let cfg = ServiceConfig {
        workers: 2,
        queue_depth: 4,
        shed_budget: 48,
        fault_seed: Some(7),
        degrade_after: 4,
        ..ServiceConfig::new()
    };
    let svc = Arc::new(Service::start(cfg));
    let strategies = Strategy::ALL;
    let mut clients = Vec::new();
    for tenant in 1..=3u32 {
        let svc = Arc::clone(&svc);
        clients.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut retried_completed = 0u64;
            let mut shed = 0u64;
            let mut other = Vec::new();
            // Semi-open loop: submit in bursts of 3, then wait the
            // burst out — 3 clients × burst 3 comfortably exceeds the
            // depth-4 queue plus both workers, so shedding is exercised.
            for burst in 0..6u64 {
                let mut handles = Vec::new();
                for j in 0..3u64 {
                    let i = burst * 3 + j;
                    let strategy = strategies[(i as usize + tenant as usize) % strategies.len()];
                    let spec = match i % 3 {
                        0 => jobs::stencil_job(tenant, strategy, 2),
                        1 => jobs::circuit_job(tenant, strategy, 2),
                        _ => jobs::pennant_job(tenant, strategy, 2),
                    };
                    match svc.submit(spec) {
                        Ok(h) => handles.push((i, h)),
                        Err(_) => shed += 1,
                    }
                }
                for (i, h) in handles {
                    match h.wait() {
                        JobOutcome::Completed { attempts, .. } => {
                            completed += 1;
                            if attempts > 1 {
                                retried_completed += 1;
                            }
                        }
                        outcome => other.push(format!("job {i}: {outcome:?}")),
                    }
                }
            }
            (completed, retried_completed, shed, other)
        }));
    }
    let mut total_completed = 0;
    let mut total_retried = 0;
    let mut total_shed = 0;
    for c in clients {
        let (completed, retried_completed, shed, other) = c.join().expect("client thread");
        assert!(other.is_empty(), "unexpected terminal outcomes: {other:?}");
        total_completed += completed;
        total_retried += retried_completed;
        total_shed += shed;
    }
    assert_eq!(total_completed + total_shed, 54, "a job went missing");
    assert!(
        total_retried > 0,
        "seeded injection (~25% of jobs) produced no retries"
    );
    let stats = Arc::try_unwrap(svc)
        .map(|svc| {
            let s = svc.stats();
            svc.shutdown();
            s
        })
        .unwrap_or_else(|_| panic!("client threads still hold the service"));
    assert_eq!(stats.quarantined, 0, "soak must not quarantine anything");
    assert_eq!(stats.completed, total_completed);
    assert_eq!(stats.shed, total_shed);
}
