//! Job descriptions, outcomes, and the handle a client waits on.

use regent_ir::interp::Store;
use regent_ir::Program;
use std::sync::{Arc, Condvar, Mutex};

/// Which executor a job runs under. All six strategies produce
/// bit-identical (or tolerance-identical, for reduction-reassociating
/// apps) results on the same program — the choice trades analysis
/// cost against parallelism, not correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Reference sequential interpreter.
    Sequential,
    /// Implicitly parallel single-node executor.
    Implicit,
    /// Implicit executor with epoch memoization (per-tenant cache).
    MemoImplicit,
    /// Control-replicated SPMD executor (supports checkpoint/rescue).
    Spmd,
    /// Hybrid range-replicated executor.
    Hybrid,
    /// Shared-log (flat-combining) executor.
    Log,
}

impl Strategy {
    /// All strategies, in the order benches sweep them.
    pub const ALL: [Strategy; 6] = [
        Strategy::Sequential,
        Strategy::Implicit,
        Strategy::MemoImplicit,
        Strategy::Spmd,
        Strategy::Hybrid,
        Strategy::Log,
    ];

    /// Stable label for artifacts and logs.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Sequential => "seq",
            Strategy::Implicit => "implicit",
            Strategy::MemoImplicit => "memo",
            Strategy::Spmd => "spmd",
            Strategy::Hybrid => "hybrid",
            Strategy::Log => "log",
        }
    }
}

/// Builds a fresh `(Program, Store)` pair for one attempt. Called
/// once per attempt on the worker thread, so every attempt (and every
/// retry) starts from an isolated region forest — no state is shared
/// between jobs except what the supervisor explicitly threads through
/// (per-tenant memo caches, the per-job rescue slot).
pub type ProgramFactory = Arc<dyn Fn() -> (Program, Store) + Send + Sync>;

/// A unit of admitted work.
#[derive(Clone)]
pub struct JobSpec {
    /// Tenant this job bills to (fairness + isolation domain).
    pub tenant: u32,
    /// Human-readable name for logs and traces.
    pub name: String,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Requested shard count (clamped to the tenant's current cap).
    pub shards: usize,
    /// Abstract cost estimate in shed-budget units. Admission control
    /// sums these; it does not need them to be accurate, only
    /// monotone in actual work.
    pub cost: u64,
    /// Program builder (see [`ProgramFactory`]).
    pub factory: ProgramFactory,
    /// Test/fault hook: force a supervisor-injected transient fault at
    /// this epoch on the *first* attempt (overrides the seeded
    /// injection decision). `None` defers to `REGENT_FAULT_SEED`.
    pub inject_transient_at: Option<u64>,
}

impl JobSpec {
    /// A job with the given identity running `factory`'s program.
    pub fn new(
        tenant: u32,
        name: impl Into<String>,
        strategy: Strategy,
        shards: usize,
        cost: u64,
        factory: ProgramFactory,
    ) -> JobSpec {
        JobSpec {
            tenant,
            name: name.into(),
            strategy,
            shards,
            cost,
            factory,
            inject_transient_at: None,
        }
    }

    /// Builder-style transient-injection override (tests).
    pub fn with_transient_at(mut self, epoch: u64) -> JobSpec {
        self.inject_transient_at = Some(epoch);
        self
    }
}

/// Admission rejection: the service is at capacity and queueing this
/// job would break the latency bound for everyone already admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Jobs queued at rejection time.
    pub queued: usize,
    /// Queued cost plus the rejected job's cost.
    pub projected_cost: u64,
    /// The shed budget the projection exceeded (or `0` when the queue
    /// depth, not the cost budget, was the binding limit).
    pub budget: u64,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "overloaded: {} queued, projected cost {} over budget {}",
            self.queued, self.projected_cost, self.budget
        )
    }
}

impl std::error::Error for Overloaded {}

/// Terminal state of an admitted job. Every admitted job reaches
/// exactly one of these (shed jobs never get a handle — `submit`
/// returns `Err(Overloaded)` instead).
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job ran to completion (possibly after retries).
    Completed {
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
        /// Final scalar environment.
        env: Vec<f64>,
        /// Order-independent digest over `env` and every root-region
        /// field value — two runs with equal digests produced
        /// bit-identical results.
        digest: u64,
        /// Shards the job actually ran on (post-degradation).
        shards: usize,
        /// This job's own executor trace, present when the service ran
        /// with scoped per-job tracing
        /// ([`ServiceConfig::trace_jobs`](crate::ServiceConfig::trace_jobs)).
        /// Records only the *successful* attempt — failed attempts'
        /// recorders are discarded so retries cannot pollute the
        /// certified record.
        trace: Option<std::sync::Arc<regent_trace::Trace>>,
    },
    /// Cancelled cooperatively: deadline budget exhausted or an
    /// explicit supervisor cancel.
    Cancelled {
        /// Structured diagnostic from the cancellation unwind.
        reason: String,
    },
    /// The job failed permanently (a non-retryable panic, or its retry
    /// budget ran dry); its worker pool was recycled.
    Quarantined {
        /// The panic message that condemned it.
        error: String,
    },
}

impl JobOutcome {
    /// Whether the job completed (with or without retries).
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }

    /// Attempts consumed, when completed.
    pub fn attempts(&self) -> Option<u32> {
        match self {
            JobOutcome::Completed { attempts, .. } => Some(*attempts),
            _ => None,
        }
    }

    /// The result digest, when completed.
    pub fn digest(&self) -> Option<u64> {
        match self {
            JobOutcome::Completed { digest, .. } => Some(*digest),
            _ => None,
        }
    }

    /// This job's scoped executor trace, when completed under
    /// per-job tracing.
    pub fn trace(&self) -> Option<&regent_trace::Trace> {
        match self {
            JobOutcome::Completed { trace, .. } => trace.as_deref(),
            _ => None,
        }
    }
}

pub(crate) type Shared = Arc<(Mutex<Option<JobOutcome>>, Condvar)>;

/// A client's handle on an admitted job.
#[derive(Clone)]
pub struct JobHandle {
    /// Service-assigned job id (unique per service instance; also the
    /// `job` field of this job's trace events).
    pub job: u64,
    pub(crate) shared: Shared,
}

impl JobHandle {
    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        let (m, cv) = &*self.shared;
        let mut g = m.lock().expect("job outcome poisoned");
        while g.is_none() {
            g = cv.wait(g).expect("job outcome poisoned");
        }
        g.clone().unwrap()
    }

    /// The outcome if the job already finished, without blocking.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.shared.0.lock().expect("job outcome poisoned").clone()
    }
}
