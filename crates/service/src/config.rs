//! Service tuning knobs, each with a `REGENT_SERVE_*` environment
//! override so deployments (and the CI soak job) can reshape the
//! service without recompiling.

use regent_fault::{FaultPlan, RetryBackoff};
use regent_trace::Tracer;
use std::sync::Arc;
use std::time::Duration;

/// Everything a [`Service`](crate::Service) needs to know at start-up.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (`REGENT_SERVE_WORKERS`,
    /// default 2). Each worker runs one job at a time.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before admission rejects
    /// with [`Overloaded`](crate::Overloaded) (`REGENT_SERVE_QUEUE`,
    /// default 16).
    pub queue_depth: usize,
    /// Cost budget: a job is shed when the queued cost plus its own
    /// [`cost`](crate::JobSpec::cost) would exceed this
    /// (`REGENT_SERVE_SHED_BUDGET`, default 256 cost units).
    pub shed_budget: u64,
    /// Per-job wall-clock deadline measured from *admission* and
    /// spanning all retry attempts (`REGENT_SERVE_DEADLINE_MS`,
    /// default none; `0` also means none).
    pub deadline: Option<Duration>,
    /// Retry schedule for transient failures; delays are seeded
    /// per-(job, attempt) so reruns are reproducible.
    pub retry: RetryBackoff,
    /// Initial per-tenant shard allocation cap
    /// (`REGENT_SERVE_SHARDS`, default 4). A job asking for more
    /// shards than its tenant's current cap runs at the cap.
    pub shard_cap: usize,
    /// Sheds a tenant absorbs before its shard cap is halved, floor 1
    /// (`REGENT_SERVE_DEGRADE`, default 0 = degradation off).
    pub degrade_after: u32,
    /// Seed for fault injection (`REGENT_FAULT_SEED`): arms seeded
    /// in-run crash schedules for SPMD/log jobs and supervisor-level
    /// transient faults on a deterministic ~25% of first attempts.
    pub fault_seed: Option<u64>,
    /// Checkpoint cadence handed to resilient executors (epochs).
    pub checkpoint_interval: u64,
    /// Live shard failover: `Some(max)` routes SPMD/log/hybrid jobs
    /// through the elastic-membership drivers, surviving up to `max`
    /// shard losses per job by shrinking membership and reconstructing
    /// survivors from the last checkpoint (`REGENT_FAILOVER` enables,
    /// `REGENT_FAILOVER_MAX` sets the budget, default 1). `None` keeps
    /// the classic fail-stop executors.
    pub failover: Option<u32>,
    /// Trace sink for `Job*` supervisor events and executor spans.
    /// Use [`Tracer::disabled`] when no trace is wanted.
    pub tracer: Arc<Tracer>,
    /// Scoped per-job tracing: when set, each attempt runs its
    /// executor under a private recorder, and the successful attempt's
    /// trace rides back on
    /// [`JobOutcome::Completed`](crate::JobOutcome::Completed) —
    /// independently Spy-certifiable even when jobs interleave.
    pub trace_jobs: bool,
    /// Directory per-job traces are dumped to as
    /// `tenant<t>-job<id>-<strategy>.trace.json`
    /// (`REGENT_SERVE_TRACE_DIR`; setting it implies
    /// [`trace_jobs`](Self::trace_jobs)). `None` keeps traces
    /// in-memory only.
    pub trace_dir: Option<std::path::PathBuf>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl ServiceConfig {
    /// Defaults suitable for tests: small pool, generous budgets, no
    /// deadline, no fault injection, tracing off.
    pub fn new() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            shed_budget: 256,
            deadline: None,
            retry: RetryBackoff::default(),
            shard_cap: 4,
            degrade_after: 0,
            fault_seed: None,
            checkpoint_interval: 2,
            failover: None,
            tracer: Tracer::disabled(),
            trace_jobs: false,
            trace_dir: None,
        }
    }

    /// Reads every `REGENT_SERVE_*` knob (and `REGENT_FAULT_SEED`,
    /// `REGENT_FAILOVER`, `REGENT_FAILOVER_MAX`)
    /// from the environment on top of [`ServiceConfig::new`].
    pub fn from_env() -> ServiceConfig {
        let base = ServiceConfig::new();
        let deadline_ms = env_u64("REGENT_SERVE_DEADLINE_MS", 0);
        let trace_dir = std::env::var_os("REGENT_SERVE_TRACE_DIR")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from);
        ServiceConfig {
            trace_jobs: trace_dir.is_some(),
            trace_dir,
            workers: env_u64("REGENT_SERVE_WORKERS", base.workers as u64).max(1) as usize,
            queue_depth: env_u64("REGENT_SERVE_QUEUE", base.queue_depth as u64) as usize,
            shed_budget: env_u64("REGENT_SERVE_SHED_BUDGET", base.shed_budget),
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            shard_cap: env_u64("REGENT_SERVE_SHARDS", base.shard_cap as u64).max(1) as usize,
            degrade_after: env_u64("REGENT_SERVE_DEGRADE", 0) as u32,
            fault_seed: FaultPlan::seed_from_env(),
            failover: regent_runtime::failover_enabled()
                .then(|| env_u64("REGENT_FAILOVER_MAX", 1) as u32),
            ..base
        }
    }

    /// Builder-style tracer override.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> ServiceConfig {
        self.tracer = tracer;
        self
    }

    /// Builder-style scoped per-job tracing (see
    /// [`trace_jobs`](Self::trace_jobs)).
    pub fn with_job_tracing(mut self) -> ServiceConfig {
        self.trace_jobs = true;
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServiceConfig::new();
        assert!(c.workers >= 1);
        assert!(c.queue_depth > 0);
        assert!(c.deadline.is_none());
        assert!(c.fault_seed.is_none());
    }
}
