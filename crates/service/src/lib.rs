//! `regent-serve` — a long-running job supervisor over the executor
//! family.
//!
//! Everything below this crate executes *one* control program and
//! returns; a deployment runs *many*, from mutually distrustful
//! tenants, on a machine with finite shards. This crate is the layer
//! in between: a [`Service`] admits jobs (any app over any of the six
//! execution strategies) into a bounded queue, schedules them fairly
//! across a worker pool, and wraps every run in a robustness
//! envelope so that one tenant's misfortune — a deadline overrun, a
//! transient fault, even a panicking kernel — never leaks into
//! another tenant's results.
//!
//! # Admission control and load shedding
//!
//! [`Service::submit`] is the only entry point and it can say no: a
//! job is rejected with [`Overloaded`] when the queue is at depth or
//! when the *projected cost* (queued cost + the new job's
//! [`JobSpec::cost`]) exceeds the shed budget. Rejecting at the door
//! keeps queueing delay bounded — the alternative, an unbounded queue,
//! converts overload into unbounded latency for everyone (including
//! jobs that would have met their deadlines).
//!
//! # Fairness and isolation
//!
//! Each tenant gets its own FIFO; workers pick the next job by
//! round-robin over tenants with queued work, so a tenant flooding the
//! queue delays itself, not its neighbours. Isolation of mutable state
//! is by construction: every attempt builds a fresh `Program`/`Store`
//! pair from the job's factory (region forests are never shared), and
//! memoization caches are per-tenant.
//!
//! # The robustness envelope
//!
//! Every attempt runs under `catch_unwind` with a [`CancelToken`](regent_runtime::CancelToken)
//! threaded through the executor's epoch boundary. The unwind message
//! is classified by `regent_fault::classify_failure`:
//!
//! * **Cancelled** (deadline budget exhausted, explicit cancel) — the
//!   job ends [`JobOutcome::Cancelled`]. The deadline is fixed at
//!   admission, so retries spend the *same* budget, not a fresh one.
//! * **Transient** (injected fault, likely-deadlock diagnostics) — the
//!   job is retried with seeded exponential backoff. SPMD jobs hand a
//!   shared [`RescueSlot`](regent_runtime::RescueSlot) to every
//!   attempt, so a retry fast-forwards to the last committed
//!   checkpoint instead of recomputing from scratch.
//! * **Permanent** (a genuine bug) — the job is quarantined
//!   ([`JobOutcome::Quarantined`]) and the worker that ran it recycles
//!   itself: it spawns a replacement thread and exits, so any state a
//!   foreign panic may have poisoned dies with it.
//!
//! Sustained pressure degrades gracefully: after a configurable number
//! of sheds, a tenant's shard allocation is halved (floor 1), trading
//! that tenant's parallelism for everyone's admission rate.
//!
//! # Observability
//!
//! Counters and queue-wait timers land on the global
//! [`metrics`](regent_runtime::metrics) registry (exported via
//! `REGENT_METRICS`, scrapeable live via `REGENT_METRICS_ADDR`);
//! `JobAdmit`/`JobShed`/`JobRetry`/`JobDegrade` trace events are
//! recorded when the service is built with an enabled tracer, and
//! `regent-prof` renders them as a per-tenant service summary plus a
//! `queue_wait` blame row.
//!
//! With scoped per-job tracing
//! ([`ServiceConfig::trace_jobs`] / `REGENT_SERVE_TRACE_DIR`), each
//! attempt additionally runs its executor under a private recorder:
//! every completed job carries its own independently Spy-certifiable
//! trace on [`JobOutcome::Completed`], even when jobs of different
//! apps and strategies interleave on the pool. Completions and sheds
//! feed the live telemetry plane ([`regent_runtime::live`]) for
//! sliding-window p50/p99 and SLO burn-rate gauges, and job milestones
//! are noted on the crash-surviving flight recorder
//! ([`regent_trace::flight`]), which dumps a certifiable black box on
//! every Permanent failure.

mod config;
mod job;
pub mod jobs;
mod supervisor;

pub use config::ServiceConfig;
pub use job::{JobHandle, JobOutcome, JobSpec, Overloaded, ProgramFactory, Strategy};
pub use supervisor::{digest_store, Service, ServiceStats};
