//! Prefabricated job specs over the evaluation applications, sized so
//! a job completes in tens of milliseconds — the scale the service
//! tests and the `fig_service` closed-loop bench drive thousands of.

use crate::job::{JobSpec, ProgramFactory, Strategy};
use regent_apps::{circuit, pennant, stencil};
use regent_ir::Store;
use std::sync::Arc;

/// Factory for a small PRK stencil (bit-exact across all six
/// strategies — no reduction reassociation).
pub fn stencil_factory(n: u64, steps: u64) -> ProgramFactory {
    Arc::new(move || {
        let cfg = stencil::StencilConfig {
            n,
            ntx: 2,
            nty: 2,
            radius: 2,
            steps,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    })
}

/// A stencil job (cost scales with steps).
pub fn stencil_job(tenant: u32, strategy: Strategy, shards: usize) -> JobSpec {
    JobSpec::new(
        tenant,
        format!("stencil/{}", strategy.label()),
        strategy,
        shards,
        8,
        stencil_factory(24, 6),
    )
}

/// Factory for a small circuit simulation (seeded graph).
pub fn circuit_factory(seed: u64) -> ProgramFactory {
    Arc::new(move || {
        let cfg = circuit::CircuitConfig {
            pieces: 3,
            nodes_per_piece: 12,
            wires_per_piece: 30,
            cross_fraction: 0.12,
            steps: 3,
            substeps: 3,
            seed,
        };
        let g = circuit::generate_graph(&cfg);
        let (prog, h) = circuit::circuit_program(cfg, &g);
        let mut store = Store::new(&prog);
        circuit::init_circuit(&prog, &mut store, &h, &g);
        (prog, store)
    })
}

/// A circuit job.
pub fn circuit_job(tenant: u32, strategy: Strategy, shards: usize) -> JobSpec {
    JobSpec::new(
        tenant,
        format!("circuit/{}", strategy.label()),
        strategy,
        shards,
        12,
        circuit_factory(7),
    )
}

/// Factory for a small PENNANT hydrodynamics run.
pub fn pennant_factory() -> ProgramFactory {
    Arc::new(|| {
        let cfg = pennant::PennantConfig {
            nzx: 8,
            nzy: 4,
            pieces: 2,
            tstop: 2e-2,
            dtmax: 2e-2,
        };
        let mesh = pennant::build_mesh(&cfg);
        let (prog, h) = pennant::pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    })
}

/// A PENNANT job.
pub fn pennant_job(tenant: u32, strategy: Strategy, shards: usize) -> JobSpec {
    JobSpec::new(
        tenant,
        format!("pennant/{}", strategy.label()),
        strategy,
        shards,
        10,
        pennant_factory(),
    )
}
