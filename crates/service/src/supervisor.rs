//! The supervisor proper: bounded admission, per-tenant fair
//! dispatch, and the robustness envelope each attempt runs inside.
//!
//! ## Threading model
//!
//! One scheduler mutex guards the tenant map and the queue accounting;
//! workers block on a condvar when idle and the service blocks on a
//! second condvar during drain-shutdown. Jobs execute *outside* the
//! lock — the lock is held only to pick/queue work, so admission stays
//! responsive while every worker is busy.
//!
//! ## Scoped per-job recorders
//!
//! Concurrent jobs would interleave events on identically-named shard
//! tracks if they shared one recorder, which breaks the happens-before
//! certification the profiler relies on. The service therefore splits
//! the trace plane in two: the configured service tracer records only
//! `Job*` events (admission spans carrying queue wait, sheds, retries,
//! degradations), while each *attempt* of each job runs its executor
//! under a private [`Tracer`] of its own. Only the successful
//! attempt's recorder survives — failed attempts are discarded, the
//! same discipline the failover driver applies to its inner per-attempt
//! tracers — so every completed job carries an independently
//! Spy-certifiable trace on
//! [`JobOutcome::Completed`](crate::JobOutcome), no matter how many
//! neighbours ran beside it. With
//! [`trace_dir`](crate::ServiceConfig::trace_dir) set
//! (`REGENT_SERVE_TRACE_DIR`), each trace is also dumped as
//! `tenant<t>-job<id>-<strategy>.trace.json`.
//!
//! Completions and sheds additionally feed the live telemetry plane
//! ([`regent_runtime::live`]) for sliding-window latency/goodput
//! gauges, and job milestones are noted on the always-on flight
//! recorder ([`regent_trace::flight`]) so a Permanent failure dumps a
//! certifiable black box even on otherwise untraced runs.

use crate::config::ServiceConfig;
use crate::job::{JobHandle, JobOutcome, JobSpec, Overloaded, Shared, Strategy};
use regent_cr::hybrid::replicate_ranges;
use regent_cr::{control_replicate, CrOptions};
use regent_fault::splitmix64;
use regent_ir::{interp, Store};
use regent_region::{FieldType, RegionForest, RegionId};
use regent_runtime::live::live;
use regent_runtime::metrics::{self, Counter, Timer};
use regent_runtime::{
    classify_failure, execute_hybrid_failover_traced, execute_hybrid_resilient_traced,
    execute_implicit, execute_log_failover_traced, execute_log_resilient_traced,
    execute_spmd_failover_traced, execute_spmd_resilient_traced, CancelToken, FailoverOptions,
    FailureClass, FaultPlan, HybridRescue, ImplicitOptions, MemoCache, RescueSlot,
    ResilienceOptions, CANCEL_PREFIX,
};
use regent_trace::flight::flight;
use regent_trace::{export_native, EventKind, Trace, TraceBuf, Tracer};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An admitted job waiting for a worker.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    /// Tracer-clock timestamp at admission (0 when tracing is off).
    submitted_ts: u64,
    /// Wall clock at admission, for queue-wait metrics.
    submitted_at: Instant,
    /// Absolute deadline, fixed at admission and spanning retries.
    deadline_at: Option<Instant>,
    shared: Shared,
}

/// Per-tenant scheduler state: the isolation and fairness domain.
struct TenantState {
    /// Current shard allocation cap (halved under sustained shedding).
    shard_cap: usize,
    /// Sheds since the last degradation step.
    sheds: u32,
    /// This tenant's private epoch-memoization cache.
    memo: Arc<Mutex<MemoCache>>,
    queue: VecDeque<QueuedJob>,
}

struct Sched {
    tenants: BTreeMap<u32, TenantState>,
    queued: usize,
    queued_cost: u64,
    /// Last tenant served; the next pick is the smallest tenant id
    /// strictly greater (wrapping), giving round-robin over tenants.
    rr_cursor: u32,
    shutdown: bool,
    live_workers: usize,
}

/// Monotonic service counters (also mirrored onto the global metrics
/// registry; these exist so tests can assert without cross-test
/// interference on the process-global registry).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted by admission control.
    pub admitted: u64,
    /// Jobs rejected with [`Overloaded`].
    pub shed: u64,
    /// Jobs that reached [`JobOutcome::Completed`].
    pub completed: u64,
    /// Jobs that reached [`JobOutcome::Cancelled`].
    pub cancelled: u64,
    /// Jobs that reached [`JobOutcome::Quarantined`].
    pub quarantined: u64,
    /// Retry attempts across all jobs.
    pub retried: u64,
    /// Degradation steps (tenant shard-cap halvings).
    pub degraded: u64,
}

#[derive(Default)]
struct AtomicStats {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    quarantined: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
}

struct State {
    cfg: ServiceConfig,
    sched: Mutex<Sched>,
    /// Workers wait here for queued work (or shutdown).
    work_cv: Condvar,
    /// `shutdown` waits here for the last worker to exit.
    drain_cv: Condvar,
    /// Submit-side trace events (sheds, degradations) — submissions
    /// come from arbitrary client threads, so the buffer is shared.
    submit_buf: Mutex<TraceBuf>,
    stats: AtomicStats,
    next_job: AtomicU64,
    next_worker: AtomicU64,
}

/// A running job supervisor. Dropping the handle abandons the workers;
/// call [`Service::shutdown`] for a drained, clean stop.
pub struct Service {
    state: Arc<State>,
}

/// Installs (once per process) a panic hook that swallows the default
/// stderr report for *expected* supervised unwinds — deadline cancels
/// and injected transient faults are control flow here, not crashes.
/// Permanent failures (the quarantine path) still report normally, and
/// dump the flight-recorder black box (`REGENT_FLIGHT_DIR`) before the
/// unwind leaves the panic site — the post-mortem survives even if the
/// process dies before reaching the quarantine path.
fn install_quiet_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| classify_failure(m) != FailureClass::Permanent);
            if !expected {
                flight().note("flight", EventKind::Mark { name: "panic" });
                flight().dump_env("panic", Some(&metrics::global().to_json()));
                prev(info);
            }
        }));
    });
}

impl Service {
    /// Starts the worker pool and returns the submission handle.
    pub fn start(cfg: ServiceConfig) -> Service {
        install_quiet_hook();
        let tracer = Arc::clone(&cfg.tracer);
        let workers = cfg.workers.max(1);
        let state = Arc::new(State {
            sched: Mutex::new(Sched {
                tenants: BTreeMap::new(),
                queued: 0,
                queued_cost: 0,
                rr_cursor: u32::MAX,
                shutdown: false,
                live_workers: workers,
            }),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            submit_buf: Mutex::new(tracer.buffer("service")),
            stats: AtomicStats::default(),
            next_job: AtomicU64::new(1),
            next_worker: AtomicU64::new(0),
            cfg,
        });
        for _ in 0..workers {
            spawn_worker(&state);
        }
        Service { state }
    }

    /// Admits a job or sheds it with [`Overloaded`]. Admission is the
    /// only place load is rejected; once admitted, a job always
    /// reaches exactly one [`JobOutcome`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Overloaded> {
        let st = &self.state;
        let id = st.next_job.fetch_add(1, Ordering::Relaxed);
        let submitted_ts = st.submit_buf.lock().expect("submit buf poisoned").now();

        let mut g = st.sched.lock().expect("scheduler poisoned");
        assert!(!g.shutdown, "submit after shutdown");
        let s = &mut *g;
        let projected_cost = s.queued_cost.saturating_add(spec.cost);
        let over_depth = s.queued >= st.cfg.queue_depth;
        let over_cost = projected_cost > st.cfg.shed_budget;
        if over_depth || over_cost {
            let queued = s.queued;
            let tenant = tenant_entry(&mut s.tenants, spec.tenant, &st.cfg);
            tenant.sheds += 1;
            let mut degrade = None;
            if st.cfg.degrade_after > 0
                && tenant.sheds >= st.cfg.degrade_after
                && tenant.shard_cap > 1
            {
                let from = tenant.shard_cap as u32;
                tenant.shard_cap = (tenant.shard_cap / 2).max(1);
                tenant.sheds = 0;
                degrade = Some((from, tenant.shard_cap as u32));
            }
            drop(g);

            st.stats.shed.fetch_add(1, Ordering::Relaxed);
            let mut mh = metrics::global().handle("service-admission");
            mh.incr(Counter::JobsShed);
            live().record_shed(spec.tenant);
            let shed_event = EventKind::JobShed {
                job: id,
                tenant: spec.tenant,
                queued: queued as u32,
            };
            flight().note("service", shed_event);
            let mut tb = st.submit_buf.lock().expect("submit buf poisoned");
            tb.instant(shed_event);
            if let Some((from_shards, to_shards)) = degrade {
                st.stats.degraded.fetch_add(1, Ordering::Relaxed);
                mh.incr(Counter::JobsDegraded);
                let degrade_event = EventKind::JobDegrade {
                    tenant: spec.tenant,
                    from_shards,
                    to_shards,
                };
                flight().note("service", degrade_event);
                tb.instant(degrade_event);
            }
            return Err(Overloaded {
                queued,
                projected_cost,
                budget: if over_cost { st.cfg.shed_budget } else { 0 },
            });
        }

        let shared: Shared = Arc::new((Mutex::new(None), Condvar::new()));
        let deadline_at = st.cfg.deadline.map(|d| Instant::now() + d);
        let cost = spec.cost;
        let tenant_id = spec.tenant;
        tenant_entry(&mut s.tenants, tenant_id, &st.cfg)
            .queue
            .push_back(QueuedJob {
                id,
                spec,
                submitted_ts,
                submitted_at: Instant::now(),
                deadline_at,
                shared: Arc::clone(&shared),
            });
        s.queued += 1;
        s.queued_cost = s.queued_cost.saturating_add(cost);
        drop(g);

        st.stats.admitted.fetch_add(1, Ordering::Relaxed);
        st.work_cv.notify_one();
        Ok(JobHandle { job: id, shared })
    }

    /// Jobs currently queued (not running).
    pub fn queue_len(&self) -> usize {
        self.state.sched.lock().expect("scheduler poisoned").queued
    }

    /// A tenant's current shard cap (degradation-aware); `None` until
    /// the tenant has submitted at least once.
    pub fn tenant_shard_cap(&self, tenant: u32) -> Option<usize> {
        self.state
            .sched
            .lock()
            .expect("scheduler poisoned")
            .tenants
            .get(&tenant)
            .map(|t| t.shard_cap)
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.state.stats;
        ServiceStats {
            admitted: s.admitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            quarantined: s.quarantined.load(Ordering::Relaxed),
            retried: s.retried.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
        }
    }

    /// Drain-shutdown: stops admitting, lets workers finish everything
    /// queued, and returns once the pool has exited and all trace
    /// buffers have flushed (so `tracer.take()` sees every event).
    pub fn shutdown(self) {
        let st = &self.state;
        {
            let mut g = st.sched.lock().expect("scheduler poisoned");
            g.shutdown = true;
            st.work_cv.notify_all();
            while g.live_workers > 0 {
                g = st.drain_cv.wait(g).expect("scheduler poisoned");
            }
        }
        st.submit_buf.lock().expect("submit buf poisoned").flush();
    }
}

fn tenant_entry<'a>(
    tenants: &'a mut BTreeMap<u32, TenantState>,
    tenant: u32,
    cfg: &ServiceConfig,
) -> &'a mut TenantState {
    tenants.entry(tenant).or_insert_with(|| TenantState {
        shard_cap: cfg.shard_cap,
        sheds: 0,
        memo: MemoCache::shared(),
        queue: VecDeque::new(),
    })
}

fn spawn_worker(state: &Arc<State>) {
    let st = Arc::clone(state);
    let n = st.next_worker.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(format!("serve-worker-{n}"))
        .spawn(move || worker_loop(st, n))
        .expect("spawn service worker");
}

/// Round-robin pick across tenants with queued work. Returns the job
/// plus the tenant context it runs under (shard cap, memo cache) and
/// the post-pick queue depth.
#[allow(clippy::type_complexity)]
fn pick_fair(s: &mut Sched) -> Option<(QueuedJob, usize, Arc<Mutex<MemoCache>>, u32)> {
    let ready: Vec<u32> = s
        .tenants
        .iter()
        .filter(|(_, t)| !t.queue.is_empty())
        .map(|(&id, _)| id)
        .collect();
    let next = *ready
        .iter()
        .find(|&&t| t > s.rr_cursor)
        .or_else(|| ready.first())?;
    s.rr_cursor = next;
    let (job, cap, memo) = {
        let t = s.tenants.get_mut(&next).expect("ready tenant exists");
        let job = t.queue.pop_front().expect("ready tenant has work");
        (job, t.shard_cap, Arc::clone(&t.memo))
    };
    s.queued -= 1;
    s.queued_cost = s.queued_cost.saturating_sub(job.spec.cost);
    Some((job, cap, memo, s.queued as u32))
}

fn worker_loop(st: Arc<State>, n: u64) {
    let track = format!("serve-worker-{n}");
    let mut tb = st.cfg.tracer.buffer(&track);
    let mut mh = metrics::global().handle(&track);
    loop {
        let picked = {
            let mut g = st.sched.lock().expect("scheduler poisoned");
            loop {
                if let Some(p) = pick_fair(&mut g) {
                    break Some(p);
                }
                if g.shutdown {
                    break None;
                }
                g = st.work_cv.wait(g).expect("scheduler poisoned");
            }
        };
        let Some((job, shard_cap, memo, queued)) = picked else {
            tb.flush();
            let mut g = st.sched.lock().expect("scheduler poisoned");
            g.live_workers -= 1;
            st.drain_cv.notify_all();
            return;
        };

        let wait_end = tb.now();
        let admit_event = EventKind::JobAdmit {
            job: job.id,
            tenant: job.spec.tenant,
            queued,
        };
        flight().note("service", admit_event);
        tb.push(
            job.submitted_ts,
            wait_end.saturating_sub(job.submitted_ts),
            admit_event,
        );
        mh.incr(Counter::JobsAdmitted);
        mh.record_ns(
            Timer::QueueWaitNs,
            job.submitted_at.elapsed().as_nanos() as u64,
        );

        let outcome = run_supervised(&st, &job, shard_cap, &memo, &mut tb, &mut mh);
        let quarantined = matches!(outcome, JobOutcome::Quarantined { .. });
        match &outcome {
            JobOutcome::Completed { .. } => {
                st.stats.completed.fetch_add(1, Ordering::Relaxed);
                mh.incr(Counter::JobsCompleted);
                // Client-visible latency (queue wait + attempts) feeds
                // the sliding-window SLO gauges.
                live().record_completion(
                    job.spec.tenant,
                    job.spec.strategy.label(),
                    job.submitted_at.elapsed().as_nanos() as u64,
                );
            }
            JobOutcome::Cancelled { .. } => {
                st.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                flight().note(
                    "flight",
                    EventKind::Mark {
                        name: "job_cancelled",
                    },
                );
            }
            JobOutcome::Quarantined { .. } => {
                st.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                mh.incr(Counter::JobsQuarantined);
                // A Permanent failure is exactly what the black box
                // exists for: milestone + dump with the metrics state.
                flight().note(
                    "flight",
                    EventKind::Mark {
                        name: "job_quarantined",
                    },
                );
                flight().dump_env("job-quarantined", Some(&metrics::global().to_json()));
            }
        }
        deliver(&job.shared, outcome);
        tb.flush();
        // Publish this worker's buffered counters so a mid-run scrape
        // sees job totals that are at most one job stale, not held
        // back until the worker thread exits.
        mh.flush();

        if quarantined {
            // Recycle the pool slot: anything the foreign panic may
            // have left half-poisoned on this thread dies with it; the
            // replacement inherits the live-worker slot (spawned
            // before we exit, so drain-shutdown never undercounts).
            spawn_worker(&st);
            return;
        }
    }
}

fn deliver(shared: &Shared, outcome: JobOutcome) {
    let (m, cv) = &**shared;
    *m.lock().expect("job outcome poisoned") = Some(outcome);
    cv.notify_all();
}

/// The robustness envelope: retry loop, deadline accounting, failure
/// classification, rescue-slot plumbing.
fn run_supervised(
    st: &State,
    job: &QueuedJob,
    shard_cap: usize,
    memo: &Arc<Mutex<MemoCache>>,
    tb: &mut TraceBuf,
    mh: &mut metrics::MetricsHandle,
) -> JobOutcome {
    let cfg = &st.cfg;
    let spec = &job.spec;
    let shards = spec.shards.clamp(1, shard_cap.max(1));
    // Supervisor-level transient injection: explicit hook first, else
    // a seeded ~25% of jobs fault at a seeded epoch — on the first
    // attempt only (re-arming the same epoch would defeat every
    // retry).
    let inject = spec.inject_transient_at.or_else(|| {
        cfg.fault_seed.and_then(|seed| {
            let h = splitmix64(seed ^ splitmix64(job.id));
            h.is_multiple_of(4).then(|| 1 + ((h >> 8) % 3))
        })
    });
    // The rescue slots are shared across attempts so a retry resumes
    // from the last committed checkpoint: one slot for SPMD jobs, one
    // slot per replicated segment for hybrid jobs. The shared-log
    // executor retries from scratch — its sequencer cannot re-derive
    // consumed `AllReduce` feedback.
    let rescue = matches!(spec.strategy, Strategy::Spmd).then(|| Arc::new(RescueSlot::new(shards)));
    let hybrid_rescue =
        matches!(spec.strategy, Strategy::Hybrid).then(|| Arc::new(HybridRescue::new()));
    // Live failover: survive shard deaths inside an attempt by
    // shrinking membership instead of burning a supervisor retry.
    let failover = cfg.failover.map(|max_failovers| FailoverOptions {
        max_failovers,
        min_shards: 1,
    });

    let mut attempt: u32 = 0;
    loop {
        let budget = match job.deadline_at {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return JobOutcome::Cancelled {
                        reason: format!(
                            "{CANCEL_PREFIX}: deadline budget exhausted before attempt {}",
                            attempt + 1
                        ),
                    };
                }
                Some(d - now)
            }
            None => None,
        };
        let transient = if attempt == 0 { inject } else { None };
        let token = CancelToken::with_budget_and_transient(budget, transient);
        // Each attempt records into its own scoped tracer: a failed
        // attempt's events are discarded with it (same discipline as
        // the failover driver's inner tracers), so the trace delivered
        // with the outcome certifies exactly the run that produced the
        // result.
        let job_tracer = if cfg.trace_jobs {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_once(
                cfg,
                spec,
                job.id,
                shards,
                &token,
                transient,
                rescue.as_ref(),
                hybrid_rescue.as_deref(),
                failover.as_ref(),
                memo,
                &job_tracer,
            )
        }));
        match run {
            Ok((env, digest, final_shards)) => {
                let trace = cfg
                    .trace_jobs
                    .then(|| Arc::new(job_tracer.take()))
                    .inspect(|t| dump_job_trace(cfg, spec, job.id, t));
                return JobOutcome::Completed {
                    attempts: attempt + 1,
                    env,
                    digest,
                    shards: final_shards,
                    trace,
                };
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                match classify_failure(&msg) {
                    FailureClass::Cancelled => return JobOutcome::Cancelled { reason: msg },
                    FailureClass::Transient if cfg.retry.may_retry(attempt) => {
                        attempt += 1;
                        st.stats.retried.fetch_add(1, Ordering::Relaxed);
                        mh.incr(Counter::JobsRetried);
                        let retry_event = EventKind::JobRetry {
                            job: job.id,
                            tenant: spec.tenant,
                            attempt,
                        };
                        flight().note("service", retry_event);
                        tb.instant(retry_event);
                        let delay =
                            cfg.retry
                                .delay_ms(cfg.fault_seed.unwrap_or(0), job.id, attempt - 1);
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                    FailureClass::Transient => {
                        return JobOutcome::Quarantined {
                            error: format!("retry budget exhausted: {msg}"),
                        }
                    }
                    FailureClass::Permanent => return JobOutcome::Quarantined { error: msg },
                }
            }
        }
    }
}

/// Writes a completed job's scoped trace to the configured dump
/// directory. Write failures are reported, never fatal — losing a
/// trace artifact must not fail the job that produced it.
fn dump_job_trace(cfg: &ServiceConfig, spec: &JobSpec, job_id: u64, trace: &Trace) {
    let Some(dir) = &cfg.trace_dir else { return };
    let path = dir.join(format!(
        "tenant{}-job{}-{}.trace.json",
        spec.tenant,
        job_id,
        spec.strategy.label()
    ));
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, export_native(trace)))
    {
        eprintln!("regent-serve: cannot write {}: {e}", path.display());
    }
}

/// One attempt: build the program fresh (isolation by construction)
/// and run it under the requested strategy, recording executor events
/// onto this attempt's scoped `tracer`. Returns the final scalar
/// environment, the result digest, and the final shard membership
/// (smaller than `shards` when live failover shrank the run).
#[allow(clippy::too_many_arguments)]
fn run_once(
    cfg: &ServiceConfig,
    spec: &JobSpec,
    job_id: u64,
    shards: usize,
    token: &CancelToken,
    transient: Option<u64>,
    rescue: Option<&Arc<RescueSlot>>,
    hybrid_rescue: Option<&HybridRescue>,
    failover: Option<&FailoverOptions>,
    memo: &Arc<Mutex<MemoCache>>,
    tracer: &Arc<Tracer>,
) -> (Vec<f64>, u64, usize) {
    let (prog, mut store) = (spec.factory)();
    let roots = prog.root_regions();
    // In-run seeded crash schedule (recovered by checkpoints inside
    // the executor — distinct from the supervisor-level transient,
    // which kills the whole attempt). Under live failover, shard-kill
    // schedules from `REGENT_KILL` / `REGENT_KILL_SEED` ride along so
    // deployments can drive chaos soaks through the service.
    let mut plan = cfg
        .fault_seed
        .map(|s| FaultPlan::seeded_crash(splitmix64(s ^ job_id), shards, 4))
        .unwrap_or_default();
    if failover.is_some() {
        if let Some(kills) = FaultPlan::kills_from_env(shards) {
            plan.events.extend(kills.events);
        }
    }
    match spec.strategy {
        Strategy::Sequential | Strategy::Implicit | Strategy::MemoImplicit => {
            // These executors have no epoch-boundary hook: surface the
            // injected transient (and any already-fired deadline) at
            // the attempt boundary. Deadline granularity is therefore
            // the whole attempt for these strategies.
            token.check_boundary(0, transient.unwrap_or(u64::MAX));
            match spec.strategy {
                Strategy::Sequential => {
                    let (env, _) = interp::run(&prog, &mut store);
                    let digest = digest_store(&prog.forest, &store, &roots, &env);
                    (env, digest, shards)
                }
                Strategy::Implicit => {
                    let mut opts = ImplicitOptions::with_workers(shards);
                    opts.tracer = Arc::clone(tracer);
                    let (env, _) = execute_implicit(&prog, &mut store, opts);
                    let digest = digest_store(&prog.forest, &store, &roots, &env);
                    (env, digest, shards)
                }
                Strategy::MemoImplicit => {
                    let mut opts =
                        ImplicitOptions::with_workers(shards).with_memo(Arc::clone(memo));
                    opts.tracer = Arc::clone(tracer);
                    let (env, _) = execute_implicit(&prog, &mut store, opts);
                    let digest = digest_store(&prog.forest, &store, &roots, &env);
                    (env, digest, shards)
                }
                _ => unreachable!(),
            }
        }
        Strategy::Hybrid => {
            // Sequential segments have no epoch-boundary hook, so the
            // injected transient still surfaces at the attempt
            // boundary; replicated segments check the token (and the
            // deadline) at their own epoch boundaries.
            token.check_boundary(0, transient.unwrap_or(u64::MAX));
            let mut hybrid =
                replicate_ranges(prog, &CrOptions::new(shards)).expect("replicate_ranges");
            let opts = ResilienceOptions {
                checkpoint_interval: cfg.checkpoint_interval,
                plan,
                cancel: Some(token.clone()),
                ..ResilienceOptions::default()
            };
            if let Some(fo) = failover {
                let r = execute_hybrid_failover_traced(&mut hybrid, &mut store, &opts, fo, tracer);
                let digest = digest_store(&hybrid.base.forest, &store, &roots, &r.run.env);
                (r.run.env, digest, r.final_shards)
            } else {
                let r = execute_hybrid_resilient_traced(
                    &hybrid,
                    &mut store,
                    &opts,
                    hybrid_rescue,
                    tracer,
                );
                let digest = digest_store(&hybrid.base.forest, &store, &roots, &r.env);
                (r.env, digest, shards)
            }
        }
        Strategy::Spmd => {
            let mut spmd =
                control_replicate(prog, &CrOptions::new(shards)).expect("control_replicate");
            let opts = ResilienceOptions {
                checkpoint_interval: cfg.checkpoint_interval,
                plan,
                cancel: Some(token.clone()),
                rescue: rescue.map(Arc::clone),
                ..ResilienceOptions::default()
            };
            if let Some(fo) = failover {
                let r = execute_spmd_failover_traced(&mut spmd, &mut store, &opts, fo, tracer);
                let digest = digest_store(&spmd.forest, &store, &roots, &r.run.env);
                (r.run.env, digest, r.final_shards)
            } else {
                let r = execute_spmd_resilient_traced(&spmd, &mut store, &opts, tracer);
                let digest = digest_store(&spmd.forest, &store, &roots, &r.env);
                (r.env, digest, shards)
            }
        }
        Strategy::Log => {
            let mut spmd =
                control_replicate(prog, &CrOptions::new(shards)).expect("control_replicate");
            let opts = ResilienceOptions {
                checkpoint_interval: cfg.checkpoint_interval,
                plan,
                cancel: Some(token.clone()),
                ..ResilienceOptions::default()
            };
            if let Some(fo) = failover {
                let r = execute_log_failover_traced(&mut spmd, &mut store, &opts, fo, tracer);
                let digest = digest_store(&spmd.forest, &store, &roots, &r.run.env);
                (r.run.env, digest, r.final_shards)
            } else {
                let r = execute_log_resilient_traced(&spmd, &mut store, &opts, tracer);
                let digest = digest_store(&spmd.forest, &store, &roots, &r.env);
                (r.env, digest, shards)
            }
        }
    }
}

/// Order-dependent digest over the scalar environment and every root
/// region's field contents (exact f64 bit patterns). Equal digests on
/// runs of the same program ⇒ bit-identical results; used to assert
/// tenant isolation (a neighbour's panic must not perturb results).
pub fn digest_store(forest: &RegionForest, store: &Store, roots: &[RegionId], env: &[f64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &v in env {
        h = splitmix64(h ^ v.to_bits());
    }
    for &root in roots {
        let inst = store.instance_in(forest, root);
        for (fid, def) in forest.fields(root).iter() {
            for p in forest.domain(root).iter() {
                let bits = match def.ty {
                    FieldType::F64 => inst.read_f64(fid, p).to_bits(),
                    FieldType::I64 => inst.read_i64(fid, p) as u64,
                };
                h = splitmix64(h ^ bits);
            }
        }
    }
    h
}

/// Best-effort panic-payload message extraction (the executor stack
/// panics with `String` diagnostics; `&str` covers bare `panic!`s).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "opaque panic payload".to_string()
    }
}
