//! Task declarations and the kernel execution context.
//!
//! A Regent task declares *privileges* on its region parameters (§2.1):
//! read, read-write, or reduce with an associative-commutative operator.
//! Privileges are **strict** (§2.1): "any reads or writes to elements of
//! a region must conform to the privileges specified by the task", which
//! is what lets control replication analyze programs at the granularity
//! of task launches without looking inside task bodies. We enforce
//! strictness dynamically: every kernel data access goes through
//! [`TaskCtx`], which panics on a privilege violation.

use regent_geometry::{Domain, DynPoint};
use regent_region::{FieldId, Instance, ReductionOp};
use std::fmt;
use std::sync::Arc;

/// Identifier of a task declaration within a program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The privilege a task holds on one region parameter.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Privilege {
    /// `reads(r)` — the task may only read.
    Read,
    /// `reads writes(r)` — the task may read and write.
    ReadWrite,
    /// `reduces op(r)` — the task may only apply `op`-folds.
    Reduce(ReductionOp),
}

impl Privilege {
    /// True when the privilege permits mutation of any kind.
    pub fn mutates(&self) -> bool {
        !matches!(self, Privilege::Read)
    }

    /// True when two privileges on overlapping data still commute
    /// (Regent's "compatible privileges": both read, or both reduce
    /// with the same operator).
    pub fn compatible(&self, other: &Privilege) -> bool {
        match (self, other) {
            (Privilege::Read, Privilege::Read) => true,
            (Privilege::Reduce(a), Privilege::Reduce(b)) => a == b,
            _ => false,
        }
    }
}

/// One region parameter of a task declaration.
#[derive(Clone, Debug)]
pub struct RegionParam {
    /// Privilege the task holds on this parameter.
    pub privilege: Privilege,
    /// The fields the task touches through this parameter.
    pub fields: Vec<FieldId>,
}

impl RegionParam {
    /// Shorthand for a read-only parameter.
    pub fn read(fields: &[FieldId]) -> Self {
        RegionParam {
            privilege: Privilege::Read,
            fields: fields.to_vec(),
        }
    }

    /// Shorthand for a read-write parameter.
    pub fn read_write(fields: &[FieldId]) -> Self {
        RegionParam {
            privilege: Privilege::ReadWrite,
            fields: fields.to_vec(),
        }
    }

    /// Shorthand for a reduction parameter.
    pub fn reduce(op: ReductionOp, fields: &[FieldId]) -> Self {
        RegionParam {
            privilege: Privilege::Reduce(op),
            fields: fields.to_vec(),
        }
    }
}

/// The kernel function type: the body of a leaf task.
///
/// Kernels see only their [`TaskCtx`]; they cannot name regions,
/// partitions, or other tasks — exactly the "compile-time analysis need
/// not consider the code inside of a task" property of §2.1.
pub type KernelFn = Arc<dyn Fn(&mut TaskCtx<'_>) + Send + Sync>;

/// A task declaration: name, privileges, kernel, and a cost hint for
/// the machine simulator.
#[derive(Clone)]
pub struct TaskDecl {
    /// Human-readable task name.
    pub name: String,
    /// Region parameters with privileges.
    pub params: Vec<RegionParam>,
    /// Number of scalar (f64) arguments the task expects.
    pub num_scalar_args: usize,
    /// True when the task returns a scalar (consumed by scalar
    /// reductions, §4.4).
    pub returns_value: bool,
    /// The task body.
    pub kernel: KernelFn,
    /// Simulated compute cost per element of the first region argument,
    /// in arbitrary work units (the machine model multiplies by its
    /// per-unit time). Defaults to 1.0.
    pub cost_per_element: f64,
}

impl fmt::Debug for TaskDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskDecl")
            .field("name", &self.name)
            .field("params", &self.params)
            .field("num_scalar_args", &self.num_scalar_args)
            .field("returns_value", &self.returns_value)
            .field("cost_per_element", &self.cost_per_element)
            .finish_non_exhaustive()
    }
}

/// One bound region argument inside a running task: the argument's
/// domain, privilege, fields, and a raw handle to the backing instance.
///
/// The instance's domain may be a *superset* of the argument's domain
/// (the shared-memory implementation of §3 backs every subregion with
/// its root region's storage).
pub struct ArgSlot {
    /// The region argument's domain — the set of points the kernel may
    /// legally touch through this argument.
    pub domain: Domain,
    /// The privilege held.
    pub privilege: Privilege,
    /// The declared fields.
    pub fields: Vec<FieldId>,
    /// Raw pointer to the backing instance. The executor constructing
    /// the [`TaskCtx`] guarantees exclusivity for the kernel's duration.
    inst: *mut Instance,
}

impl ArgSlot {
    /// Creates a slot from a raw instance pointer.
    ///
    /// # Safety
    /// The caller must guarantee that `inst` outlives the [`TaskCtx`]
    /// and that no other thread accesses the instance with a
    /// conflicting privilege while the kernel runs. Multiple slots of
    /// the *same* kernel may alias one instance (kernels are
    /// single-threaded, and every access is mediated by `TaskCtx`
    /// methods that never hold two references at once).
    pub unsafe fn new(
        domain: Domain,
        privilege: Privilege,
        fields: Vec<FieldId>,
        inst: *mut Instance,
    ) -> Self {
        ArgSlot {
            domain,
            privilege,
            fields,
            inst,
        }
    }

    #[inline]
    fn inst(&self) -> &Instance {
        unsafe { &*self.inst }
    }

    #[allow(clippy::mut_from_ref)]
    #[inline]
    fn inst_mut(&self) -> &mut Instance {
        unsafe { &mut *self.inst }
    }
}

/// The execution context handed to a kernel: bound region arguments,
/// scalar arguments, the launch point, and an optional scalar return.
pub struct TaskCtx<'a> {
    slots: &'a mut [ArgSlot],
    /// Scalar arguments, in declaration order.
    pub scalars: &'a [f64],
    /// The point of this task in its index launch's launch domain
    /// (all-zero for single launches).
    pub launch_point: DynPoint,
    /// Scalar return value; kernels of `returns_value` tasks must set it.
    pub return_value: Option<f64>,
}

impl<'a> TaskCtx<'a> {
    /// Assembles a context. Executors are responsible for the aliasing
    /// guarantees documented on [`ArgSlot::new`].
    pub fn new(slots: &'a mut [ArgSlot], scalars: &'a [f64], launch_point: DynPoint) -> Self {
        TaskCtx {
            slots,
            scalars,
            launch_point,
            return_value: None,
        }
    }

    /// Number of region arguments.
    pub fn num_args(&self) -> usize {
        self.slots.len()
    }

    /// The domain of region argument `arg` — the set of points the
    /// kernel iterates over or may access.
    pub fn domain(&self, arg: usize) -> &Domain {
        &self.slots[arg].domain
    }

    /// The privilege held on argument `arg`.
    pub fn privilege(&self, arg: usize) -> Privilege {
        self.slots[arg].privilege
    }

    fn check_point(&self, arg: usize, p: DynPoint) {
        let slot = &self.slots[arg];
        assert!(
            slot.domain.contains(p),
            "task accessed {p:?} outside the domain of region argument {arg}"
        );
    }

    fn check_field(&self, arg: usize, field: FieldId) {
        let slot = &self.slots[arg];
        assert!(
            slot.fields.contains(&field),
            "task accessed undeclared field {field:?} of region argument {arg}"
        );
    }

    /// Reads an f64 field element.
    ///
    /// # Panics
    /// On privilege violation (reduce-only argument), out-of-domain
    /// point, or undeclared field.
    #[inline]
    pub fn read_f64(&self, arg: usize, field: FieldId, p: DynPoint) -> f64 {
        self.check_read(arg, field, p);
        self.slots[arg].inst().read_f64(field, p)
    }

    /// Reads an i64 field element.
    #[inline]
    pub fn read_i64(&self, arg: usize, field: FieldId, p: DynPoint) -> i64 {
        self.check_read(arg, field, p);
        self.slots[arg].inst().read_i64(field, p)
    }

    #[inline]
    fn check_read(&self, arg: usize, field: FieldId, p: DynPoint) {
        if cfg!(debug_assertions) {
            self.check_point(arg, p);
            self.check_field(arg, field);
        }
        assert!(
            !matches!(self.slots[arg].privilege, Privilege::Reduce(_)),
            "read from reduce-only region argument {arg}"
        );
    }

    /// Writes an f64 field element.
    ///
    /// # Panics
    /// Unless the argument holds read-write privilege.
    #[inline]
    pub fn write_f64(&mut self, arg: usize, field: FieldId, p: DynPoint, v: f64) {
        self.check_write(arg, field, p);
        self.slots[arg].inst_mut().write_f64(field, p, v);
    }

    /// Writes an i64 field element.
    #[inline]
    pub fn write_i64(&mut self, arg: usize, field: FieldId, p: DynPoint, v: i64) {
        self.check_write(arg, field, p);
        self.slots[arg].inst_mut().write_i64(field, p, v);
    }

    #[inline]
    fn check_write(&self, arg: usize, field: FieldId, p: DynPoint) {
        if cfg!(debug_assertions) {
            self.check_point(arg, p);
            self.check_field(arg, field);
        }
        assert!(
            matches!(self.slots[arg].privilege, Privilege::ReadWrite),
            "write to region argument {arg} without read-write privilege"
        );
    }

    /// Applies the argument's declared reduction to an f64 element.
    ///
    /// # Panics
    /// Unless the argument holds a reduce privilege.
    #[inline]
    pub fn reduce_f64(&mut self, arg: usize, field: FieldId, p: DynPoint, v: f64) {
        if cfg!(debug_assertions) {
            self.check_point(arg, p);
            self.check_field(arg, field);
        }
        let op = match self.slots[arg].privilege {
            Privilege::Reduce(op) => op,
            _ => panic!("reduce on region argument {arg} without reduce privilege"),
        };
        self.slots[arg].inst_mut().reduce_f64(field, p, op, v);
    }

    /// Sets the scalar return value.
    pub fn set_return(&mut self, v: f64) {
        self.return_value = Some(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_region::{FieldSpace, FieldType};

    fn make_instance() -> (Instance, FieldId) {
        let fields = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fields.lookup("x").unwrap();
        (Instance::new(Domain::range(8), &fields), x)
    }

    #[test]
    fn read_write_through_ctx() {
        let (mut inst, x) = make_instance();
        let mut slots = vec![unsafe {
            ArgSlot::new(
                Domain::range(8),
                Privilege::ReadWrite,
                vec![x],
                &mut inst as *mut _,
            )
        }];
        let mut ctx = TaskCtx::new(&mut slots, &[], DynPoint::from(0));
        ctx.write_f64(0, x, DynPoint::from(3), 1.5);
        assert_eq!(ctx.read_f64(0, x, DynPoint::from(3)), 1.5);
        #[allow(clippy::drop_non_drop)] // end the borrow of `inst`
        drop(ctx);
        assert_eq!(inst.read_f64(x, DynPoint::from(3)), 1.5);
    }

    #[test]
    #[should_panic(expected = "without read-write privilege")]
    fn write_to_read_only_panics() {
        let (mut inst, x) = make_instance();
        let mut slots = vec![unsafe {
            ArgSlot::new(
                Domain::range(8),
                Privilege::Read,
                vec![x],
                &mut inst as *mut _,
            )
        }];
        let mut ctx = TaskCtx::new(&mut slots, &[], DynPoint::from(0));
        ctx.write_f64(0, x, DynPoint::from(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "read from reduce-only")]
    fn read_from_reduce_only_panics() {
        let (mut inst, x) = make_instance();
        let mut slots = vec![unsafe {
            ArgSlot::new(
                Domain::range(8),
                Privilege::Reduce(ReductionOp::Add),
                vec![x],
                &mut inst as *mut _,
            )
        }];
        let ctx = TaskCtx::new(&mut slots, &[], DynPoint::from(0));
        ctx.read_f64(0, x, DynPoint::from(0));
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn subregion_domain_enforced() {
        let (mut inst, x) = make_instance();
        // Argument covers only [0,3] even though the instance covers [0,8).
        let mut slots = vec![unsafe {
            ArgSlot::new(
                Domain::from_ids(0..4),
                Privilege::ReadWrite,
                vec![x],
                &mut inst as *mut _,
            )
        }];
        let mut ctx = TaskCtx::new(&mut slots, &[], DynPoint::from(0));
        ctx.write_f64(0, x, DynPoint::from(5), 1.0);
    }

    #[test]
    fn reduce_folds() {
        let (mut inst, x) = make_instance();
        let mut slots = vec![unsafe {
            ArgSlot::new(
                Domain::range(8),
                Privilege::Reduce(ReductionOp::Add),
                vec![x],
                &mut inst as *mut _,
            )
        }];
        let mut ctx = TaskCtx::new(&mut slots, &[], DynPoint::from(0));
        ctx.reduce_f64(0, x, DynPoint::from(2), 4.0);
        ctx.reduce_f64(0, x, DynPoint::from(2), 6.0);
        #[allow(clippy::drop_non_drop)] // end the borrow of `inst`
        drop(ctx);
        assert_eq!(inst.read_f64(x, DynPoint::from(2)), 10.0);
    }

    #[test]
    fn aliased_slots_same_instance() {
        // Two arguments backed by the same instance (shared-memory
        // implementation of region semantics): write through one, read
        // through the other.
        let (mut inst, x) = make_instance();
        let p: *mut Instance = &mut inst;
        let mut slots = vec![
            unsafe { ArgSlot::new(Domain::from_ids(0..4), Privilege::ReadWrite, vec![x], p) },
            unsafe { ArgSlot::new(Domain::from_ids(0..8), Privilege::Read, vec![x], p) },
        ];
        let mut ctx = TaskCtx::new(&mut slots, &[], DynPoint::from(0));
        ctx.write_f64(0, x, DynPoint::from(1), 9.0);
        assert_eq!(ctx.read_f64(1, x, DynPoint::from(1)), 9.0);
    }

    #[test]
    fn privilege_compatibility() {
        assert!(Privilege::Read.compatible(&Privilege::Read));
        assert!(
            Privilege::Reduce(ReductionOp::Add).compatible(&Privilege::Reduce(ReductionOp::Add))
        );
        assert!(
            !Privilege::Reduce(ReductionOp::Add).compatible(&Privilege::Reduce(ReductionOp::Min))
        );
        assert!(!Privilege::Read.compatible(&Privilege::ReadWrite));
        assert!(!Privilege::ReadWrite.compatible(&Privilege::ReadWrite));
        assert!(Privilege::ReadWrite.mutates());
        assert!(!Privilege::Read.mutates());
    }
}
