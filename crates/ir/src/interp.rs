//! The sequential reference interpreter.
//!
//! Regent programs have *sequential execution semantics* (§1): whatever
//! any parallel or control-replicated execution produces must match what
//! this interpreter produces. It implements the shared-memory region
//! semantics of §3 directly — every region tree is backed by a single
//! root instance, subregion arguments are views into it, and statements
//! run strictly in program order. Both the implicitly parallel executor
//! and the SPMD executor (see `regent-runtime`) are tested against it.

use crate::expr::ScalarExpr;
use crate::program::{IndexLaunch, Program, RegionArg, SingleLaunch, Stmt};
use crate::task::{ArgSlot, TaskCtx};
use regent_geometry::DynPoint;
use regent_region::{Instance, RegionId};
use std::collections::HashMap;

/// Storage for a program's data: one instance per region-tree root.
pub struct Store {
    instances: HashMap<RegionId, Instance>,
}

impl Store {
    /// Allocates zero-initialized instances for every root region of the
    /// program.
    pub fn new(program: &Program) -> Self {
        Store::from_forest(&program.forest)
    }

    /// Allocates zero-initialized instances for every root region of a
    /// forest.
    pub fn from_forest(forest: &regent_region::RegionForest) -> Self {
        let mut instances = HashMap::new();
        for i in 0..forest.num_regions() as u32 {
            let r = RegionId(i);
            if forest.region(r).parent.is_none() {
                let dom = forest.domain(r).clone();
                let fields = forest.fields(r);
                instances.insert(r, Instance::new(dom, fields));
            }
        }
        Store { instances }
    }

    /// The root instance backing `region` (any region in the tree).
    pub fn instance(&self, program: &Program, region: RegionId) -> &Instance {
        self.instance_in(&program.forest, region)
    }

    /// Forest-based variant of [`Store::instance`].
    pub fn instance_in(&self, forest: &regent_region::RegionForest, region: RegionId) -> &Instance {
        let root = forest.root_of(region);
        &self.instances[&root]
    }

    /// Mutable access to the root instance backing `region`.
    pub fn instance_mut(&mut self, program: &Program, region: RegionId) -> &mut Instance {
        self.instance_mut_in(&program.forest, region)
    }

    /// Forest-based variant of [`Store::instance_mut`].
    pub fn instance_mut_in(
        &mut self,
        forest: &regent_region::RegionForest,
        region: RegionId,
    ) -> &mut Instance {
        let root = forest.root_of(region);
        self.instances.get_mut(&root).unwrap()
    }

    /// Iterates `(root, instance)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Instance)> {
        self.instances.iter().map(|(r, i)| (*r, i))
    }

    /// Fills an f64 field of a region from a function of the point
    /// (initialization helper used by applications and tests).
    pub fn fill_f64(
        &mut self,
        program: &Program,
        region: RegionId,
        field: regent_region::FieldId,
        mut f: impl FnMut(DynPoint) -> f64,
    ) {
        let dom = program.forest.domain(region).clone();
        let inst = self.instance_mut(program, region);
        for p in dom.iter() {
            inst.write_f64(field, p, f(p));
        }
    }

    /// Fills an i64 field of a region from a function of the point.
    pub fn fill_i64(
        &mut self,
        program: &Program,
        region: RegionId,
        field: regent_region::FieldId,
        mut f: impl FnMut(DynPoint) -> i64,
    ) {
        let dom = program.forest.domain(region).clone();
        let inst = self.instance_mut(program, region);
        for p in dom.iter() {
            inst.write_i64(field, p, f(p));
        }
    }
}

/// Execution statistics collected by the interpreter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InterpStats {
    /// Total point tasks executed.
    pub tasks_executed: u64,
    /// Index launches processed.
    pub index_launches: u64,
    /// Loop iterations executed.
    pub loop_iterations: u64,
}

/// Runs a program to completion with sequential semantics.
///
/// Returns the final scalar environment and execution statistics.
pub fn run(program: &Program, store: &mut Store) -> (Vec<f64>, InterpStats) {
    let mut env: Vec<f64> = program.scalars.iter().map(|s| s.init).collect();
    let mut stats = InterpStats::default();
    run_stmts(program, store, &program.body, &mut env, &mut stats);
    (env, stats)
}

/// Runs an arbitrary statement slice against an existing store and
/// scalar environment (used by the hybrid range-local driver in
/// `regent-runtime`).
pub fn run_stmts_in(
    program: &Program,
    store: &mut Store,
    stmts: &[Stmt],
    env: &mut Vec<f64>,
) -> InterpStats {
    let mut stats = InterpStats::default();
    run_stmts(program, store, stmts, env, &mut stats);
    stats
}

fn run_stmts(
    program: &Program,
    store: &mut Store,
    stmts: &[Stmt],
    env: &mut Vec<f64>,
    stats: &mut InterpStats,
) {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => run_index_launch(program, store, il, env, stats),
            Stmt::SingleLaunch(sl) => run_single_launch(program, store, sl, env, stats),
            Stmt::For { count, body } => {
                let n = count.eval(env).max(0.0) as u64;
                for _ in 0..n {
                    stats.loop_iterations += 1;
                    run_stmts(program, store, body, env, stats);
                }
            }
            Stmt::While { cond, body } => {
                while cond.eval(env) != 0.0 {
                    stats.loop_iterations += 1;
                    run_stmts(program, store, body, env, stats);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if cond.eval(env) != 0.0 {
                    run_stmts(program, store, then_body, env, stats);
                } else {
                    run_stmts(program, store, else_body, env, stats);
                }
            }
            Stmt::SetScalar { var, expr } => {
                env[var.0 as usize] = expr.eval(env);
            }
        }
    }
}

/// Resolves an index-launch argument to the concrete region for launch
/// point `i`.
pub fn resolve_arg(program: &Program, arg: &RegionArg, i: regent_region::Color) -> RegionId {
    match arg {
        RegionArg::Part(p) => program.forest.subregion(*p, i),
        RegionArg::PartProj(p, proj) => program.forest.subregion(*p, proj.apply(i)),
        RegionArg::Region(r) => *r,
    }
}

fn eval_scalar_args(exprs: &[ScalarExpr], env: &[f64]) -> Vec<f64> {
    exprs.iter().map(|e| e.eval(env)).collect()
}

fn run_index_launch(
    program: &Program,
    store: &mut Store,
    il: &IndexLaunch,
    env: &mut [f64],
    stats: &mut InterpStats,
) {
    stats.index_launches += 1;
    let decl = program.task(il.task);
    let scalar_args = eval_scalar_args(&il.scalar_args, env);
    let mut reduced: Option<f64> = None;
    for &i in &il.launch_domain {
        let regions: Vec<RegionId> = il.args.iter().map(|a| resolve_arg(program, a, i)).collect();
        let ret = execute_point_task(program, store, il.task, &regions, &scalar_args, i);
        stats.tasks_executed += 1;
        if let Some((_, op)) = il.reduce_result {
            let v =
                ret.unwrap_or_else(|| panic!("task {} did not set its return value", decl.name));
            reduced = Some(match reduced {
                None => v,
                Some(acc) => op.fold(acc, v),
            });
        }
    }
    if let Some((var, op)) = il.reduce_result {
        // An empty launch domain is rejected by validation, but be safe.
        env[var.0 as usize] = reduced.unwrap_or_else(|| op.identity());
    }
}

fn run_single_launch(
    program: &Program,
    store: &mut Store,
    sl: &SingleLaunch,
    env: &mut [f64],
    stats: &mut InterpStats,
) {
    let scalar_args = eval_scalar_args(&sl.scalar_args, env);
    let ret = execute_point_task(
        program,
        store,
        sl.task,
        &sl.args,
        &scalar_args,
        DynPoint::from(0),
    );
    stats.tasks_executed += 1;
    if let Some(var) = sl.result {
        env[var.0 as usize] = ret.unwrap_or_else(|| {
            panic!(
                "task {} did not set its return value",
                program.task(sl.task).name
            )
        });
    }
}

/// Executes one point task against root-instance storage (the
/// shared-memory implementation: every argument views its tree's root
/// instance).
pub fn execute_point_task(
    program: &Program,
    store: &mut Store,
    task: crate::task::TaskId,
    regions: &[RegionId],
    scalar_args: &[f64],
    point: DynPoint,
) -> Option<f64> {
    let decl = program.task(task);
    debug_assert_eq!(regions.len(), decl.params.len());
    let mut slots: Vec<ArgSlot> = Vec::with_capacity(regions.len());
    for (idx, &r) in regions.iter().enumerate() {
        let param = &decl.params[idx];
        let domain = program.forest.domain(r).clone();
        let inst: *mut Instance = store.instance_mut(program, r);
        // SAFETY: the interpreter runs one kernel at a time on one
        // thread; slots may alias the same root instance, which TaskCtx
        // handles by never holding two live references at once.
        slots.push(unsafe { ArgSlot::new(domain, param.privilege, param.fields.clone(), inst) });
    }
    let mut ctx = TaskCtx::new(&mut slots, scalar_args, point);
    (decl.kernel)(&mut ctx);
    ctx.return_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{c, var};
    use crate::program::ProgramBuilder;
    use crate::task::{Privilege, RegionParam, TaskDecl};
    use regent_geometry::Domain;
    use regent_region::{ops, FieldSpace, FieldType, ReductionOp};
    use std::sync::Arc;

    /// Builds the doubling program: for t in 0..T { forall i: x *= 2 }.
    fn doubling_program(n: u64, parts: usize, steps: f64) -> Program {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(n), fs);
        let p = ops::block(&mut b.forest, r, parts);
        let t = b.task(TaskDecl {
            name: "double".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let dom = ctx.domain(0).clone();
                for pt in dom.iter() {
                    let v = ctx.read_f64(0, x, pt);
                    ctx.write_f64(0, x, pt, v * 2.0);
                }
            }),
            cost_per_element: 1.0,
        });
        let l = b.for_loop(c(steps));
        b.index_launch(t, parts as u64, vec![crate::program::RegionArg::Part(p)]);
        b.end(l);
        b.build()
    }

    #[test]
    fn doubling_runs() {
        let prog = doubling_program(16, 4, 3.0);
        let mut store = Store::new(&prog);
        let x = prog
            .forest
            .fields(regent_region::RegionId(0))
            .lookup("x")
            .unwrap();
        store.fill_f64(&prog, regent_region::RegionId(0), x, |p| p.coord(0) as f64);
        let (_, stats) = run(&prog, &mut store);
        assert_eq!(stats.index_launches, 3);
        assert_eq!(stats.tasks_executed, 12);
        let inst = store.instance(&prog, regent_region::RegionId(0));
        for i in 0..16i64 {
            assert_eq!(inst.read_f64(x, DynPoint::from(i)), i as f64 * 8.0);
        }
    }

    #[test]
    fn scalar_reduction_min() {
        // forall i: return min over block — reduce into dt.
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(TaskDecl {
            name: "local_min".into(),
            params: vec![RegionParam::read(&[x])],
            num_scalar_args: 0,
            returns_value: true,
            kernel: Arc::new(move |ctx| {
                let mut m = f64::INFINITY;
                let dom = ctx.domain(0).clone();
                for pt in dom.iter() {
                    m = m.min(ctx.read_f64(0, x, pt));
                }
                ctx.set_return(m);
            }),
            cost_per_element: 1.0,
        });
        let dt = b.scalar("dt", 0.0);
        b.index_launch_full(
            t,
            4,
            vec![crate::program::RegionArg::Part(p)],
            vec![],
            Some((dt, ReductionOp::Min)),
        );
        let prog = b.build();
        let mut store = Store::new(&prog);
        store.fill_f64(&prog, regent_region::RegionId(0), x, |p| {
            (p.coord(0) as f64 - 5.0).abs()
        });
        let (env, _) = run(&prog, &mut store);
        assert_eq!(env[dt.0 as usize], 0.0); // element 5 has value 0
    }

    #[test]
    fn region_reduction_privilege() {
        // Edges reduce-add into a shared node region.
        let mut b = ProgramBuilder::new();
        let nfs = FieldSpace::of(&[("q", FieldType::F64)]);
        let q = nfs.lookup("q").unwrap();
        let nodes = b.forest.create_region(Domain::range(4), nfs);
        let efs = FieldSpace::of(&[("tgt", FieldType::I64)]);
        let tgt = efs.lookup("tgt").unwrap();
        let edges = b.forest.create_region(Domain::range(8), efs);
        let pe = ops::block(&mut b.forest, edges, 2);
        let t = b.task(TaskDecl {
            name: "scatter".into(),
            params: vec![
                RegionParam::read(&[tgt]),
                RegionParam {
                    privilege: Privilege::Reduce(ReductionOp::Add),
                    fields: vec![q],
                },
            ],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let dom = ctx.domain(0).clone();
                for e in dom.iter() {
                    let n = ctx.read_i64(0, tgt, e);
                    ctx.reduce_f64(1, q, DynPoint::from(n), 1.0);
                }
            }),
            cost_per_element: 1.0,
        });
        b.index_launch(
            t,
            2,
            vec![
                crate::program::RegionArg::Part(pe),
                crate::program::RegionArg::Region(nodes),
            ],
        );
        let prog = b.build();
        let mut store = Store::new(&prog);
        store.fill_i64(&prog, edges, tgt, |p| p.coord(0) % 4);
        run(&prog, &mut store);
        let inst = store.instance(&prog, nodes);
        for i in 0..4i64 {
            assert_eq!(inst.read_f64(q, DynPoint::from(i)), 2.0);
        }
    }

    #[test]
    fn while_and_if() {
        let mut b = ProgramBuilder::new();
        let i = b.scalar("i", 0.0);
        let acc = b.scalar("acc", 0.0);
        let w = b.while_loop(var(i).lt(c(5.0)));
        b.set_scalar(acc, var(acc).add(var(i)));
        b.set_scalar(i, var(i).add(c(1.0)));
        b.end(w);
        let prog = b.build();
        let mut store = Store::new(&prog);
        let (env, stats) = run(&prog, &mut store);
        assert_eq!(env[acc.0 as usize], 10.0);
        assert_eq!(stats.loop_iterations, 5);
    }

    #[test]
    fn scalar_args_passed() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(4), fs);
        let p = ops::block(&mut b.forest, r, 2);
        let t = b.task(TaskDecl {
            name: "set".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 1,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let v = ctx.scalars[0];
                let dom = ctx.domain(0).clone();
                for pt in dom.iter() {
                    ctx.write_f64(0, x, pt, v);
                }
            }),
            cost_per_element: 1.0,
        });
        b.index_launch_full(
            t,
            2,
            vec![crate::program::RegionArg::Part(p)],
            vec![c(4.0).mul(c(2.5))],
            None,
        );
        let prog = b.build();
        let mut store = Store::new(&prog);
        run(&prog, &mut store);
        let inst = store.instance(&prog, r);
        assert_eq!(inst.read_f64(x, DynPoint::from(3)), 10.0);
    }
}

#[cfg(test)]
mod branch_tests {
    use super::*;
    use crate::expr::{c, var};
    use crate::program::ProgramBuilder;
    use crate::task::{RegionParam, TaskDecl};
    use regent_geometry::Domain;
    use regent_region::{FieldSpace, FieldType};
    use std::sync::Arc;

    #[test]
    fn if_else_branches() {
        let mut b = ProgramBuilder::new();
        let x = b.scalar("x", 3.0);
        let y = b.scalar("y", 0.0);
        b.push_if(
            var(x).lt(c(5.0)),
            vec![crate::program::Stmt::SetScalar {
                var: y,
                expr: c(1.0),
            }],
            vec![crate::program::Stmt::SetScalar {
                var: y,
                expr: c(2.0),
            }],
        );
        b.push_if(
            var(x).lt(c(1.0)),
            vec![crate::program::Stmt::SetScalar {
                var: x,
                expr: c(-1.0),
            }],
            vec![crate::program::Stmt::SetScalar {
                var: x,
                expr: c(-2.0),
            }],
        );
        let prog = b.build();
        let mut store = Store::new(&prog);
        let (env, _) = run(&prog, &mut store);
        assert_eq!(env, vec![-2.0, 1.0]);
    }

    #[test]
    fn single_launch_result_binding() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(6), fs);
        let sum = b.task(TaskDecl {
            name: "sum".into(),
            params: vec![RegionParam::read(&[x])],
            num_scalar_args: 1,
            returns_value: true,
            kernel: Arc::new(move |ctx| {
                let scale = ctx.scalars[0];
                let dom = ctx.domain(0).clone();
                let mut acc = 0.0;
                for p in dom.iter() {
                    acc += ctx.read_f64(0, x, p);
                }
                ctx.set_return(acc * scale);
            }),
            cost_per_element: 1.0,
        });
        let out = b.scalar("out", 0.0);
        b.call_full(sum, vec![r], vec![c(2.0)], Some(out));
        let prog = b.build();
        let mut store = Store::new(&prog);
        store.fill_f64(&prog, r, x, |p| p.coord(0) as f64);
        let (env, stats) = run(&prog, &mut store);
        assert_eq!(env[out.0 as usize], 30.0); // (0+..+5) * 2
        assert_eq!(stats.tasks_executed, 1);
    }

    #[test]
    fn nested_loops_iterate_product() {
        let mut b = ProgramBuilder::new();
        let n = b.scalar("n", 0.0);
        let outer = b.for_loop(c(3.0));
        let inner = b.for_loop(c(4.0));
        b.set_scalar(n, var(n).add(c(1.0)));
        b.end(inner);
        b.end(outer);
        let prog = b.build();
        let mut store = Store::new(&prog);
        let (env, stats) = run(&prog, &mut store);
        assert_eq!(env[0], 12.0);
        assert_eq!(stats.loop_iterations, 3 + 12);
    }
}
