//! Programs: statements, launches, and the program builder.
//!
//! A program is the implicitly parallel source form of Fig. 2: a region
//! forest built by partitioning operators, a set of task declarations,
//! scalar state, and a statement list whose workhorse is the *index
//! launch* — a forall-style loop of task calls (`for i in I do
//! TF(PB[i], PA[i]) end`), the unit control replication operates on
//! (§2.2).

use crate::expr::{ScalarExpr, ScalarId};
use crate::task::{TaskDecl, TaskId};
use regent_geometry::DynPoint;
use regent_region::{Color, PartitionId, RegionForest, RegionId};
use std::fmt;
use std::sync::Arc;

/// How an index launch derives the region argument for launch point `i`.
#[derive(Clone)]
pub enum RegionArg {
    /// `p[i]` — the subregion of `p` colored by the launch point.
    Part(PartitionId),
    /// `p[f(i)]` — a projected access. §2.2 requires these to be
    /// normalized to the `q[i]` form by introducing a new partition; the
    /// [`crate::normalize`] pass does so, and the control-replication
    /// compiler rejects unnormalized programs.
    PartProj(PartitionId, Projection),
    /// A whole region passed unsliced (legal only in single launches and
    /// in index launches with reduce privilege on the argument).
    Region(RegionId),
}

impl fmt::Debug for RegionArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionArg::Part(p) => write!(f, "{p:?}[i]"),
            RegionArg::PartProj(p, _) => write!(f, "{p:?}[f(i)]"),
            RegionArg::Region(r) => write!(f, "{r:?}"),
        }
    }
}

/// A pure projection function `f` applied to the launch point (§2.2:
/// "f is a pure function").
#[derive(Clone)]
pub enum Projection {
    /// `f(i) = i + offset`, wrapped into `[0, modulus)` when given
    /// (1-D launch domains only).
    AffineOffset {
        /// Offset added to the launch index.
        offset: i64,
        /// Optional wrap-around modulus (periodic boundary patterns).
        modulus: Option<u64>,
    },
    /// Arbitrary pure function of the launch point.
    Fn(Arc<dyn Fn(Color) -> Color + Send + Sync>),
}

impl Projection {
    /// Applies the projection to a launch point.
    pub fn apply(&self, i: Color) -> Color {
        match self {
            Projection::AffineOffset { offset, modulus } => {
                let mut v = i.coord(0) + offset;
                if let Some(m) = modulus {
                    v = v.rem_euclid(*m as i64);
                }
                DynPoint::from(v)
            }
            Projection::Fn(f) => f(i),
        }
    }
}

/// A forall-style loop of task calls over a launch domain of colors.
#[derive(Clone, Debug)]
pub struct IndexLaunch {
    /// The task to launch at every point.
    pub task: TaskId,
    /// The launch domain (the index space `I` of Fig. 2 line 17).
    pub launch_domain: Vec<Color>,
    /// Region arguments, one per task parameter.
    pub args: Vec<RegionArg>,
    /// Scalar arguments, evaluated in the issuing control context.
    pub scalar_args: Vec<ScalarExpr>,
    /// When present, the tasks' scalar returns are reduced with the
    /// operator into the variable (§4.4 dynamic collective).
    pub reduce_result: Option<(ScalarId, regent_region::ReductionOp)>,
}

/// A single task call on concrete regions.
#[derive(Clone, Debug)]
pub struct SingleLaunch {
    /// The task to call.
    pub task: TaskId,
    /// Region arguments.
    pub args: Vec<RegionId>,
    /// Scalar arguments.
    pub scalar_args: Vec<ScalarExpr>,
    /// Destination for the task's scalar return, if any.
    pub result: Option<ScalarId>,
}

/// A program statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Index launch (the parallel inner loops of Fig. 1a).
    IndexLaunch(IndexLaunch),
    /// Single task call.
    SingleLaunch(SingleLaunch),
    /// Counted sequential loop; the trip count is evaluated at entry.
    For {
        /// Trip count expression (truncated to u64).
        count: ScalarExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// While loop over a scalar condition (non-zero = true), e.g.
    /// dynamic time stepping.
    While {
        /// Condition, re-evaluated before each iteration.
        cond: ScalarExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Conditional.
    If {
        /// Condition (non-zero = true).
        cond: ScalarExpr,
        /// Taken when the condition is non-zero.
        then_body: Vec<Stmt>,
        /// Taken otherwise.
        else_body: Vec<Stmt>,
    },
    /// Scalar assignment.
    SetScalar {
        /// Destination variable.
        var: ScalarId,
        /// Value expression.
        expr: ScalarExpr,
    },
}

/// Declaration of a scalar variable.
#[derive(Clone, Debug)]
pub struct ScalarDecl {
    /// Name for diagnostics.
    pub name: String,
    /// Initial value.
    pub init: f64,
}

/// A complete implicitly parallel program.
pub struct Program {
    /// The region forest (regions + partitions) the program runs over.
    pub forest: RegionForest,
    /// Task declarations.
    pub tasks: Vec<TaskDecl>,
    /// Scalar variable declarations.
    pub scalars: Vec<ScalarDecl>,
    /// Top-level statement list.
    pub body: Vec<Stmt>,
}

impl Program {
    /// The declaration of `t`.
    pub fn task(&self, t: TaskId) -> &TaskDecl {
        &self.tasks[t.0 as usize]
    }

    /// All root regions referenced anywhere in the forest (the regions a
    /// store must allocate).
    pub fn root_regions(&self) -> Vec<RegionId> {
        (0..self.forest.num_regions() as u32)
            .map(RegionId)
            .filter(|&r| self.forest.region(r).parent.is_none())
            .collect()
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Program:")?;
        writeln!(
            f,
            "  {} tasks, {} scalars, forest: {} regions / {} partitions",
            self.tasks.len(),
            self.scalars.len(),
            self.forest.num_regions(),
            self.forest.num_partitions()
        )?;
        fmt_stmts(f, &self.body, 2)
    }
}

fn fmt_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => writeln!(
                f,
                "{:indent$}forall i in |{}|: {:?}({:?})",
                "",
                il.launch_domain.len(),
                il.task,
                il.args,
                indent = indent
            )?,
            Stmt::SingleLaunch(sl) => writeln!(
                f,
                "{:indent$}call {:?}({:?})",
                "",
                sl.task,
                sl.args,
                indent = indent
            )?,
            Stmt::For { count, body } => {
                writeln!(f, "{:indent$}for {count:?}:", "", indent = indent)?;
                fmt_stmts(f, body, indent + 2)?;
            }
            Stmt::While { cond, body } => {
                writeln!(f, "{:indent$}while {cond:?}:", "", indent = indent)?;
                fmt_stmts(f, body, indent + 2)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                writeln!(f, "{:indent$}if {cond:?}:", "", indent = indent)?;
                fmt_stmts(f, then_body, indent + 2)?;
                if !else_body.is_empty() {
                    writeln!(f, "{:indent$}else:", "", indent = indent)?;
                    fmt_stmts(f, else_body, indent + 2)?;
                }
            }
            Stmt::SetScalar { var, expr } => {
                writeln!(f, "{:indent$}{var:?} = {expr:?}", "", indent = indent)?
            }
        }
    }
    Ok(())
}

/// Fluent builder for [`Program`]s.
///
/// Owns the forest during construction so partitioning operators and
/// statement construction interleave naturally; see the crate examples.
pub struct ProgramBuilder {
    /// The forest under construction (public: partitioning operators
    /// from `regent_region::ops` are applied directly to it).
    pub forest: RegionForest,
    tasks: Vec<TaskDecl>,
    scalars: Vec<ScalarDecl>,
    body: Vec<Stmt>,
    /// Stack of open nested bodies (loops/ifs under construction).
    stack: Vec<Vec<Stmt>>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            forest: RegionForest::new(),
            tasks: Vec::new(),
            scalars: Vec::new(),
            body: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Registers a task declaration, returning its id.
    pub fn task(&mut self, decl: TaskDecl) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(decl);
        id
    }

    /// Declares a scalar variable.
    pub fn scalar(&mut self, name: &str, init: f64) -> ScalarId {
        let id = ScalarId(self.scalars.len() as u32);
        self.scalars.push(ScalarDecl {
            name: name.to_string(),
            init,
        });
        id
    }

    fn push(&mut self, s: Stmt) {
        match self.stack.last_mut() {
            Some(top) => top.push(s),
            None => self.body.push(s),
        }
    }

    /// Emits an index launch over the 1-D launch domain `0..n`.
    pub fn index_launch(&mut self, task: TaskId, n: u64, args: Vec<RegionArg>) {
        self.index_launch_full(task, n, args, vec![], None);
    }

    /// Emits an index launch with scalar arguments and optional scalar
    /// reduction.
    pub fn index_launch_full(
        &mut self,
        task: TaskId,
        n: u64,
        args: Vec<RegionArg>,
        scalar_args: Vec<ScalarExpr>,
        reduce_result: Option<(ScalarId, regent_region::ReductionOp)>,
    ) {
        let launch_domain = (0..n as i64).map(DynPoint::from).collect();
        self.push(Stmt::IndexLaunch(IndexLaunch {
            task,
            launch_domain,
            args,
            scalar_args,
            reduce_result,
        }));
    }

    /// Emits an index launch over an explicit color list (e.g. the 2-D
    /// colors of a `block2d` partition).
    pub fn index_launch_colors(&mut self, task: TaskId, colors: Vec<Color>, args: Vec<RegionArg>) {
        self.push(Stmt::IndexLaunch(IndexLaunch {
            task,
            launch_domain: colors,
            args,
            scalar_args: vec![],
            reduce_result: None,
        }));
    }

    /// Emits a single task call.
    pub fn call(&mut self, task: TaskId, args: Vec<RegionId>) {
        self.call_full(task, args, vec![], None);
    }

    /// Emits a single task call with scalar arguments and an optional
    /// result binding.
    pub fn call_full(
        &mut self,
        task: TaskId,
        args: Vec<RegionId>,
        scalar_args: Vec<ScalarExpr>,
        result: Option<ScalarId>,
    ) {
        self.push(Stmt::SingleLaunch(SingleLaunch {
            task,
            args,
            scalar_args,
            result,
        }));
    }

    /// Emits a scalar assignment.
    pub fn set_scalar(&mut self, var: ScalarId, expr: ScalarExpr) {
        self.push(Stmt::SetScalar { var, expr });
    }

    /// Emits a conditional with explicit branch bodies.
    pub fn push_if(&mut self, cond: ScalarExpr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) {
        self.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
    }

    /// Opens a counted loop; statements emitted until [`Self::end`] form
    /// its body.
    pub fn for_loop(&mut self, count: ScalarExpr) -> LoopToken {
        self.stack.push(Vec::new());
        LoopToken(LoopKind::For(count))
    }

    /// Opens a while loop.
    pub fn while_loop(&mut self, cond: ScalarExpr) -> LoopToken {
        self.stack.push(Vec::new());
        LoopToken(LoopKind::While(cond))
    }

    /// Closes the innermost open loop.
    pub fn end(&mut self, token: LoopToken) {
        let body = self.stack.pop().expect("no open loop");
        let stmt = match token.0 {
            LoopKind::For(count) => Stmt::For { count, body },
            LoopKind::While(cond) => Stmt::While { cond, body },
        };
        self.push(stmt);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    /// If a loop is still open.
    pub fn build(self) -> Program {
        assert!(self.stack.is_empty(), "unclosed loop in program builder");
        Program {
            forest: self.forest,
            tasks: self.tasks,
            scalars: self.scalars,
            body: self.body,
        }
    }
}

/// Token returned by loop-opening builder methods; spend it with
/// [`ProgramBuilder::end`].
#[must_use]
pub struct LoopToken(LoopKind);

enum LoopKind {
    For(ScalarExpr),
    While(ScalarExpr),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::c;

    #[test]
    fn builder_nesting() {
        let mut b = ProgramBuilder::new();
        let t = b.scalar("t", 0.0);
        let l = b.for_loop(c(10.0));
        b.set_scalar(t, c(1.0));
        b.end(l);
        let prog = b.build();
        assert_eq!(prog.body.len(), 1);
        match &prog.body[0] {
            Stmt::For { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unclosed_loop_panics() {
        let mut b = ProgramBuilder::new();
        let _tok = b.for_loop(c(1.0));
        let _ = b.build();
    }

    #[test]
    fn projection_affine() {
        let p = Projection::AffineOffset {
            offset: -1,
            modulus: Some(4),
        };
        assert_eq!(p.apply(DynPoint::from(0)), DynPoint::from(3));
        assert_eq!(p.apply(DynPoint::from(2)), DynPoint::from(1));
        let q = Projection::AffineOffset {
            offset: 2,
            modulus: None,
        };
        assert_eq!(q.apply(DynPoint::from(5)), DynPoint::from(7));
    }

    #[test]
    fn projection_fn() {
        let p = Projection::Fn(Arc::new(|c: Color| DynPoint::from(c.coord(0) * 2)));
        assert_eq!(p.apply(DynPoint::from(3)), DynPoint::from(6));
    }
}
