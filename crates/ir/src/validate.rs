//! Static program validation.
//!
//! Checks the structural well-formedness the rest of the stack assumes:
//! argument arity, color coverage of launch domains, field ids in range,
//! scalar ids in range, and the privilege rules for whole-region
//! arguments in index launches. Privilege *strictness* of kernel bodies
//! is enforced dynamically by [`crate::task::TaskCtx`].

use crate::expr::{ScalarExpr, ScalarId};
use crate::program::{IndexLaunch, Program, RegionArg, SingleLaunch, Stmt};
use crate::task::Privilege;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program validation failed: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

/// Validates a program, returning every problem found.
pub fn validate(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    check_stmts(program, &program.body, &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn err(errors: &mut Vec<ValidationError>, msg: String) {
    errors.push(ValidationError(msg));
}

fn check_scalar_expr(program: &Program, e: &ScalarExpr, errors: &mut Vec<ValidationError>) {
    let mut vars: Vec<ScalarId> = Vec::new();
    e.vars(&mut vars);
    for v in vars {
        if v.0 as usize >= program.scalars.len() {
            err(errors, format!("scalar {v:?} out of range"));
        }
    }
}

fn check_stmts(program: &Program, stmts: &[Stmt], errors: &mut Vec<ValidationError>) {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => check_index_launch(program, il, errors),
            Stmt::SingleLaunch(sl) => check_single_launch(program, sl, errors),
            Stmt::For { count, body } => {
                check_scalar_expr(program, count, errors);
                check_stmts(program, body, errors);
            }
            Stmt::While { cond, body } => {
                check_scalar_expr(program, cond, errors);
                check_stmts(program, body, errors);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_scalar_expr(program, cond, errors);
                check_stmts(program, then_body, errors);
                check_stmts(program, else_body, errors);
            }
            Stmt::SetScalar { var, expr } => {
                if var.0 as usize >= program.scalars.len() {
                    err(errors, format!("assignment to undeclared scalar {var:?}"));
                }
                check_scalar_expr(program, expr, errors);
            }
        }
    }
}

fn check_task_ref(
    program: &Program,
    task: crate::task::TaskId,
    num_args: usize,
    num_scalars: usize,
    errors: &mut Vec<ValidationError>,
) -> bool {
    if task.0 as usize >= program.tasks.len() {
        err(errors, format!("launch of undeclared task {task:?}"));
        return false;
    }
    let decl = program.task(task);
    if decl.params.len() != num_args {
        err(
            errors,
            format!(
                "task {} expects {} region args, launch passes {}",
                decl.name,
                decl.params.len(),
                num_args
            ),
        );
    }
    if decl.num_scalar_args != num_scalars {
        err(
            errors,
            format!(
                "task {} expects {} scalar args, launch passes {}",
                decl.name, decl.num_scalar_args, num_scalars
            ),
        );
    }
    true
}

fn check_index_launch(program: &Program, il: &IndexLaunch, errors: &mut Vec<ValidationError>) {
    if !check_task_ref(
        program,
        il.task,
        il.args.len(),
        il.scalar_args.len(),
        errors,
    ) {
        return;
    }
    let decl = program.task(il.task);
    if il.launch_domain.is_empty() {
        err(
            errors,
            format!("index launch of {} has an empty launch domain", decl.name),
        );
    }
    for e in &il.scalar_args {
        check_scalar_expr(program, e, errors);
    }
    if let Some((var, _)) = il.reduce_result {
        if !decl.returns_value {
            err(
                errors,
                format!(
                    "scalar reduction from task {} which returns no value",
                    decl.name
                ),
            );
        }
        if var.0 as usize >= program.scalars.len() {
            err(errors, format!("scalar reduction into undeclared {var:?}"));
        }
    }
    for (idx, arg) in il.args.iter().enumerate() {
        let privilege = decl
            .params
            .get(idx)
            .map(|p| p.privilege)
            .unwrap_or(Privilege::Read);
        match arg {
            RegionArg::Part(p) | RegionArg::PartProj(p, _) => {
                if p.0 as usize >= program.forest.num_partitions() {
                    err(errors, format!("launch references undeclared {p:?}"));
                    continue;
                }
                // Every launch point must have a colored subregion.
                // (Projections are checked post-normalization; see
                // crate::normalize.)
                if matches!(arg, RegionArg::Part(_)) {
                    let part = program.forest.partition(*p);
                    for c in &il.launch_domain {
                        if part.child(*c).is_none() {
                            err(
                                errors,
                                format!("partition {p:?} has no subregion for launch point {c:?}"),
                            );
                            break;
                        }
                    }
                }
            }
            RegionArg::Region(r) => {
                if r.0 as usize >= program.forest.num_regions() {
                    err(errors, format!("launch references undeclared {r:?}"));
                }
                // A whole region passed to every point of an index
                // launch is legal only when all points may touch it
                // concurrently: read or reduce privilege.
                if matches!(privilege, Privilege::ReadWrite) {
                    err(
                        errors,
                        format!(
                            "task {} takes whole region {r:?} with read-write \
                             privilege in an index launch (points would conflict)",
                            decl.name
                        ),
                    );
                }
            }
        }
    }
    // Check field ids against the region's field space.
    for (idx, param) in decl.params.iter().enumerate() {
        if let Some(region) = first_region_of_arg(program, il.args.get(idx)) {
            let fs = program.forest.fields(region);
            for f in &param.fields {
                if f.0 as usize >= fs.len() {
                    err(
                        errors,
                        format!(
                            "task {} declares field {f:?} not present in the \
                             field space of its argument {idx}",
                            decl.name
                        ),
                    );
                }
            }
        }
    }
}

fn first_region_of_arg(
    program: &Program,
    arg: Option<&RegionArg>,
) -> Option<regent_region::RegionId> {
    match arg? {
        RegionArg::Part(p) | RegionArg::PartProj(p, _) => {
            let part = program.forest.partition(*p);
            part.iter().next().map(|(_, r)| r)
        }
        RegionArg::Region(r) => Some(*r),
    }
}

fn check_single_launch(program: &Program, sl: &SingleLaunch, errors: &mut Vec<ValidationError>) {
    if !check_task_ref(
        program,
        sl.task,
        sl.args.len(),
        sl.scalar_args.len(),
        errors,
    ) {
        return;
    }
    for e in &sl.scalar_args {
        check_scalar_expr(program, e, errors);
    }
    for r in &sl.args {
        if r.0 as usize >= program.forest.num_regions() {
            err(errors, format!("call references undeclared {r:?}"));
        }
    }
    if let Some(var) = sl.result {
        let decl = program.task(sl.task);
        if !decl.returns_value {
            err(
                errors,
                format!(
                    "result binding on task {} which returns no value",
                    decl.name
                ),
            );
        }
        if var.0 as usize >= program.scalars.len() {
            err(errors, format!("result into undeclared scalar {var:?}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::c;
    use crate::program::ProgramBuilder;
    use crate::task::{RegionParam, TaskDecl};
    use regent_geometry::Domain;
    use regent_region::{ops, FieldSpace, FieldType};
    use std::sync::Arc;

    fn noop_task(params: Vec<RegionParam>) -> TaskDecl {
        TaskDecl {
            name: "noop".into(),
            params,
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(|_| {}),
            cost_per_element: 1.0,
        }
    }

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(noop_task(vec![RegionParam::read_write(&[x])]));
        b.index_launch(t, 4, vec![RegionArg::Part(p)]);
        let prog = b.build();
        assert!(validate(&prog).is_ok());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(noop_task(vec![
            RegionParam::read_write(&[x]),
            RegionParam::read(&[x]),
        ]));
        b.index_launch(t, 4, vec![RegionArg::Part(p)]);
        let prog = b.build();
        let errs = validate(&prog).unwrap_err();
        assert!(errs[0].0.contains("expects 2 region args"));
    }

    #[test]
    fn launch_domain_must_be_covered() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(noop_task(vec![RegionParam::read_write(&[x])]));
        b.index_launch(t, 8, vec![RegionArg::Part(p)]); // 8 points, 4 colors
        let prog = b.build();
        let errs = validate(&prog).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("no subregion")));
    }

    #[test]
    fn whole_region_rw_in_index_launch_rejected() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let t = b.task(noop_task(vec![RegionParam::read_write(&[x])]));
        b.index_launch(t, 4, vec![RegionArg::Region(r)]);
        let prog = b.build();
        let errs = validate(&prog).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("read-write")));
    }

    #[test]
    fn scalar_reduction_requires_return() {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(noop_task(vec![RegionParam::read(&[x])]));
        let dt = b.scalar("dt", 0.0);
        b.index_launch_full(
            t,
            4,
            vec![RegionArg::Part(p)],
            vec![],
            Some((dt, regent_region::ReductionOp::Min)),
        );
        let prog = b.build();
        let errs = validate(&prog).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("returns no value")));
    }

    #[test]
    fn undeclared_scalar_in_expr() {
        let mut b = ProgramBuilder::new();
        let s = b.scalar("s", 0.0);
        b.set_scalar(s, c(1.0).add(crate::expr::var(crate::expr::ScalarId(9))));
        let prog = b.build();
        let errs = validate(&prog).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("out of range")));
    }
}
