//! Scalar expressions.
//!
//! Control replication replicates scalar control state across shards
//! (§4.4): "scalar variables are normally replicated... this ensures
//! that control flow constructs behave identically on all shards". The
//! expression language below is deliberately side-effect free so that
//! replicated evaluation is trivially consistent.

use std::fmt;

/// Identifier of a scalar variable in a program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarId(pub u32);

impl fmt::Debug for ScalarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Comparison operators (evaluate to 1.0 / 0.0).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A side-effect-free scalar expression over f64 values.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Literal constant.
    Const(f64),
    /// Variable reference.
    Var(ScalarId),
    /// Binary arithmetic.
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Comparison producing 1.0 (true) or 0.0 (false).
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Evaluates against an environment indexed by [`ScalarId`].
    pub fn eval(&self, env: &[f64]) -> f64 {
        match self {
            ScalarExpr::Const(c) => *c,
            ScalarExpr::Var(v) => env[v.0 as usize],
            ScalarExpr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env), b.eval(env));
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                }
            }
            ScalarExpr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(env), b.eval(env));
                let r = match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                };
                f64::from(r)
            }
        }
    }

    /// The set of variables the expression reads.
    pub fn vars(&self, out: &mut Vec<ScalarId>) {
        match self {
            ScalarExpr::Const(_) => {}
            ScalarExpr::Var(v) => out.push(*v),
            ScalarExpr::Bin(_, a, b) | ScalarExpr::Cmp(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }

    /// Convenience: `self + rhs`.
    #[allow(clippy::should_implement_trait)] // DSL constructor, not arithmetic on Self
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// Convenience: `self * rhs`.
    #[allow(clippy::should_implement_trait)] // DSL constructor, not arithmetic on Self
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// Convenience: `self < rhs`.
    pub fn lt(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
}

/// Shorthand for a constant expression.
pub fn c(v: f64) -> ScalarExpr {
    ScalarExpr::Const(v)
}

/// Shorthand for a variable expression.
pub fn var(v: ScalarId) -> ScalarExpr {
    ScalarExpr::Var(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        let env = [2.0, 3.0];
        let e = var(ScalarId(0)).add(var(ScalarId(1)).mul(c(10.0)));
        assert_eq!(e.eval(&env), 32.0);
        let m = ScalarExpr::Bin(BinOp::Min, Box::new(c(4.0)), Box::new(c(7.0)));
        assert_eq!(m.eval(&[]), 4.0);
        let d = ScalarExpr::Bin(BinOp::Div, Box::new(c(1.0)), Box::new(c(4.0)));
        assert_eq!(d.eval(&[]), 0.25);
        let s = ScalarExpr::Bin(BinOp::Sub, Box::new(c(1.0)), Box::new(c(4.0)));
        assert_eq!(s.eval(&[]), -3.0);
        let mx = ScalarExpr::Bin(BinOp::Max, Box::new(c(1.0)), Box::new(c(4.0)));
        assert_eq!(mx.eval(&[]), 4.0);
    }

    #[test]
    fn eval_comparisons() {
        assert_eq!(c(1.0).lt(c(2.0)).eval(&[]), 1.0);
        assert_eq!(c(2.0).lt(c(2.0)).eval(&[]), 0.0);
        for (op, expect) in [
            (CmpOp::Le, 1.0),
            (CmpOp::Ge, 1.0),
            (CmpOp::Eq, 1.0),
            (CmpOp::Ne, 0.0),
            (CmpOp::Gt, 0.0),
            (CmpOp::Lt, 0.0),
        ] {
            let e = ScalarExpr::Cmp(op, Box::new(c(5.0)), Box::new(c(5.0)));
            assert_eq!(e.eval(&[]), expect, "{op:?}");
        }
    }

    #[test]
    fn collects_vars() {
        let e = var(ScalarId(3)).add(var(ScalarId(1))).mul(c(2.0));
        let mut vs = Vec::new();
        e.vars(&mut vs);
        assert_eq!(vs, vec![ScalarId(3), ScalarId(1)]);
    }
}
