//! # regent-ir
//!
//! The implicitly parallel task IR — a Rust rendition of the Regent
//! subset that control replication targets (§2 of *Control Replication*,
//! SC'17).
//!
//! * [`task`] — task declarations with strict privileges and the
//!   privilege-checked kernel context.
//! * [`program`] — statements (index launches, loops, scalar ops) and
//!   the program builder.
//! * [`expr`] — replicable scalar expressions.
//! * [`normalize`] — the `p[f(i)]` → `q[i]` projection normalization of
//!   §2.2.
//! * [`validate`](crate::validate()) — structural well-formedness checks
//!   (also the name of the module hosting them).
//! * [`interp`] — the sequential reference interpreter defining the
//!   semantics every parallel execution must preserve.

#![warn(missing_docs)]

pub mod expr;
pub mod interp;
pub mod normalize;
pub mod program;
pub mod task;
pub mod validate;

pub use expr::{BinOp, CmpOp, ScalarExpr, ScalarId};
pub use interp::{InterpStats, Store};
pub use normalize::normalize_projections;
pub use program::{
    IndexLaunch, LoopToken, Program, ProgramBuilder, Projection, RegionArg, ScalarDecl,
    SingleLaunch, Stmt,
};
pub use task::{ArgSlot, KernelFn, Privilege, RegionParam, TaskCtx, TaskDecl, TaskId};
pub use validate::{validate, ValidationError};
