//! Projection normalization (§2.2).
//!
//! "The region arguments of any called tasks must be of the form
//! `p[f(i)]` where p is a partition, i is the loop index, and f is a
//! pure function. Any accesses with a non-trivial function f are
//! transformed into the form `q[i]` with a new partition q such that
//! `q[i]` is `p[f(i)]`. Note here that we make essential use of Regent's
//! ability to define multiple partitions of the same data."
//!
//! This pass walks every index launch and replaces
//! [`RegionArg::PartProj`] with a plain [`RegionArg::Part`] over a
//! freshly created partition whose color `i` names the same subregion
//! domain as `p[f(i)]`. Disjointness of the new partition is decided
//! conservatively: `f` may map two launch points to the same subregion,
//! in which case the new partition has duplicated (hence overlapping)
//! children and must be classified aliased; only an injective mapping
//! over the launch domain preserves the source's disjointness.

use crate::program::{Program, RegionArg, Stmt};
use regent_region::{Color, Disjointness, RegionForest};
use std::collections::HashSet;

/// Statistics returned by [`normalize_projections`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NormalizeStats {
    /// Number of projected arguments rewritten.
    pub rewritten: usize,
    /// Number of fresh partitions created.
    pub partitions_created: usize,
}

/// Rewrites every `p[f(i)]` argument into `q[i]` form, creating the new
/// partitions in the program's forest. Idempotent.
pub fn normalize_projections(program: &mut Program) -> NormalizeStats {
    let mut stats = NormalizeStats::default();
    let mut body = std::mem::take(&mut program.body);
    normalize_stmts(&mut program.forest, &mut body, &mut stats);
    program.body = body;
    stats
}

fn normalize_stmts(forest: &mut RegionForest, stmts: &mut [Stmt], stats: &mut NormalizeStats) {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => {
                let launch_domain = il.launch_domain.clone();
                for arg in &mut il.args {
                    if let RegionArg::PartProj(p, proj) = arg {
                        let p = *p;
                        // Build q with q[i] = p[f(i)] for i in the launch
                        // domain.
                        let parent = forest.partition(p).parent;
                        let src_disjoint = forest.partition(p).disjointness;
                        let mut seen: HashSet<Color> = HashSet::new();
                        let mut injective = true;
                        let mut subdomains = Vec::with_capacity(launch_domain.len());
                        for &i in &launch_domain {
                            let fi = proj.apply(i);
                            if !seen.insert(fi) {
                                injective = false;
                            }
                            let src = forest.partition(p).child(fi).unwrap_or_else(|| {
                                panic!(
                                    "projection maps launch point {i:?} to color {fi:?} \
                                     absent from {p:?}"
                                )
                            });
                            subdomains.push((i, forest.domain(src).clone()));
                        }
                        let disjointness = if injective {
                            src_disjoint
                        } else {
                            Disjointness::Aliased
                        };
                        let q = forest.create_partition(parent, disjointness, subdomains);
                        *arg = RegionArg::Part(q);
                        stats.rewritten += 1;
                        stats.partitions_created += 1;
                    }
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                normalize_stmts(forest, body, stats)
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                normalize_stmts(forest, then_body, stats);
                normalize_stmts(forest, else_body, stats);
            }
            Stmt::SingleLaunch(_) | Stmt::SetScalar { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, Projection, RegionArg};
    use crate::task::{RegionParam, TaskDecl};
    use regent_geometry::Domain;
    use regent_region::{ops, FieldSpace, FieldType};
    use std::sync::Arc;

    fn setup() -> (
        ProgramBuilder,
        regent_region::PartitionId,
        crate::task::TaskId,
    ) {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let t = b.task(TaskDecl {
            name: "t".into(),
            params: vec![RegionParam::read(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(|_| {}),
            cost_per_element: 1.0,
        });
        (b, p, t)
    }

    #[test]
    fn affine_projection_normalized() {
        let (mut b, p, t) = setup();
        b.index_launch(
            t,
            4,
            vec![RegionArg::PartProj(
                p,
                Projection::AffineOffset {
                    offset: 1,
                    modulus: Some(4),
                },
            )],
        );
        let mut prog = b.build();
        let stats = normalize_projections(&mut prog);
        assert_eq!(stats.rewritten, 1);
        let q = match &prog.body[0] {
            Stmt::IndexLaunch(il) => match il.args[0] {
                RegionArg::Part(q) => q,
                ref other => panic!("not normalized: {other:?}"),
            },
            _ => unreachable!(),
        };
        // q[i] must equal p[(i+1) mod 4].
        for i in 0..4i64 {
            let qi = prog.forest.subregion_i(q, i);
            let pf = prog.forest.subregion_i(p, (i + 1) % 4);
            assert!(prog.forest.domain(qi).set_eq(prog.forest.domain(pf)));
        }
        // Injective projection preserves disjointness.
        assert_eq!(
            prog.forest.partition(q).disjointness,
            Disjointness::Disjoint
        );
    }

    #[test]
    fn non_injective_projection_aliased() {
        let (mut b, p, t) = setup();
        b.index_launch(
            t,
            4,
            vec![RegionArg::PartProj(
                p,
                Projection::Fn(Arc::new(|_| regent_geometry::DynPoint::from(0))),
            )],
        );
        let mut prog = b.build();
        normalize_projections(&mut prog);
        let q = match &prog.body[0] {
            Stmt::IndexLaunch(il) => match il.args[0] {
                RegionArg::Part(q) => q,
                _ => panic!(),
            },
            _ => unreachable!(),
        };
        assert_eq!(prog.forest.partition(q).disjointness, Disjointness::Aliased);
    }

    #[test]
    fn idempotent() {
        let (mut b, p, t) = setup();
        b.index_launch(t, 4, vec![RegionArg::Part(p)]);
        let mut prog = b.build();
        let stats = normalize_projections(&mut prog);
        assert_eq!(stats.rewritten, 0);
        assert_eq!(prog.forest.num_partitions(), 1);
    }
}
