//! # regent-fault
//!
//! Deterministic, seeded fault plans shared by the machine simulator
//! (`regent-machine`) and the real SPMD executor (`regent-runtime`).
//!
//! The paper's SPMD shards coordinate purely through point-to-point
//! synchronization (§3.4), so a single failed shard stalls every peer.
//! This crate provides the *model* of what can fail — it decides
//! nothing about recovery, which lives with each consumer:
//!
//! * **Scheduled events** ([`FaultEvent`]) — a shard crash at a given
//!   epoch (real executor: an outermost-loop iteration; simulator: a
//!   time step), or a transient node slowdown window in virtual time.
//! * **Probabilistic message faults** — per-copy loss, duplication,
//!   and delay decided by a pure hash of `(seed, message key,
//!   attempt)`, so the same plan produces the same fault sequence on
//!   every run regardless of thread or event interleaving.
//! * **[`RetryPolicy`]** — per-copy timeout with exponential backoff,
//!   the recovery half of the message-loss model.
//! * **Silent data corruption** — seeded bit-flip injection into
//!   resident instance buffers and in-flight exchange payloads
//!   ([`FaultPlan::with_corrupt_rate`]), decided by pure hashes of the
//!   message / epoch identity so that injection, detection, and repair
//!   are reproducible and every SPMD shard reaches the same rollback
//!   decision without communicating.
//! * **[`FaultStats`]** — what actually happened (losses, retries,
//!   crashes, corruptions, replayed epochs), accumulated by the
//!   consumers and surfaced in `SimResult` / bench output.
//!
//! Determinism is the whole point: the test suites assert that a run
//! under an active fault plan is reproducible (same seed ⇒ same
//! schedule) and that checkpoint–restart recovery yields bit-identical
//! results to a fault-free run.

#![warn(missing_docs)]

/// One scheduled (non-probabilistic) fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A shard (real executor) or node (simulator) crashes at the start
    /// of the given epoch / time step, losing all state since the last
    /// checkpoint.
    ShardCrash {
        /// The shard or node that dies.
        shard: u32,
        /// Zero-based epoch (outermost-loop iteration / time step) at
        /// whose start the crash is injected.
        epoch: u64,
    },
    /// A shard thread is *killed* at the given epoch boundary: unlike
    /// [`FaultEvent::ShardCrash`] (which rolls the surviving thread
    /// back to its own checkpoint), a kill removes the shard from the
    /// membership entirely. Survivors must reconstruct its state and
    /// continue on N−1 shards (live failover) or fail the run.
    ShardKill {
        /// The shard whose thread dies.
        shard: u32,
        /// Zero-based epoch at whose boundary the kill fires. The kill
        /// is injected *after* the boundary checkpoint is offered, so
        /// the kill-epoch checkpoint is the one survivors recover from.
        epoch: u64,
    },
    /// A shard thread *stalls* (sleeps, then continues) at the given
    /// epoch boundary. A stall longer than the hang timeout
    /// (`REGENT_HANG_TIMEOUT_MS`) makes the victim's consumers time
    /// out, blame the producer as hung, and unwind — the detection path
    /// live failover recovers from without the victim ever panicking on
    /// its own.
    ShardStall {
        /// The shard that stalls.
        shard: u32,
        /// Zero-based epoch at whose boundary the stall fires.
        epoch: u64,
        /// Stall length, milliseconds. Choose ≥ 2× the hang timeout to
        /// guarantee detection; the victim sleeps the full length, so
        /// the attempt cannot outlive it.
        ms: u64,
    },
    /// A node serves work `factor`× slower during `[start, start +
    /// duration)` of virtual time (simulator only).
    Slowdown {
        /// The affected node.
        node: u32,
        /// Window start, virtual seconds.
        start: f64,
        /// Window length, virtual seconds.
        duration: f64,
        /// Service-time multiplier (> 1 slows the node down).
        factor: f64,
    },
}

/// What the fault plan decides for one delivery attempt of a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered normally.
    Deliver,
    /// Lost in flight: the sender times out and retransmits.
    Lose,
    /// Delivered twice; the duplicate wastes bandwidth and must be
    /// deduplicated by the receiver.
    Duplicate,
    /// Delivered after an extra in-flight delay.
    Delay,
}

/// Timeout-and-retransmit policy for lost copies.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Time the sender waits for an acknowledgement before the first
    /// retransmit, seconds.
    pub timeout: f64,
    /// Backoff multiplier applied per failed attempt (attempt `k`
    /// waits `timeout × multiplier^k`).
    pub backoff: f64,
    /// Attempts after which the delivery is forced through (the model
    /// must make progress; a real transport would escalate to a node
    /// failure instead).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 100.0e-6,
            backoff: 2.0,
            max_attempts: 10,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retransmitting after failed attempt
    /// `attempt` (zero-based).
    pub fn backoff_delay(&self, attempt: u32) -> f64 {
        self.timeout * self.backoff.powi(attempt.min(self.max_attempts) as i32)
    }
}

/// A deterministic fault plan: scheduled events plus seeded
/// probabilistic message faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Scheduled crash / slowdown events.
    pub events: Vec<FaultEvent>,
    /// Probability a message attempt is lost in flight.
    pub loss_rate: f64,
    /// Probability a delivered message is duplicated.
    pub dup_rate: f64,
    /// Probability a delivered message is delayed by [`FaultPlan::delay_s`].
    pub delay_rate: f64,
    /// Extra in-flight delay applied to delayed messages, seconds.
    pub delay_s: f64,
    /// Probability of a silent bit flip: per delivery attempt for
    /// exchange payloads ([`FaultPlan::payload_corruption`]), per epoch
    /// for resident instances ([`FaultPlan::resident_corruption`]).
    pub corrupt_rate: f64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a shard/node crash at the start of `epoch`.
    pub fn crash_shard(mut self, shard: u32, epoch: u64) -> Self {
        self.events.push(FaultEvent::ShardCrash { shard, epoch });
        self
    }

    /// Adds a shard-thread kill (membership loss) at the boundary of
    /// `epoch`.
    pub fn kill_shard(mut self, shard: u32, epoch: u64) -> Self {
        self.events.push(FaultEvent::ShardKill { shard, epoch });
        self
    }

    /// Adds a shard-thread stall (hang-detection trigger) of `ms`
    /// milliseconds at the boundary of `epoch`.
    pub fn stall_shard(mut self, shard: u32, epoch: u64, ms: u64) -> Self {
        self.events
            .push(FaultEvent::ShardStall { shard, epoch, ms });
        self
    }

    /// Adds a transient slowdown window on `node`.
    pub fn slow_node(mut self, node: u32, start: f64, duration: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::Slowdown {
            node,
            start,
            duration,
            factor,
        });
        self
    }

    /// Sets the message loss rate.
    pub fn with_loss_rate(mut self, rate: f64) -> Self {
        self.loss_rate = rate;
        self
    }

    /// Sets the message duplication rate.
    pub fn with_dup_rate(mut self, rate: f64) -> Self {
        self.dup_rate = rate;
        self
    }

    /// Sets the message delay rate and the per-message extra delay.
    pub fn with_delay(mut self, rate: f64, delay_s: f64) -> Self {
        self.delay_rate = rate;
        self.delay_s = delay_s;
        self
    }

    /// Sets the silent-data-corruption rate.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// The `--faults <seed>,<rate>` plan of the figure binaries:
    /// message loss at `rate` with everything else clean.
    pub fn from_seed_rate(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed).with_loss_rate(rate)
    }

    /// A seeded single-shard crash for a machine of `num_shards`
    /// shards: the crashing shard and the crash epoch (in
    /// `1..=max_epoch`) are both drawn from the seed. Used by the
    /// `REGENT_FAULT_SEED` CI smoke path.
    pub fn seeded_crash(seed: u64, num_shards: usize, max_epoch: u64) -> Self {
        let h1 = splitmix64(seed ^ 0xC2B2_AE3D_27D4_EB4F);
        let h2 = splitmix64(h1);
        let shard = (h1 % num_shards.max(1) as u64) as u32;
        let epoch = 1 + h2 % max_epoch.max(1);
        FaultPlan::new(seed).crash_shard(shard, epoch)
    }

    /// A seeded single-shard *kill* (membership loss, not rollback) for
    /// a machine of `num_shards` shards: victim and epoch drawn from
    /// the seed exactly like [`FaultPlan::seeded_crash`], but salted so
    /// the same seed produces different (shard, epoch) choices for the
    /// two fault kinds.
    pub fn seeded_kill(seed: u64, num_shards: usize, max_epoch: u64) -> Self {
        let h1 = splitmix64(seed ^ KILL_SALT);
        let h2 = splitmix64(h1);
        let shard = (h1 % num_shards.max(1) as u64) as u32;
        let epoch = 1 + h2 % max_epoch.max(1);
        FaultPlan::new(seed).kill_shard(shard, epoch)
    }

    /// Reads `REGENT_FAULT_SEED` from the environment: `Some(seed)`
    /// when set to a valid integer, `None` otherwise. Consumers use the
    /// seed to derive an injection plan so that plain test runs
    /// exercise the recovery paths in CI.
    pub fn seed_from_env() -> Option<u64> {
        parse_seed(&std::env::var("REGENT_FAULT_SEED").ok()?)
    }

    /// Reads `REGENT_CORRUPT` (format `<seed>,<rate>`) from the
    /// environment. Any malformed or out-of-range value falls back to
    /// `None` — corruption injection is never half-enabled.
    pub fn corrupt_from_env() -> Option<(u64, f64)> {
        parse_corrupt_spec(&std::env::var("REGENT_CORRUPT").ok()?)
    }

    /// True when the plan can do anything at all.
    pub fn is_active(&self) -> bool {
        !self.events.is_empty()
            || self.loss_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || self.corrupt_rate > 0.0
    }

    /// True when the plan schedules at least one crash.
    pub fn has_crashes(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::ShardCrash { .. }))
    }

    /// True when the plan schedules at least one shard kill.
    pub fn has_kills(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::ShardKill { .. }))
    }

    /// All kill events `(shard, epoch)`, sorted by epoch then shard —
    /// the deterministic order consumers process them in.
    pub fn kill_schedule(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ShardKill { shard, epoch } => Some((shard, epoch)),
                _ => None,
            })
            .collect();
        v.sort_by_key(|&(s, e)| (e, s));
        v
    }

    /// Reads the kill-schedule environment: `REGENT_KILL` (explicit
    /// `<shard>@<epoch>[,<shard>@<epoch>...]` schedule) takes
    /// precedence over `REGENT_KILL_SEED` (a seeded single kill drawn
    /// by [`FaultPlan::seeded_kill`] for `num_shards` shards with kill
    /// epochs in `1..=4`). Returns `None` when neither is set or the
    /// value is malformed — kill injection is never half-enabled.
    pub fn kills_from_env(num_shards: usize) -> Option<FaultPlan> {
        if let Ok(spec) = std::env::var("REGENT_KILL") {
            return parse_kill_spec(&spec);
        }
        let seed = parse_seed(&std::env::var("REGENT_KILL_SEED").ok()?)?;
        Some(FaultPlan::seeded_kill(seed, num_shards, 4))
    }

    /// All stall events `(shard, epoch, ms)`, sorted by epoch then
    /// shard — the deterministic order consumers process them in.
    pub fn stall_schedule(&self) -> Vec<(u32, u64, u64)> {
        let mut v: Vec<(u32, u64, u64)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ShardStall { shard, epoch, ms } => Some((shard, epoch, ms)),
                _ => None,
            })
            .collect();
        v.sort_by_key(|&(s, e, _)| (e, s));
        v
    }

    /// All crash events `(shard, epoch)`, sorted by epoch then shard —
    /// the deterministic order consumers process them in.
    pub fn crash_schedule(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ShardCrash { shard, epoch } => Some((shard, epoch)),
                _ => None,
            })
            .collect();
        v.sort_by_key(|&(s, e)| (e, s));
        v
    }

    /// Combined slowdown factor for work starting at virtual time `t`
    /// on `node` (1.0 when no window applies; overlapping windows
    /// multiply).
    pub fn slowdown_factor(&self, node: u32, t: f64) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if let FaultEvent::Slowdown {
                node: n,
                start,
                duration,
                factor,
            } = *e
            {
                if n == node && t >= start && t < start + duration {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Decides the fate of delivery attempt `attempt` of the message
    /// identified by `key`. Pure function of `(seed, key, attempt)` —
    /// identical across runs and independent of scheduling order.
    pub fn message_fate(&self, key: u64, attempt: u32) -> MessageFate {
        if self.loss_rate == 0.0 && self.dup_rate == 0.0 && self.delay_rate == 0.0 {
            return MessageFate::Deliver;
        }
        let h = splitmix64(self.seed ^ splitmix64(key ^ ((attempt as u64) << 48)));
        let u = unit_f64(h);
        if u < self.loss_rate {
            MessageFate::Lose
        } else if u < self.loss_rate + self.dup_rate {
            MessageFate::Duplicate
        } else if u < self.loss_rate + self.dup_rate + self.delay_rate {
            MessageFate::Delay
        } else {
            MessageFate::Deliver
        }
    }

    /// Decides whether delivery attempt `attempt` of the exchange
    /// payload identified by `key` (see [`message_key`]) suffers a
    /// silent bit flip in flight. Returns the flip entropy when it
    /// does. Pure function of `(seed, key, attempt)`: sender and
    /// receiver — and a replayed epoch after rollback — all see the
    /// same corruption stream. Salted separately from
    /// [`FaultPlan::message_fate`] so corruption and loss decisions for
    /// the same attempt are independent.
    pub fn payload_corruption(&self, key: u64, attempt: u32) -> Option<u64> {
        if self.corrupt_rate <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.seed ^ CORRUPT_PAYLOAD_SALT ^ splitmix64(key ^ ((attempt as u64) << 48)),
        );
        (unit_f64(h) < self.corrupt_rate).then(|| splitmix64(h))
    }

    /// Decides whether a resident instance is silently corrupted during
    /// `epoch`: `Some((victim_shard, entropy))` when one is. Pure
    /// function of `(seed, epoch, num_shards)`, so every shard in a
    /// control-replicated run independently reaches the same rollback
    /// decision — the victim flips a bit and detects the stale seal,
    /// while its peers roll back in lockstep without any message.
    pub fn resident_corruption(&self, epoch: u64, num_shards: usize) -> Option<(u32, u64)> {
        if self.corrupt_rate <= 0.0 || num_shards == 0 {
            return None;
        }
        let h = splitmix64(self.seed ^ CORRUPT_RESIDENT_SALT ^ splitmix64(epoch));
        if unit_f64(h) < self.corrupt_rate {
            let h2 = splitmix64(h);
            Some(((h2 % num_shards as u64) as u32, splitmix64(h2)))
        } else {
            None
        }
    }
}

/// Domain-separation salt for seeded kill (membership-loss) draws.
const KILL_SALT: u64 = 0x9E6C_63D0_0A1B_4F2D;
/// Domain-separation salt for in-flight payload corruption decisions.
const CORRUPT_PAYLOAD_SALT: u64 = 0x5DEE_CE66_D10C_E1A5;
/// Domain-separation salt for resident-instance corruption decisions.
const CORRUPT_RESIDENT_SALT: u64 = 0x27BB_2EE6_87B0_B0FD;

/// Parses a `REGENT_FAULT_SEED`-style value: a bare unsigned integer,
/// surrounding whitespace tolerated. `None` on anything else (empty,
/// signed, non-numeric, overflow) — callers fall back to a fault-free
/// run instead of panicking.
pub fn parse_seed(s: &str) -> Option<u64> {
    s.trim().parse().ok()
}

/// Parses a `REGENT_CORRUPT` / `--corrupt` spec: `<seed>,<rate>` where
/// `seed` is an unsigned integer and `rate` a probability in
/// `[0.0, 1.0]`. Rejects (returns `None`) on a missing comma, empty or
/// malformed components, non-finite rates, and rates outside `[0, 1]`.
pub fn parse_corrupt_spec(s: &str) -> Option<(u64, f64)> {
    let (seed, rate) = s.split_once(',')?;
    let seed = parse_seed(seed)?;
    let rate: f64 = rate.trim().parse().ok()?;
    (rate.is_finite() && (0.0..=1.0).contains(&rate)).then_some((seed, rate))
}

/// Parses a `REGENT_KILL` kill schedule: a comma-separated list of
/// `<shard>@<epoch>` entries. Rejects (returns `None`) on empty
/// specs, missing `@`, or malformed components — a malformed schedule
/// disables injection rather than killing the wrong shard.
pub fn parse_kill_spec(s: &str) -> Option<FaultPlan> {
    let mut plan = FaultPlan::default();
    for entry in s.split(',') {
        let (shard, epoch) = entry.split_once('@')?;
        let shard: u32 = shard.trim().parse().ok()?;
        let epoch: u64 = epoch.trim().parse().ok()?;
        plan = plan.kill_shard(shard, epoch);
    }
    plan.has_kills().then_some(plan)
}

/// Stable identity of a simulated or real message, for
/// [`FaultPlan::message_fate`]. Built from scheduling-order-independent
/// coordinates (kind/node/step/occurrence, or copy/pair/occurrence) so
/// that permuting construction order does not re-roll the dice.
pub fn message_key(a: u64, b: u64, c: u64, d: u64) -> u64 {
    splitmix64(a ^ splitmix64(b ^ splitmix64(c ^ splitmix64(d))))
}

/// What a fault-injected run actually experienced.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Message attempts lost in flight (each triggers a retransmit).
    pub messages_lost: u64,
    /// Messages delivered twice.
    pub messages_duplicated: u64,
    /// Messages delivered late.
    pub messages_delayed: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Deliveries forced through after exhausting
    /// [`RetryPolicy::max_attempts`].
    pub forced_deliveries: u64,
    /// Total backoff time spent waiting for retransmits, seconds.
    pub total_backoff_s: f64,
    /// Crashes injected.
    pub crashes: u64,
    /// Silent bit flips injected (payload or resident).
    pub corruptions_injected: u64,
    /// Checksum mismatches detected at a verification point.
    pub corruptions_detected: u64,
    /// Corruptions repaired locally (payload retransmit).
    pub corruptions_repaired: u64,
    /// Corruptions escalated to coordinated checkpoint rollback
    /// (resident) or reported as a failed run (retry exhaustion).
    pub corruptions_escalated: u64,
    /// Epochs / time steps re-executed during recovery.
    pub epochs_replayed: u64,
    /// Time spent in recovery (detection + state re-distribution),
    /// seconds of virtual time (simulator only).
    pub recovery_time_s: f64,
}

impl FaultStats {
    /// Accumulates another record into this one.
    pub fn merge(&mut self, o: &FaultStats) {
        self.messages_lost += o.messages_lost;
        self.messages_duplicated += o.messages_duplicated;
        self.messages_delayed += o.messages_delayed;
        self.retries += o.retries;
        self.forced_deliveries += o.forced_deliveries;
        self.total_backoff_s += o.total_backoff_s;
        self.crashes += o.crashes;
        self.corruptions_injected += o.corruptions_injected;
        self.corruptions_detected += o.corruptions_detected;
        self.corruptions_repaired += o.corruptions_repaired;
        self.corruptions_escalated += o.corruptions_escalated;
        self.epochs_replayed += o.epochs_replayed;
        self.recovery_time_s += o.recovery_time_s;
    }
}

/// SplitMix64 — the workspace's standard dependency-free mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Why a shard left the membership. Carried through barrier poisoning
/// and ring seals as structured data (not a string diagnostic) so
/// survivors — and `regent-prof` — can tell *who* died and *why*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeathCause {
    /// An injected membership kill ([`FaultEvent::ShardKill`]) fired at
    /// the given epoch boundary.
    Killed {
        /// The epoch boundary at which the kill fired.
        epoch: u64,
    },
    /// The shard thread panicked (application or runtime defect, or an
    /// injected transient).
    Panicked,
    /// A peer blamed this shard for a hang: it failed to produce an
    /// expected message within the hang timeout.
    Hung,
}

/// A structured shard-death record: who died and why. Recorded on the
/// executor's death board by the victim (kill, panic) or by the
/// blaming waiter (hang), and carried through `ShardBarrier` poisoning
/// and ring seals in place of the old string-only diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerDeath {
    /// The shard that left the membership.
    pub shard: u32,
    /// Why it left.
    pub cause: DeathCause,
}

impl std::fmt::Display for PeerDeath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cause {
            DeathCause::Killed { epoch } => {
                write!(f, "shard {} killed at epoch {}", self.shard, epoch)
            }
            DeathCause::Panicked => write!(f, "shard {} panicked", self.shard),
            DeathCause::Hung => write!(f, "shard {} hung past the timeout", self.shard),
        }
    }
}

/// Diagnostic prefix of a shard-loss unwind: a shard left the
/// membership (injected kill or unrecoverable thread death) and the
/// attempt cannot finish at full membership. [`classify_failure`] maps
/// it to [`FailureClass::Transient`] — a failover-capable supervisor
/// recovers in place on N−1 shards; a plain one retries from scratch.
pub const SHARD_LOSS_PREFIX: &str = "shard lost";

/// Diagnostic prefix emitted when live failover gives up: the run lost
/// more shards than `REGENT_FAILOVER_MAX` allows (or membership hit
/// the floor). Classified [`FailureClass::Permanent`] — retrying the
/// same plan would lose the same shards again.
pub const FAILOVER_EXHAUSTED_PREFIX: &str = "failover budget exhausted";

/// Diagnostic prefix of a cooperative cancellation unwind (deadline
/// exhaustion or explicit supervisor cancel). The cancellation token
/// panics with this prefix; [`classify_failure`] maps it back to
/// [`FailureClass::Cancelled`].
pub const CANCEL_PREFIX: &str = "job cancelled";

/// Diagnostic prefix of an injected transient fault — a deterministic,
/// seeded "machine hiccup" a supervisor should retry through rather
/// than surface.
pub const TRANSIENT_PREFIX: &str = "injected transient fault";

/// Supervisor-level classification of a failed executor run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The job was cooperatively cancelled (deadline budget exhausted
    /// or an explicit supervisor cancel): terminal, do not retry, not a
    /// defect.
    Cancelled,
    /// A transient environmental fault (injected transient, likely
    /// deadlock under load): retry with backoff is warranted.
    Transient,
    /// Anything else — an application or runtime defect. Retrying
    /// cannot help; the job must be quarantined.
    Permanent,
}

/// Classifies a panic diagnostic captured from an executor run (the
/// aggregated shard-failure message). Matching is substring-based
/// because the executors wrap the root cause ("shard 3 panicked:
/// ...").
///
/// * [`FAILOVER_EXHAUSTED_PREFIX`] → [`FailureClass::Permanent`]
///   (checked first: the exhausted message wraps the underlying
///   shard-loss diagnostic, which alone would read as transient)
/// * [`CANCEL_PREFIX`] → [`FailureClass::Cancelled`]
/// * [`TRANSIENT_PREFIX`], [`SHARD_LOSS_PREFIX`], or a
///   `"likely deadlock"` hang-timeout diagnostic →
///   [`FailureClass::Transient`]
/// * everything else → [`FailureClass::Permanent`]
pub fn classify_failure(msg: &str) -> FailureClass {
    if msg.contains(FAILOVER_EXHAUSTED_PREFIX) {
        FailureClass::Permanent
    } else if msg.contains(CANCEL_PREFIX) {
        FailureClass::Cancelled
    } else if msg.contains(TRANSIENT_PREFIX)
        || msg.contains(SHARD_LOSS_PREFIX)
        || msg.contains("likely deadlock")
    {
        FailureClass::Transient
    } else {
        FailureClass::Permanent
    }
}

/// Seeded exponential backoff with deterministic jitter for
/// supervisor-level job retries. Unlike [`RetryPolicy`] (the
/// message-retransmit policy of the simulated transport), this is
/// wall-clock milliseconds, and the jitter is derived from
/// `(seed, job, attempt)` so a replayed serving run backs off
/// identically.
#[derive(Clone, Copy, Debug)]
pub struct RetryBackoff {
    /// Base delay before the first retry, milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per failed attempt.
    pub multiplier: f64,
    /// Upper bound on any single delay, milliseconds.
    pub cap_ms: u64,
    /// Attempts after which the job is declared permanently failed.
    pub max_attempts: u32,
}

impl Default for RetryBackoff {
    fn default() -> Self {
        RetryBackoff {
            base_ms: 10,
            multiplier: 2.0,
            cap_ms: 2_000,
            max_attempts: 3,
        }
    }
}

impl RetryBackoff {
    /// Delay before retrying failed attempt `attempt` (zero-based) of
    /// `job`, in milliseconds: `min(cap, base × multiplier^attempt)`
    /// plus up to 50% seeded jitter (full-jitter on the top half, the
    /// standard thundering-herd mitigation).
    pub fn delay_ms(&self, seed: u64, job: u64, attempt: u32) -> u64 {
        let raw = self.base_ms as f64 * self.multiplier.powi(attempt.min(63) as i32);
        let capped = raw.min(self.cap_ms as f64);
        let h = splitmix64(seed ^ splitmix64(job ^ splitmix64(0x4241_434B ^ attempt as u64)));
        let jitter = unit_f64(h); // [0, 1)
        (capped * (0.5 + 0.5 * jitter)) as u64
    }

    /// Whether attempt `attempt` (zero-based, counting the first run
    /// as 0) may be followed by another try.
    pub fn may_retry(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_classification() {
        assert_eq!(
            classify_failure("shard 2 panicked: job cancelled: deadline budget exhausted"),
            FailureClass::Cancelled
        );
        assert_eq!(
            classify_failure("shard 0 panicked: injected transient fault: shard 0 unavailable"),
            FailureClass::Transient
        );
        assert_eq!(
            classify_failure("likely deadlock: shard 1 waited 30s on copy 0 pair 2"),
            FailureClass::Transient
        );
        assert_eq!(
            classify_failure("index out of bounds: the len is 4"),
            FailureClass::Permanent
        );
    }

    #[test]
    fn failover_classification() {
        // Shard loss is transient: a failover-capable supervisor
        // recovers in place, a plain one retries.
        assert_eq!(
            classify_failure("shard 1 panicked: shard lost: shard 1 killed at epoch 2"),
            FailureClass::Transient
        );
        // Exhausted failover budget is permanent even though the
        // wrapped message carries the transient shard-loss marker.
        assert_eq!(
            classify_failure(
                "failover budget exhausted after 2 membership changes: \
                 shard lost: shard 0 killed at epoch 3"
            ),
            FailureClass::Permanent
        );
    }

    #[test]
    fn kill_schedule_sorted_and_separate_from_crashes() {
        let p = FaultPlan::new(0)
            .kill_shard(3, 9)
            .crash_shard(1, 2)
            .kill_shard(0, 9)
            .kill_shard(2, 1);
        assert_eq!(p.kill_schedule(), vec![(2, 1), (0, 9), (3, 9)]);
        assert_eq!(p.crash_schedule(), vec![(1, 2)]);
        assert!(p.has_kills() && p.has_crashes() && p.is_active());
        assert!(!FaultPlan::new(0).crash_shard(1, 2).has_kills());
    }

    #[test]
    fn seeded_kill_in_bounds_and_salted() {
        for seed in 0..50 {
            let sched = FaultPlan::seeded_kill(seed, 4, 3).kill_schedule();
            assert_eq!(sched.len(), 1);
            let (shard, epoch) = sched[0];
            assert!(shard < 4);
            assert!((1..=3).contains(&epoch));
        }
        // The kill draw is salted independently of the crash draw:
        // the same seed must not always pick the same victim/epoch.
        let diverges = (0..50).any(|s| {
            FaultPlan::seeded_kill(s, 4, 4).kill_schedule()
                != FaultPlan::seeded_crash(s, 4, 4).crash_schedule()
        });
        assert!(diverges, "kill and crash draws are not salted apart");
    }

    #[test]
    fn parse_kill_spec_edge_cases() {
        let p = parse_kill_spec("1@2").expect("valid spec");
        assert_eq!(p.kill_schedule(), vec![(1, 2)]);
        let p = parse_kill_spec(" 2@1 , 0@3 ").expect("valid multi spec");
        assert_eq!(p.kill_schedule(), vec![(2, 1), (0, 3)]);
        for bad in ["", "@", "1@", "@2", "1", "a@2", "1@b", "1@2,", "1@2;0@3"] {
            assert!(parse_kill_spec(bad).is_none(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn peer_death_display() {
        let d = PeerDeath {
            shard: 2,
            cause: DeathCause::Killed { epoch: 3 },
        };
        assert_eq!(d.to_string(), "shard 2 killed at epoch 3");
        let d = PeerDeath {
            shard: 0,
            cause: DeathCause::Panicked,
        };
        assert_eq!(d.to_string(), "shard 0 panicked");
        let d = PeerDeath {
            shard: 1,
            cause: DeathCause::Hung,
        };
        assert_eq!(d.to_string(), "shard 1 hung past the timeout");
        // The standard unwind wrapping stays transient end to end.
        assert_eq!(
            classify_failure(&format!("{SHARD_LOSS_PREFIX}: {d}")),
            FailureClass::Transient
        );
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let b = RetryBackoff::default();
        // Deterministic per (seed, job, attempt).
        assert_eq!(b.delay_ms(1, 7, 0), b.delay_ms(1, 7, 0));
        // Jitter separates jobs.
        let spread = (0..64u64).map(|j| b.delay_ms(1, j, 2)).collect::<Vec<_>>();
        assert!(spread.iter().any(|&d| d != spread[0]));
        // Every delay stays within [base/2, cap] for its attempt.
        for attempt in 0..16 {
            for job in 0..32u64 {
                let d = b.delay_ms(9, job, attempt);
                assert!(d <= b.cap_ms, "delay {d} above cap");
                let nominal =
                    (b.base_ms as f64 * b.multiplier.powi(attempt as i32)).min(b.cap_ms as f64);
                assert!(
                    d as f64 >= nominal * 0.5 - 1.0,
                    "delay {d} below jitter floor"
                );
            }
        }
        // Attempt budget: first run is attempt 0.
        assert!(b.may_retry(0) && b.may_retry(1) && !b.may_retry(2));
    }

    #[test]
    fn message_fate_is_deterministic() {
        let p = FaultPlan::new(7).with_loss_rate(0.3).with_dup_rate(0.1);
        for key in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(
                    p.message_fate(key, attempt),
                    p.message_fate(key, attempt),
                    "key {key} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let p = FaultPlan::new(42).with_loss_rate(0.25);
        let n = 20_000;
        let lost = (0..n)
            .filter(|&k| p.message_fate(k, 0) == MessageFate::Lose)
            .count();
        let frac = lost as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed loss rate {frac}");
    }

    #[test]
    fn different_seeds_different_fates() {
        let a = FaultPlan::new(1).with_loss_rate(0.5);
        let b = FaultPlan::new(2).with_loss_rate(0.5);
        let diff = (0..1000u64)
            .filter(|&k| a.message_fate(k, 0) != b.message_fate(k, 0))
            .count();
        assert!(diff > 200, "seeds barely changed the plan: {diff}");
    }

    #[test]
    fn attempts_reroll() {
        // A lost first attempt must not doom every retry: with 50%
        // loss, some messages lost at attempt 0 succeed at attempt 1.
        let p = FaultPlan::new(3).with_loss_rate(0.5);
        let recovered = (0..1000u64)
            .filter(|&k| {
                p.message_fate(k, 0) == MessageFate::Lose
                    && p.message_fate(k, 1) == MessageFate::Deliver
            })
            .count();
        assert!(recovered > 50, "retries never recover: {recovered}");
    }

    #[test]
    fn slowdown_windows() {
        let p = FaultPlan::new(0).slow_node(2, 1.0, 2.0, 3.0);
        assert_eq!(p.slowdown_factor(2, 0.5), 1.0);
        assert_eq!(p.slowdown_factor(2, 1.0), 3.0);
        assert_eq!(p.slowdown_factor(2, 2.9), 3.0);
        assert_eq!(p.slowdown_factor(2, 3.0), 1.0);
        assert_eq!(p.slowdown_factor(1, 1.5), 1.0);
        // Overlapping windows compound.
        let p = p.slow_node(2, 0.0, 10.0, 2.0);
        assert_eq!(p.slowdown_factor(2, 1.5), 6.0);
    }

    #[test]
    fn crash_schedule_sorted() {
        let p = FaultPlan::new(0)
            .crash_shard(3, 9)
            .crash_shard(1, 2)
            .crash_shard(0, 9);
        assert_eq!(p.crash_schedule(), vec![(1, 2), (0, 9), (3, 9)]);
        assert!(p.has_crashes());
        assert!(p.is_active());
    }

    #[test]
    fn seeded_crash_in_bounds() {
        for seed in 0..50 {
            let p = FaultPlan::seeded_crash(seed, 4, 3);
            let sched = p.crash_schedule();
            assert_eq!(sched.len(), 1);
            let (shard, epoch) = sched[0];
            assert!(shard < 4);
            assert!((1..=3).contains(&epoch));
        }
        // Different seeds hit different shards eventually.
        let shards: std::collections::HashSet<u32> = (0..50)
            .map(|s| FaultPlan::seeded_crash(s, 4, 3).crash_schedule()[0].0)
            .collect();
        assert!(shards.len() > 1);
    }

    #[test]
    fn retry_backoff_grows() {
        let r = RetryPolicy::default();
        assert!(r.backoff_delay(1) > r.backoff_delay(0));
        assert_eq!(r.backoff_delay(0), r.timeout);
        assert_eq!(r.backoff_delay(2), r.timeout * 4.0);
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new(99);
        assert!(!p.is_active());
        assert_eq!(p.message_fate(123, 0), MessageFate::Deliver);
        assert_eq!(p.slowdown_factor(0, 5.0), 1.0);
        assert!(p.crash_schedule().is_empty());
    }

    /// Satellite: golden determinism. The seeded streams are pure
    /// integer arithmetic and must produce byte-identical schedules on
    /// every platform; these committed values catch any drift in the
    /// SplitMix64 mixing or the fate thresholds.
    #[test]
    fn golden_crash_schedules() {
        let golden: &[(u64, u32, u64)] = &[
            (0, 0, 4),
            (1, 1, 3),
            (7, 1, 4),
            (42, 3, 2),
            (12345, 2, 3),
            (u64::MAX, 0, 3),
        ];
        for &(seed, shard, epoch) in golden {
            let sched = FaultPlan::seeded_crash(seed, 4, 4).crash_schedule();
            assert_eq!(
                sched,
                vec![(shard, epoch)],
                "seeded_crash({seed}, 4, 4) drifted"
            );
        }
    }

    #[test]
    fn golden_message_fates() {
        use MessageFate::{Delay, Deliver, Duplicate, Lose};
        let p = FaultPlan::new(7)
            .with_loss_rate(0.3)
            .with_dup_rate(0.2)
            .with_delay(0.1, 1e-6);
        let fates: Vec<MessageFate> = (0..8u64)
            .flat_map(|k| (0..2u32).map(move |a| (k, a)))
            .map(|(k, a)| p.message_fate(message_key(1, k, a as u64, 0), a))
            .collect();
        let golden = vec![
            Deliver, Deliver, Duplicate, Duplicate, Deliver, Lose, Deliver, Delay, Duplicate,
            Delay, Deliver, Deliver, Delay, Deliver, Lose, Duplicate,
        ];
        assert_eq!(fates, golden, "seeded fate stream drifted");
    }

    #[test]
    fn golden_corruption_stream() {
        let p = FaultPlan::new(11).with_corrupt_rate(0.25);
        let hits: Vec<u32> = (0..32u64)
            .filter(|&k| p.payload_corruption(message_key(2, k, 0, 0), 0).is_some())
            .map(|k| k as u32)
            .collect();
        assert_eq!(
            hits,
            vec![10, 18, 23, 28],
            "payload corruption stream drifted"
        );
        let residents: Vec<(u64, u32)> = (0..32u64)
            .filter_map(|e| p.resident_corruption(e, 4).map(|(s, _)| (e, s)))
            .collect();
        assert_eq!(
            residents,
            vec![(1, 2), (19, 0), (24, 1), (28, 1)],
            "resident corruption stream drifted"
        );
    }

    #[test]
    fn payload_corruption_is_pure_and_rerolls() {
        let p = FaultPlan::new(5).with_corrupt_rate(0.5);
        let mut hit = 0;
        let mut recovered = 0;
        for k in 0..1000u64 {
            assert_eq!(p.payload_corruption(k, 0), p.payload_corruption(k, 0));
            if p.payload_corruption(k, 0).is_some() {
                hit += 1;
                if p.payload_corruption(k, 1).is_none() {
                    recovered += 1;
                }
            }
        }
        assert!((400..600).contains(&hit), "rate not honored: {hit}");
        assert!(recovered > 100, "retransmits never come back clean");
        // Corruption is independent of the loss fate for the same key.
        let q = p.clone().with_loss_rate(0.5);
        assert_eq!(p.payload_corruption(77, 0), q.payload_corruption(77, 0));
    }

    #[test]
    fn resident_corruption_bounds() {
        let p = FaultPlan::new(9).with_corrupt_rate(1.0);
        for e in 0..50 {
            let (shard, _) = p.resident_corruption(e, 3).expect("rate 1.0 always fires");
            assert!(shard < 3);
        }
        assert_eq!(
            p.resident_corruption(0, 0),
            None,
            "zero shards must not panic"
        );
        let clean = FaultPlan::new(9);
        assert_eq!(clean.resident_corruption(5, 3), None);
        assert_eq!(clean.payload_corruption(5, 0), None);
        assert!(p.is_active(), "corrupt rate alone activates the plan");
    }

    /// Satellite: env-spec parsing must fall back cleanly, never panic.
    #[test]
    fn parse_seed_edge_cases() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 42\n"), Some(42));
        assert_eq!(parse_seed(&u64::MAX.to_string()), Some(u64::MAX));
        for bad in ["", " ", "abc", "-1", "1.5", "0x10", "18446744073709551616"] {
            assert_eq!(parse_seed(bad), None, "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_corrupt_spec_edge_cases() {
        assert_eq!(parse_corrupt_spec("7,0.01"), Some((7, 0.01)));
        assert_eq!(parse_corrupt_spec("0,0"), Some((0, 0.0)));
        assert_eq!(parse_corrupt_spec(" 3 , 1.0 "), Some((3, 1.0)));
        for bad in [
            "", ",", "7", "7,", ",0.5", "abc,0.5", "7,abc", "7,-0.1", "7,1.5", "7,NaN", "7,inf",
            "-1,0.5", "7,0.5,9",
        ] {
            assert_eq!(parse_corrupt_spec(bad), None, "{bad:?} should be rejected");
        }
    }

    /// Zero-shard machines must produce a degenerate but valid plan.
    #[test]
    fn seeded_crash_zero_shards() {
        let p = FaultPlan::seeded_crash(1, 0, 0);
        let sched = p.crash_schedule();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].0, 0, "zero shards clamps to shard 0");
        assert!(sched[0].1 >= 1);
    }

    #[test]
    fn stats_merge() {
        let mut a = FaultStats {
            messages_lost: 1,
            retries: 2,
            crashes: 1,
            epochs_replayed: 3,
            ..FaultStats::default()
        };
        let b = FaultStats {
            messages_lost: 4,
            total_backoff_s: 0.5,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.messages_lost, 5);
        assert_eq!(a.retries, 2);
        assert_eq!(a.total_backoff_s, 0.5);
    }
}
