//! # regent-bench
//!
//! The benchmark harness reproducing every figure and table of the
//! paper's evaluation (§5). Each figure has a binary (see `src/bin/`)
//! that prints the same series the paper plots:
//!
//! * `fig6_stencil` — Stencil weak scaling (Fig. 6).
//! * `fig7_miniaero` — MiniAero weak scaling (Fig. 7).
//! * `fig8_pennant` — PENNANT weak scaling (Fig. 8).
//! * `fig9_circuit` — Circuit weak scaling (Fig. 9).
//! * `table1_intersections` — dynamic region intersection timings
//!   (Table 1), measured on the real intersection machinery.
//! * `ablations` — the design-choice ablations listed in DESIGN.md.
//!
//! Every figure binary accepts `--trace <path>`: the simulated
//! schedules are recorded (one track per node count per execution
//! model), a per-timestep control-cost table is printed — the paper's
//! O(N)-vs-O(1) control-overhead claim, read directly off the trace —
//! and the whole trace is written as Chrome `trace_event` JSON
//! loadable in `chrome://tracing` / Perfetto.
//!
//! Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]

use regent_machine::{
    parse_corrupt_spec, simulate_cr_faulted, simulate_implicit_faulted,
    simulate_implicit_memo_faulted, simulate_log_faulted, simulate_mpi_faulted, FaultPlan,
    FaultStats, MachineConfig, MpiVariant, ScalingSeries, TimestepSpec,
};
use regent_trace::{
    check_entries, entries_to_json, export_chrome, mean_step_cost, merge_entries, parse_entries,
    sim_control_cost_per_step, BenchEntry, Trace, Tracer,
};

/// Constructor of a reference-code configuration for a given machine.
pub type VariantFn = fn(&MachineConfig) -> MpiVariant;

/// Builds the standard series comparison of the figures (CR, no-CR,
/// and the MPI reference variants) for one application.
pub struct FigureRunner {
    /// Maximum node count (the paper uses 1024).
    pub max_nodes: usize,
    /// Simulated time steps per configuration.
    pub steps: u64,
    /// Per-figure machine adjustment (e.g. an application sensitive to
    /// OS noise raises `noise_fraction`).
    pub machine_mod: fn(&mut MachineConfig),
    /// When set, record the simulated schedules and write a Chrome
    /// `trace_event` JSON file here.
    pub trace_path: Option<String>,
    /// When set, every simulated execution runs under this fault plan
    /// (`--faults <seed>,<rate>`: seeded message loss at the given
    /// rate), so the figures show degraded-network behavior.
    pub faults: Option<FaultPlan>,
    /// When set (`--corrupt <seed>,<rate>`), copy payloads are silently
    /// bit-flipped at the given rate; receivers detect the checksum
    /// mismatch and repair by retransmission. Composes with `faults`
    /// (the corruption rate folds into the loss plan) and prints a
    /// per-model corruption summary after the figure.
    pub corrupt: Option<(u64, f64)>,
    /// When set (`--memo`), add a "Regent (w/o CR, memo)" series: the
    /// implicit model with epoch-trace memoization (full analysis on
    /// step 0 only, replay after), as the ablation between a naive
    /// single control thread and full control replication.
    pub memo: bool,
    /// When set (`--log`), add a "Regent (log)" series: shared-log
    /// control replication — one sequencer appends the control program
    /// to an operation log, per-node replicas tail it and amortize
    /// dependence analysis to once per replica per batch.
    pub log: bool,
    /// When set (`--json <path>`), write the figure's results as
    /// machine-readable [`BenchEntry`] records (merging into an
    /// existing artifact file, so several figure binaries accumulate
    /// into one `BENCH_*.json`).
    pub json: Option<String>,
    /// When set (`--check <baseline>`), compare the fresh results
    /// against the baseline artifact and exit nonzero on any wall-time
    /// or critical-path regression beyond `check_tol` percent.
    pub check: Option<String>,
    /// Regression tolerance for `--check`, percent (`--check-tol`).
    pub check_tol: f64,
}

impl Default for FigureRunner {
    fn default() -> Self {
        FigureRunner {
            max_nodes: 1024,
            steps: 5,
            machine_mod: |_| {},
            trace_path: None,
            faults: None,
            corrupt: None,
            memo: false,
            log: false,
            json: None,
            check: None,
            check_tol: 10.0,
        }
    }
}

impl FigureRunner {
    /// Runs the weak-scaling sweep. `spec_of` builds the workload for a
    /// node count; `mpi_variants` names the reference configurations
    /// (label, variant constructor).
    pub fn run(
        &self,
        spec_of: impl Fn(usize, &MachineConfig) -> TimestepSpec,
        mpi_variants: &[(&str, VariantFn)],
    ) -> Vec<ScalingSeries> {
        let (series, _) = self.run_collecting(spec_of, mpi_variants);
        series
    }

    /// [`FigureRunner::run`], also returning the recorded trace (empty
    /// when `trace_path` is unset).
    pub fn run_collecting(
        &self,
        spec_of: impl Fn(usize, &MachineConfig) -> TimestepSpec,
        mpi_variants: &[(&str, VariantFn)],
    ) -> (Vec<ScalingSeries>, Trace) {
        // Bench artifacts are derived from the recorded schedules, so
        // --json/--check need the tracer on just like --trace.
        let tracer = if self.trace_path.is_some() || self.json.is_some() || self.check.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let mut cr = ScalingSeries::new("Regent (with CR)");
        let mut nocr = ScalingSeries::new("Regent (w/o CR)");
        let mut memo = self
            .memo
            .then(|| ScalingSeries::new("Regent (w/o CR, memo)"));
        let mut logs = self.log.then(|| ScalingSeries::new("Regent (log)"));
        let mut mpis: Vec<ScalingSeries> = mpi_variants
            .iter()
            .map(|(label, _)| ScalingSeries::new(label))
            .collect();
        let plan = self.plan();
        // Aggregated fault outcome per model, for the corruption
        // summary printed under `--corrupt`.
        let mut cr_faults = FaultStats::default();
        let mut nocr_faults = FaultStats::default();
        for nodes in regent_machine::node_counts_to(self.max_nodes) {
            let mut machine = MachineConfig::piz_daint(nodes);
            (self.machine_mod)(&mut machine);
            let spec = spec_of(nodes, &machine);
            let mut tb = tracer.buffer(&format!("cr/n{nodes}"));
            let r = simulate_cr_faulted(&machine, &spec, self.steps, &plan, &mut tb);
            cr_faults.merge(&r.faults);
            cr.push(nodes, r);
            tb.flush();
            let mut tb = tracer.buffer(&format!("implicit/n{nodes}"));
            let r = simulate_implicit_faulted(&machine, &spec, self.steps, &plan, &mut tb);
            nocr_faults.merge(&r.faults);
            nocr.push(nodes, r);
            tb.flush();
            if let Some(memo) = memo.as_mut() {
                let mut tb = tracer.buffer(&format!("implicit-memo/n{nodes}"));
                memo.push(
                    nodes,
                    simulate_implicit_memo_faulted(&machine, &spec, self.steps, &plan, &mut tb),
                );
                tb.flush();
            }
            if let Some(logs) = logs.as_mut() {
                let mut tb = tracer.buffer(&format!("log/n{nodes}"));
                logs.push(
                    nodes,
                    simulate_log_faulted(&machine, &spec, self.steps, &plan, &mut tb),
                );
                tb.flush();
            }
            for ((_, mk), series) in mpi_variants.iter().zip(&mut mpis) {
                // MPI references are never traced (as before).
                let mut tb = Tracer::disabled().buffer("mpi");
                series.push(
                    nodes,
                    simulate_mpi_faulted(&machine, &spec, self.steps, mk(&machine), &plan, &mut tb),
                );
            }
        }
        let mut out = vec![cr, nocr];
        out.extend(memo);
        out.extend(logs);
        out.extend(mpis);
        regent_machine::trace_series(&out, &tracer);
        if let Some((seed, rate)) = self.corrupt {
            println!("--- corruption summary (seed {seed}, rate {rate}) ---");
            for (label, f) in [
                ("Regent (with CR)", &cr_faults),
                ("Regent (w/o CR)", &nocr_faults),
            ] {
                println!(
                    "{label:>20}: injected {} detected {} repaired {} escalated {}",
                    f.corruptions_injected,
                    f.corruptions_detected,
                    f.corruptions_repaired,
                    f.corruptions_escalated,
                );
                assert_eq!(
                    f.corruptions_injected, f.corruptions_detected,
                    "every injected corruption must be caught by a checksum"
                );
            }
            println!();
        }
        (out, tracer.take())
    }

    /// Builds the machine-readable artifact entries for `app` from the
    /// recorded simulator trace: one [`BenchEntry`] per node count per
    /// executor model (`spmd` from the CR tracks, `implicit`, and
    /// `implicit-memo` when `--memo` recorded it). The simulator is
    /// deterministic, so these entries are bit-stable — a checked-in
    /// artifact can be `--check`ed exactly.
    pub fn bench_entries(&self, app: &str, trace: &Trace) -> Vec<BenchEntry> {
        let size = format!("steps{}", self.steps);
        let mut entries = Vec::new();
        for nodes in regent_machine::node_counts_to(self.max_nodes) {
            for (prefix, executor) in [
                ("cr", "spmd"),
                ("implicit", "implicit"),
                ("implicit-memo", "implicit-memo"),
                ("log", "log"),
            ] {
                if let Some(e) = regent_machine::sim_bench_entry(
                    app,
                    &size,
                    nodes as u32,
                    executor,
                    trace,
                    &format!("{prefix}/n{nodes}"),
                ) {
                    entries.push(e);
                }
            }
        }
        entries
    }

    /// Handles `--json` (write or merge the artifact file) and
    /// `--check` (compare against a baseline artifact, exiting nonzero
    /// on a regression beyond `check_tol` percent).
    pub fn emit_artifacts(&self, app: &str, trace: &Trace) {
        if self.json.is_none() && self.check.is_none() {
            return;
        }
        let entries = self.bench_entries(app, trace);
        assert!(
            !entries.is_empty(),
            "--json/--check produced no entries (no recorded sim tracks)"
        );
        if let Some(path) = &self.json {
            // Accumulate: other figure binaries may already have
            // written their entries into the same artifact.
            let merged = match std::fs::read_to_string(path)
                .ok()
                .and_then(|t| parse_entries(&t).ok())
            {
                Some(base) => merge_entries(base, entries.clone()),
                None => entries.clone(),
            };
            std::fs::write(path, entries_to_json(&merged))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("bench artifact: {} entries -> {path}", merged.len());
        }
        if let Some(path) = &self.check {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            let baseline = parse_entries(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
            match check_entries(&entries, &baseline, self.check_tol) {
                Ok(notes) => {
                    for n in &notes {
                        println!("check: {n}");
                    }
                    println!(
                        "check: {} entr{} within {}% of {path}",
                        entries.len(),
                        if entries.len() == 1 { "y" } else { "ies" },
                        self.check_tol
                    );
                }
                Err(regressions) => {
                    for r in &regressions {
                        eprintln!("REGRESSION: {r}");
                    }
                    eprintln!(
                        "check: {} regression(s) against {path} (tolerance {}%)",
                        regressions.len(),
                        self.check_tol
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    /// The effective fault plan: the `--faults` loss plan (if any) with
    /// the `--corrupt` rate folded in. With only `--corrupt`, a
    /// crash/loss-free plan seeded from the corruption seed.
    pub fn plan(&self) -> FaultPlan {
        let base = match (&self.faults, self.corrupt) {
            (Some(p), _) => p.clone(),
            (None, Some((seed, _))) => FaultPlan::new(seed),
            (None, None) => FaultPlan::default(),
        };
        match self.corrupt {
            Some((_, rate)) => base.with_corrupt_rate(rate),
            None => base,
        }
    }
}

/// Per-step control cost of each execution model, per node count —
/// extracted from the recorded simulator trace. The implicit column
/// grows with the machine (O(N) dynamic analysis on one control
/// thread); the CR column stays flat (O(1) per-shard launches, §3.5).
pub fn control_cost_table(trace: &Trace, max_nodes: usize, steps: u64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // The memo / log columns appear whenever their tracks were recorded.
    let has_memo = regent_machine::node_counts_to(max_nodes)
        .into_iter()
        .any(|n| trace.track(&format!("implicit-memo/n{n}")).is_some());
    let has_log = regent_machine::node_counts_to(max_nodes)
        .into_iter()
        .any(|n| trace.track(&format!("log/n{n}")).is_some());
    write!(
        out,
        "{:>6}  {:>22}  {:>22}",
        "nodes", "w/o CR ctl µs/step", "with CR ctl µs/step"
    )
    .unwrap();
    if has_memo {
        write!(out, "  {:>22}", "memo ctl µs/step").unwrap();
    }
    if has_log {
        write!(out, "  {:>22}", "log ctl µs/step").unwrap();
    }
    writeln!(out).unwrap();
    let _ = steps;
    for nodes in regent_machine::node_counts_to(max_nodes) {
        let imp = mean_step_cost(&sim_control_cost_per_step(
            trace,
            &format!("implicit/n{nodes}"),
        ));
        let cr = mean_step_cost(&sim_control_cost_per_step(trace, &format!("cr/n{nodes}")));
        write!(
            out,
            "{:>6}  {:>22.1}  {:>22.1}",
            nodes,
            imp / 1000.0,
            cr / 1000.0
        )
        .unwrap();
        if has_memo {
            let memo = mean_step_cost(&sim_control_cost_per_step(
                trace,
                &format!("implicit-memo/n{nodes}"),
            ));
            write!(out, "  {:>22.1}", memo / 1000.0).unwrap();
        }
        if has_log {
            let log = mean_step_cost(&sim_control_cost_per_step(trace, &format!("log/n{nodes}")));
            write!(out, "  {:>22.1}", log / 1000.0).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Writes the trace as Chrome `trace_event` JSON at `path` (validating
/// the output parses) and prints the control-cost evidence.
pub fn write_trace(trace: &Trace, path: &str, max_nodes: usize, steps: u64) {
    println!("--- per-timestep control cost (from simulated trace) ---");
    print!("{}", control_cost_table(trace, max_nodes, steps));
    println!();
    let json = export_chrome(trace);
    regent_trace::json::parse(&json).expect("exported trace is not valid JSON");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "trace: {} events on {} tracks -> {path} (open in chrome://tracing or Perfetto)",
        trace.num_events(),
        trace.tracks.len()
    );
    println!();
}

/// Prints a figure: the data table plus each series' parallel
/// efficiency at the top node count (the paper's headline numbers).
pub fn print_figure(title: &str, series: &[ScalingSeries], max_nodes: usize) {
    println!("=== {title} ===");
    println!("{}", regent_machine::format_table(series));
    for s in series {
        if let Some(eff) = s.efficiency_at(max_nodes) {
            println!(
                "{:>28}: parallel efficiency at {} nodes = {:.1}%",
                s.label,
                max_nodes,
                eff * 100.0
            );
        }
    }
    println!();
}

/// Runs a figure end to end: sweep, table, and — when `--trace` was
/// given — the control-cost table and the Chrome JSON file; `--json` /
/// `--check` additionally write and verify the machine-readable
/// artifact entries for `app`.
pub fn run_figure(
    title: &str,
    app: &str,
    runner: &FigureRunner,
    spec_of: impl Fn(usize, &MachineConfig) -> TimestepSpec,
    mpi_variants: &[(&str, VariantFn)],
) {
    // Live telemetry: figure binaries serve the scrape endpoint too,
    // so setting REGENT_METRICS_ADDR makes any sweep observable
    // mid-run (held until the figure finishes).
    let _scrape = regent_runtime::start_scrape_env();
    let (series, trace) = runner.run_collecting(spec_of, mpi_variants);
    print_figure(title, &series, runner.max_nodes);
    if let Some(path) = &runner.trace_path {
        write_trace(&trace, path, runner.max_nodes, runner.steps);
    }
    runner.emit_artifacts(app, &trace);
}

/// Shared CLI handling: `--max-nodes N`, `--steps S`, `--trace <path>`
/// (write a Chrome trace of the simulated schedules),
/// `--faults <seed>,<rate>` (run every model under seeded message loss
/// at the given rate), `--corrupt <seed>,<rate>` (silent payload
/// corruption detected by checksums and repaired by retransmission,
/// with a summary printed after the figure), `--memo` (add the
/// memoized-implicit ablation series), `--log` (add the shared-log
/// control-replication series), `--json <path>` (write/merge
/// machine-readable bench entries), `--check <baseline>` (fail on
/// regressions beyond the tolerance), and `--check-tol <pct>`.
pub fn parse_args() -> FigureRunner {
    let mut runner = FigureRunner::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--max-nodes" => {
                runner.max_nodes = args[i + 1].parse().expect("--max-nodes N");
                i += 2;
            }
            "--steps" => {
                runner.steps = args[i + 1].parse().expect("--steps S");
                i += 2;
            }
            "--trace" => {
                runner.trace_path = Some(args.get(i + 1).expect("--trace <path>").clone());
                i += 2;
            }
            "--memo" => {
                runner.memo = true;
                i += 1;
            }
            "--log" => {
                runner.log = true;
                i += 1;
            }
            "--json" => {
                runner.json = Some(args.get(i + 1).expect("--json <path>").clone());
                i += 2;
            }
            "--check" => {
                runner.check = Some(args.get(i + 1).expect("--check <baseline>").clone());
                i += 2;
            }
            "--check-tol" => {
                runner.check_tol = args
                    .get(i + 1)
                    .expect("--check-tol <pct>")
                    .parse()
                    .expect("--check-tol takes a percentage");
                i += 2;
            }
            "--faults" => {
                let spec = args.get(i + 1).expect("--faults <seed>,<rate>");
                let (seed, rate) = spec
                    .split_once(',')
                    .expect("--faults <seed>,<rate> (e.g. --faults 42,0.01)");
                runner.faults = Some(FaultPlan::from_seed_rate(
                    seed.trim().parse().expect("fault seed must be an integer"),
                    rate.trim().parse().expect("fault rate must be a float"),
                ));
                i += 2;
            }
            "--corrupt" => {
                let spec = args.get(i + 1).expect("--corrupt <seed>,<rate>");
                runner.corrupt = Some(parse_corrupt_spec(spec).unwrap_or_else(|| {
                    panic!("--corrupt <seed>,<rate> with rate in [0,1] (got {spec:?})")
                }));
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    runner
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_apps::stencil::stencil_spec;

    #[test]
    fn figure_runner_produces_expected_shapes() {
        let runner = FigureRunner {
            max_nodes: 32,
            steps: 3,
            ..Default::default()
        };
        let series = runner.run(stencil_spec, &[("MPI", MpiVariant::rank_per_core)]);
        assert_eq!(series.len(), 3);
        let cr_eff = series[0].efficiency_at(32).unwrap();
        let nocr_eff = series[1].efficiency_at(32).unwrap();
        assert!(cr_eff > 0.9, "CR efficiency {cr_eff}");
        assert!(nocr_eff < cr_eff, "no-CR must trail CR");
    }

    #[test]
    fn memo_ablation_sits_between_implicit_and_cr() {
        let runner = FigureRunner {
            max_nodes: 32,
            steps: 4,
            trace_path: Some("unused".into()),
            memo: true,
            ..Default::default()
        };
        let (series, trace) = runner.run_collecting(stencil_spec, &[]);
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].label, "Regent (w/o CR, memo)");
        let cr_eff = series[0].efficiency_at(32).unwrap();
        let nocr_eff = series[1].efficiency_at(32).unwrap();
        let memo_eff = series[2].efficiency_at(32).unwrap();
        // Memoization can only remove control cost: at small scales the
        // stencil hides analysis behind compute (efficiencies tie), at
        // large scales it pulls ahead — but it never loses to plain
        // implicit and never beats CR.
        assert!(
            memo_eff >= nocr_eff - 1e-12 && memo_eff <= cr_eff + 1e-9,
            "memo {memo_eff} should land between no-CR {nocr_eff} and CR {cr_eff}"
        );
        // The steady-state memo control cost sits well under the plain
        // implicit cost, and the table grows the extra column.
        let imp = mean_step_cost(&sim_control_cost_per_step(&trace, "implicit/n32"));
        let memo = mean_step_cost(&sim_control_cost_per_step(&trace, "implicit-memo/n32"));
        assert!(
            memo < imp / 2.0,
            "memo control cost {memo} vs implicit {imp}"
        );
        assert!(control_cost_table(&trace, 32, 4).contains("memo ctl µs/step"));
    }

    #[test]
    fn log_series_scales_like_cr_and_lands_in_artifacts() {
        let runner = FigureRunner {
            max_nodes: 32,
            steps: 3,
            trace_path: Some("unused".into()),
            log: true,
            ..Default::default()
        };
        let (series, trace) = runner.run_collecting(stencil_spec, &[]);
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].label, "Regent (log)");
        let cr_eff = series[0].efficiency_at(32).unwrap();
        let nocr_eff = series[1].efficiency_at(32).unwrap();
        let log_eff = series[2].efficiency_at(32).unwrap();
        // One sequencer appending index-launch records scales like CR
        // (it never does per-node work), so the log series beats the
        // implicit collapse and weak-scales within a hair of CR.
        // (Efficiency is relative to each series' own single-node run,
        // so the log column can nose ahead by its slower baseline.)
        assert!(
            log_eff > nocr_eff && log_eff <= cr_eff + 1e-3,
            "log {log_eff} should land between no-CR {nocr_eff} and CR {cr_eff}"
        );
        // The artifact entries carry the strategy and the table the column.
        let entries = runner.bench_entries("stencil", &trace);
        assert!(entries.iter().any(|e| e.executor == "log"));
        assert!(control_cost_table(&trace, 32, 3).contains("log ctl µs/step"));
    }

    #[test]
    fn corruption_flag_repairs_and_reports() {
        let runner = FigureRunner {
            max_nodes: 16,
            steps: 3,
            corrupt: Some((11, 0.05)),
            ..Default::default()
        };
        let plan = runner.plan();
        assert_eq!(plan.corrupt_rate, 0.05);
        assert_eq!(plan.loss_rate, 0.0, "corrupt alone adds no loss");
        // The sweep completes (the summary's injected==detected assert
        // runs inside) and corruption slows the figure down slightly.
        let series = runner.run(stencil_spec, &[]);
        let clean = FigureRunner {
            max_nodes: 16,
            steps: 3,
            ..Default::default()
        }
        .run(stencil_spec, &[]);
        let eff = series[0].efficiency_at(16).unwrap();
        let clean_eff = clean[0].efficiency_at(16).unwrap();
        assert!(
            eff <= clean_eff + 1e-9,
            "repair retransmits cannot speed the run up: {eff} vs {clean_eff}"
        );
        // Composed with a loss plan, both rates survive.
        let both = FigureRunner {
            faults: Some(FaultPlan::from_seed_rate(7, 0.01)),
            corrupt: Some((11, 0.05)),
            ..Default::default()
        }
        .plan();
        assert_eq!(both.loss_rate, 0.01);
        assert_eq!(both.corrupt_rate, 0.05);
    }

    #[test]
    fn trace_shows_on_vs_o1_control_cost() {
        let runner = FigureRunner {
            max_nodes: 32,
            steps: 3,
            trace_path: Some("unused".into()),
            ..Default::default()
        };
        let (_, trace) = runner.run_collecting(stencil_spec, &[]);
        let imp1 = mean_step_cost(&sim_control_cost_per_step(&trace, "implicit/n1"));
        let imp32 = mean_step_cost(&sim_control_cost_per_step(&trace, "implicit/n32"));
        let cr1 = mean_step_cost(&sim_control_cost_per_step(&trace, "cr/n1"));
        let cr32 = mean_step_cost(&sim_control_cost_per_step(&trace, "cr/n32"));
        assert!(imp1 > 0.0 && cr1 > 0.0);
        // O(N): the single control thread's per-step cost grows roughly
        // linearly with the machine (32× nodes → ≥10× cost here, the
        // fixed per-task term damping perfect linearity).
        assert!(
            imp32 > 10.0 * imp1,
            "implicit control cost must grow with N: {imp1} -> {imp32}"
        );
        // O(1): each shard launches only its own tasks; per-step cost is
        // independent of the node count.
        assert!(
            cr32 < 2.0 * cr1,
            "CR control cost must stay flat: {cr1} -> {cr32}"
        );
        // And the exported JSON round-trips.
        let json = export_chrome(&trace);
        let v = regent_trace::json::parse(&json).unwrap();
        assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    }
}
