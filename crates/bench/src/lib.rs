//! # regent-bench
//!
//! The benchmark harness reproducing every figure and table of the
//! paper's evaluation (§5). Each figure has a binary (see `src/bin/`)
//! that prints the same series the paper plots:
//!
//! * `fig6_stencil` — Stencil weak scaling (Fig. 6).
//! * `fig7_miniaero` — MiniAero weak scaling (Fig. 7).
//! * `fig8_pennant` — PENNANT weak scaling (Fig. 8).
//! * `fig9_circuit` — Circuit weak scaling (Fig. 9).
//! * `table1_intersections` — dynamic region intersection timings
//!   (Table 1), measured on the real intersection machinery.
//! * `ablations` — the design-choice ablations listed in DESIGN.md.
//!
//! Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]

use regent_machine::{
    simulate_cr, simulate_implicit, simulate_mpi, MachineConfig, MpiVariant, ScalingSeries,
    TimestepSpec,
};

/// Constructor of a reference-code configuration for a given machine.
pub type VariantFn = fn(&MachineConfig) -> MpiVariant;

/// Builds the standard series comparison of the figures (CR, no-CR,
/// and the MPI reference variants) for one application.
pub struct FigureRunner {
    /// Maximum node count (the paper uses 1024).
    pub max_nodes: usize,
    /// Simulated time steps per configuration.
    pub steps: u64,
    /// Per-figure machine adjustment (e.g. an application sensitive to
    /// OS noise raises `noise_fraction`).
    pub machine_mod: fn(&mut MachineConfig),
}

impl Default for FigureRunner {
    fn default() -> Self {
        FigureRunner {
            max_nodes: 1024,
            steps: 5,
            machine_mod: |_| {},
        }
    }
}

impl FigureRunner {
    /// Runs the weak-scaling sweep. `spec_of` builds the workload for a
    /// node count; `mpi_variants` names the reference configurations
    /// (label, variant constructor).
    pub fn run(
        &self,
        spec_of: impl Fn(usize, &MachineConfig) -> TimestepSpec,
        mpi_variants: &[(&str, VariantFn)],
    ) -> Vec<ScalingSeries> {
        let mut cr = ScalingSeries::new("Regent (with CR)");
        let mut nocr = ScalingSeries::new("Regent (w/o CR)");
        let mut mpis: Vec<ScalingSeries> = mpi_variants
            .iter()
            .map(|(label, _)| ScalingSeries::new(label))
            .collect();
        for nodes in regent_machine::node_counts_to(self.max_nodes) {
            let mut machine = MachineConfig::piz_daint(nodes);
            (self.machine_mod)(&mut machine);
            let spec = spec_of(nodes, &machine);
            cr.push(nodes, simulate_cr(&machine, &spec, self.steps));
            nocr.push(nodes, simulate_implicit(&machine, &spec, self.steps));
            for ((_, mk), series) in mpi_variants.iter().zip(&mut mpis) {
                series.push(
                    nodes,
                    simulate_mpi(&machine, &spec, self.steps, mk(&machine)),
                );
            }
        }
        let mut out = vec![cr, nocr];
        out.extend(mpis);
        out
    }
}

/// Prints a figure: the data table plus each series' parallel
/// efficiency at the top node count (the paper's headline numbers).
pub fn print_figure(title: &str, series: &[ScalingSeries], max_nodes: usize) {
    println!("=== {title} ===");
    println!("{}", regent_machine::format_table(series));
    for s in series {
        if let Some(eff) = s.efficiency_at(max_nodes) {
            println!(
                "{:>28}: parallel efficiency at {} nodes = {:.1}%",
                s.label,
                max_nodes,
                eff * 100.0
            );
        }
    }
    println!();
}

/// Shared CLI handling: `--max-nodes N` and `--steps S`.
pub fn parse_args() -> FigureRunner {
    let mut runner = FigureRunner::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--max-nodes" => {
                runner.max_nodes = args[i + 1].parse().expect("--max-nodes N");
                i += 2;
            }
            "--steps" => {
                runner.steps = args[i + 1].parse().expect("--steps S");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    runner
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_apps::stencil::stencil_spec;

    #[test]
    fn figure_runner_produces_expected_shapes() {
        let runner = FigureRunner {
            max_nodes: 32,
            steps: 3,
            ..Default::default()
        };
        let series = runner.run(stencil_spec, &[("MPI", MpiVariant::rank_per_core)]);
        assert_eq!(series.len(), 3);
        let cr_eff = series[0].efficiency_at(32).unwrap();
        let nocr_eff = series[1].efficiency_at(32).unwrap();
        assert!(cr_eff > 0.9, "CR efficiency {cr_eff}");
        assert!(nocr_eff < cr_eff, "no-CR must trail CR");
    }
}
