//! `fig_service` — closed-loop driver bench for the `regent-serve`
//! job supervisor.
//!
//! Sweeps offered load (client count) against a single service
//! instance configured from the `REGENT_SERVE_*` environment; each
//! client runs a closed loop (submit one job, wait for its terminal
//! outcome, repeat) over the three evaluation apps and all six
//! execution strategies. Per load level it reports client-observed
//! p50/p99 latency, goodput (completed jobs per second), and the
//! shed/retry/cancel counts — the service's load-shedding curve.
//!
//! The `--check` artifact gate is an **SLO budget**, not a measured
//! baseline: `wall_ns` and `critical_path_ns` (which carries the p99
//! latency) in `BENCH_PR7.json` are generous ceilings, so any healthy
//! run passes while a hung queue, a retry storm, or a quarantine
//! cascade trips it. The invariant check is unconditional: every
//! offered job must reach exactly one of
//! {completed, shed, cancelled}; a nonzero quarantine count fails the
//! run regardless of `--check`.
//!
//! ```text
//! fig_service [--clients 1,2,4,8] [--jobs 12] \
//!             [--json out.json] [--check BENCH_PR7.json] [--check-tol 0]
//! ```

use regent_serve::{jobs, JobOutcome, Service, ServiceConfig, Strategy};
use regent_trace::{
    check_entries, entries_to_json, merge_entries, parse_entries, BenchEntry, Blame, EventKind,
    Phase, Tracer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct ClientTally {
    latencies_ns: Vec<u64>,
    shed: u64,
    cancelled: u64,
    quarantined: u64,
    retried: u64,
}

struct LevelResult {
    clients: usize,
    offered: u64,
    wall_ns: u64,
    queue_wait_ns: u64,
    workers: u32,
    tally: ClientTally,
    trace: regent_trace::Trace,
}

impl LevelResult {
    fn completed(&self) -> u64 {
        self.tally.latencies_ns.len() as u64
    }

    fn goodput_jps(&self) -> f64 {
        self.completed() as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn percentile_ns(&self, q: f64) -> u64 {
        let lat = &self.tally.latencies_ns;
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() - 1) as f64 * q).round() as usize]
    }
}

/// One closed loop: `jobs` submissions, each waited to its terminal
/// outcome before the next is offered. A shed is counted and retried
/// after a short backoff — the job is *not* lost, matching how a real
/// client treats `Overloaded`.
fn client_loop(svc: &Service, client: usize, njobs: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    for i in 0..njobs {
        let tenant = (client % 3) as u32 + 1;
        let strategy = Strategy::ALL[(client + i) % Strategy::ALL.len()];
        let spec = match (client + i) % 3 {
            0 => jobs::stencil_job(tenant, strategy, 2),
            1 => jobs::circuit_job(tenant, strategy, 2),
            _ => jobs::pennant_job(tenant, strategy, 2),
        };
        let t0 = Instant::now();
        match svc.submit(spec) {
            Ok(h) => match h.wait() {
                JobOutcome::Completed { attempts, .. } => {
                    tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    if attempts > 1 {
                        tally.retried += 1;
                    }
                }
                JobOutcome::Cancelled { .. } => tally.cancelled += 1,
                JobOutcome::Quarantined { .. } => tally.quarantined += 1,
            },
            Err(_) => {
                tally.shed += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
    tally
}

fn run_level(clients: usize, njobs: usize) -> LevelResult {
    let tracer = Tracer::enabled();
    let cfg = ServiceConfig::from_env().with_tracer(Arc::clone(&tracer));
    let workers = cfg.workers as u32;
    let svc = Arc::new(Service::start(cfg));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || client_loop(&svc, c, njobs))
        })
        .collect();
    let mut tally = ClientTally::default();
    for h in handles {
        let t = h.join().expect("client thread");
        tally.latencies_ns.extend(t.latencies_ns);
        tally.shed += t.shed;
        tally.cancelled += t.cancelled;
        tally.quarantined += t.quarantined;
        tally.retried += t.retried;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    Arc::try_unwrap(svc)
        .unwrap_or_else(|_| panic!("client threads still hold the service"))
        .shutdown();
    let trace = tracer.take();
    let queue_wait_ns = trace
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| matches!(e.kind, EventKind::JobAdmit { .. }))
        .map(|e| e.dur)
        .sum();
    tally.latencies_ns.sort_unstable();
    LevelResult {
        clients,
        offered: (clients * njobs) as u64,
        wall_ns,
        queue_wait_ns,
        workers,
        tally,
        trace,
    }
}

fn entry_for(level: &LevelResult, njobs: usize) -> BenchEntry {
    let mut blame = Blame::default();
    blame.add(Phase::QueueWait, level.queue_wait_ns);
    BenchEntry {
        app: "service".to_string(),
        size: format!("jobs{njobs}"),
        shards: level.workers,
        executor: format!("clients{}", level.clients),
        wall_ns: level.wall_ns,
        critical_path_ns: level.percentile_ns(0.99),
        blame,
        metrics: vec![
            ("completed".to_string(), level.completed() as f64),
            ("shed".to_string(), level.tally.shed as f64),
            ("retried".to_string(), level.tally.retried as f64),
            ("cancelled".to_string(), level.tally.cancelled as f64),
            ("quarantined".to_string(), level.tally.quarantined as f64),
            ("p50_ms".to_string(), level.percentile_ns(0.5) as f64 / 1e6),
            ("p99_ms".to_string(), level.percentile_ns(0.99) as f64 / 1e6),
            ("goodput_jps".to_string(), level.goodput_jps()),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clients: Vec<usize> = vec![1, 2, 4, 8];
    let mut njobs: usize = 12;
    let mut json: Option<String> = None;
    let mut check: Option<String> = None;
    let mut check_tol: f64 = 0.0;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |n: usize| {
            args.get(n)
                .unwrap_or_else(|| panic!("{} needs a value", args[n - 1]))
                .clone()
        };
        match args[i].as_str() {
            "--clients" => {
                clients = need(i + 1)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--clients takes ints"))
                    .collect();
                i += 2;
            }
            "--jobs" => {
                njobs = need(i + 1).parse().expect("--jobs takes an int");
                i += 2;
            }
            "--json" => {
                json = Some(need(i + 1));
                i += 2;
            }
            "--check" => {
                check = Some(need(i + 1));
                i += 2;
            }
            "--check-tol" => {
                check_tol = need(i + 1).parse().expect("--check-tol takes a number");
                i += 2;
            }
            "--trace" => {
                trace_path = Some(need(i + 1));
                i += 2;
            }
            other => panic!(
                "unknown argument {other} (usage: fig_service [--clients a,b,..] [--jobs N] \
                 [--json p] [--check p] [--check-tol pct] [--trace p])"
            ),
        }
    }

    // Live telemetry: `REGENT_METRICS_ADDR` starts the Prometheus
    // scrape endpoint for the duration of the sweep, so `regent-prof
    // --live` (or any scraper) can watch the sliding-window quantiles
    // and SLO burn rates mid-run. Held until the end of `main` so the
    // post-sweep self-scrape below can check the live estimator
    // against the artifact.
    let scrape = regent_runtime::start_scrape_env();
    if let Some(server) = &scrape {
        println!(
            "metrics: live scrape endpoint on http://{}/metrics",
            server.local_addr()
        );
    }

    println!("== service closed-loop sweep ({njobs} jobs/client) ==");
    println!(
        "{:>8} {:>8} {:>10} {:>6} {:>8} {:>10} {:>9} {:>9} {:>12}",
        "clients",
        "offered",
        "completed",
        "shed",
        "retried",
        "cancelled",
        "p50_ms",
        "p99_ms",
        "goodput/s"
    );
    let mut entries = Vec::new();
    let mut quarantined_total = 0u64;
    let mut last_trace = None;
    let mut all_latencies: Vec<u64> = Vec::new();
    for &c in &clients {
        let level = run_level(c, njobs);
        all_latencies.extend_from_slice(&level.tally.latencies_ns);
        let accounted =
            level.completed() + level.tally.shed + level.tally.cancelled + level.tally.quarantined;
        assert_eq!(
            accounted, level.offered,
            "clients{c}: a job vanished without a terminal outcome"
        );
        quarantined_total += level.tally.quarantined;
        println!(
            "{:>8} {:>8} {:>10} {:>6} {:>8} {:>10} {:>9.2} {:>9.2} {:>12.1}",
            level.clients,
            level.offered,
            level.completed(),
            level.tally.shed,
            level.tally.retried,
            level.tally.cancelled,
            level.percentile_ns(0.5) as f64 / 1e6,
            level.percentile_ns(0.99) as f64 / 1e6,
            level.goodput_jps(),
        );
        entries.push(entry_for(&level, njobs));
        last_trace = Some(level.trace);
    }

    if let Some(server) = &scrape {
        // Self-scrape: pull the exposition through the real HTTP path
        // and check the live sliding-window quantiles against the
        // client-observed artifact latencies. Both sides go through the
        // same log2-bucket estimator so the comparison measures the
        // telemetry plumbing (recording, windowing, scrape), not
        // histogram quantization. Holds to ±10% when the SLO window
        // (`REGENT_SLO_WINDOW_SECS`) covers the whole sweep.
        match regent_runtime::fetch_metrics(&server.local_addr().to_string()) {
            Ok(body) => {
                println!(
                    "scrape: {} bytes, {} families",
                    body.len(),
                    body.lines().filter(|l| l.starts_with("# TYPE")).count()
                );
                let live_gauge = |sel: &str| -> Option<f64> {
                    body.lines()
                        .find(|l| l.starts_with(sel))
                        .and_then(|l| l.rsplit(' ').next())
                        .and_then(|v| v.parse().ok())
                };
                let mut h = regent_runtime::Hist::default();
                for &ns in &all_latencies {
                    h.record(ns);
                }
                for (label, q, sel) in [
                    ("p50", 0.5, "regent_live_latency_ns{quantile=\"0.5\"}"),
                    ("p99", 0.99, "regent_live_latency_ns{quantile=\"0.99\"}"),
                ] {
                    let artifact_ns = h.quantile_ns(q);
                    match live_gauge(sel) {
                        Some(live_ns) if artifact_ns > 0.0 => {
                            let drift_pct = (live_ns - artifact_ns) / artifact_ns * 100.0;
                            let verdict = if drift_pct.abs() <= 10.0 {
                                "OK"
                            } else {
                                "DRIFT"
                            };
                            println!(
                                "live check: {label} live {:.2} ms vs artifact {:.2} ms \
                                 ({drift_pct:+.1}% -> {verdict})",
                                live_ns / 1e6,
                                artifact_ns / 1e6,
                            );
                        }
                        _ => println!("live check: {label} not present in scrape"),
                    }
                }
            }
            Err(e) => eprintln!("live check: self-scrape failed: {e}"),
        }
    }

    if let (Some(path), Some(trace)) = (&trace_path, &last_trace) {
        // Native trace of the highest load level, for `regent-prof`'s
        // per-tenant service summary and queue-wait blame row.
        std::fs::write(path, regent_trace::export_native(trace))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("trace: {path}");
    }

    if let Some(path) = &json {
        let merged = match std::fs::read_to_string(path)
            .ok()
            .and_then(|t| parse_entries(&t).ok())
        {
            Some(base) => merge_entries(base, entries.clone()),
            None => entries.clone(),
        };
        std::fs::write(path, entries_to_json(&merged))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("bench artifact: {} entries -> {path}", merged.len());
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_entries(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        match check_entries(&entries, &baseline, check_tol) {
            Ok(notes) => {
                for n in &notes {
                    println!("check: {n}");
                }
                println!(
                    "check: {} level(s) within the SLO budget of {path}",
                    entries.len()
                );
            }
            Err(regressions) => {
                for r in &regressions {
                    eprintln!("SLO VIOLATION: {r}");
                }
                eprintln!("check: {} violation(s) against {path}", regressions.len());
                std::process::exit(1);
            }
        }
    }
    if quarantined_total > 0 {
        eprintln!("FAIL: {quarantined_total} job(s) quarantined during the sweep");
        std::process::exit(1);
    }
}
