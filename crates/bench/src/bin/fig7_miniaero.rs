//! Figure 7: weak scaling for MiniAero (3-D unstructured compressible
//! Navier–Stokes, 512k cells per node) — Regent with/without CR vs.
//! MPI+Kokkos in rank-per-core and rank-per-node configurations.
//!
//! §5.2: "Regent-based codes out-perform the reference MPI+Kokkos
//! implementations of MiniAero on a single node, mostly by leveraging
//! the improved hybrid data layout features of Legion" — modeled as a
//! compute-time multiplier on the references. The rank-per-node
//! configuration starts faster (fewer messages) but its threaded
//! fork/join amplifies noise until it "drops to the level of the rank
//! per core configuration".

use regent_apps::miniaero::miniaero_spec;
use regent_bench::{parse_args, run_figure};
use regent_machine::{MachineConfig, MpiVariant};

fn kokkos_rank_per_core(machine: &MachineConfig) -> MpiVariant {
    let mut v = MpiVariant::rank_per_core(machine);
    v.compute_multiplier = 1.40;
    v
}

fn kokkos_rank_per_node(_machine: &MachineConfig) -> MpiVariant {
    let mut v = MpiVariant::rank_per_node();
    v.compute_multiplier = 1.20;
    v.noise_scale = 3.5;
    v
}

fn main() {
    let runner = parse_args();
    run_figure(
        "Figure 7: MiniAero weak scaling (10^3 cells/s per node)",
        "miniaero",
        &runner,
        miniaero_spec,
        &[
            ("MPI+Kokkos (rank/core)", kokkos_rank_per_core),
            ("MPI+Kokkos (rank/node)", kokkos_rank_per_node),
        ],
    );
}
