//! `regent-prof` — the post-mortem profiler for native trace files.
//!
//! Loads a trace written by `--trace` (real executor runs or simulated
//! schedules alike) and prints, in order: the per-track utilization
//! profile, the critical-path blame table (per-phase, per-track,
//! per-epoch), the load-imbalance report, and the certification status.
//! Certification is *structural*: the happens-before graph must be
//! acyclic, the integrity-event record coherent, and no events lost to
//! ring wrap-around — a trace failing any of these cannot support
//! sound blame attribution.
//!
//! ```text
//! regent-prof --trace run.trace [--flame out.folded]
//! regent-prof --live <addr> [--polls N] [--interval-ms M]
//! ```
//!
//! `--flame` writes collapsed stacks (`track;phase;event count_ns`
//! lines) suitable for any flamegraph renderer.
//!
//! `--live` is the mid-run counterpart to the post-mortem path: it
//! polls a running process's Prometheus scrape endpoint
//! (`REGENT_METRICS_ADDR`) and renders the sliding-window latency
//! quantiles, per-tenant goodput, SLO burn rates, and job counters —
//! no trace file required and no restart of the observed process.
//! Burn rates above 1.0 mean the error budget is being consumed
//! faster than the SLO allows and are flagged `BURNING`.

use regent_trace::{
    blame_report, build_graph, failover_summary, imbalance_report, import_trace, integrity_summary,
    sim_blame, EventKind, Phase, ProfReport, SimKind, Trace,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Short stable label for a span kind, used as the flame-stack leaf.
fn kind_label(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::TaskLaunch { .. } => "task_launch",
        EventKind::TaskRun { .. } => "task_run",
        EventKind::TaskAccess { .. } => "task_access",
        EventKind::DepAnalysis { .. } => "dep_analysis",
        EventKind::DepEdge { .. } => "dep_edge",
        EventKind::Drain => "drain",
        EventKind::CopyIssue { .. } => "copy_issue",
        EventKind::CopyApply { .. } => "copy_apply",
        EventKind::BarrierArrive { .. } => "barrier_arrive",
        EventKind::BarrierLeave { .. } => "barrier_leave",
        EventKind::CollectiveArrive { .. } => "collective_arrive",
        EventKind::CollectiveLeave { .. } => "collective_leave",
        EventKind::StepBegin { .. } => "step_begin",
        EventKind::CheckpointSave { .. } => "checkpoint_save",
        EventKind::CheckpointRestore { .. } => "checkpoint_restore",
        EventKind::ShardCrash { .. } => "shard_crash",
        EventKind::PeerDeath { .. } => "peer_death",
        EventKind::MembershipChange { .. } => "membership_change",
        EventKind::FailoverReconstruct { .. } => "failover_reconstruct",
        EventKind::CorruptDetected { .. } => "corrupt_detected",
        EventKind::CorruptRepaired { .. } => "corrupt_repaired",
        EventKind::CorruptEscalated { .. } => "corrupt_escalated",
        EventKind::MemoCapture { .. } => "memo_capture",
        EventKind::MemoHit { .. } => "memo_hit",
        EventKind::MemoMiss { .. } => "memo_miss",
        EventKind::MemoInvalidate { .. } => "memo_invalidate",
        EventKind::MemoReplay { .. } => "memo_replay",
        EventKind::Pass { .. } => "pass",
        EventKind::LogAppend { .. } => "log_append",
        EventKind::LogCombine { .. } => "log_combine",
        EventKind::LogConsume { .. } => "log_consume",
        EventKind::SimTask { kind, .. } => match kind {
            SimKind::Analysis => "sim_analysis",
            SimKind::Compute => "sim_compute",
            SimKind::Copy => "sim_copy",
            SimKind::Collective => "sim_collective",
            SimKind::Launch => "sim_launch",
            SimKind::Log => "sim_log",
            SimKind::Other => "sim_other",
        },
        EventKind::JobAdmit { .. } => "job_admit",
        EventKind::JobShed { .. } => "job_shed",
        EventKind::JobRetry { .. } => "job_retry",
        EventKind::JobDegrade { .. } => "job_degrade",
        EventKind::Counter { .. } => "counter",
        EventKind::Mark { .. } => "mark",
    }
}

/// Phase a sim task's service belongs to (mirrors `sim_blame`).
fn sim_phase(kind: SimKind) -> Phase {
    match kind {
        SimKind::Analysis => Phase::DepAnalysis,
        SimKind::Compute => Phase::Exec,
        SimKind::Copy => Phase::Copy,
        SimKind::Collective => Phase::CollectiveWait,
        SimKind::Log => Phase::LogControl,
        SimKind::Launch | SimKind::Other => Phase::Other,
    }
}

/// Collapsed flame stacks: one `track;phase;event total_ns` line per
/// distinct (track, span-kind) pair, durations summed.
fn collapsed_stacks(trace: &Trace) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for t in &trace.tracks {
        for e in &t.events {
            if e.dur == 0 {
                continue;
            }
            let phase = match e.kind {
                EventKind::SimTask { kind, .. } => sim_phase(kind),
                ref k => regent_trace::classify(k),
            };
            let stack = format!("{};{};{}", t.name, phase.name(), kind_label(&e.kind));
            *folded.entry(stack).or_insert(0) += e.dur;
        }
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        writeln!(out, "{stack} {ns}").unwrap();
    }
    out
}

/// Per-tenant service counters reconstructed from `Job*` trace events.
#[derive(Default, Clone, Copy)]
struct TenantSummary {
    admitted: u64,
    shed: u64,
    retried: u64,
    degraded: u64,
    queue_wait_ns: u64,
}

/// Aggregates supervisor `Job*` events by tenant. Returns `None` when
/// the trace records no service activity (plain executor runs).
fn service_summary(trace: &Trace) -> Option<BTreeMap<u32, TenantSummary>> {
    let mut by_tenant: BTreeMap<u32, TenantSummary> = BTreeMap::new();
    for t in &trace.tracks {
        for e in &t.events {
            match e.kind {
                EventKind::JobAdmit { tenant, .. } => {
                    let s = by_tenant.entry(tenant).or_default();
                    s.admitted += 1;
                    s.queue_wait_ns += e.dur;
                }
                EventKind::JobShed { tenant, .. } => by_tenant.entry(tenant).or_default().shed += 1,
                EventKind::JobRetry { tenant, .. } => {
                    by_tenant.entry(tenant).or_default().retried += 1
                }
                EventKind::JobDegrade { tenant, .. } => {
                    by_tenant.entry(tenant).or_default().degraded += 1
                }
                _ => {}
            }
        }
    }
    if by_tenant.is_empty() {
        None
    } else {
        Some(by_tenant)
    }
}

/// True when the track records a simulated schedule (`SimTask` spans).
fn is_sim_track(t: &regent_trace::Track) -> bool {
    t.events
        .iter()
        .any(|e| matches!(e.kind, EventKind::SimTask { .. }))
}

/// One parsed Prometheus sample: family name, label pairs, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition (the subset our scrape endpoint
/// emits: `name value` and `name{k="v",..} value` lines, `#` comments
/// skipped, label values using `\\`/`\"`/`\n` escapes).
fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (ident, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => continue,
        };
        let value: f64 = match value.trim().parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        let (name, labels) = match ident.split_once('{') {
            None => (ident.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').unwrap_or(rest);
                let mut labels = Vec::new();
                let mut chars = body.chars().peekable();
                while chars.peek().is_some() {
                    let key: String = chars.by_ref().take_while(|&c| c != '=').collect();
                    if chars.next() != Some('"') {
                        break;
                    }
                    let mut val = String::new();
                    while let Some(c) = chars.next() {
                        match c {
                            '"' => break,
                            '\\' => match chars.next() {
                                Some('n') => val.push('\n'),
                                Some(e) => val.push(e),
                                None => break,
                            },
                            c => val.push(c),
                        }
                    }
                    labels.push((key.trim().to_string(), val));
                    if chars.peek() == Some(&',') {
                        chars.next();
                    }
                }
                (name.to_string(), labels)
            }
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

/// The scalar value of the first sample with this family name.
fn gauge(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

/// Sums a counter family across all label sets (per-shard series).
fn counter_total(samples: &[Sample], name: &str) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value as u64)
        .sum()
}

/// Renders one scrape of the live plane: sliding-window quantiles per
/// (tenant, strategy), per-tenant goodput, SLO burn rates, and the
/// service job counters.
fn render_live(samples: &[Sample]) {
    let mut quant: BTreeMap<(String, String), BTreeMap<String, f64>> = BTreeMap::new();
    for s in samples
        .iter()
        .filter(|s| s.name == "regent_live_job_latency_ns")
    {
        if let (Some(t), Some(st), Some(q)) =
            (s.label("tenant"), s.label("strategy"), s.label("quantile"))
        {
            quant
                .entry((t.to_string(), st.to_string()))
                .or_default()
                .insert(q.to_string(), s.value);
        }
    }
    if !quant.is_empty() {
        println!("== live latency (sliding window) ==");
        println!(
            "{:>8} {:>10} {:>10} {:>10}",
            "tenant", "strategy", "p50_ms", "p99_ms"
        );
        for ((tenant, strategy), qs) in &quant {
            println!(
                "{:>8} {:>10} {:>10.2} {:>10.2}",
                tenant,
                strategy,
                qs.get("0.5").copied().unwrap_or(0.0) / 1e6,
                qs.get("0.99").copied().unwrap_or(0.0) / 1e6,
            );
        }
        println!();
    }
    let goodput: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "regent_live_goodput_jps")
        .collect();
    if !goodput.is_empty() {
        println!("== live goodput ==");
        for s in &goodput {
            println!(
                "tenant {:>4}: {:>8.2} jobs/s",
                s.label("tenant").unwrap_or("?"),
                s.value
            );
        }
        println!();
    }
    println!("== SLO burn rates ==");
    let target_ms = gauge(samples, "regent_slo_p99_target_ms").unwrap_or(0.0);
    let window_s = gauge(samples, "regent_slo_window_seconds").unwrap_or(0.0);
    for (label, name) in [
        ("p99 ", "regent_slo_p99_burn_rate"),
        ("shed", "regent_slo_shed_burn_rate"),
    ] {
        let burn = gauge(samples, name).unwrap_or(0.0);
        let flag = if burn > 1.0 { "  BURNING" } else { "" };
        println!("{label} burn rate: {burn:>8.4}{flag}");
    }
    println!("(p99 target {target_ms:.0} ms over a {window_s:.0} s window)");
    println!();
    println!("== job counters (since start) ==");
    for name in [
        "jobs_admitted",
        "jobs_completed",
        "jobs_shed",
        "jobs_retried",
        "jobs_cancelled",
        "jobs_quarantined",
    ] {
        let total = counter_total(samples, &format!("regent_{name}_total"));
        if total > 0 || name == "jobs_admitted" {
            println!("{name:>18}: {total}");
        }
    }
}

/// `--live` mode: polls the scrape endpoint `polls` times, rendering
/// each sample. Exits nonzero if the endpoint never answered.
fn live_mode(addr: &str, polls: usize, interval_ms: u64) {
    let mut ok = 0usize;
    for poll in 1..=polls {
        match regent_runtime::scrape::fetch(addr) {
            Ok(body) => {
                ok += 1;
                println!("== live scrape {poll}/{polls}: {addr} ==");
                render_live(&parse_exposition(&body));
            }
            Err(e) => eprintln!("scrape {poll}/{polls}: {addr}: {e}"),
        }
        if poll < polls {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    if ok == 0 {
        eprintln!("live: no successful scrape of {addr} in {polls} attempt(s)");
        std::process::exit(1);
    }
}

fn certify(trace: &Trace) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let dropped: u64 = trace.tracks.iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        problems.push(format!(
            "{dropped} events lost to ring wrap-around (record incomplete)"
        ));
    }
    if let Err(e) = build_graph(trace) {
        problems.push(format!("happens-before graph: {e}"));
    }
    let integ = integrity_summary(trace);
    if !integ.coherent() {
        problems.push(format!(
            "integrity record incoherent: {} detected vs {} repair attempts + {} escalated",
            integ.detected, integ.repair_attempts, integ.escalated
        ));
    }
    let fo = failover_summary(trace);
    if !fo.coherent() {
        problems.push(format!(
            "failover record incoherent: {} deaths vs {} membership changes",
            fo.deaths, fo.membership_changes
        ));
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut live_addr: Option<String> = None;
    let mut polls: usize = 1;
    let mut interval_ms: u64 = 1000;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                trace_path = Some(args.get(i + 1).expect("--trace <path>").clone());
                i += 2;
            }
            "--flame" => {
                flame_path = Some(args.get(i + 1).expect("--flame <path>").clone());
                i += 2;
            }
            "--live" => {
                live_addr = Some(args.get(i + 1).expect("--live <addr>").clone());
                i += 2;
            }
            "--polls" => {
                polls = args
                    .get(i + 1)
                    .expect("--polls <n>")
                    .parse()
                    .expect("--polls takes an int");
                i += 2;
            }
            "--interval-ms" => {
                interval_ms = args
                    .get(i + 1)
                    .expect("--interval-ms <ms>")
                    .parse()
                    .expect("--interval-ms takes an int");
                i += 2;
            }
            other => panic!(
                "unknown argument {other} (usage: regent-prof --trace <path> [--flame <path>] \
                 | --live <addr> [--polls n] [--interval-ms m])"
            ),
        }
    }
    if let Some(addr) = &live_addr {
        live_mode(addr, polls.max(1), interval_ms);
        return;
    }
    let trace_path = trace_path.expect("regent-prof requires --trace <path> (or --live <addr>)");
    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("cannot read {trace_path}: {e}"));
    let trace = import_trace(&text).unwrap_or_else(|e| panic!("{trace_path}: {e}"));

    println!("== profile: {trace_path} ==");
    let prof = ProfReport::analyze(&trace);
    print!("{}", prof.format_table());
    println!();

    let (sim_tracks, exec_tracks): (Vec<_>, Vec<_>) =
        trace.tracks.iter().partition(|t| is_sim_track(t));
    // Counter/Mark-only tracks (figure series) are display data, not an
    // execution record — blame needs at least one real executor event.
    let has_exec_events = exec_tracks.iter().any(|t| {
        t.events
            .iter()
            .any(|e| !matches!(e.kind, EventKind::Counter { .. } | EventKind::Mark { .. }))
    });
    if has_exec_events {
        println!("== critical-path blame ==");
        match blame_report(&trace) {
            Ok(rep) => print!("{}", rep.format_table()),
            Err(e) => println!("blame unavailable: {e}"),
        }
        println!();
        println!("== load imbalance ==");
        print!("{}", imbalance_report(&trace).format());
        println!();
    }
    if let Some(by_tenant) = service_summary(&trace) {
        println!("== service summary (per tenant) ==");
        println!(
            "{:>8} {:>9} {:>6} {:>8} {:>9} {:>16}",
            "tenant", "admitted", "shed", "retried", "degraded", "queue_wait_ns"
        );
        for (tenant, s) in &by_tenant {
            println!(
                "{:>8} {:>9} {:>6} {:>8} {:>9} {:>16}",
                tenant, s.admitted, s.shed, s.retried, s.degraded, s.queue_wait_ns
            );
        }
        println!();
    }
    let fo = failover_summary(&trace);
    if fo.deaths > 0 || fo.membership_changes > 0 {
        println!("== failover summary ==");
        println!(
            "deaths: {} (killed {}, panicked {}, hung {})",
            fo.deaths, fo.killed, fo.panicked, fo.hung
        );
        println!(
            "membership changes: {} (final membership {} shards)",
            fo.membership_changes, fo.final_shards
        );
        println!(
            "reconstructions: {} ({} instances rebuilt, {:.1} us)",
            fo.reconstructions,
            fo.insts_rebuilt,
            fo.reconstruct_ns as f64 / 1e3
        );
        println!();
    }
    if !sim_tracks.is_empty() {
        println!("== simulated-schedule blame (per track) ==");
        for t in &sim_tracks {
            if let Some((bound_ns, blame)) = sim_blame(&trace, &t.name) {
                let mut phases = String::new();
                for p in Phase::ALL {
                    if blame.get(p) > 0 {
                        write!(phases, " {}={}", p.name(), blame.get(p)).unwrap();
                    }
                }
                println!("{:>20}  bound {:>14} ns {}", t.name, bound_ns, phases);
            }
        }
        println!();
    }

    if let Some(path) = &flame_path {
        let folded = collapsed_stacks(&trace);
        std::fs::write(path, &folded).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("flame: {} stacks -> {path}", folded.lines().count());
    }

    match certify(&trace) {
        Ok(()) => println!("certification: OK (acyclic, coherent integrity record, no drops)"),
        Err(problems) => {
            for p in &problems {
                eprintln!("certification: {p}");
            }
            eprintln!("certification: REFUSED ({} problem(s))", problems.len());
            std::process::exit(1);
        }
    }
}
