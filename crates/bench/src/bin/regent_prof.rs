//! `regent-prof` — the post-mortem profiler for native trace files.
//!
//! Loads a trace written by `--trace` (real executor runs or simulated
//! schedules alike) and prints, in order: the per-track utilization
//! profile, the critical-path blame table (per-phase, per-track,
//! per-epoch), the load-imbalance report, and the certification status.
//! Certification is *structural*: the happens-before graph must be
//! acyclic, the integrity-event record coherent, and no events lost to
//! ring wrap-around — a trace failing any of these cannot support
//! sound blame attribution.
//!
//! ```text
//! regent-prof --trace run.trace [--flame out.folded]
//! ```
//!
//! `--flame` writes collapsed stacks (`track;phase;event count_ns`
//! lines) suitable for any flamegraph renderer.

use regent_trace::{
    blame_report, build_graph, failover_summary, imbalance_report, import_trace, integrity_summary,
    sim_blame, EventKind, Phase, ProfReport, SimKind, Trace,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Short stable label for a span kind, used as the flame-stack leaf.
fn kind_label(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::TaskLaunch { .. } => "task_launch",
        EventKind::TaskRun { .. } => "task_run",
        EventKind::TaskAccess { .. } => "task_access",
        EventKind::DepAnalysis { .. } => "dep_analysis",
        EventKind::DepEdge { .. } => "dep_edge",
        EventKind::Drain => "drain",
        EventKind::CopyIssue { .. } => "copy_issue",
        EventKind::CopyApply { .. } => "copy_apply",
        EventKind::BarrierArrive { .. } => "barrier_arrive",
        EventKind::BarrierLeave { .. } => "barrier_leave",
        EventKind::CollectiveArrive { .. } => "collective_arrive",
        EventKind::CollectiveLeave { .. } => "collective_leave",
        EventKind::StepBegin { .. } => "step_begin",
        EventKind::CheckpointSave { .. } => "checkpoint_save",
        EventKind::CheckpointRestore { .. } => "checkpoint_restore",
        EventKind::ShardCrash { .. } => "shard_crash",
        EventKind::PeerDeath { .. } => "peer_death",
        EventKind::MembershipChange { .. } => "membership_change",
        EventKind::FailoverReconstruct { .. } => "failover_reconstruct",
        EventKind::CorruptDetected { .. } => "corrupt_detected",
        EventKind::CorruptRepaired { .. } => "corrupt_repaired",
        EventKind::CorruptEscalated { .. } => "corrupt_escalated",
        EventKind::MemoCapture { .. } => "memo_capture",
        EventKind::MemoHit { .. } => "memo_hit",
        EventKind::MemoMiss { .. } => "memo_miss",
        EventKind::MemoInvalidate { .. } => "memo_invalidate",
        EventKind::MemoReplay { .. } => "memo_replay",
        EventKind::Pass { .. } => "pass",
        EventKind::LogAppend { .. } => "log_append",
        EventKind::LogCombine { .. } => "log_combine",
        EventKind::LogConsume { .. } => "log_consume",
        EventKind::SimTask { kind, .. } => match kind {
            SimKind::Analysis => "sim_analysis",
            SimKind::Compute => "sim_compute",
            SimKind::Copy => "sim_copy",
            SimKind::Collective => "sim_collective",
            SimKind::Launch => "sim_launch",
            SimKind::Log => "sim_log",
            SimKind::Other => "sim_other",
        },
        EventKind::JobAdmit { .. } => "job_admit",
        EventKind::JobShed { .. } => "job_shed",
        EventKind::JobRetry { .. } => "job_retry",
        EventKind::JobDegrade { .. } => "job_degrade",
        EventKind::Counter { .. } => "counter",
        EventKind::Mark { .. } => "mark",
    }
}

/// Phase a sim task's service belongs to (mirrors `sim_blame`).
fn sim_phase(kind: SimKind) -> Phase {
    match kind {
        SimKind::Analysis => Phase::DepAnalysis,
        SimKind::Compute => Phase::Exec,
        SimKind::Copy => Phase::Copy,
        SimKind::Collective => Phase::CollectiveWait,
        SimKind::Log => Phase::LogControl,
        SimKind::Launch | SimKind::Other => Phase::Other,
    }
}

/// Collapsed flame stacks: one `track;phase;event total_ns` line per
/// distinct (track, span-kind) pair, durations summed.
fn collapsed_stacks(trace: &Trace) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for t in &trace.tracks {
        for e in &t.events {
            if e.dur == 0 {
                continue;
            }
            let phase = match e.kind {
                EventKind::SimTask { kind, .. } => sim_phase(kind),
                ref k => regent_trace::classify(k),
            };
            let stack = format!("{};{};{}", t.name, phase.name(), kind_label(&e.kind));
            *folded.entry(stack).or_insert(0) += e.dur;
        }
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        writeln!(out, "{stack} {ns}").unwrap();
    }
    out
}

/// Per-tenant service counters reconstructed from `Job*` trace events.
#[derive(Default, Clone, Copy)]
struct TenantSummary {
    admitted: u64,
    shed: u64,
    retried: u64,
    degraded: u64,
    queue_wait_ns: u64,
}

/// Aggregates supervisor `Job*` events by tenant. Returns `None` when
/// the trace records no service activity (plain executor runs).
fn service_summary(trace: &Trace) -> Option<BTreeMap<u32, TenantSummary>> {
    let mut by_tenant: BTreeMap<u32, TenantSummary> = BTreeMap::new();
    for t in &trace.tracks {
        for e in &t.events {
            match e.kind {
                EventKind::JobAdmit { tenant, .. } => {
                    let s = by_tenant.entry(tenant).or_default();
                    s.admitted += 1;
                    s.queue_wait_ns += e.dur;
                }
                EventKind::JobShed { tenant, .. } => by_tenant.entry(tenant).or_default().shed += 1,
                EventKind::JobRetry { tenant, .. } => {
                    by_tenant.entry(tenant).or_default().retried += 1
                }
                EventKind::JobDegrade { tenant, .. } => {
                    by_tenant.entry(tenant).or_default().degraded += 1
                }
                _ => {}
            }
        }
    }
    if by_tenant.is_empty() {
        None
    } else {
        Some(by_tenant)
    }
}

/// True when the track records a simulated schedule (`SimTask` spans).
fn is_sim_track(t: &regent_trace::Track) -> bool {
    t.events
        .iter()
        .any(|e| matches!(e.kind, EventKind::SimTask { .. }))
}

fn certify(trace: &Trace) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let dropped: u64 = trace.tracks.iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        problems.push(format!(
            "{dropped} events lost to ring wrap-around (record incomplete)"
        ));
    }
    if let Err(e) = build_graph(trace) {
        problems.push(format!("happens-before graph: {e}"));
    }
    let integ = integrity_summary(trace);
    if !integ.coherent() {
        problems.push(format!(
            "integrity record incoherent: {} detected vs {} repair attempts + {} escalated",
            integ.detected, integ.repair_attempts, integ.escalated
        ));
    }
    let fo = failover_summary(trace);
    if !fo.coherent() {
        problems.push(format!(
            "failover record incoherent: {} deaths vs {} membership changes",
            fo.deaths, fo.membership_changes
        ));
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                trace_path = Some(args.get(i + 1).expect("--trace <path>").clone());
                i += 2;
            }
            "--flame" => {
                flame_path = Some(args.get(i + 1).expect("--flame <path>").clone());
                i += 2;
            }
            other => panic!(
                "unknown argument {other} (usage: regent-prof --trace <path> [--flame <path>])"
            ),
        }
    }
    let trace_path = trace_path.expect("regent-prof requires --trace <path>");
    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("cannot read {trace_path}: {e}"));
    let trace = import_trace(&text).unwrap_or_else(|e| panic!("{trace_path}: {e}"));

    println!("== profile: {trace_path} ==");
    let prof = ProfReport::analyze(&trace);
    print!("{}", prof.format_table());
    println!();

    let (sim_tracks, exec_tracks): (Vec<_>, Vec<_>) =
        trace.tracks.iter().partition(|t| is_sim_track(t));
    // Counter/Mark-only tracks (figure series) are display data, not an
    // execution record — blame needs at least one real executor event.
    let has_exec_events = exec_tracks.iter().any(|t| {
        t.events
            .iter()
            .any(|e| !matches!(e.kind, EventKind::Counter { .. } | EventKind::Mark { .. }))
    });
    if has_exec_events {
        println!("== critical-path blame ==");
        match blame_report(&trace) {
            Ok(rep) => print!("{}", rep.format_table()),
            Err(e) => println!("blame unavailable: {e}"),
        }
        println!();
        println!("== load imbalance ==");
        print!("{}", imbalance_report(&trace).format());
        println!();
    }
    if let Some(by_tenant) = service_summary(&trace) {
        println!("== service summary (per tenant) ==");
        println!(
            "{:>8} {:>9} {:>6} {:>8} {:>9} {:>16}",
            "tenant", "admitted", "shed", "retried", "degraded", "queue_wait_ns"
        );
        for (tenant, s) in &by_tenant {
            println!(
                "{:>8} {:>9} {:>6} {:>8} {:>9} {:>16}",
                tenant, s.admitted, s.shed, s.retried, s.degraded, s.queue_wait_ns
            );
        }
        println!();
    }
    let fo = failover_summary(&trace);
    if fo.deaths > 0 || fo.membership_changes > 0 {
        println!("== failover summary ==");
        println!(
            "deaths: {} (killed {}, panicked {}, hung {})",
            fo.deaths, fo.killed, fo.panicked, fo.hung
        );
        println!(
            "membership changes: {} (final membership {} shards)",
            fo.membership_changes, fo.final_shards
        );
        println!(
            "reconstructions: {} ({} instances rebuilt, {:.1} us)",
            fo.reconstructions,
            fo.insts_rebuilt,
            fo.reconstruct_ns as f64 / 1e3
        );
        println!();
    }
    if !sim_tracks.is_empty() {
        println!("== simulated-schedule blame (per track) ==");
        for t in &sim_tracks {
            if let Some((bound_ns, blame)) = sim_blame(&trace, &t.name) {
                let mut phases = String::new();
                for p in Phase::ALL {
                    if blame.get(p) > 0 {
                        write!(phases, " {}={}", p.name(), blame.get(p)).unwrap();
                    }
                }
                println!("{:>20}  bound {:>14} ns {}", t.name, bound_ns, phases);
            }
        }
        println!();
    }

    if let Some(path) = &flame_path {
        let folded = collapsed_stacks(&trace);
        std::fs::write(path, &folded).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("flame: {} stacks -> {path}", folded.lines().count());
    }

    match certify(&trace) {
        Ok(()) => println!("certification: OK (acyclic, coherent integrity record, no drops)"),
        Err(problems) => {
            for p in &problems {
                eprintln!("certification: {p}");
            }
            eprintln!("certification: REFUSED ({} problem(s))", problems.len());
            std::process::exit(1);
        }
    }
}
