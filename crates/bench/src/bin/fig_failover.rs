//! `fig_failover` — MTTR and goodput of live shard failover in the
//! real SPMD executor (beyond the paper's evaluation).
//!
//! Part 1 sweeps the kill epoch on the fig6-shape stencil at 3 shards:
//! for each boundary the victim dies at, the run must complete on the
//! survivors bit-identically to the undisturbed run, and the report
//! shows the *failover cost* (extra wall time over the undisturbed
//! run: detection + membership agreement + checkpoint redistribution +
//! replay from the last boundary) next to the reconstruction slice the
//! driver timed itself. Part 2 sweeps the shard count at a fixed kill
//! epoch: reconstruction redistributes the *entire* committed
//! checkpoint onto the survivors (every instance moves to its new
//! owner, not just the victim's), so the instance count is a
//! membership-independent function of the partitioning and the cost
//! tracks total state size. Part 3 prints the calibration constants
//! the DES crash-remap model (`regent-machine::scenario`) derives
//! from these measurements.
//!
//! The `--check` gate (the `BENCH_PR9.json` model) mixes **budget**
//! entries — measured times against generous ceilings, so any healthy
//! run passes but a hang or pathological regression trips — and
//! **exact** entries: the instances-rebuilt counts are deterministic
//! functions of the partitioning and are gated at tolerance 0.

use regent_apps::stencil;
use regent_cr::{control_replicate, CrOptions};
use regent_ir::Store;
use regent_runtime::{
    classify_failure, execute_spmd, execute_spmd_failover_traced, FailoverOptions, FailureClass,
    FaultPlan, ResilienceOptions,
};
use regent_trace::{
    check_entries, entries_to_json, failover_summary, merge_entries, parse_entries, BenchEntry,
    Blame, Tracer,
};
use std::time::Instant;

const NS: usize = 3;

fn mk(steps: u64) -> (regent_ir::Program, Store) {
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    (prog, store)
}

fn entry(executor: String, shards: usize, wall_ns: u64, metrics: Vec<(String, f64)>) -> BenchEntry {
    BenchEntry {
        app: "failover".to_string(),
        size: "stencil40".to_string(),
        shards: shards as u32,
        executor,
        wall_ns,
        critical_path_ns: wall_ns,
        blame: Blame::default(),
        metrics,
    }
}

/// One failover run: returns (wall seconds, reconstruct ns, instances
/// rebuilt) and asserts the result is bit-identical to `plain_env`.
fn failover_run(steps: u64, ns: usize, kill_epoch: u64, plain_env: &[f64]) -> (f64, u64, u64) {
    let (prog, mut store) = mk(steps);
    let mut spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(42).kill_shard(1, kill_epoch),
        ..Default::default()
    };
    let tracer = Tracer::enabled();
    let t0 = Instant::now();
    let r = execute_spmd_failover_traced(
        &mut spmd,
        &mut store,
        &opts,
        &FailoverOptions::default(),
        &tracer,
    );
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        r.final_shards,
        ns - 1,
        "the loss must shrink the membership"
    );
    assert_eq!(
        plain_env, r.run.env,
        "failover diverged from the undisturbed run"
    );
    let fo = failover_summary(&tracer.take());
    assert!(fo.coherent(), "incoherent failover record");
    (wall, fo.reconstruct_ns, fo.insts_rebuilt)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut steps: u64 = 6;
    let mut json: Option<String> = None;
    let mut check: Option<String> = None;
    let mut check_tol: f64 = 0.0;
    let need = |i: usize| -> String {
        args.get(i)
            .unwrap_or_else(|| panic!("missing value after {}", args[i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--steps" => {
                steps = need(i + 1).parse().expect("--steps takes a count");
                i += 2;
            }
            "--json" => {
                json = Some(need(i + 1));
                i += 2;
            }
            "--check" => {
                check = Some(need(i + 1));
                i += 2;
            }
            "--check-tol" => {
                check_tol = need(i + 1).parse().expect("--check-tol takes a number");
                i += 2;
            }
            other => panic!(
                "unknown argument {other} (usage: fig_failover [--steps N] [--json p] \
                 [--check p] [--check-tol pct])"
            ),
        }
    }

    // The injected losses unwind shard threads by design; keep their
    // poison cascades off stderr so CI logs stay readable.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| {
                // Root causes classify Transient; the survivors'
                // collateral unwinds (sealed rings) carry the
                // copy-channel diagnostic.
                classify_failure(m) != FailureClass::Permanent
                    || m.starts_with("copy channel closed")
            });
        if !expected {
            prev(info);
        }
    }));

    let mut entries = Vec::new();

    // Undisturbed baseline, best of 3.
    let plain = {
        let (prog, mut store) = mk(steps);
        let spmd = control_replicate(prog, &CrOptions::new(NS)).unwrap();
        execute_spmd(&spmd, &mut store)
    };
    let mut plain_s = f64::INFINITY;
    for _ in 0..3 {
        let (prog, mut store) = mk(steps);
        let spmd = control_replicate(prog, &CrOptions::new(NS)).unwrap();
        let t0 = Instant::now();
        let r = execute_spmd(&spmd, &mut store);
        plain_s = plain_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(plain.env, r.env);
    }

    // Part 1: kill-epoch sweep at NS shards.
    println!("=== Failover: fig6 stencil 40x40, {steps} steps, {NS} shards, kill shard 1 ===");
    println!(
        "{:>10}  {:>12}  {:>14}  {:>14}  {:>6}  {:>13}",
        "kill epoch", "wall ms", "failover ms", "reconstruct us", "insts", "bit-identical"
    );
    println!(
        "{:>10}  {:>12.2}  {:>14}  {:>14}  {:>6}  {:>13}",
        "none",
        plain_s * 1e3,
        "-",
        "-",
        "-",
        "-"
    );
    for kill_epoch in [1u64, 2, 4] {
        let mut wall = f64::INFINITY;
        let mut recon_ns = 0u64;
        let mut insts = 0u64;
        for _ in 0..3 {
            let (w, r, n) = failover_run(steps, NS, kill_epoch, &plain.env);
            if w < wall {
                wall = w;
                recon_ns = r;
                insts = n;
            }
        }
        // The failover cost: everything between the kill and the run
        // being whole again — detection, agreement, reconstruction,
        // and replay from the last committed boundary.
        let mttr_ns = ((wall - plain_s).max(0.0) * 1e9) as u64 + 1;
        println!(
            "{:>10}  {:>12.2}  {:>14.2}  {:>14.1}  {:>6}  {:>13}",
            kill_epoch,
            wall * 1e3,
            mttr_ns as f64 / 1e6,
            recon_ns as f64 / 1e3,
            insts,
            "yes"
        );
        entries.push(entry(
            format!("mttr-k{kill_epoch}"),
            NS,
            mttr_ns,
            vec![
                ("mttr_ms".into(), mttr_ns as f64 / 1e6),
                ("reconstruct_us".into(), recon_ns as f64 / 1e3),
            ],
        ));
        entries.push(entry(
            format!("recon-insts-k{kill_epoch}"),
            NS,
            insts,
            vec![("insts_rebuilt".into(), insts as f64)],
        ));
    }
    println!();

    // Part 2: shard-count sweep at a fixed kill epoch. The rebuilt
    // instance count stays constant (the whole checkpoint is
    // redistributed); only the per-shard layout changes.
    println!("=== Failover: shard-count sweep (kill shard 1 @ epoch 2) ===");
    println!(
        "{:>7}  {:>12}  {:>14}  {:>6}",
        "shards", "wall ms", "reconstruct us", "insts"
    );
    let mut recon_per_inst = Vec::new();
    for ns in [2usize, 4, 8] {
        let plain_ns = {
            let (prog, mut store) = mk(steps);
            let spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
            execute_spmd(&spmd, &mut store)
        };
        let (wall, recon_ns, insts) = failover_run(steps, ns, 2, &plain_ns.env);
        println!(
            "{:>7}  {:>12.2}  {:>14.1}  {:>6}",
            ns,
            wall * 1e3,
            recon_ns as f64 / 1e3,
            insts
        );
        if insts > 0 {
            recon_per_inst.push(recon_ns as f64 / insts as f64);
        }
        entries.push(entry(
            format!("recon-insts-n{ns}"),
            ns,
            insts,
            vec![("insts_rebuilt".into(), insts as f64)],
        ));
    }
    println!();

    // Part 3: what the DES crash-remap model should charge. The
    // simulator's failure scenario (regent-machine::scenario) models a
    // crashed rank's work being remapped to survivors after a
    // detection delay plus a state-transfer cost; these are the
    // real-executor figures those constants are calibrated against.
    let mean_recon_per_inst = if recon_per_inst.is_empty() {
        0.0
    } else {
        recon_per_inst.iter().sum::<f64>() / recon_per_inst.len() as f64
    };
    println!("=== Calibration for the DES crash-remap model ===");
    println!(
        "reconstruct cost: {:.1} ns per rebuilt instance (mean across shard counts)",
        mean_recon_per_inst
    );
    println!(
        "in-process detection + agreement + replay: see the failover-ms column above; \
         the simulator's network detection timeout models a distributed deployment \
         and dominates it by design"
    );
    println!();

    if let Some(path) = &json {
        let merged = match std::fs::read_to_string(path)
            .ok()
            .and_then(|t| parse_entries(&t).ok())
        {
            Some(base) => merge_entries(base, entries.clone()),
            None => entries.clone(),
        };
        std::fs::write(path, entries_to_json(&merged))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("bench artifact: {} entries -> {path}", merged.len());
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_entries(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        match check_entries(&entries, &baseline, check_tol) {
            Ok(notes) => {
                for n in &notes {
                    println!("check: {n}");
                }
                println!(
                    "check: {} entr{} within {}% of {path}",
                    entries.len(),
                    if entries.len() == 1 { "y" } else { "ies" },
                    check_tol
                );
            }
            Err(regressions) => {
                for r in &regressions {
                    eprintln!("check: {r}");
                }
                eprintln!(
                    "check: {} regression(s) against {path} (tolerance {}%)",
                    regressions.len(),
                    check_tol
                );
                std::process::exit(1);
            }
        }
    }
}
