//! Figure 6: weak scaling for Stencil (PRK 2-D star, radius 2,
//! 40k² points per node) — Regent with/without CR vs. MPI and
//! MPI+OpenMP references.
//!
//! As in the paper, the reference codes require square inputs and run
//! only at even powers of two; they are simulated at all counts here
//! for a denser curve.

use regent_apps::stencil::stencil_spec;
use regent_bench::{parse_args, run_figure};
use regent_machine::{MachineConfig, MpiVariant};

fn mpi(machine: &MachineConfig) -> MpiVariant {
    let mut v = MpiVariant::rank_per_core(machine);
    // The stencil kernel is memory-bandwidth bound: the references do
    // not benefit from the core Legion dedicates to the runtime, so
    // their per-node compute time matches Regent's (Fig. 6's lines
    // all start at the same ~1.4e9 points/s).
    v.compute_multiplier = machine.cores_per_node as f64 / machine.regent_compute_cores() as f64;
    v
}

fn mpi_openmp(machine: &MachineConfig) -> MpiVariant {
    let mut v = MpiVariant::rank_per_node();
    v.compute_multiplier =
        machine.cores_per_node as f64 / machine.regent_compute_cores() as f64 * 1.05;
    v
}

fn main() {
    let runner = parse_args();
    run_figure(
        "Figure 6: Stencil weak scaling (10^6 points/s per node)",
        "stencil",
        &runner,
        stencil_spec,
        &[("MPI", mpi), ("MPI+OpenMP", mpi_openmp)],
    );
}
