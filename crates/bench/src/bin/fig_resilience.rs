//! Resilience figure (beyond the paper's evaluation): behavior of the
//! control-replicated execution under deterministic fault injection.
//!
//! Part 1 simulates the Stencil workload on a fixed machine under a
//! sweep of fault plans — message loss rates, a transient node
//! slowdown, and a mid-run node crash recovered from checkpoints at
//! several intervals — and prints makespan, goodput, overhead, and
//! recovery metrics for each. Part 2 runs the *real* SPMD executor on
//! the Stencil app with an injected shard crash across checkpoint
//! intervals and verifies recovery is bit-identical to the fault-free
//! run (the executor's recovery contract). Part 3 is the integrity
//! study: simulated detection/repair under a corruption-rate sweep,
//! then the real executor under silent bit flips — detected by
//! checksums, repaired by retransmission or rollback, Spy-certified,
//! bit-identical — and the checksum layer's rate-0 overhead on the
//! fig6 stencil's steady-state epochs (the number EXPERIMENTS.md
//! reports).
//!
//! Accepts `--max-nodes N` (simulated machine size, default 64),
//! `--steps S` (time steps, default 10), and `--corrupt <seed>,<rate>`
//! (overrides Part 3's default seed 11, rate 0.25).

use regent_apps::stencil;
use regent_apps::stencil::stencil_spec;
use regent_bench::parse_args;
use regent_cr::{control_replicate, CrOptions};
use regent_ir::Store;
use regent_machine::{
    format_resilience_table, simulate_cr, simulate_cr_faulted, simulate_cr_resilient, FaultPlan,
    MachineConfig, ResilienceSpec, ScenarioResult,
};
use regent_runtime::{
    execute_spmd, execute_spmd_resilient, execute_spmd_resilient_traced, ResilienceOptions,
    SpmdRunResult,
};
use regent_trace::{integrity_summary, validate, Tracer};

fn main() {
    let runner = parse_args();
    let nodes = if runner.max_nodes == 1024 {
        64 // default machine for this figure; 1024 is parse_args' default
    } else {
        runner.max_nodes
    };
    let steps = if runner.steps == 5 { 10 } else { runner.steps };

    simulator_sweep(nodes, steps);
    real_executor_recovery();
    let (seed, rate) = runner.corrupt.unwrap_or((11, 0.25));
    corruption_study(nodes, steps, seed, rate);
}

/// Part 1: the machine-model sweep.
fn simulator_sweep(nodes: usize, steps: u64) {
    let machine = MachineConfig::piz_daint(nodes);
    let spec = stencil_spec(nodes, &machine);
    let baseline = simulate_cr(&machine, &spec, steps);
    let mut rows: Vec<(String, ScenarioResult)> = vec![("fault-free".into(), baseline)];

    for rate in [0.001, 0.01, 0.05] {
        let plan = FaultPlan::from_seed_rate(42, rate);
        let mut tb = Tracer::disabled().buffer("sim");
        rows.push((
            format!("loss {:>5.1}%", rate * 100.0),
            simulate_cr_faulted(&machine, &spec, steps, &plan, &mut tb),
        ));
    }

    // A transient 4× slowdown of node 0 for the middle third of the run.
    let window = baseline.makespan / 3.0;
    let slow = FaultPlan::new(42).slow_node(0, window, window, 4.0);
    let mut tb = Tracer::disabled().buffer("sim");
    rows.push((
        "slowdown 4x".into(),
        simulate_cr_faulted(&machine, &spec, steps, &slow, &mut tb),
    ));

    // A node crash mid-run, recovered from checkpoints every K steps
    // (K=0: no checkpointing, replay everything since step 0). The
    // crash step is odd so it never lands exactly on a checkpoint.
    let crash_step = (steps / 2) | 1;
    for k in [0u64, 1, 2, 4] {
        let rspec = ResilienceSpec {
            plan: FaultPlan::new(42).crash_shard(1, crash_step),
            ckpt_interval: k,
            ..ResilienceSpec::default()
        };
        rows.push((
            format!("crash @{crash_step} K={k}"),
            simulate_cr_resilient(&machine, &spec, steps, &rspec),
        ));
    }

    println!("=== Resilience: Stencil on {nodes} nodes, {steps} steps (simulated) ===");
    print!("{}", format_resilience_table(&rows, baseline.makespan));
    println!();
}

/// Part 2: the real SPMD executor's checkpoint–restart contract.
fn real_executor_recovery() {
    let ns = 4;
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 6,
    };
    let mk = || {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };

    let (prog, mut store) = mk();
    let roots = prog.root_regions();
    let spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd, &mut store);

    println!("=== Resilience: real SPMD executor (Stencil, {ns} shards, crash at epoch 3) ===");
    println!(
        "{:>6}  {:>11}  {:>8}  {:>14}  {:>12}",
        "K", "checkpoints", "restores", "epochs replayed", "bit-identical"
    );
    for k in [1u64, 2, 4] {
        let opts = ResilienceOptions {
            checkpoint_interval: k,
            plan: FaultPlan::new(42).crash_shard(1, 3),
            ..Default::default()
        };
        let (prog_r, mut store_r) = mk();
        let spmd_r = control_replicate(prog_r, &CrOptions::new(ns)).unwrap();
        let res = execute_spmd_resilient(&spmd_r, &mut store_r, &opts);
        assert_eq!(plain.env, res.env, "recovered scalar env diverged");
        for &root in &roots {
            let ia = store.instance_in(&spmd.forest, root);
            let ib = store_r.instance_in(&spmd_r.forest, root);
            for (fid, def) in spmd.forest.fields(root).iter() {
                for pt in spmd.forest.domain(root).iter() {
                    let identical = match def.ty {
                        regent_region::FieldType::F64 => {
                            ia.read_f64(fid, pt).to_bits() == ib.read_f64(fid, pt).to_bits()
                        }
                        regent_region::FieldType::I64 => {
                            ia.read_i64(fid, pt) == ib.read_i64(fid, pt)
                        }
                    };
                    assert!(
                        identical,
                        "field {:?} diverged at {:?} (K={k})",
                        def.name, pt
                    );
                }
            }
        }
        let per = &res.per_shard[0];
        println!(
            "{:>6}  {:>11}  {:>8}  {:>14}  {:>12}",
            k, per.checkpoints, per.restores, per.epochs_replayed, "yes"
        );
    }
    println!();
    println!("recovered region contents and scalars are bit-identical to the fault-free run");
}

/// Part 3: the end-to-end integrity layer.
fn corruption_study(nodes: usize, steps: u64, seed: u64, rate: f64) {
    // 3a. Simulated detection/repair under a corruption-rate sweep:
    // every silent flip is caught by the receiver's checksum and
    // repaired by a backoff retransmission, at a makespan cost.
    let machine = MachineConfig::piz_daint(nodes);
    let spec = stencil_spec(nodes, &machine);
    let baseline = simulate_cr(&machine, &spec, steps);
    println!("=== Integrity: Stencil on {nodes} nodes, {steps} steps (simulated, seed {seed}) ===");
    println!(
        "{:>12}  {:>9}  {:>9}  {:>9}  {:>10}  {:>10}",
        "corrupt rate", "injected", "detected", "repaired", "escalated", "overhead"
    );
    for r in [0.001, 0.01, 0.05] {
        let plan = FaultPlan::new(seed).with_corrupt_rate(r);
        let mut tb = Tracer::disabled().buffer("sim");
        let res = simulate_cr_faulted(&machine, &spec, steps, &plan, &mut tb);
        let f = &res.faults;
        assert_eq!(
            f.corruptions_injected, f.corruptions_detected,
            "a silent flip escaped the checksums"
        );
        println!(
            "{:>11.1}%  {:>9}  {:>9}  {:>9}  {:>10}  {:>9.2}%",
            r * 100.0,
            f.corruptions_injected,
            f.corruptions_detected,
            f.corruptions_repaired,
            f.corruptions_escalated,
            (res.makespan / baseline.makespan - 1.0) * 100.0
        );
    }
    println!();

    // 3b. The real SPMD executor under silent bit flips: payload
    // corruption repairs by retransmission, resident corruption
    // escalates to coordinated rollback; the run must end bit-identical
    // to the fault-free one and the Spy must certify the repaired trace.
    let ns = 4;
    let cfg = stencil::StencilConfig {
        n: 64,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 8,
    };
    let mk = || {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };
    let (prog, mut store) = mk();
    let roots = prog.root_regions();
    let spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd, &mut store);

    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(seed).with_corrupt_rate(rate),
        ..Default::default()
    };
    let (prog_c, mut store_c) = mk();
    let spmd_c = control_replicate(prog_c, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let res = execute_spmd_resilient_traced(&spmd_c, &mut store_c, &opts, &tracer);
    let trace = tracer.take();
    assert_bit_identical(&plain, &spmd, &store, &spmd_c, &store_c, &res, &roots);

    let s = integrity_summary(&trace);
    assert!(s.coherent(), "incoherent integrity summary: {s:?}");
    assert_eq!(s.detected, res.stats.corruptions_detected);
    let oracle = regent_cr::ForestOracle::new(&spmd_c.forest);
    let report = validate(&trace, &oracle).expect("corrupted-run trace must stay well-formed");
    assert!(
        report.ok(),
        "spy violations on repaired trace:\n{:?}",
        report.violations
    );
    println!(
        "=== Integrity: real SPMD executor (Stencil, {ns} shards, seed {seed}, rate {rate}) ==="
    );
    println!(
        "injected {}  detected {}  repaired {}  escalated {}  rollbacks {}",
        res.stats.corruptions_injected,
        res.stats.corruptions_detected,
        res.stats.corruptions_repaired,
        res.stats.corruptions_escalated,
        res.per_shard.iter().map(|s| s.restores).max().unwrap_or(0),
    );
    println!(
        "final state bit-identical to fault-free run: yes; Spy certified {} dependences",
        report.certified
    );
    println!();

    // 3c. Checksum overhead at rate 0 on the fig6 stencil's
    // steady-state epochs: the integrity layer seals every instance and
    // verifies every frame, but never finds anything — the cost of
    // always-on detection.
    let overhead_cfg = stencil::StencilConfig {
        n: 256,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 20,
    };
    let mk = || {
        let (prog, h) = stencil::stencil_program(overhead_cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };
    let time_with = |integrity: bool| {
        // Both configurations checkpoint identically; the delta is
        // pure seal/verify work. Best of 3 to shed scheduler noise.
        (0..3)
            .map(|_| {
                let opts = ResilienceOptions {
                    checkpoint_interval: 4,
                    integrity,
                    ..Default::default()
                };
                let (prog, mut store) = mk();
                let spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
                let t0 = std::time::Instant::now();
                let res = execute_spmd_resilient(&spmd, &mut store, &opts);
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(res.stats.corruptions_detected, 0);
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let base = time_with(false);
    let sealed = time_with(true);
    println!("=== Integrity: checksum overhead at rate 0 (fig6 stencil, real executor) ===");
    println!(
        "{}x{} points, {} steps, {ns} shards: base {:.1} ms, integrity {:.1} ms ({:+.1}% overhead)",
        overhead_cfg.n,
        overhead_cfg.n,
        overhead_cfg.steps,
        base * 1e3,
        sealed * 1e3,
        (sealed / base - 1.0) * 100.0
    );
    println!();
}

/// Asserts the corrupted-then-repaired run ended bit-identical to the
/// fault-free one: scalar environment and every field of every root
/// region.
fn assert_bit_identical(
    plain: &SpmdRunResult,
    spmd: &regent_cr::SpmdProgram,
    store: &Store,
    spmd_c: &regent_cr::SpmdProgram,
    store_c: &Store,
    res: &SpmdRunResult,
    roots: &[regent_region::RegionId],
) {
    assert_eq!(plain.env, res.env, "repaired scalar env diverged");
    for &root in roots {
        let ia = store.instance_in(&spmd.forest, root);
        let ib = store_c.instance_in(&spmd_c.forest, root);
        for (fid, def) in spmd.forest.fields(root).iter() {
            for pt in spmd.forest.domain(root).iter() {
                let identical = match def.ty {
                    regent_region::FieldType::F64 => {
                        ia.read_f64(fid, pt).to_bits() == ib.read_f64(fid, pt).to_bits()
                    }
                    regent_region::FieldType::I64 => ia.read_i64(fid, pt) == ib.read_i64(fid, pt),
                };
                assert!(identical, "field {:?} diverged at {:?}", def.name, pt);
            }
        }
    }
}
