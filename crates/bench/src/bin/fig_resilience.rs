//! Resilience figure (beyond the paper's evaluation): behavior of the
//! control-replicated execution under deterministic fault injection.
//!
//! Part 1 simulates the Stencil workload on a fixed machine under a
//! sweep of fault plans — message loss rates, a transient node
//! slowdown, and a mid-run node crash recovered from checkpoints at
//! several intervals — and prints makespan, goodput, overhead, and
//! recovery metrics for each. Part 2 runs the *real* SPMD executor on
//! the Stencil app with an injected shard crash across checkpoint
//! intervals and verifies recovery is bit-identical to the fault-free
//! run (the executor's recovery contract).
//!
//! Accepts `--max-nodes N` (simulated machine size, default 64) and
//! `--steps S` (time steps, default 10).

use regent_apps::stencil;
use regent_apps::stencil::stencil_spec;
use regent_bench::parse_args;
use regent_cr::{control_replicate, CrOptions};
use regent_ir::Store;
use regent_machine::{
    format_resilience_table, simulate_cr, simulate_cr_faulted, simulate_cr_resilient, FaultPlan,
    MachineConfig, ResilienceSpec, ScenarioResult,
};
use regent_runtime::{execute_spmd, execute_spmd_resilient, ResilienceOptions};
use regent_trace::Tracer;

fn main() {
    let runner = parse_args();
    let nodes = if runner.max_nodes == 1024 {
        64 // default machine for this figure; 1024 is parse_args' default
    } else {
        runner.max_nodes
    };
    let steps = if runner.steps == 5 { 10 } else { runner.steps };

    simulator_sweep(nodes, steps);
    real_executor_recovery();
}

/// Part 1: the machine-model sweep.
fn simulator_sweep(nodes: usize, steps: u64) {
    let machine = MachineConfig::piz_daint(nodes);
    let spec = stencil_spec(nodes, &machine);
    let baseline = simulate_cr(&machine, &spec, steps);
    let mut rows: Vec<(String, ScenarioResult)> = vec![("fault-free".into(), baseline)];

    for rate in [0.001, 0.01, 0.05] {
        let plan = FaultPlan::from_seed_rate(42, rate);
        let mut tb = Tracer::disabled().buffer("sim");
        rows.push((
            format!("loss {:>5.1}%", rate * 100.0),
            simulate_cr_faulted(&machine, &spec, steps, &plan, &mut tb),
        ));
    }

    // A transient 4× slowdown of node 0 for the middle third of the run.
    let window = baseline.makespan / 3.0;
    let slow = FaultPlan::new(42).slow_node(0, window, window, 4.0);
    let mut tb = Tracer::disabled().buffer("sim");
    rows.push((
        "slowdown 4x".into(),
        simulate_cr_faulted(&machine, &spec, steps, &slow, &mut tb),
    ));

    // A node crash mid-run, recovered from checkpoints every K steps
    // (K=0: no checkpointing, replay everything since step 0). The
    // crash step is odd so it never lands exactly on a checkpoint.
    let crash_step = (steps / 2) | 1;
    for k in [0u64, 1, 2, 4] {
        let rspec = ResilienceSpec {
            plan: FaultPlan::new(42).crash_shard(1, crash_step),
            ckpt_interval: k,
        };
        rows.push((
            format!("crash @{crash_step} K={k}"),
            simulate_cr_resilient(&machine, &spec, steps, &rspec),
        ));
    }

    println!("=== Resilience: Stencil on {nodes} nodes, {steps} steps (simulated) ===");
    print!("{}", format_resilience_table(&rows, baseline.makespan));
    println!();
}

/// Part 2: the real SPMD executor's checkpoint–restart contract.
fn real_executor_recovery() {
    let ns = 4;
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 6,
    };
    let mk = || {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };

    let (prog, mut store) = mk();
    let roots = prog.root_regions();
    let spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd, &mut store);

    println!("=== Resilience: real SPMD executor (Stencil, {ns} shards, crash at epoch 3) ===");
    println!(
        "{:>6}  {:>11}  {:>8}  {:>14}  {:>12}",
        "K", "checkpoints", "restores", "epochs replayed", "bit-identical"
    );
    for k in [1u64, 2, 4] {
        let opts = ResilienceOptions {
            checkpoint_interval: k,
            plan: FaultPlan::new(42).crash_shard(1, 3),
        };
        let (prog_r, mut store_r) = mk();
        let spmd_r = control_replicate(prog_r, &CrOptions::new(ns)).unwrap();
        let res = execute_spmd_resilient(&spmd_r, &mut store_r, &opts);
        assert_eq!(plain.env, res.env, "recovered scalar env diverged");
        for &root in &roots {
            let ia = store.instance_in(&spmd.forest, root);
            let ib = store_r.instance_in(&spmd_r.forest, root);
            for (fid, def) in spmd.forest.fields(root).iter() {
                for pt in spmd.forest.domain(root).iter() {
                    let identical = match def.ty {
                        regent_region::FieldType::F64 => {
                            ia.read_f64(fid, pt).to_bits() == ib.read_f64(fid, pt).to_bits()
                        }
                        regent_region::FieldType::I64 => {
                            ia.read_i64(fid, pt) == ib.read_i64(fid, pt)
                        }
                    };
                    assert!(
                        identical,
                        "field {:?} diverged at {:?} (K={k})",
                        def.name, pt
                    );
                }
            }
        }
        let per = &res.per_shard[0];
        println!(
            "{:>6}  {:>11}  {:>8}  {:>14}  {:>12}",
            k, per.checkpoints, per.restores, per.epochs_replayed, "yes"
        );
    }
    println!();
    println!("recovered region contents and scalars are bit-identical to the fault-free run");
}
