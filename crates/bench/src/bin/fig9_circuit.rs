//! Figure 9: weak scaling for Circuit (sparse unstructured graph,
//! 100k wires + 25k nodes per node) — Regent with vs. without control
//! replication (the paper has no reference implementation for this
//! code).

use regent_apps::circuit::circuit_spec;
use regent_bench::{parse_args, run_figure};

fn main() {
    let runner = parse_args();
    run_figure(
        "Figure 9: Circuit weak scaling (10^3 graph nodes/s per node)",
        "circuit",
        &runner,
        circuit_spec,
        &[],
    );
}
