//! `fig_dataplane` — benchmarks for the lock-free shard data plane:
//! SPSC rings + buffer pool + striped checksums versus the legacy
//! mpsc-channel pipeline (fresh allocations, scalar FNV-1a).
//!
//! Three parts:
//!
//! 1. **Transport pair** — two threads exchanging halo-sized `f64`
//!    payloads both ways, exactly the executor's steady-state pattern:
//!    the new pipeline draws buffers from a [`ChunkPool`], checksums
//!    in place with [`StripedFnv`], and ships over rings; the old one
//!    allocates per message, hashes word-by-word, and ships over
//!    `std::sync::mpsc`. Pairs run sequentially (two threads at a
//!    time) so an oversubscribed runner measures the transport, not
//!    the scheduler.
//! 2. **Checksum throughput** — scalar FNV-1a vs the 4-lane striped
//!    [`StripedFnv`] the integrity layer actually uses vs the
//!    multiply-fold [`MulFold`] alternative, over a large buffer
//!    (bulk hashing is the dominant term of the integrity layer's
//!    rate-0 overhead).
//! 3. **Fig. 6 end to end** — the fig6-shape stencil at 8 shards on
//!    both planes (`REGENT_DATA_PLANE`), plus the integrity layer's
//!    rate-0 overhead, measured *within* one sealed run from the
//!    executor's own `integrity_ns` timer (a cross-run wall-clock
//!    ratio is fat-tailed on a shared runner; the within-run share
//!    is not).
//!
//! The `--check` gate mixes two entry kinds (the `BENCH_PR8.json`
//! model): **budget** entries carry real wall times against generous
//! ceilings — any healthy run passes, a hang or a pathological
//! regression trips it — and **ratio** entries encode the acceptance
//! criteria machine-checkably as `wall_ns` values:
//!
//! * `*-speedup` entries store `new_time × 1000 / old_time` (permille;
//!   lower is better). `pair-speedup`'s ceiling of `667` asserts the
//!   new transport pipeline is ≥1.5× the legacy one per exchanged
//!   message; `checksum-speedup`'s `800` asserts the bulk hashers
//!   keep a ≥1.25× lead over scalar FNV-1a — the gate measures
//!   [`MulFold`] (stable well above 2× here because this hot loop
//!   compiles to scalar code, where one widening multiply per pair
//!   beats one multiply per word), and the report also prints
//!   [`StripedFnv`], which is what the seal/frame paths ship with:
//!   its four independent lanes auto-vectorize *there* and measure
//!   ~1.6× faster in situ than the multiply-fold, even though they
//!   trail it in this scalar hot loop; `fig6-plane-speedup`'s `1200`
//!   asserts the
//!   ring plane stays within 20% of the channel plane end to end —
//!   parity is the bar on a single-core CI runner, where spinning
//!   consumers cannot overlap with producers and the ring's
//!   multi-core win (no mutex/condvar handoff per message) cannot
//!   show up in wall-clock.
//! * the `integrity-overhead` entry stores `overhead_pct × 100`,
//!   where the percentage is the `integrity_ns` timer's share of the
//!   remaining (non-integrity) process CPU time of a sealed 1-shard
//!   run — CPU time on both sides, so neither background load nor a
//!   preemption inside a probed section moves the ratio. The
//!   criterion is ≤3% (down from the +10.8% of the pre-ring pipeline
//!   recorded in EXPERIMENTS.md; per-column seals, the striped
//!   hasher, and snapshot-aligned sweeps are what pulled it under —
//!   typical measurements land near 2%), so the ceiling is `300` with
//!   no extra noise allowance: the share is computed within a single
//!   run and does not inherit cross-run load variance.
//!
//! Run `--check` with `--check-tol 0`: the ceilings already embed all
//! allowed slack.
//!
//! ```text
//! fig_dataplane [--msgs N] [--steps N] [--json out.json]
//!               [--check BENCH_PR8.json] [--check-tol 0]
//! ```

use regent_apps::stencil;
use regent_cr::{control_replicate, CrOptions};
use regent_ir::Store;
use regent_region::{fnv1a, MulFold, StripedFnv};
use regent_runtime::metrics::Timer;
use regent_runtime::{execute_spmd, execute_spmd_resilient, ring, ChunkPool, ResilienceOptions};
use regent_trace::{
    check_entries, entries_to_json, merge_entries, parse_entries, BenchEntry, Blame,
};
use std::time::Instant;

/// Elements per message — a realistic halo-exchange payload (radius 2
/// over a 256-wide strip). Override with `--halo`.
static HALO: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(512);

fn halo() -> usize {
    HALO.load(std::sync::atomic::Ordering::Relaxed)
}

fn best_of(reps: u32, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// The new pipeline: pooled buffers, in-place striped checksums, ring
/// transport with batched publication. Bidirectional so recycling
/// feeds the send path, as in the executors. Payloads are constant
/// fills (memset speed) so the timing isolates the pipeline under
/// test — pool + hash + transport — not payload synthesis, which is
/// identical on both sides.
fn pair_ring(msgs: u64) -> f64 {
    let (tx_ab, rx_ab) = ring::<(u64, Vec<f64>)>(256);
    let (tx_ba, rx_ba) = ring::<(u64, Vec<f64>)>(256);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (mut tx, mut rx) in [(tx_ab, rx_ba), (tx_ba, rx_ab)] {
            scope.spawn(move || {
                let mut pool = ChunkPool::new();
                let mut received = 0u64;
                let mut drain = |pool: &mut ChunkPool, received: &mut u64| {
                    while let Some((cs, v)) = rx.try_recv() {
                        let mut h = StripedFnv::new();
                        h.mix_f64s(&v);
                        assert_eq!(h.finish(), cs, "frame corrupted in flight");
                        pool.put_f64(v);
                        *received += 1;
                    }
                };
                for i in 0..msgs {
                    let mut v = pool.take_f64(halo());
                    v.resize(halo(), i as f64 * 1.0000001);
                    let mut h = StripedFnv::new();
                    h.mix_f64s(&v);
                    let cs = h.finish();
                    // Batched publication, as the executors do: push
                    // buffers locally, let the ring auto-flush.
                    tx.push((cs, v)).expect("peer alive");
                    drain(&mut pool, &mut received);
                }
                tx.flush();
                while received < msgs {
                    let (cs, v) = rx
                        .recv_timeout(std::time::Duration::from_secs(30))
                        .expect("peer alive and sending");
                    let mut h = StripedFnv::new();
                    h.mix_f64s(&v);
                    assert_eq!(h.finish(), cs, "frame corrupted in flight");
                    pool.put_f64(v);
                    received += 1;
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// The old pipeline: per-message allocations (the legacy `CopyMsg`
/// nested a payload `Vec` inside a chunk list `Vec`, two allocations
/// per frame), word-by-word FNV-1a, unbounded mpsc channels.
fn pair_channel(msgs: u64) -> f64 {
    use std::sync::mpsc::channel;
    let (tx_ab, rx_ab) = channel::<(u64, Vec<Vec<f64>>)>();
    let (tx_ba, rx_ba) = channel::<(u64, Vec<Vec<f64>>)>();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (tx, rx) in [(tx_ab, rx_ba), (tx_ba, rx_ab)] {
            scope.spawn(move || {
                let mut received = 0u64;
                for i in 0..msgs {
                    let v = vec![vec![i as f64 * 1.0000001; halo()]];
                    let cs = fnv1a(v[0].iter().map(|x| x.to_bits()));
                    tx.send((cs, v)).expect("peer alive");
                    while let Ok((cs, v)) = rx.try_recv() {
                        assert_eq!(
                            fnv1a(v[0].iter().map(|x| x.to_bits())),
                            cs,
                            "frame corrupted in flight"
                        );
                        received += 1;
                    }
                }
                while received < msgs {
                    let (cs, v) = rx
                        .recv_timeout(std::time::Duration::from_secs(30))
                        .expect("peer alive and sending");
                    assert_eq!(
                        fnv1a(v[0].iter().map(|x| x.to_bits())),
                        cs,
                        "frame corrupted in flight"
                    );
                    received += 1;
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Checksum throughput: scalar vs striped vs multiply-fold,
/// cache-resident so the comparison measures the hash dependency
/// chain rather than memory bandwidth (instance seals hash
/// shard-local columns that are warm from the compute kernels).
/// Note this hot loop compiles to scalar code — the striped lanes'
/// auto-vectorized form, which is why the seal path uses them, shows
/// up in situ (see `Instance::seal_fields`), not here.
fn checksum_times() -> (f64, f64, f64) {
    const WORDS: u64 = 32_768; // 256 KiB: L2-resident
                               // Short reps (8 passes ≈ 0.3 ms) interleaved scalar/striped, many
                               // of them: each rep fits inside a scheduler timeslice, so on a
                               // busy runner the per-side minima still find preemption-free
                               // windows — one long rep would always straddle a slice boundary
                               // and inflate, compressing the ratio.
    const PASSES: u32 = 8;
    const REPS: u32 = 40;
    let buf: Vec<f64> = (0..WORDS).map(|i| (i ^ 0x9e37) as f64).collect();
    let mut plain = f64::INFINITY;
    let mut striped = f64::INFINITY;
    let mut folded = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..PASSES {
            let h = fnv1a(buf.iter().map(|x| x.to_bits()));
            std::hint::black_box(h);
        }
        plain = plain.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..PASSES {
            let mut h = StripedFnv::new();
            h.mix_f64s(&buf);
            std::hint::black_box(h.finish());
        }
        striped = striped.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..PASSES {
            let mut h = MulFold::new();
            h.mix_f64s(&buf);
            std::hint::black_box(h.finish());
        }
        folded = folded.min(t0.elapsed().as_secs_f64());
    }
    (plain, striped, folded)
}

fn stencil_setup(steps: u64, ns: usize) -> (regent_cr::SpmdProgram, Store) {
    let cfg = stencil::StencilConfig {
        n: 256,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    let spmd = control_replicate(prog, &CrOptions::new(ns)).unwrap();
    (spmd, store)
}

/// One fig6-shape stencil run (8 shards) on the current data plane.
fn stencil_run(steps: u64, ns: usize) -> f64 {
    let (spmd, mut store) = stencil_setup(steps, ns);
    let t0 = Instant::now();
    execute_spmd(&spmd, &mut store);
    t0.elapsed().as_secs_f64()
}

/// Sealed run through the resilient executor with the integrity
/// layer's own timer read back from the always-on metrics registry.
/// Returns `(cpu_seconds, integrity_seconds)` — the first component
/// is the process CPU time of the run, the second the summed
/// [`Timer::IntegrityNs`] across shards: column re-seals at write
/// completion, boundary verification sweeps, and exchange-frame
/// checksums. Both sides are CPU-time measurements
/// ([`regent_runtime::metrics::thread_cpu_ns`] inside the probes,
/// [`regent_runtime::metrics::process_cpu_ns`] around the run), so
/// neither background load stretching the wall clock nor a preemption
/// landing inside a probed section moves the ratio — the statistic a
/// shared CI runner cannot shake.
fn instrumented_run(steps: u64, ns: usize) -> (f64, f64) {
    let (spmd, mut store) = stencil_setup(steps, ns);
    let opts = ResilienceOptions {
        checkpoint_interval: 4,
        integrity: true,
        ..Default::default()
    };
    let reg = regent_runtime::metrics::global();
    reg.reset();
    let c0 = regent_runtime::metrics::process_cpu_ns();
    let res = execute_spmd_resilient(&spmd, &mut store, &opts);
    let cpu = regent_runtime::metrics::process_cpu_ns().saturating_sub(c0) as f64 / 1e9;
    assert_eq!(res.stats.corruptions_detected, 0);
    let agg = reg.aggregate();
    let h = agg.timer(Timer::IntegrityNs);
    if std::env::var_os("REGENT_DEBUG_INTEGRITY").is_some() {
        eprintln!(
            "integrity probes: count={} sum={:.2}ms mean={:.1}us buckets={:?}",
            h.count,
            h.sum_ns as f64 / 1e6,
            h.sum_ns as f64 / h.count.max(1) as f64 / 1e3,
            &h.buckets
        );
    }
    let integrity = h.sum_ns as f64 / 1e9;
    (cpu, integrity)
}

fn entry(executor: &str, wall_ns: u64, metrics: Vec<(String, f64)>) -> BenchEntry {
    BenchEntry {
        app: "dataplane".to_string(),
        size: format!("halo{}", halo()),
        shards: 8,
        executor: executor.to_string(),
        wall_ns,
        critical_path_ns: wall_ns,
        blame: Blame::default(),
        metrics,
    }
}

/// `new/old` as permille (lower = faster new pipeline): 667 ≡ 1.5×.
fn permille(new: f64, old: f64) -> u64 {
    (new * 1000.0 / old).round().max(1.0) as u64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut msgs: u64 = 20_000;
    let mut steps: u64 = 20;
    let mut json: Option<String> = None;
    let mut check: Option<String> = None;
    let mut check_tol: f64 = 0.0;
    let need = |i: usize| -> String {
        args.get(i)
            .unwrap_or_else(|| panic!("missing value after {}", args[i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--msgs" => {
                msgs = need(i + 1).parse().expect("--msgs takes a count");
                i += 2;
            }
            "--halo" => {
                let h: usize = need(i + 1).parse().expect("--halo takes a count");
                HALO.store(h.max(1), std::sync::atomic::Ordering::Relaxed);
                i += 2;
            }
            "--steps" => {
                steps = need(i + 1).parse().expect("--steps takes a count");
                i += 2;
            }
            "--json" => {
                json = Some(need(i + 1));
                i += 2;
            }
            "--check" => {
                check = Some(need(i + 1));
                i += 2;
            }
            "--check-tol" => {
                check_tol = need(i + 1).parse().expect("--check-tol takes a number");
                i += 2;
            }
            other => panic!(
                "unknown argument {other} (usage: fig_dataplane [--msgs N] [--halo N] \
                 [--steps N] [--json p] [--check p] [--check-tol pct])"
            ),
        }
    }
    let ns = 8;
    let mut entries = Vec::new();

    // Part 1: transport pair. Interleave the two pipelines and take
    // independent minima: background load on a shared runner comes in
    // epochs, and alternating puts both pipelines through the same
    // epochs so the ratio of minima compares clean run to clean run.
    // Many short rounds (half the messages each) rather than a few
    // long ones: a shorter round has a real chance of landing wholly
    // inside a quiet window, and more rounds dig the minima deeper —
    // the same timeslice argument as `checksum_times`.
    let round = (msgs / 2).max(1);
    let mut ring_s = f64::INFINITY;
    let mut chan_s = f64::INFINITY;
    for _ in 0..13 {
        ring_s = ring_s.min(pair_ring(round) * msgs as f64 / round as f64);
        chan_s = chan_s.min(pair_channel(round) * msgs as f64 / round as f64);
    }
    let thr = |s: f64| 2.0 * msgs as f64 / s / 1e6;
    println!(
        "== transport pair ({msgs} msgs/direction, {} f64s each) ==",
        halo()
    );
    println!(
        "  ring+pool+striped : {:8.1} ms  ({:.2} Mmsg/s)",
        ring_s * 1e3,
        thr(ring_s)
    );
    println!(
        "  channel+alloc+fnv : {:8.1} ms  ({:.2} Mmsg/s)",
        chan_s * 1e3,
        thr(chan_s)
    );
    println!("  speedup           : {:8.2}x", chan_s / ring_s);
    entries.push(entry(
        "pair-ring",
        (ring_s * 1e9) as u64,
        vec![("mmsg_per_s".into(), thr(ring_s))],
    ));
    entries.push(entry(
        "pair-channel",
        (chan_s * 1e9) as u64,
        vec![("mmsg_per_s".into(), thr(chan_s))],
    ));
    entries.push(entry(
        "pair-speedup",
        permille(ring_s, chan_s),
        vec![("speedup_x".into(), chan_s / ring_s)],
    ));

    // Part 2: checksum throughput.
    let (plain_s, striped_s, folded_s) = checksum_times();
    println!("== checksum (32k f64 words x8 passes, cache-resident, best of 40 interleaved) ==");
    println!(
        "  scalar fnv1a      : {:8.2} ms   striped: {:.2} ms ({:.2}x)   mulfold: {:.2} ms ({:.2}x)",
        plain_s * 1e3,
        striped_s * 1e3,
        plain_s / striped_s,
        folded_s * 1e3,
        plain_s / folded_s
    );
    entries.push(entry(
        "checksum-speedup",
        permille(folded_s, plain_s),
        vec![
            ("speedup_x".into(), plain_s / folded_s),
            ("striped_speedup_x".into(), plain_s / striped_s),
        ],
    ));

    // Part 3: fig6-shape stencil, both planes, then rate-0 integrity
    // overhead on the default (ring) plane.
    std::env::set_var("REGENT_DATA_PLANE", "ring");
    let fig_ring = best_of(3, || stencil_run(steps, ns));
    std::env::set_var("REGENT_DATA_PLANE", "channel");
    let fig_chan = best_of(3, || stencil_run(steps, ns));
    // A ratio of two separate wall-clock runs is fat-tailed on a
    // shared runner (background load arrives in epochs longer than a
    // run), so the overhead is instead measured *within* one sealed
    // run, in CPU time on both sides: the executor's always-on
    // metrics time every integrity-only section with the thread CPU
    // clock (Timer::IntegrityNs), and the gated statistic is that
    // timer's share of the run's remaining process CPU time. Measured
    // at 1 shard — the seal/verify cost under test is per-word and
    // fully present there, while a multi-shard run spends CPU in
    // spin-waits that would dilute the share.
    std::env::set_var("REGENT_DATA_PLANE", "ring");
    let mut overhead_pct = f64::INFINITY;
    let mut seal_cpu = 0.0;
    let mut seal_integrity = 0.0;
    for _ in 0..3 {
        let (cpu, integrity) = instrumented_run(steps * 2, 1);
        let pct = integrity / (cpu - integrity) * 100.0;
        if pct < overhead_pct {
            overhead_pct = pct;
            seal_cpu = cpu;
            seal_integrity = integrity;
        }
    }
    println!("== fig6 stencil 256x256, {steps} steps, {ns} shards (best of 3) ==");
    println!(
        "  ring    : {:8.1} ms\n  channel : {:8.1} ms   (ring is {:.2}x)",
        fig_ring * 1e3,
        fig_chan * 1e3,
        fig_chan / fig_ring
    );
    println!(
        "== integrity rate-0 overhead (1 shard, {} steps, instrumented, best of 3) ==",
        steps * 2
    );
    println!("  sealed run CPU       : {:8.1} ms", seal_cpu * 1e3);
    println!(
        "  integrity CPU        : {:8.1} ms  ({:+.1}% of base work)",
        seal_integrity * 1e3,
        overhead_pct
    );
    entries.push(entry(
        "fig6-ring",
        (fig_ring * 1e9) as u64,
        vec![("seconds".into(), fig_ring)],
    ));
    entries.push(entry(
        "fig6-channel",
        (fig_chan * 1e9) as u64,
        vec![("seconds".into(), fig_chan)],
    ));
    entries.push(entry(
        "fig6-plane-speedup",
        permille(fig_ring, fig_chan),
        vec![("speedup_x".into(), fig_chan / fig_ring)],
    ));
    entries.push(entry(
        "integrity-overhead",
        (overhead_pct.max(0.0) * 100.0).round() as u64,
        vec![
            ("overhead_pct".into(), overhead_pct),
            ("integrity_cpu_ms".into(), seal_integrity * 1e3),
            ("sealed_cpu_ms".into(), seal_cpu * 1e3),
        ],
    ));

    if let Some(path) = &json {
        let merged = match std::fs::read_to_string(path)
            .ok()
            .and_then(|t| parse_entries(&t).ok())
        {
            Some(base) => merge_entries(base, entries.clone()),
            None => entries.clone(),
        };
        std::fs::write(path, entries_to_json(&merged))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("bench artifact: {} entries -> {path}", merged.len());
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_entries(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        match check_entries(&entries, &baseline, check_tol) {
            Ok(notes) => {
                for n in &notes {
                    println!("check: {n}");
                }
                println!(
                    "check: {} entr{} within the budget of {path}",
                    entries.len(),
                    if entries.len() == 1 { "y" } else { "ies" }
                );
            }
            Err(regressions) => {
                for r in &regressions {
                    eprintln!("GATE VIOLATION: {r}");
                }
                eprintln!("check: {} violation(s) against {path}", regressions.len());
                std::process::exit(1);
            }
        }
    }
}
