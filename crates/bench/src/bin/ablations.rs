//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Copy intersection acceleration** (§3.3): interval-tree/BVH
//!    shallow intersections vs. the naive all-pairs O(N²) comparison.
//! 2. **Region-tree static pruning** (§3.1/§4.5): copies emitted with
//!    and without `skip_disjoint_pairs`.
//! 3. **Copy placement optimization** (§3.2): copies before/after the
//!    redundancy and dead-copy passes.
//! 4. **Synchronization** (§3.4): wall time of real SPMD execution
//!    under point-to-point vs. global-barrier synchronization.
//! 5. **Region-tree hierarchy** (§4.5): flat vs private/ghost
//!    hierarchical intersection inputs.
//! 6. **Epoch-trace memoization**: real implicit execution of the
//!    stencil with and without template capture/replay — dependence
//!    checks, per-epoch analysis cost, and the steady-state hit rate.
//! 7. **Shared-log execution**: real stencil execution through the
//!    flat-combining operation-log executor vs plain SPMD — sequencer
//!    appends/combines, combined-batch sizes, cursor lag, and the
//!    per-replica amortized dependence analysis.

use regent_apps::{circuit, stencil};
use regent_cr::{control_replicate, CrOptions, SyncMode};
use regent_ir::Store;
use regent_region::intersect::{shallow_intersections_naive, shallow_intersections_of};
use regent_region::{ops, Color, Domain, FieldSpace, RegionForest};
use regent_runtime::{
    execute_implicit, execute_log_traced, execute_spmd_traced, metrics, ImplicitOptions, MemoCache,
};
use regent_trace::{
    blame_report, entries_to_json, memo_summary, merge_entries, parse_entries, BenchEntry, Tracer,
};
use std::time::Instant;

fn ablation_intersections() {
    println!("--- Ablation 1: shallow intersection, accelerated vs naive ---");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>8}",
        "pieces", "tree (ms)", "naive (ms)", "pairs"
    );
    for pieces in [64usize, 256, 1024, 4096] {
        // A halo pattern over a 1-D region: each piece's ghost overlaps
        // its two neighbours (the O(1)-neighbours case of §3.3).
        let mut forest = RegionForest::new();
        let n = (pieces as u64) * 1024;
        let r = forest.create_region(Domain::range(n), FieldSpace::new());
        let pb = ops::block(&mut forest, r, pieces);
        let qb = ops::image(&mut forest, r, pb, |p, sink| {
            sink.push(regent_geometry::DynPoint::from(p.coord(0) - 1));
            sink.push(regent_geometry::DynPoint::from(p.coord(0) + 1));
        });
        let src: Vec<(Color, Domain)> = forest
            .partition(pb)
            .iter()
            .map(|(c, reg)| (c, forest.domain(reg).clone()))
            .collect();
        let dst: Vec<(Color, Domain)> = forest
            .partition(qb)
            .iter()
            .map(|(c, reg)| (c, forest.domain(reg).clone()))
            .collect();
        let t0 = Instant::now();
        let fast = shallow_intersections_of(&src, &dst);
        let t_fast = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let naive = shallow_intersections_naive(&src, &dst);
        let t_naive = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(fast, naive);
        println!(
            "{:>8}  {:>14.2}  {:>14.2}  {:>8}",
            pieces,
            t_fast,
            t_naive,
            fast.len()
        );
    }
    println!();
}

fn ablation_copies() {
    println!("--- Ablations 2+3: copies emitted per configuration ---");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>12} {:>10}",
        "app", "skip", "placement", "copies", "redundant-", "dead-"
    );
    for (skip, place) in [(true, true), (true, false), (false, true), (false, false)] {
        let cfg = circuit::CircuitConfig::default();
        let g = circuit::generate_graph(&cfg);
        let (prog, _) = circuit::circuit_program(cfg, &g);
        let mut o = CrOptions::new(4);
        o.skip_disjoint_pairs = skip;
        o.optimize_placement = place;
        let spmd = control_replicate(prog, &o).unwrap();
        println!(
            "{:<10} {:>6} {:>10} {:>10} {:>12} {:>10}",
            "circuit",
            skip,
            place,
            spmd.count_copies(),
            spmd.stats.copies_removed_redundant,
            spmd.stats.copies_removed_dead
        );
    }
    println!();
}

/// Builds a machine-readable entry from one real (wall-clock) ablation
/// run: blame from its trace, metrics from the global registry
/// accumulated since the last `reset()`.
fn real_entry(app: &str, size: &str, shards: u32, executor: &str, wall_ns: u64) -> BenchEntry {
    BenchEntry {
        app: app.to_string(),
        size: size.to_string(),
        shards,
        executor: executor.to_string(),
        wall_ns,
        critical_path_ns: 0,
        blame: regent_trace::Blame::default(),
        metrics: metrics::global().snapshot_flat(),
    }
}

fn ablation_sync(entries: &mut Vec<BenchEntry>) {
    println!("--- Ablation 4: point-to-point vs global-barrier sync (real execution) ---");
    let cfg = stencil::StencilConfig {
        n: 256,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 10,
    };
    for (label, executor, mode) in [
        ("point-to-point", "spmd-p2p", SyncMode::PointToPoint),
        ("barrier", "spmd-barrier", SyncMode::Barrier),
    ] {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        let mut o = CrOptions::new(8);
        o.sync = mode;
        let spmd = control_replicate(prog, &o).unwrap();
        metrics::global().reset();
        let tracer = Tracer::enabled();
        let t0 = Instant::now();
        let r = execute_spmd_traced(&spmd, &mut store, &tracer);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {label:<16} {dt:>8.1} ms  ({} msgs, {} elements)",
            r.stats.messages_sent, r.stats.elements_sent
        );
        let mut e = real_entry(
            "stencil-sync",
            "n256",
            8,
            executor,
            t0.elapsed().as_nanos() as u64,
        );
        if let Ok(rep) = blame_report(&tracer.take()) {
            e.critical_path_ns = rep.critical_path_ns;
            e.blame = rep.total;
        }
        entries.push(e);
    }
    println!();
}

fn ablation_hierarchy() {
    use regent_region::private_ghost_split;
    println!("--- Ablation 5: flat vs hierarchical (§4.5) region trees ---");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>12}  {:>12}",
        "pieces", "flat-sh (ms)", "hier-sh (ms)", "flat elems", "hier elems"
    );
    for pieces in [64usize, 256, 1024] {
        // Flat: interval tree over every run of the full block + halo
        // partitions. Hierarchical: private data excluded, only the
        // ghost-restricted partitions are intersected.
        let build = |hier: bool| {
            let mut forest = RegionForest::new();
            let n = pieces as u64 * 512;
            let r = forest.create_region(Domain::range(n), FieldSpace::new());
            let owned = ops::block(&mut forest, r, pieces);
            let halo = ops::image(&mut forest, r, owned, |p, sink| {
                sink.push(regent_geometry::DynPoint::from(p.coord(0) - 2));
                sink.push(regent_geometry::DynPoint::from(p.coord(0) + 2));
            });
            let (src_part, dst_part) = if hier {
                let pg = private_ghost_split(&mut forest, owned, halo);
                (pg.shared_owned, pg.ghost_halo)
            } else {
                (owned, halo)
            };
            let collect = |p| {
                forest
                    .partition(p)
                    .iter()
                    .map(|(c, reg)| (c, forest.domain(reg).clone()))
                    .collect::<Vec<(Color, Domain)>>()
            };
            (collect(src_part), collect(dst_part))
        };
        let (fsrc, fdst) = build(false);
        let (hsrc, hdst) = build(true);
        let t0 = Instant::now();
        let fp = shallow_intersections_of(&fsrc, &fdst);
        let t_flat = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let hp = shallow_intersections_of(&hsrc, &hdst);
        let t_hier = t1.elapsed().as_secs_f64() * 1e3;
        let vol = |src: &[(Color, Domain)],
                   dst: &[(Color, Domain)],
                   pairs: &[regent_region::OverlapPair]|
         -> u64 {
            pairs
                .iter()
                .map(|pr| {
                    let s = &src.iter().find(|(c, _)| *c == pr.src).unwrap().1;
                    let d = &dst.iter().find(|(c, _)| *c == pr.dst).unwrap().1;
                    s.intersect(d).volume()
                })
                .sum()
        };
        println!(
            "{:>8}  {:>14.2}  {:>14.2}  {:>12}  {:>12}",
            pieces,
            t_flat,
            t_hier,
            vol(&fsrc, &fdst, &fp),
            vol(&hsrc, &hdst, &hp)
        );
    }
    println!();
}

fn ablation_memo(entries: &mut Vec<BenchEntry>) {
    println!("--- Ablation 6: epoch-trace memoization (real implicit execution) ---");
    let cfg = stencil::StencilConfig {
        n: 256,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 10,
    };
    for memoized in [false, true] {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        let tracer = Tracer::enabled();
        let mut opts = ImplicitOptions {
            tracer: tracer.clone(),
            ..ImplicitOptions::with_workers(8)
        };
        if memoized {
            opts = opts.with_memo(MemoCache::shared());
        }
        metrics::global().reset();
        let t0 = Instant::now();
        let (_, stats) = execute_implicit(&prog, &mut store, opts);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let trace = tracer.take();
        let summary = memo_summary(&trace, "control");
        let label = if memoized { "memoized" } else { "plain" };
        println!(
            "  {label:<10} {dt:>8.1} ms  {:>8} checks  first epoch {:>8.1} µs, steady {:>8.1} µs, hit rate {:>5.1}%",
            stats.dependence_checks,
            summary.first_epoch_analysis_ns as f64 / 1e3,
            summary.steady_state_analysis_ns / 1e3,
            summary.steady_state_hit_rate() * 100.0
        );
        let executor = if memoized {
            "implicit-memo"
        } else {
            "implicit"
        };
        let mut e = real_entry(
            "stencil-memo",
            "n256",
            8,
            executor,
            t0.elapsed().as_nanos() as u64,
        );
        if let Ok(rep) = blame_report(&trace) {
            e.critical_path_ns = rep.critical_path_ns;
            e.blame = rep.total;
        }
        entries.push(e);
    }
    println!();
}

fn ablation_log(entries: &mut Vec<BenchEntry>) {
    println!("--- Ablation 7: shared-log executor vs plain SPMD (real execution) ---");
    let cfg = stencil::StencilConfig {
        n: 256,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 10,
    };
    for (label, executor) in [("spmd", "spmd"), ("log", "log")] {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        let spmd = control_replicate(prog, &CrOptions::new(8)).unwrap();
        metrics::global().reset();
        let tracer = Tracer::enabled();
        let t0 = Instant::now();
        let mut e = real_entry("stencil-log", "n256", 8, executor, 0);
        let trace = if executor == "log" {
            let r = execute_log_traced(&spmd, &mut store, &tracer);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            println!(
                "  {label:<6} {dt:>8.1} ms  {} appends, {} combines -> {} batches \
                 ({} replicas, max cursor lag {})",
                r.log.appended_records,
                r.log.combines,
                r.log.batches,
                r.log.replicas,
                r.log.max_cursor_lag
            );
            tracer.take()
        } else {
            let r = execute_spmd_traced(&spmd, &mut store, &tracer);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            println!(
                "  {label:<6} {dt:>8.1} ms  ({} msgs, {} elements)",
                r.stats.messages_sent, r.stats.elements_sent
            );
            tracer.take()
        };
        e.wall_ns = t0.elapsed().as_nanos() as u64;
        e.metrics = metrics::global().snapshot_flat();
        if let Ok(rep) = blame_report(&trace) {
            e.critical_path_ns = rep.critical_path_ns;
            e.blame = rep.total;
        }
        entries.push(e);
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = Some(args.get(i + 1).expect("--json <path>").clone());
                i += 2;
            }
            other => panic!("unknown argument {other} (ablations accepts only --json <path>)"),
        }
    }
    let mut entries = Vec::new();
    ablation_intersections();
    ablation_copies();
    ablation_sync(&mut entries);
    ablation_hierarchy();
    ablation_memo(&mut entries);
    ablation_log(&mut entries);
    if let Some(path) = json {
        let merged = match std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| parse_entries(&t).ok())
        {
            Some(base) => merge_entries(base, entries),
            None => entries,
        };
        std::fs::write(&path, entries_to_json(&merged))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("bench artifact: {} entries -> {path}", merged.len());
    }
}
