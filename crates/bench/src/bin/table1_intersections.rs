//! Table 1: running times of the dynamic region intersections (§3.3)
//! for each application at 64 and 1024 nodes.
//!
//! These are *measured*, not simulated: each application's real
//! partitions are built at the given piece count and the compiled
//! program's intersection declarations are evaluated through the same
//! two-phase (shallow, then complete) machinery the SPMD runtime uses.
//! Per-piece problem sizes are scaled down from the paper's (whose
//! 40k²-points-per-node inputs need a supercomputer's memory); the
//! *structure* — pieces, neighbours, O(1) intersections per region —
//! is preserved, which is what the shallow phase's O(N log N) cost
//! depends on. Expect the same shape as the paper: shallow times grow
//! roughly linearly in node count and stay in the hundreds of
//! milliseconds; complete times are small and (for the per-shard
//! phase) scale-independent.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::{control_replicate, CrOptions};
use regent_runtime::build_exchange_plan;

fn measure(name: &str, pieces: usize, build: impl FnOnce() -> regent_ir::Program) {
    let prog = build();
    let spmd = control_replicate(prog, &CrOptions::new(pieces)).expect("CR failed");
    let plan = build_exchange_plan(&spmd);
    println!(
        "{:<10} {:>6}  {:>12.1}  {:>12.1}  {:>8}",
        name,
        pieces,
        plan.setup.shallow_seconds * 1e3,
        plan.setup.complete_seconds * 1e3,
        plan.setup.num_pairs
    );
}

fn main() {
    let scales: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("node counts"))
        .collect();
    let scales = if scales.is_empty() {
        vec![64, 1024]
    } else {
        scales
    };
    println!(
        "{:<10} {:>6}  {:>12}  {:>12}  {:>8}",
        "App", "Nodes", "Shallow (ms)", "Complete (ms)", "Pairs"
    );
    for &n in &scales {
        measure("Circuit", n, || {
            let cfg = circuit::CircuitConfig {
                pieces: n,
                nodes_per_piece: 256,
                wires_per_piece: 1024,
                cross_fraction: 0.1,
                steps: 1,
                substeps: 1,
                seed: 7,
            };
            let g = circuit::generate_graph(&cfg);
            circuit::circuit_program(cfg, &g).0
        });
        measure("MiniAero", n, || {
            let cfg = miniaero::MiniAeroConfig {
                nx: 4 * n,
                ny: 8,
                nz: 8,
                pieces: n,
                steps: 1,
                dt: 1e-3,
            };
            let mesh = miniaero::build_mesh(&cfg);
            miniaero::miniaero_program(cfg, &mesh).0
        });
        measure("PENNANT", n, || {
            let cfg = pennant::PennantConfig {
                nzx: 8 * n,
                nzy: 32,
                pieces: n,
                tstop: 1e-9,
                dtmax: 1e-9,
            };
            let mesh = pennant::build_mesh(&cfg);
            pennant::pennant_program(cfg, &mesh).0
        });
        measure("Stencil", n, || {
            let (ntx, nty) = stencil::near_square(n);
            let cfg = stencil::StencilConfig {
                n: 128 * (ntx.max(nty) as u64),
                ntx,
                nty,
                radius: 2,
                steps: 1,
            };
            stencil::stencil_program(cfg).0
        });
    }
}
