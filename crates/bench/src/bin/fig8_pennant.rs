//! Figure 8: weak scaling for PENNANT (2-D Lagrangian hydrodynamics,
//! 7.4M zones per node) — Regent with/without CR vs. MPI and
//! MPI+OpenMP.
//!
//! §5.3: the references win on a single node because PENNANT is
//! compute-bound and Legion dedicates one of 12 cores to runtime
//! analysis; the gap closes at scale where Regent's asynchronous
//! execution hides the dt collective while the bulk-synchronous
//! references amplify noise (87% vs 82% vs 64% at 1024 nodes).

use regent_apps::pennant::pennant_spec;
use regent_bench::{parse_args, run_figure};
use regent_machine::{MachineConfig, MpiVariant};

fn mpi(machine: &MachineConfig) -> MpiVariant {
    MpiVariant::rank_per_core(machine)
}

fn mpi_openmp(_machine: &MachineConfig) -> MpiVariant {
    let mut v = MpiVariant::rank_per_node();
    v.compute_multiplier = 1.02;
    v.noise_scale = 3.5;
    v
}

fn main() {
    let mut runner = parse_args();
    // PENNANT's long compute-bound phases plus a per-step global dt
    // collective make it the noise-sensitive code of the suite.
    runner.machine_mod = |m| m.noise_fraction = 0.065;
    run_figure(
        "Figure 8: PENNANT weak scaling (10^6 zones/s per node)",
        "pennant",
        &runner,
        pennant_spec,
        &[("MPI", mpi), ("MPI+OpenMP", mpi_openmp)],
    );
}
