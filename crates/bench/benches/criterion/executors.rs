use criterion::{criterion_group, criterion_main, Criterion};
use regent_apps::stencil::{init_stencil, stencil_program, StencilConfig};
use regent_cr::{control_replicate, CrOptions};
use regent_ir::{interp, Store};
use regent_runtime::{execute_implicit, execute_spmd, ImplicitOptions};

const CFG: StencilConfig = StencilConfig {
    n: 128,
    ntx: 4,
    nty: 2,
    radius: 2,
    steps: 4,
};

fn bench_executors(c: &mut Criterion) {
    c.bench_function("stencil_sequential", |b| {
        b.iter(|| {
            let (prog, h) = stencil_program(CFG);
            let mut store = Store::new(&prog);
            init_stencil(&prog, &mut store, &h);
            interp::run(&prog, &mut store)
        })
    });
    c.bench_function("stencil_implicit_4w", |b| {
        b.iter(|| {
            let (prog, h) = stencil_program(CFG);
            let mut store = Store::new(&prog);
            init_stencil(&prog, &mut store, &h);
            execute_implicit(&prog, &mut store, ImplicitOptions::with_workers(4))
        })
    });
    c.bench_function("stencil_cr_spmd_4s", |b| {
        b.iter(|| {
            let (prog, h) = stencil_program(CFG);
            let mut store = Store::new(&prog);
            init_stencil(&prog, &mut store, &h);
            let spmd = control_replicate(prog, &CrOptions::new(4)).unwrap();
            execute_spmd(&spmd, &mut store)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_executors
}
criterion_main!(benches);
