use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regent_apps::stencil::stencil_spec;
use regent_machine::{simulate_cr, simulate_implicit, MachineConfig};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.sample_size(10);
    for nodes in [64usize, 512] {
        let machine = MachineConfig::piz_daint(nodes);
        let spec = stencil_spec(nodes, &machine);
        g.bench_with_input(BenchmarkId::new("cr", nodes), &nodes, |b, _| {
            b.iter(|| simulate_cr(&machine, &spec, 3))
        });
        g.bench_with_input(BenchmarkId::new("implicit", nodes), &nodes, |b, _| {
            b.iter(|| simulate_implicit(&machine, &spec, 3))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim
}
criterion_main!(benches);
