use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regent_region::bvh::{Bvh, TaggedRect};
use regent_region::intersect::{shallow_intersections_naive, shallow_intersections_of};
use regent_region::interval::{Interval, IntervalTree};
use regent_region::{ops, Color, Domain, DynPoint, DynRect, FieldSpace, RegionForest};

/// A partition's children as `(color, domain)` pairs.
type ChildList = Vec<(Color, Domain)>;

/// Halo pattern over a 1-D region split into `pieces`.
fn halo_lists(pieces: usize) -> (ChildList, ChildList) {
    let mut forest = RegionForest::new();
    let r = forest.create_region(Domain::range(pieces as u64 * 256), FieldSpace::new());
    let pb = ops::block(&mut forest, r, pieces);
    let qb = ops::image(&mut forest, r, pb, |p, sink| {
        sink.push(DynPoint::from(p.coord(0) - 1));
        sink.push(DynPoint::from(p.coord(0) + 1));
    });
    let get = |p| {
        forest
            .partition(p)
            .iter()
            .map(|(c, reg)| (c, forest.domain(reg).clone()))
            .collect::<Vec<_>>()
    };
    (get(pb), get(qb))
}

fn bench_shallow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shallow_intersections");
    for pieces in [64usize, 256, 1024] {
        let (src, dst) = halo_lists(pieces);
        g.bench_with_input(
            BenchmarkId::new("interval_tree", pieces),
            &pieces,
            |b, _| b.iter(|| shallow_intersections_of(&src, &dst)),
        );
        g.bench_with_input(BenchmarkId::new("naive_n2", pieces), &pieces, |b, _| {
            b.iter(|| shallow_intersections_naive(&src, &dst))
        });
    }
    g.finish();
}

fn bench_structures(c: &mut Criterion) {
    let intervals: Vec<Interval> = (0..4096)
        .map(|i| Interval::new(i * 3, i * 3 + 5, i as u32))
        .collect();
    c.bench_function("interval_tree_build_4096", |b| {
        b.iter(|| IntervalTree::build(intervals.clone()))
    });
    let tree = IntervalTree::build(intervals);
    c.bench_function("interval_tree_query", |b| {
        b.iter(|| tree.query_ids(6000, 6100))
    });

    let rects: Vec<TaggedRect> = (0..64 * 64)
        .map(|i| {
            let (x, y) = (i % 64, i / 64);
            TaggedRect {
                rect: DynRect::new(
                    DynPoint::new(&[x * 10, y * 10]),
                    DynPoint::new(&[x * 10 + 9, y * 10 + 9]),
                ),
                id: i as u32,
            }
        })
        .collect();
    c.bench_function("bvh_build_4096", |b| b.iter(|| Bvh::build(rects.clone())));
    let bvh = Bvh::build(rects);
    let q = DynRect::new(DynPoint::new(&[95, 95]), DynPoint::new(&[125, 125]));
    c.bench_function("bvh_query", |b| b.iter(|| bvh.query_ids(&q)));
}

fn bench_domain_algebra(c: &mut Criterion) {
    let a = Domain::from_ids((0..10_000).map(|i| i * 2));
    let b_dom = Domain::from_ids((0..10_000).map(|i| i * 3));
    c.bench_function("domain_intersect_sparse", |b| {
        b.iter(|| a.intersect(&b_dom))
    });
    c.bench_function("domain_union_sparse", |b| b.iter(|| a.union(&b_dom)));
    c.bench_function("domain_subtract_sparse", |b| b.iter(|| a.subtract(&b_dom)));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_shallow, bench_structures, bench_domain_algebra
}
criterion_main!(benches);
