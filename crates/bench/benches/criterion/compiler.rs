use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regent_apps::circuit::{circuit_program, generate_graph, CircuitConfig};
use regent_apps::stencil::{stencil_program, StencilConfig};
use regent_cr::{control_replicate, CrOptions};

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_replicate");
    for pieces in [4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("circuit", pieces),
            &pieces,
            |b, &pieces| {
                let cfg = CircuitConfig {
                    pieces,
                    nodes_per_piece: 32,
                    wires_per_piece: 128,
                    cross_fraction: 0.1,
                    steps: 2,
                    substeps: 4,
                    seed: 1,
                };
                let graph = generate_graph(&cfg);
                b.iter(|| {
                    let (prog, _) = circuit_program(cfg, &graph);
                    control_replicate(prog, &CrOptions::new(pieces)).unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("stencil", pieces),
            &pieces,
            |b, &pieces| {
                let (ntx, nty) = regent_apps::stencil::near_square(pieces);
                let cfg = StencilConfig {
                    n: 32 * ntx.max(nty) as u64,
                    ntx,
                    nty,
                    radius: 2,
                    steps: 2,
                };
                b.iter(|| {
                    let (prog, _) = stencil_program(cfg);
                    control_replicate(prog, &CrOptions::new(pieces)).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    // Compare transform time with and without the placement passes.
    let cfg = CircuitConfig {
        pieces: 16,
        nodes_per_piece: 32,
        wires_per_piece: 128,
        cross_fraction: 0.1,
        steps: 2,
        substeps: 4,
        seed: 1,
    };
    let graph = generate_graph(&cfg);
    c.bench_function("transform_with_placement", |b| {
        b.iter(|| {
            let (prog, _) = circuit_program(cfg, &graph);
            control_replicate(prog, &CrOptions::new(16)).unwrap()
        })
    });
    c.bench_function("transform_without_placement", |b| {
        b.iter(|| {
            let (prog, _) = circuit_program(cfg, &graph);
            let mut o = CrOptions::new(16);
            o.optimize_placement = false;
            control_replicate(prog, &o).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_transform, bench_placement
}
criterion_main!(benches);
