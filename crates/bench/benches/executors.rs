//! Executor benchmarks: sequential vs implicitly parallel vs
//! control-replicated SPMD on a fixed stencil workload, plus the
//! implicit executor's dependence-analysis rate (the per-task control
//! cost of §1).
//!
//! Gated behind the `criterion-benches` cargo feature: Criterion is
//! not part of the offline dependency set, so without the feature this
//! target compiles to an empty stub (see the workspace Cargo.toml for
//! how to restore the dev-dependency).

#[cfg(feature = "criterion-benches")]
include!("criterion/executors.rs");

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
