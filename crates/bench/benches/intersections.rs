//! Micro-benchmarks for the dynamic region intersection machinery
//! (§3.3, backing Table 1): accelerated vs naive shallow
//! intersections, structure build times, and complete-intersection
//! evaluation.
//!
//! Gated behind the `criterion-benches` cargo feature: Criterion is
//! not part of the offline dependency set, so without the feature this
//! target compiles to an empty stub (see the workspace Cargo.toml for
//! how to restore the dev-dependency).

#[cfg(feature = "criterion-benches")]
include!("criterion/intersections.rs");

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
