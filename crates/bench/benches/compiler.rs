//! Micro-benchmarks for the control-replication compiler itself:
//! transform time across program sizes, and the placement passes
//! (§3.2) in isolation.
//!
//! Gated behind the `criterion-benches` cargo feature: Criterion is
//! not part of the offline dependency set, so without the feature this
//! target compiles to an empty stub (see the workspace Cargo.toml for
//! how to restore the dev-dependency).

#[cfg(feature = "criterion-benches")]
include!("criterion/compiler.rs");

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
