//! Discrete-event simulator throughput: how fast the machine model can
//! process large weak-scaling task graphs (bounds how far the figure
//! sweeps can go).
//!
//! Gated behind the `criterion-benches` cargo feature: Criterion is
//! not part of the offline dependency set, so without the feature this
//! target compiles to an empty stub (see the workspace Cargo.toml for
//! how to restore the dev-dependency).

#[cfg(feature = "criterion-benches")]
include!("criterion/simulator.rs");

#[cfg(not(feature = "criterion-benches"))]
fn main() {}
