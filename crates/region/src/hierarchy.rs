//! Hierarchical region trees (§4.5): the private/ghost idiom.
//!
//! "The programmer constructs a top-level partition of a region into
//! two subsets of elements: those which are guaranteed to never be
//! involved in communication, and those which may need to be
//! communicated." Given a disjoint *owned* partition and an aliased
//! *halo* partition of the same region, [`private_ghost_split`] builds
//! exactly the Fig. 5 structure:
//!
//! ```text
//!              R
//!        (private_v_ghost, disjoint)
//!        /                \
//!   all_private        all_ghost
//!    PB = owned∩priv    SB = owned∩ghost, QB = halo∩ghost
//! ```
//!
//! Because the top-level partition is disjoint, the region tree proves
//! `PB ⊥ SB` and `PB ⊥ QB`: the compiler skips all copies and all
//! dynamic intersection tests involving the private data, which is
//! usually the overwhelming majority of the elements.

use crate::forest::{Color, Disjointness, PartitionId, RegionForest, RegionId};
use crate::ops;
use regent_geometry::{Domain, DynPoint};

/// The §4.5 structure produced by [`private_ghost_split`].
#[derive(Clone, Copy, Debug)]
pub struct PrivateGhost {
    /// The top-level disjoint partition `{private, ghost}` of the
    /// region.
    pub top: PartitionId,
    /// Subregion of elements never involved in communication.
    pub all_private: RegionId,
    /// Subregion of elements that may be communicated.
    pub all_ghost: RegionId,
    /// Owned partition restricted to the private subregion
    /// (`PB` in Fig. 5) — provably disjoint from everything under
    /// `all_ghost`.
    pub private_owned: PartitionId,
    /// Owned partition restricted to the ghost subregion (`SB`).
    pub shared_owned: PartitionId,
    /// Halo partition restricted to the ghost subregion (`QB`).
    pub ghost_halo: PartitionId,
}

/// Splits a region into the hierarchical private/ghost structure of
/// §4.5 from an `owned` (disjoint) partition and a `halo` (possibly
/// aliased) partition of the same region.
///
/// An element is *ghost* when it appears in some halo subregion other
/// than its owner's — i.e. it may be communicated. Everything else is
/// private.
///
/// # Panics
/// If the two partitions do not partition the same region, or `owned`
/// is not disjoint.
pub fn private_ghost_split(
    forest: &mut RegionForest,
    owned: PartitionId,
    halo: PartitionId,
) -> PrivateGhost {
    let region = forest.partition(owned).parent;
    assert_eq!(
        forest.partition(halo).parent,
        region,
        "owned and halo must partition the same region"
    );
    assert_eq!(
        forest.partition(owned).disjointness,
        Disjointness::Disjoint,
        "owned partition must be disjoint"
    );
    // Ghost elements: ∪ over colors c of halo[c] \ owned[c].
    let dim = forest.domain(region).dim();
    let mut ghost = Domain::empty(dim);
    let children: Vec<(Color, RegionId)> = forest.partition(halo).iter().collect();
    for (c, h) in children {
        let own_dom = forest
            .partition(owned)
            .child(c)
            .map(|r| forest.domain(r).clone())
            .unwrap_or_else(|| Domain::empty(dim));
        ghost = ghost.union(&forest.domain(h).subtract(&own_dom));
    }
    let private = forest.domain(region).subtract(&ghost);
    let top = forest.create_partition(
        region,
        Disjointness::Disjoint,
        vec![(DynPoint::from(0), private), (DynPoint::from(1), ghost)],
    );
    let all_private = forest.subregion_i(top, 0);
    let all_ghost = forest.subregion_i(top, 1);
    let private_owned = ops::restrict(forest, all_private, owned);
    let shared_owned = ops::restrict(forest, all_ghost, owned);
    let ghost_halo = ops::restrict(forest, all_ghost, halo);
    PrivateGhost {
        top,
        all_private,
        all_ghost,
        private_owned,
        shared_owned,
        ghost_halo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpace;

    /// 1-D halo setup: blocks with ±1 neighbour halos.
    fn setup(n: u64, parts: usize) -> (RegionForest, RegionId, PartitionId, PartitionId) {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(n), FieldSpace::new());
        let owned = ops::block(&mut f, r, parts);
        let halo = ops::image(&mut f, r, owned, |p, sink| {
            sink.push(DynPoint::from(p.coord(0) - 1));
            sink.push(DynPoint::from(p.coord(0)));
            sink.push(DynPoint::from(p.coord(0) + 1));
        });
        (f, r, owned, halo)
    }

    #[test]
    fn split_covers_region_disjointly() {
        let (mut f, r, owned, halo) = setup(64, 8);
        let pg = private_ghost_split(&mut f, owned, halo);
        let priv_dom = f.domain(pg.all_private).clone();
        let ghost_dom = f.domain(pg.all_ghost).clone();
        assert!(!priv_dom.overlaps(&ghost_dom));
        assert!(priv_dom.union(&ghost_dom).set_eq(f.domain(r)));
        // Ghost elements are exactly the block boundaries ±1.
        assert_eq!(ghost_dom.volume(), 7 * 2); // 7 internal boundaries × 2
    }

    #[test]
    fn tree_proves_private_disjoint_from_ghost_partitions() {
        let (mut f, _, owned, halo) = setup(64, 8);
        let pg = private_ghost_split(&mut f, owned, halo);
        // The paper's §4.5 payoff: PB provably disjoint from SB and QB.
        for (_, pb_child) in f.partition(pg.private_owned).iter().collect::<Vec<_>>() {
            for (_, other) in f
                .partition(pg.shared_owned)
                .iter()
                .chain(f.partition(pg.ghost_halo).iter())
                .collect::<Vec<_>>()
            {
                assert!(f.provably_disjoint(pb_child, other));
            }
        }
    }

    #[test]
    fn owned_reconstructed_from_split() {
        let (mut f, _, owned, halo) = setup(48, 6);
        let pg = private_ghost_split(&mut f, owned, halo);
        // private_owned[c] ∪ shared_owned[c] == owned[c] for every c.
        for (c, own_child) in f.partition(owned).iter().collect::<Vec<_>>() {
            let p = f.domain(f.subregion(pg.private_owned, c)).clone();
            let s = f.domain(f.subregion(pg.shared_owned, c)).clone();
            assert!(!p.overlaps(&s));
            assert!(p.union(&s).set_eq(f.domain(own_child)));
        }
    }

    #[test]
    fn halo_covered_by_ghost_and_private_own() {
        let (mut f, _, owned, halo) = setup(48, 6);
        let pg = private_ghost_split(&mut f, owned, halo);
        // halo[c] ⊆ ghost_halo[c] ∪ owned[c] (elements of the halo that
        // are not ghost are the task's own private elements).
        for (c, h) in f.partition(halo).iter().collect::<Vec<_>>() {
            let gh = f.domain(f.subregion(pg.ghost_halo, c)).clone();
            let own = f.domain(f.subregion(owned, c)).clone();
            assert!(f.domain(h).is_subset_of(&gh.union(&own)));
        }
    }

    #[test]
    #[should_panic(expected = "must be disjoint")]
    fn rejects_aliased_owned() {
        let (mut f, _, owned, halo) = setup(16, 2);
        // Swap roles: the aliased halo cannot act as the owned partition.
        private_ghost_split(&mut f, halo, owned);
    }

    #[test]
    fn single_piece_has_no_ghost() {
        let (mut f, _, owned, halo) = setup(16, 1);
        let pg = private_ghost_split(&mut f, owned, halo);
        assert_eq!(f.domain(pg.all_ghost).volume(), 0);
        assert_eq!(f.domain(pg.all_private).volume(), 16);
    }
}
