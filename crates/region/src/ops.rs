//! The partitioning sublanguage: operators that create partitions
//! (§2.1 and the dependent-partitioning operators the paper leans on).
//!
//! Each operator records the *static* disjointness classification the
//! compiler analysis consumes (§2.3): `block`, `equal`, `by_color` and
//! `preimage` produce provably disjoint partitions; `image` over an
//! unconstrained function must be classified aliased even when it happens
//! to be disjoint dynamically.

use crate::forest::{Color, Disjointness, PartitionId, RegionForest, RegionId};
use regent_geometry::{Domain, DynPoint, DynRect};

/// Block-partitions `region` into `parts` roughly equal contiguous
/// pieces with 1-D colors `0..parts` (Regent's `block(A, I)`, Fig. 2
/// lines 20–21).
///
/// 1-D (possibly sparse) domains are split by element count exactly
/// (sizes differ by at most one). Multi-dimensional dense domains are
/// split along dimension 0.
pub fn block(forest: &mut RegionForest, region: RegionId, parts: usize) -> PartitionId {
    assert!(parts > 0, "cannot partition into zero parts");
    let dom = forest.domain(region).clone();
    let subdomains: Vec<(Color, Domain)> = if dom.dim() == 1 {
        split_1d_by_count(&dom, parts)
            .into_iter()
            .enumerate()
            .map(|(i, d)| (DynPoint::from(i as i64), d))
            .collect()
    } else {
        let rects = dom.rects();
        assert_eq!(
            rects.len(),
            1,
            "multi-dimensional block partition requires a dense domain"
        );
        rects[0]
            .block_split(parts, 0)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (DynPoint::from(i as i64), Domain::from_rect(r)))
            .collect()
    };
    forest.create_partition(region, Disjointness::Disjoint, subdomains)
}

/// Block-partitions a dense 2-D region into an `nx × ny` grid of tiles
/// with 2-D colors (used by the Stencil application).
pub fn block2d(forest: &mut RegionForest, region: RegionId, nx: usize, ny: usize) -> PartitionId {
    let dom = forest.domain(region).clone();
    assert_eq!(dom.dim(), 2);
    assert_eq!(dom.rects().len(), 1, "block2d requires a dense domain");
    let root = dom.rects()[0];
    let mut subdomains = Vec::with_capacity(nx * ny);
    for (i, row) in root.block_split(nx, 0).into_iter().enumerate() {
        for (j, tile) in row.block_split(ny, 1).into_iter().enumerate() {
            subdomains.push((
                DynPoint::new(&[i as i64, j as i64]),
                Domain::from_rect(tile),
            ));
        }
    }
    forest.create_partition(region, Disjointness::Disjoint, subdomains)
}

/// Splits a 1-D domain into `parts` pieces of near-equal element count,
/// respecting sparse runs.
fn split_1d_by_count(dom: &Domain, parts: usize) -> Vec<Domain> {
    let total = dom.volume();
    let base = total / parts as u64;
    let rem = total % parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut run_iter = dom.rects().iter().copied();
    let mut cur: Option<DynRect> = run_iter.next();
    for i in 0..parts {
        let mut want = base + u64::from((i as u64) < rem);
        let mut piece: Vec<DynRect> = Vec::new();
        while want > 0 {
            let run = match cur {
                Some(r) => r,
                None => break,
            };
            let vol = run.volume();
            if vol <= want {
                piece.push(run);
                want -= vol;
                cur = run_iter.next();
            } else {
                let lo = run.lo().coord(0);
                piece.push(DynRect::span(lo, lo + want as i64 - 1));
                cur = Some(DynRect::span(lo + want as i64, run.hi().coord(0)));
                want = 0;
            }
        }
        out.push(Domain::from_rects(piece));
    }
    out
}

/// Partitions `region` by a coloring function: element `p` goes to
/// subregion `color_of(p)`. Colors must lie in `colors`. This is
/// Regent's *partition by field* — the application-specific partitioning
/// the paper highlights as an advantage over generic graph partitioners
/// (§6). Disjoint by construction (each element has one color).
pub fn by_color(
    forest: &mut RegionForest,
    region: RegionId,
    colors: &[Color],
    mut color_of: impl FnMut(DynPoint) -> Color,
) -> PartitionId {
    let dom = forest.domain(region).clone();
    let mut buckets: Vec<Vec<DynPoint>> = vec![Vec::new(); colors.len()];
    let index: std::collections::HashMap<Color, usize> = colors
        .iter()
        .copied()
        .enumerate()
        .map(|(i, c)| (c, i))
        .collect();
    for p in dom.iter() {
        let c = color_of(p);
        let slot = index
            .get(&c)
            .unwrap_or_else(|| panic!("color {c:?} not in the declared color space"));
        buckets[*slot].push(p);
    }
    let subdomains = colors
        .iter()
        .copied()
        .zip(buckets.into_iter().map(Domain::from_points))
        .collect();
    forest.create_partition(region, Disjointness::Disjoint, subdomains)
}

/// Partitions `region` by the values of an i64 field (Regent's
/// *partition by field*): element `p` goes to the subregion colored by
/// `instance[field][p]`. Values must lie in `colors`. Disjoint by
/// construction — the canonical application-specific partitioning
/// mechanism (§6: application-specific algorithms "are often more
/// efficient and yield better results than generic algorithms").
pub fn by_field(
    forest: &mut RegionForest,
    region: RegionId,
    instance: &crate::instance::Instance,
    field: crate::field::FieldId,
    colors: &[Color],
) -> PartitionId {
    by_color(forest, region, colors, |p| {
        DynPoint::from(instance.read_i64(field, p))
    })
}

/// Image partition (Fig. 2 line 22): `image(target, source_partition, h)`
/// creates a partition of `target` where subregion `i` holds
/// `{ h(b) | b ∈ source_partition[i] }` clipped to `target`.
///
/// `h` may map one point to any number of points (`sink` pattern avoids
/// per-element allocation on large meshes). Because `h` is
/// unconstrained, the result is classified **aliased** (§2.1): "Regent
/// assumes that the subregions may contain overlaps".
pub fn image(
    forest: &mut RegionForest,
    target: RegionId,
    source: PartitionId,
    mut h: impl FnMut(DynPoint, &mut Vec<DynPoint>),
) -> PartitionId {
    let children: Vec<(Color, RegionId)> = forest.partition(source).iter().collect();
    let mut subdomains = Vec::with_capacity(children.len());
    let mut sink = Vec::new();
    for (color, child) in children {
        let mut pts: Vec<DynPoint> = Vec::new();
        for p in forest.domain(child).iter() {
            sink.clear();
            h(p, &mut sink);
            pts.extend_from_slice(&sink);
        }
        subdomains.push((color, Domain::from_points(pts)));
    }
    forest.create_partition(target, Disjointness::Aliased, subdomains)
}

/// Single-valued convenience wrapper over [`image`].
pub fn image_fn(
    forest: &mut RegionForest,
    target: RegionId,
    source: PartitionId,
    mut h: impl FnMut(DynPoint) -> DynPoint,
) -> PartitionId {
    image(forest, target, source, |p, sink| sink.push(h(p)))
}

/// Preimage partition: `preimage(source, target_partition, f)` creates a
/// partition of `source` where subregion `i` holds
/// `{ a ∈ source | f(a) ∈ target_partition[i] }`.
///
/// When the target partition is disjoint the preimage is disjoint too
/// (each `a` maps to exactly one point, which lives in at most one
/// subregion); otherwise it is aliased.
pub fn preimage(
    forest: &mut RegionForest,
    source: RegionId,
    target_partition: PartitionId,
    mut f: impl FnMut(DynPoint) -> DynPoint,
) -> PartitionId {
    use crate::bvh::{Bvh, TaggedRect};
    use crate::interval::{Interval, IntervalTree};

    let children: Vec<(Color, RegionId)> = forest.partition(target_partition).iter().collect();
    let disjointness = forest.partition(target_partition).disjointness;
    let src_dom = forest.domain(source).clone();
    let mut buckets: Vec<(Color, Vec<DynPoint>)> =
        children.iter().map(|&(c, _)| (c, Vec::new())).collect();

    // Accelerate point-in-which-children lookups with the same
    // structures the shallow intersection pass uses (§3.3): an interval
    // tree over 1-D runs, a BVH over multi-dimensional rectangles.
    // Every rectangle of every child is inserted tagged with the child
    // index; a rectangle hit is exact (rects cover the child domain
    // precisely), so no containment re-check is needed.
    let target_dim = children
        .first()
        .map(|&(_, r)| forest.domain(r).dim())
        .unwrap_or(1);
    if target_dim == 1 {
        let mut runs = Vec::new();
        for (idx, &(_, child)) in children.iter().enumerate() {
            for r in forest.domain(child).rects() {
                runs.push(Interval::new(r.lo().coord(0), r.hi().coord(0), idx as u32));
            }
        }
        let tree = IntervalTree::build(runs);
        for a in src_dom.iter() {
            let fa = f(a);
            let x = fa.coord(0);
            tree.query(x, x, |iv| buckets[iv.id as usize].1.push(a));
        }
    } else {
        let mut rects = Vec::new();
        for (idx, &(_, child)) in children.iter().enumerate() {
            for r in forest.domain(child).rects() {
                rects.push(TaggedRect {
                    rect: *r,
                    id: idx as u32,
                });
            }
        }
        let bvh = Bvh::build(rects);
        for a in src_dom.iter() {
            let fa = f(a);
            let q = regent_geometry::DynRect::new(fa, fa);
            bvh.query(&q, |t| buckets[t.id as usize].1.push(a));
        }
    }
    let subdomains = buckets
        .into_iter()
        .map(|(c, pts)| (c, Domain::from_points(pts)))
        .collect();
    forest.create_partition(source, disjointness, subdomains)
}

/// Intersects every subregion of `partition` with `region`'s domain,
/// producing a new partition *of `region`* with the same color space.
///
/// This is the cross-product restriction used to build the hierarchical
/// private/ghost region trees of §4.5 (e.g. `PB ∩ all_private`).
/// Disjointness is inherited: restricting cannot introduce overlap.
pub fn restrict(
    forest: &mut RegionForest,
    region: RegionId,
    partition: PartitionId,
) -> PartitionId {
    let children: Vec<(Color, RegionId)> = forest.partition(partition).iter().collect();
    let disjointness = forest.partition(partition).disjointness;
    let region_dom = forest.domain(region).clone();
    let subdomains = children
        .into_iter()
        .map(|(c, child)| (c, forest.domain(child).intersect(&region_dom)))
        .collect();
    forest.create_partition(region, disjointness, subdomains)
}

/// Color-wise difference: a partition of `a`'s parent whose subregion
/// `i` is `a[i] \ b[i]`. Colors must match. Disjointness inherited from
/// `a` (removing elements cannot introduce overlap).
pub fn difference(forest: &mut RegionForest, a: PartitionId, b: PartitionId) -> PartitionId {
    let parent = forest.partition(a).parent;
    let disjointness = forest.partition(a).disjointness;
    let a_children: Vec<(Color, RegionId)> = forest.partition(a).iter().collect();
    let subdomains = a_children
        .into_iter()
        .map(|(c, child)| {
            let rhs = forest
                .partition(b)
                .child(c)
                .map(|r| forest.domain(r).clone())
                .unwrap_or_else(|| Domain::empty(forest.domain(child).dim()));
            (c, forest.domain(child).subtract(&rhs))
        })
        .collect();
    forest.create_partition(parent, disjointness, subdomains)
}

/// Color-wise union: a partition of `a`'s parent whose subregion `i` is
/// `a[i] ∪ b[i]`. Always classified aliased (the union of two disjoint
/// partitions need not be disjoint).
pub fn union(forest: &mut RegionForest, a: PartitionId, b: PartitionId) -> PartitionId {
    let parent = forest.partition(a).parent;
    let a_children: Vec<(Color, RegionId)> = forest.partition(a).iter().collect();
    let subdomains = a_children
        .into_iter()
        .map(|(c, child)| {
            let rhs = forest
                .partition(b)
                .child(c)
                .map(|r| forest.domain(r).clone())
                .unwrap_or_else(|| Domain::empty(forest.domain(child).dim()));
            (c, forest.domain(child).union(&rhs))
        })
        .collect();
    forest.create_partition(parent, Disjointness::Aliased, subdomains)
}

/// The union of all subregion domains of a partition (the "upward
/// closure" used to compute the `all_ghost` region of §4.5).
pub fn union_of_children(forest: &RegionForest, p: PartitionId) -> Domain {
    let parent_dim = forest.domain(forest.partition(p).parent).dim();
    forest
        .partition(p)
        .child_regions()
        .fold(Domain::empty(parent_dim), |acc, r| {
            acc.union(forest.domain(r))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpace;

    fn forest_1d(n: u64) -> (RegionForest, RegionId) {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(n), FieldSpace::new());
        (f, r)
    }

    #[test]
    fn block_1d_exact_cover() {
        let (mut f, r) = forest_1d(10);
        let p = block(&mut f, r, 3);
        let sizes: Vec<u64> = f
            .partition(p)
            .child_regions()
            .map(|c| f.domain(c).volume())
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert!(union_of_children(&f, p).set_eq(f.domain(r)));
        assert_eq!(f.partition(p).disjointness, Disjointness::Disjoint);
    }

    #[test]
    fn block_sparse_1d() {
        let mut f = RegionForest::new();
        let dom = Domain::from_ids([0, 1, 2, 10, 11, 12, 20, 21]);
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let p = block(&mut f, r, 3);
        let sizes: Vec<u64> = f
            .partition(p)
            .child_regions()
            .map(|c| f.domain(c).volume())
            .collect();
        assert_eq!(sizes, vec![3, 3, 2]);
        assert!(union_of_children(&f, p).set_eq(&dom));
    }

    #[test]
    fn block2d_tiles() {
        let mut f = RegionForest::new();
        let rect = DynRect::new(DynPoint::new(&[0, 0]), DynPoint::new(&[7, 7]));
        let r = f.create_region(Domain::from_rect(rect), FieldSpace::new());
        let p = block2d(&mut f, r, 2, 2);
        assert_eq!(f.partition(p).len(), 4);
        let c01 = f.subregion(p, DynPoint::new(&[0, 1]));
        assert_eq!(
            f.domain(c01).bounds(),
            DynRect::new(DynPoint::new(&[0, 4]), DynPoint::new(&[3, 7]))
        );
        assert!(union_of_children(&f, p).set_eq(f.domain(r)));
    }

    #[test]
    fn image_shift_is_aliased_and_correct() {
        let (mut f, r) = forest_1d(10);
        let p = block(&mut f, r, 2); // [0,4], [5,9]
                                     // h(i) = i + 1 clipped by the forest to [0,10).
        let q = image_fn(&mut f, r, p, |pt| DynPoint::from(pt.coord(0) + 1));
        assert_eq!(f.partition(q).disjointness, Disjointness::Aliased);
        let q0 = f.subregion_i(q, 0);
        assert!(f.domain(q0).set_eq(&Domain::from_ids(1..=5)));
        let q1 = f.subregion_i(q, 1);
        assert!(
            f.domain(q1).set_eq(&Domain::from_ids(6..=9)),
            "clipped at 9"
        );
    }

    #[test]
    fn image_multi_valued() {
        let (mut f, r) = forest_1d(10);
        let p = block(&mut f, r, 2);
        // Each element points at both neighbors (stencil halo pattern).
        let q = image(&mut f, r, p, |pt, sink| {
            sink.push(DynPoint::from(pt.coord(0) - 1));
            sink.push(DynPoint::from(pt.coord(0) + 1));
        });
        let q0 = f.subregion_i(q, 0); // neighbors of [0,4] = [-1,5] ∩ [0,9]
        assert!(f.domain(q0).set_eq(&Domain::from_ids(0..=5)));
    }

    #[test]
    fn preimage_of_disjoint_is_disjoint() {
        let (mut f, r) = forest_1d(10);
        let p = block(&mut f, r, 2);
        // A second region of "edges" pointing into r.
        let e = f.create_region(Domain::range(6), FieldSpace::new());
        let targets = [0i64, 2, 5, 7, 9, 4];
        let q = preimage(&mut f, e, p, |pt| {
            DynPoint::from(targets[pt.coord(0) as usize])
        });
        assert_eq!(f.partition(q).disjointness, Disjointness::Disjoint);
        let q0 = f.subregion_i(q, 0); // edges mapping into [0,4]: 0,1,5
        assert!(f.domain(q0).set_eq(&Domain::from_ids([0, 1, 5])));
        let q1 = f.subregion_i(q, 1); // edges mapping into [5,9]: 2,3,4
        assert!(f.domain(q1).set_eq(&Domain::from_ids([2, 3, 4])));
    }

    #[test]
    fn by_color_partition() {
        let (mut f, r) = forest_1d(8);
        let colors: Vec<Color> = (0..2).map(DynPoint::from).collect();
        let p = by_color(&mut f, r, &colors, |pt| DynPoint::from(pt.coord(0) % 2));
        let evens = f.subregion_i(p, 0);
        assert!(f.domain(evens).set_eq(&Domain::from_ids([0, 2, 4, 6])));
        assert_eq!(f.partition(p).disjointness, Disjointness::Disjoint);
    }

    #[test]
    fn restrict_and_difference_build_private_ghost() {
        // §4.5: split a region into private/ghost halves and restrict an
        // existing block partition to each.
        let (mut f, r) = forest_1d(12);
        let pb = block(&mut f, r, 3);
        // Ghost = everything the shifted image touches outside own block.
        let qb = image(&mut f, r, pb, |pt, sink| {
            sink.push(DynPoint::from(pt.coord(0) - 1));
            sink.push(DynPoint::from(pt.coord(0) + 1));
        });
        // all_ghost = union over i≠j of qb[j] ∩ pb[i]: compute via
        // color-wise ops: ghost elems = those in some qb[j] not wholly
        // private. For the test just restrict pb to a subregion and check
        // domains.
        let ghost_dom = union_of_children(&f, qb);
        assert!(ghost_dom.volume() > 0);
        let top = f.create_partition(
            r,
            Disjointness::Disjoint,
            vec![
                (DynPoint::from(0), f.domain(r).subtract(&ghost_dom)),
                (DynPoint::from(1), ghost_dom.clone()),
            ],
        );
        let ghost_region = f.subregion_i(top, 1);
        let sb = restrict(&mut f, ghost_region, pb);
        assert_eq!(f.partition(sb).disjointness, Disjointness::Disjoint);
        // Restricted children are subsets of both inputs.
        for (c, child) in f.partition(sb).iter().collect::<Vec<_>>() {
            let orig = f.subregion(pb, c);
            assert!(f.domain(child).is_subset_of(f.domain(orig)));
            assert!(f.domain(child).is_subset_of(&ghost_dom));
        }
        // Difference: pb minus sb leaves the private parts.
        let diff = difference(&mut f, pb, sb);
        for (c, child) in f.partition(diff).iter().collect::<Vec<_>>() {
            assert!(!f.domain(child).overlaps(f.domain(f.subregion(sb, c))));
        }
        // Union of diff and sb restores pb color-wise.
        let uni = union(&mut f, diff, sb);
        for (c, child) in f.partition(uni).iter().collect::<Vec<_>>() {
            assert!(f.domain(child).set_eq(f.domain(f.subregion(pb, c))));
        }
    }
}

#[cfg(test)]
mod by_field_tests {
    use super::*;
    use crate::field::{FieldSpace, FieldType};
    use crate::instance::Instance;

    #[test]
    fn partition_by_field_values() {
        let mut f = RegionForest::new();
        let fs = FieldSpace::of(&[("piece", FieldType::I64)]);
        let piece = fs.lookup("piece").unwrap();
        let r = f.create_region(Domain::range(12), fs.clone());
        let mut inst = Instance::new(Domain::range(12), &fs);
        for i in 0..12i64 {
            inst.write_i64(piece, DynPoint::from(i), i / 4);
        }
        let colors: Vec<Color> = (0..3).map(DynPoint::from).collect();
        let p = by_field(&mut f, r, &inst, piece, &colors);
        assert_eq!(f.partition(p).disjointness, Disjointness::Disjoint);
        for c in 0..3i64 {
            let child = f.subregion_i(p, c);
            let expect = Domain::from_ids(c * 4..(c + 1) * 4);
            assert!(f.domain(child).set_eq(&expect));
        }
    }
}
