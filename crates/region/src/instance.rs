//! Physical instances: concrete storage for a region's elements.
//!
//! §3 frames control replication as converting a *shared-memory*
//! implementation of region semantics (subregions alias their parent's
//! storage) into a *distributed-memory* one (every region has its own
//! storage and the compiler inserts explicit copies). Both
//! implementations use this type: the sequential interpreter allocates
//! one instance per region-tree root, while the SPMD runtime allocates
//! one instance per subregion per shard and moves data with
//! [`copy_fields`] / [`reduce_fields`].

use crate::checksum::StripedFnv;
use crate::field::{FieldId, FieldSpace, FieldType};
use regent_geometry::{Domain, DynPoint, DynRect};

/// Maps points of a (possibly sparse) domain to dense storage offsets.
///
/// Rectangles are stored in the domain's canonical order; each gets a
/// contiguous block of offsets. Lookup binary-searches the rectangle
/// list (sorted by `lo`), then linearizes within the rectangle.
#[derive(Clone, Debug)]
pub struct DomainIndexer {
    rects: Vec<(DynRect, u64)>,
    total: u64,
}

impl DomainIndexer {
    /// Builds an indexer for `domain`.
    pub fn new(domain: &Domain) -> Self {
        let mut rects = Vec::with_capacity(domain.rects().len());
        let mut off = 0u64;
        for &r in domain.rects() {
            rects.push((r, off));
            off += r.volume();
        }
        DomainIndexer { rects, total: off }
    }

    /// Number of indexed elements.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The dense offset of `p`, or `None` when `p` is outside the domain.
    #[inline]
    pub fn offset_of(&self, p: DynPoint) -> Option<u64> {
        // Rects are disjoint and sorted by lo; binary search for the last
        // rect whose lo <= p, then check a small neighborhood (rects
        // sorted by lo do not totally order containment in >1-D, so fall
        // back to scanning backwards).
        let idx = self.rects.partition_point(|(r, _)| r.lo() <= p);
        for i in (0..idx).rev() {
            let (r, off) = self.rects[i];
            if let Some(k) = r.linearize(p) {
                return Some(off + k);
            }
            // In 1-D, once r.hi < p for the closest rect we can stop.
            if r.dim() == 1 {
                break;
            }
        }
        None
    }

    /// Iterates `(point, offset)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (DynPoint, u64)> + '_ {
        self.rects.iter().flat_map(|&(r, off)| {
            (0..r.volume()).map(move |k| (r.delinearize(k).unwrap(), off + k))
        })
    }
}

/// One field's column of data.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// 64-bit float column.
    F64(Vec<f64>),
    /// 64-bit integer column.
    I64(Vec<i64>),
}

impl ColumnData {
    fn zeros(ty: FieldType, len: usize) -> Self {
        match ty {
            FieldType::F64 => ColumnData::F64(vec![0.0; len]),
            FieldType::I64 => ColumnData::I64(vec![0; len]),
        }
    }
}

/// Reduction operators usable with reduce privileges (§4.3) and scalar
/// reductions (§4.4). All are associative and commutative.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReductionOp {
    /// Sum.
    Add,
    /// Product.
    Mul,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReductionOp {
    /// The identity element of the operator.
    pub fn identity(self) -> f64 {
        match self {
            ReductionOp::Add => 0.0,
            ReductionOp::Mul => 1.0,
            ReductionOp::Min => f64::INFINITY,
            ReductionOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Folds `rhs` into `lhs`.
    #[inline]
    pub fn fold(self, lhs: f64, rhs: f64) -> f64 {
        match self {
            ReductionOp::Add => lhs + rhs,
            ReductionOp::Mul => lhs * rhs,
            ReductionOp::Min => lhs.min(rhs),
            ReductionOp::Max => lhs.max(rhs),
        }
    }

    /// Integer fold (for I64 reduction fields).
    #[inline]
    pub fn fold_i64(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            ReductionOp::Add => lhs + rhs,
            ReductionOp::Mul => lhs * rhs,
            ReductionOp::Min => lhs.min(rhs),
            ReductionOp::Max => lhs.max(rhs),
        }
    }

    /// Integer identity.
    pub fn identity_i64(self) -> i64 {
        match self {
            ReductionOp::Add => 0,
            ReductionOp::Mul => 1,
            ReductionOp::Min => i64::MAX,
            ReductionOp::Max => i64::MIN,
        }
    }
}

/// Concrete storage for one domain × one field space.
///
/// Instances optionally carry an FNV-1a **seal**: a checksum of every
/// column's bit contents, taken at a quiescent point (task completion,
/// copy application). Any mutation through the public API invalidates
/// the seal; the integrity layer re-seals at its write-completion
/// points and verifies seals at epoch boundaries to detect silent data
/// corruption. Unsealed instances (`seal_value() == None`) verify
/// trivially, so the checksum machinery costs nothing unless enabled.
#[derive(Clone, Debug)]
pub struct Instance {
    domain: Domain,
    indexer: DomainIndexer,
    columns: Vec<ColumnData>,
    /// One seal per column. Kernels and copies usually write a single
    /// field of a multi-field instance, so per-column seals let the
    /// re-seal points rehash only what changed instead of the whole
    /// instance — the dominant term of the integrity layer's rate-0
    /// overhead.
    seals: Vec<Option<u64>>,
}

impl Instance {
    /// Allocates a zero-initialized instance covering `domain`.
    pub fn new(domain: Domain, fields: &FieldSpace) -> Self {
        let indexer = DomainIndexer::new(&domain);
        let len = indexer.len() as usize;
        let columns: Vec<ColumnData> = fields
            .iter()
            .map(|(_, def)| ColumnData::zeros(def.ty, len))
            .collect();
        let seals = vec![None; columns.len()];
        Instance {
            domain,
            indexer,
            columns,
            seals,
        }
    }

    /// Allocates an instance with every F64 column set to `op`'s
    /// identity — the temporary reduction instances of §4.3.
    pub fn new_reduction(domain: Domain, fields: &FieldSpace, op: ReductionOp) -> Self {
        let mut inst = Instance::new(domain, fields);
        for col in &mut inst.columns {
            match col {
                ColumnData::F64(v) => v.fill(op.identity()),
                ColumnData::I64(v) => v.fill(op.identity_i64()),
            }
        }
        inst
    }

    /// The covered domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The point→offset indexer.
    pub fn indexer(&self) -> &DomainIndexer {
        &self.indexer
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.indexer.len()
    }

    /// True when the instance covers no elements.
    pub fn is_empty(&self) -> bool {
        self.indexer.is_empty()
    }

    /// Raw column access (type-erased).
    pub fn column(&self, field: FieldId) -> &ColumnData {
        &self.columns[field.0 as usize]
    }

    /// Immutable f64 column for `field`.
    ///
    /// # Panics
    /// If the field is not F64-typed.
    pub fn f64_col(&self, field: FieldId) -> &[f64] {
        match &self.columns[field.0 as usize] {
            ColumnData::F64(v) => v,
            _ => panic!("field {field:?} is not F64"),
        }
    }

    /// Checksum of one column's bit contents (storage order, with a
    /// type/length header). Seals over megabytes of data are the
    /// steady-state cost of the integrity layer, so this uses the
    /// 4-lane [`StripedFnv`]: its independent xor-multiply lanes
    /// auto-vectorize on this path, which measures faster in situ
    /// than the multiply-fold alternative (see
    /// `regent_region::checksum::MulFold` for the comparison).
    fn column_checksum(col: &ColumnData) -> u64 {
        let mut h = StripedFnv::new();
        match col {
            ColumnData::F64(v) => {
                h.mix(v.len() as u64);
                h.mix_f64s(v);
            }
            ColumnData::I64(v) => {
                h.mix(!(v.len() as u64));
                h.mix_i64s(v);
            }
        }
        h.finish()
    }

    /// Checksum of every column (column order), folded into one
    /// digest.
    pub fn checksum(&self) -> u64 {
        let mut h = StripedFnv::new();
        for col in &self.columns {
            h.mix(Self::column_checksum(col));
        }
        h.finish()
    }

    /// Copies `src`'s contents (columns and seal) into `self`,
    /// **reusing** `self`'s column allocations — the derived
    /// `Clone::clone_from` would reallocate every column `Vec`.
    /// Contract: `self` and `src` cover the same domain with the same
    /// field space (checkpoint snapshots and their live instances do
    /// by construction); shape mismatches fall back to a full clone.
    pub fn clone_contents_from(&mut self, src: &Instance) {
        if self.columns.len() != src.columns.len() {
            *self = src.clone();
            return;
        }
        debug_assert_eq!(self.indexer.len(), src.indexer.len(), "shape drifted");
        for (d, s) in self.columns.iter_mut().zip(&src.columns) {
            match (d, s) {
                (ColumnData::F64(d), ColumnData::F64(s)) => d.clone_from(s),
                (ColumnData::I64(d), ColumnData::I64(s)) => d.clone_from(s),
                (d, s) => *d = s.clone(),
            }
        }
        self.seals.clone_from(&src.seals);
    }

    /// Seals the instance: records every column's checksum as the
    /// expected content hash. Called at write-completion points (task
    /// finish, copy apply) by the integrity layer.
    pub fn seal(&mut self) {
        for (s, col) in self.seals.iter_mut().zip(&self.columns) {
            *s = Some(Self::column_checksum(col));
        }
    }

    /// Re-seals only the named fields' columns — the write-completion
    /// fast path. A launch or copy that touched one field of a
    /// multi-field instance rehashes that column alone; untouched
    /// columns keep their still-valid seals, so detection strength is
    /// unchanged while the re-seal cost scales with what was written.
    pub fn seal_fields(&mut self, fields: &[FieldId]) {
        for &f in fields {
            let c = f.0 as usize;
            self.seals[c] = Some(Self::column_checksum(&self.columns[c]));
        }
    }

    /// The recorded seal, if any: the fold of the per-column seals
    /// when **every** column is sealed, `None` when any column is
    /// unsealed — either the integrity layer is off or a write
    /// invalidated a column and its re-seal point has not been
    /// reached yet.
    pub fn seal_value(&self) -> Option<u64> {
        let mut h = StripedFnv::new();
        for s in &self.seals {
            h.mix((*s)?);
        }
        Some(h.finish())
    }

    /// Verifies the seals against the current contents. Unsealed
    /// columns verify trivially; a sealed column fails only when its
    /// bits changed *without* going through the mutation API — i.e.
    /// silent data corruption.
    pub fn verify_seal(&self) -> bool {
        self.seals
            .iter()
            .zip(&self.columns)
            .all(|(s, col)| s.is_none_or(|s| s == Self::column_checksum(col)))
    }

    /// Flips one bit of one element, chosen from `entropy`, **without**
    /// invalidating the seal — the fault injector's model of silent
    /// in-memory corruption (a stale seal is exactly what detection
    /// looks for). Returns `false` when the instance has no storage to
    /// corrupt.
    pub fn corrupt_bit_silently(&mut self, entropy: u64) -> bool {
        let len = self.indexer.len() as usize;
        let ncols = self.columns.len();
        if len == 0 || ncols == 0 {
            return false;
        }
        let slot = (entropy % (len as u64 * ncols as u64)) as usize;
        let (c, i) = (slot / len, slot % len);
        let bit = ((entropy >> 40) % 64) as u32;
        match &mut self.columns[c] {
            ColumnData::F64(v) => v[i] = f64::from_bits(v[i].to_bits() ^ (1u64 << bit)),
            ColumnData::I64(v) => v[i] ^= 1i64 << bit,
        }
        true
    }

    /// Mutable f64 column for `field`.
    pub fn f64_col_mut(&mut self, field: FieldId) -> &mut [f64] {
        self.seals[field.0 as usize] = None;
        match &mut self.columns[field.0 as usize] {
            ColumnData::F64(v) => v,
            _ => panic!("field {field:?} is not F64"),
        }
    }

    /// Immutable i64 column for `field`.
    pub fn i64_col(&self, field: FieldId) -> &[i64] {
        match &self.columns[field.0 as usize] {
            ColumnData::I64(v) => v,
            _ => panic!("field {field:?} is not I64"),
        }
    }

    /// Mutable i64 column for `field`.
    pub fn i64_col_mut(&mut self, field: FieldId) -> &mut [i64] {
        self.seals[field.0 as usize] = None;
        match &mut self.columns[field.0 as usize] {
            ColumnData::I64(v) => v,
            _ => panic!("field {field:?} is not I64"),
        }
    }

    /// Point-wise f64 read.
    #[inline]
    pub fn read_f64(&self, field: FieldId, p: DynPoint) -> f64 {
        let off = self
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("point {p:?} outside instance domain"));
        self.f64_col(field)[off as usize]
    }

    /// Point-wise f64 write.
    #[inline]
    pub fn write_f64(&mut self, field: FieldId, p: DynPoint, v: f64) {
        let off = self
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("point {p:?} outside instance domain"));
        self.f64_col_mut(field)[off as usize] = v;
    }

    /// Point-wise i64 read.
    #[inline]
    pub fn read_i64(&self, field: FieldId, p: DynPoint) -> i64 {
        let off = self
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("point {p:?} outside instance domain"));
        self.i64_col(field)[off as usize]
    }

    /// Point-wise i64 write.
    #[inline]
    pub fn write_i64(&mut self, field: FieldId, p: DynPoint, v: i64) {
        let off = self
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("point {p:?} outside instance domain"));
        self.i64_col_mut(field)[off as usize] = v;
    }

    /// Fills one field's entire column with a constant (used to reset
    /// reduction temporaries to the operator identity, §4.3).
    pub fn fill_field(&mut self, field: FieldId, op: ReductionOp) {
        self.seals[field.0 as usize] = None;
        match &mut self.columns[field.0 as usize] {
            ColumnData::F64(v) => v.fill(op.identity()),
            ColumnData::I64(v) => v.fill(op.identity_i64()),
        }
    }

    /// Point-wise reduction fold into an f64 field.
    #[inline]
    pub fn reduce_f64(&mut self, field: FieldId, p: DynPoint, op: ReductionOp, v: f64) {
        let off = self
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("point {p:?} outside instance domain"));
        let cell = &mut self.f64_col_mut(field)[off as usize];
        *cell = op.fold(*cell, v);
    }
}

/// Copies the values of `fields` for every element of `elements` from
/// `src` to `dst` (the region assignment `dst ← src` of §3.1, restricted
/// to a precomputed intersection per §3.3).
///
/// `elements` must be a subset of both instance domains.
pub fn copy_fields(src: &Instance, dst: &mut Instance, fields: &[FieldId], elements: &Domain) {
    for &f in fields {
        dst.seals[f.0 as usize] = None;
    }
    for p in elements.iter() {
        let so = src
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("copy source missing {p:?}")) as usize;
        let do_ = dst
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("copy destination missing {p:?}")) as usize;
        for &f in fields {
            match (&src.columns[f.0 as usize], &mut dst.columns[f.0 as usize]) {
                (ColumnData::F64(s), ColumnData::F64(d)) => d[do_] = s[so],
                (ColumnData::I64(s), ColumnData::I64(d)) => d[do_] = s[so],
                _ => panic!("field {f:?} type mismatch between instances"),
            }
        }
    }
}

/// Reduction copy (§4.3): folds the values of `fields` from `src` into
/// `dst` with `op` over `elements`.
pub fn reduce_fields(
    src: &Instance,
    dst: &mut Instance,
    fields: &[FieldId],
    elements: &Domain,
    op: ReductionOp,
) {
    for &f in fields {
        dst.seals[f.0 as usize] = None;
    }
    for p in elements.iter() {
        let so = src
            .indexer
            .offset_of(p)
            .unwrap_or_else(|| panic!("reduce source missing {p:?}")) as usize;
        let do_ =
            dst.indexer
                .offset_of(p)
                .unwrap_or_else(|| panic!("reduce destination missing {p:?}")) as usize;
        for &f in fields {
            match (&src.columns[f.0 as usize], &mut dst.columns[f.0 as usize]) {
                (ColumnData::F64(s), ColumnData::F64(d)) => d[do_] = op.fold(d[do_], s[so]),
                (ColumnData::I64(s), ColumnData::I64(d)) => d[do_] = op.fold_i64(d[do_], s[so]),
                _ => panic!("field {f:?} type mismatch between instances"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpace;

    fn fs() -> FieldSpace {
        FieldSpace::of(&[("x", FieldType::F64), ("ptr", FieldType::I64)])
    }

    #[test]
    fn indexer_dense() {
        let d = Domain::range(10);
        let ix = DomainIndexer::new(&d);
        assert_eq!(ix.len(), 10);
        assert_eq!(ix.offset_of(DynPoint::from(7)), Some(7));
        assert_eq!(ix.offset_of(DynPoint::from(10)), None);
        assert_eq!(ix.iter().count(), 10);
    }

    #[test]
    fn indexer_sparse() {
        let d = Domain::from_ids([2, 3, 4, 10, 20, 21]);
        let ix = DomainIndexer::new(&d);
        assert_eq!(ix.len(), 6);
        assert_eq!(ix.offset_of(DynPoint::from(2)), Some(0));
        assert_eq!(ix.offset_of(DynPoint::from(4)), Some(2));
        assert_eq!(ix.offset_of(DynPoint::from(10)), Some(3));
        assert_eq!(ix.offset_of(DynPoint::from(21)), Some(5));
        assert_eq!(ix.offset_of(DynPoint::from(5)), None);
        // Iter order matches offsets.
        for (p, off) in ix.iter() {
            assert_eq!(ix.offset_of(p), Some(off));
        }
    }

    #[test]
    fn indexer_2d_multirect() {
        use regent_geometry::DynRect;
        let a = DynRect::new(DynPoint::new(&[0, 0]), DynPoint::new(&[1, 1]));
        let b = DynRect::new(DynPoint::new(&[5, 5]), DynPoint::new(&[6, 6]));
        let d = Domain::from_rects([a, b]);
        let ix = DomainIndexer::new(&d);
        assert_eq!(ix.len(), 8);
        assert_eq!(ix.offset_of(DynPoint::new(&[3, 3])), None);
        for (p, off) in ix.iter() {
            assert_eq!(ix.offset_of(p), Some(off));
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let fields = fs();
        let x = fields.lookup("x").unwrap();
        let ptr = fields.lookup("ptr").unwrap();
        let mut inst = Instance::new(Domain::range(5), &fields);
        inst.write_f64(x, DynPoint::from(3), 2.5);
        inst.write_i64(ptr, DynPoint::from(3), -7);
        assert_eq!(inst.read_f64(x, DynPoint::from(3)), 2.5);
        assert_eq!(inst.read_i64(ptr, DynPoint::from(3)), -7);
        assert_eq!(inst.read_f64(x, DynPoint::from(0)), 0.0);
    }

    #[test]
    fn copy_over_intersection() {
        let fields = fs();
        let x = fields.lookup("x").unwrap();
        let src_dom = Domain::from_ids(0..6);
        let dst_dom = Domain::from_ids(4..10);
        let mut src = Instance::new(src_dom.clone(), &fields);
        let mut dst = Instance::new(dst_dom.clone(), &fields);
        for p in src_dom.iter() {
            src.write_f64(x, p, p.coord(0) as f64 * 10.0);
        }
        let inter = src_dom.intersect(&dst_dom);
        copy_fields(&src, &mut dst, &[x], &inter);
        assert_eq!(dst.read_f64(x, DynPoint::from(4)), 40.0);
        assert_eq!(dst.read_f64(x, DynPoint::from(5)), 50.0);
        assert_eq!(dst.read_f64(x, DynPoint::from(9)), 0.0, "outside untouched");
    }

    #[test]
    fn reduction_instance_and_fold() {
        let fields = FieldSpace::of(&[("q", FieldType::F64)]);
        let q = fields.lookup("q").unwrap();
        let dom = Domain::range(4);
        let mut tmp = Instance::new_reduction(dom.clone(), &fields, ReductionOp::Add);
        assert_eq!(tmp.read_f64(q, DynPoint::from(0)), 0.0);
        tmp.reduce_f64(q, DynPoint::from(1), ReductionOp::Add, 5.0);
        tmp.reduce_f64(q, DynPoint::from(1), ReductionOp::Add, 2.0);
        let mut main = Instance::new(dom.clone(), &fields);
        main.write_f64(q, DynPoint::from(1), 1.0);
        reduce_fields(&tmp, &mut main, &[q], &dom, ReductionOp::Add);
        assert_eq!(main.read_f64(q, DynPoint::from(1)), 8.0);
        assert_eq!(main.read_f64(q, DynPoint::from(0)), 0.0);
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(ReductionOp::Min.fold(ReductionOp::Min.identity(), 3.0), 3.0);
        assert_eq!(
            ReductionOp::Max.fold(ReductionOp::Max.identity(), -3.0),
            -3.0
        );
        assert_eq!(ReductionOp::Mul.fold(ReductionOp::Mul.identity(), 4.0), 4.0);
        assert_eq!(ReductionOp::Add.identity_i64(), 0);
        assert_eq!(ReductionOp::Min.identity_i64(), i64::MAX);
    }

    #[test]
    fn seal_lifecycle() {
        let fields = fs();
        let x = fields.lookup("x").unwrap();
        let ptr = fields.lookup("ptr").unwrap();
        let mut inst = Instance::new(Domain::range(8), &fields);
        // Unsealed instances verify trivially.
        assert_eq!(inst.seal_value(), None);
        assert!(inst.verify_seal());
        inst.seal();
        assert!(inst.seal_value().is_some());
        assert!(inst.verify_seal());
        // Every mutation path invalidates the seal.
        inst.write_f64(x, DynPoint::from(0), 1.0);
        assert_eq!(inst.seal_value(), None);
        inst.seal();
        inst.write_i64(ptr, DynPoint::from(1), 2);
        assert_eq!(inst.seal_value(), None);
        inst.seal();
        inst.fill_field(x, ReductionOp::Add);
        assert_eq!(inst.seal_value(), None);
        inst.seal();
        inst.reduce_f64(x, DynPoint::from(2), ReductionOp::Add, 3.0);
        assert_eq!(inst.seal_value(), None);
        inst.seal();
        let other = Instance::new(Domain::range(8), &fields);
        copy_fields(&other, &mut inst, &[x], &Domain::range(8));
        assert_eq!(inst.seal_value(), None);
        inst.seal();
        reduce_fields(&other, &mut inst, &[x], &Domain::range(8), ReductionOp::Add);
        assert_eq!(inst.seal_value(), None);
        // Clones carry the seal (snapshots stay verified).
        inst.seal();
        let clone = inst.clone();
        assert_eq!(clone.seal_value(), inst.seal_value());
        assert!(clone.verify_seal());
    }

    #[test]
    fn silent_corruption_breaks_seal() {
        let fields = fs();
        let x = fields.lookup("x").unwrap();
        let mut inst = Instance::new(Domain::range(16), &fields);
        for p in Domain::range(16).iter() {
            inst.write_f64(x, p, p.coord(0) as f64);
        }
        inst.seal();
        let before = inst.checksum();
        for entropy in [0u64, 0x1234_5678_9abc_def0, u64::MAX, 7 << 40] {
            let mut victim = inst.clone();
            assert!(victim.corrupt_bit_silently(entropy));
            // The seal survives the silent flip but no longer matches.
            assert_eq!(victim.seal_value(), Some(before));
            assert!(!victim.verify_seal(), "entropy {entropy:#x} undetected");
        }
        // Empty instances have nothing to corrupt.
        let mut empty = Instance::new(Domain::from_ids([]), &fields);
        assert!(!empty.corrupt_bit_silently(42));
        empty.seal();
        assert!(empty.verify_seal());
    }

    #[test]
    #[should_panic(expected = "outside instance domain")]
    fn out_of_domain_write_panics() {
        let fields = fs();
        let x = fields.lookup("x").unwrap();
        let mut inst = Instance::new(Domain::range(3), &fields);
        inst.write_f64(x, DynPoint::from(3), 1.0);
    }
}
