//! Bounding volume hierarchy over rectangles.
//!
//! §3.3: "For structured regions, we use a bounding volume hierarchy" to
//! find which pairs of subregions overlap without comparing all pairs.
//! The tree is built once over one partition's rectangles and queried
//! with each rectangle of the other partition.

use regent_geometry::DynRect;

/// A rectangle tagged with a caller-supplied id.
#[derive(Clone, Copy, Debug)]
pub struct TaggedRect {
    /// The rectangle (must be non-empty).
    pub rect: DynRect,
    /// Caller tag (e.g. subregion index).
    pub id: u32,
}

enum BvhNode {
    Leaf {
        items: Vec<TaggedRect>,
    },
    Inner {
        bbox: DynRect,
        left: Box<BvhNode>,
        right: Box<BvhNode>,
    },
}

/// Static BVH: build once, query many times.
///
/// Built by recursive median split along the longest axis of the current
/// bounding box; leaves hold up to [`Bvh::LEAF_SIZE`] rectangles.
pub struct Bvh {
    root: Option<BvhNode>,
    len: usize,
}

impl Bvh {
    /// Maximum number of rectangles stored in one leaf.
    pub const LEAF_SIZE: usize = 8;

    /// Builds the hierarchy. Empty rectangles are rejected.
    pub fn build(items: Vec<TaggedRect>) -> Self {
        assert!(
            items.iter().all(|t| !t.rect.is_empty()),
            "BVH items must be non-empty"
        );
        let len = items.len();
        let root = if items.is_empty() {
            None
        } else {
            Some(Self::build_node(items))
        };
        Bvh { root, len }
    }

    fn bbox_of(items: &[TaggedRect]) -> DynRect {
        let mut bb = DynRect::empty(items[0].rect.dim());
        for t in items {
            bb = bb.union_bbox(&t.rect);
        }
        bb
    }

    fn build_node(mut items: Vec<TaggedRect>) -> BvhNode {
        if items.len() <= Self::LEAF_SIZE {
            return BvhNode::Leaf { items };
        }
        let bbox = Self::bbox_of(&items);
        // Longest axis of the bounding box.
        let dim = bbox.dim();
        let axis = (0..dim)
            .max_by_key(|&d| bbox.hi().coord(d) - bbox.lo().coord(d))
            .unwrap();
        let mid = items.len() / 2;
        items
            .select_nth_unstable_by_key(mid, |t| t.rect.lo().coord(axis) + t.rect.hi().coord(axis));
        let right_items = items.split_off(mid);
        BvhNode::Inner {
            bbox,
            left: Box::new(Self::build_node(items)),
            right: Box::new(Self::build_node(right_items)),
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Invokes `hit` for every stored rectangle overlapping `query`.
    pub fn query(&self, query: &DynRect, mut hit: impl FnMut(&TaggedRect)) {
        if query.is_empty() {
            return;
        }
        let mut stack: Vec<&BvhNode> = Vec::new();
        if let Some(ref root) = self.root {
            stack.push(root);
        }
        while let Some(node) = stack.pop() {
            match node {
                BvhNode::Leaf { items } => {
                    for t in items {
                        if t.rect.overlaps(query) {
                            hit(t);
                        }
                    }
                }
                BvhNode::Inner { bbox, left, right } => {
                    if bbox.overlaps(query) {
                        stack.push(left);
                        stack.push(right);
                    }
                }
            }
        }
    }

    /// Collects ids of all rectangles overlapping `query`.
    pub fn query_ids(&self, query: &DynRect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query(query, |t| out.push(t.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_geometry::DynPoint;

    fn rect2(x0: i64, y0: i64, x1: i64, y1: i64) -> DynRect {
        DynRect::new(DynPoint::new(&[x0, y0]), DynPoint::new(&[x1, y1]))
    }

    #[test]
    fn grid_of_tiles() {
        // 4x4 grid of 10x10 tiles.
        let mut items = Vec::new();
        for i in 0..4i64 {
            for j in 0..4i64 {
                items.push(TaggedRect {
                    rect: rect2(i * 10, j * 10, i * 10 + 9, j * 10 + 9),
                    id: (i * 4 + j) as u32,
                });
            }
        }
        let bvh = Bvh::build(items);
        assert_eq!(bvh.len(), 16);
        // Query overlapping exactly one tile.
        assert_eq!(bvh.query_ids(&rect2(12, 12, 14, 14)), vec![5]);
        // Query spanning a 2x2 block of tiles.
        let mut ids = bvh.query_ids(&rect2(8, 8, 12, 12));
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 4, 5]);
        // Query outside everything.
        assert!(bvh.query_ids(&rect2(100, 100, 110, 110)).is_empty());
    }

    #[test]
    fn empty_and_single() {
        let bvh = Bvh::build(vec![]);
        assert!(bvh.is_empty());
        assert!(bvh.query_ids(&rect2(0, 0, 5, 5)).is_empty());
        let one = Bvh::build(vec![TaggedRect {
            rect: rect2(0, 0, 3, 3),
            id: 7,
        }]);
        assert_eq!(one.query_ids(&rect2(3, 3, 9, 9)), vec![7]);
        assert!(one.query_ids(&DynRect::empty(2)).is_empty());
    }

    #[test]
    fn randomized_vs_naive() {
        let mut seed = 0xDEADBEEFCAFEF00Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let items: Vec<TaggedRect> = (0..300)
            .map(|i| {
                let x = (next() % 500) as i64;
                let y = (next() % 500) as i64;
                let w = (next() % 30) as i64;
                let h = (next() % 30) as i64;
                TaggedRect {
                    rect: rect2(x, y, x + w, y + h),
                    id: i,
                }
            })
            .collect();
        let bvh = Bvh::build(items.clone());
        for _ in 0..100 {
            let x = (next() % 520) as i64;
            let y = (next() % 520) as i64;
            let q = rect2(x, y, x + (next() % 60) as i64, y + (next() % 60) as i64);
            let mut got = bvh.query_ids(&q);
            got.sort_unstable();
            let mut expect: Vec<u32> = items
                .iter()
                .filter(|t| t.rect.overlaps(&q))
                .map(|t| t.id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }
}
