//! Field spaces: the per-element payload schema of a region tree.
//!
//! A Regent region stores one or more named fields per element (§2.1).
//! Tasks request privileges per region (and in full Regent per field); we
//! track fields explicitly so physical instances can be laid out per
//! field and privileges can be field-granular.

use std::fmt;

/// Identifier of a field within a field space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// The primitive type of a field.
///
/// Two types suffice for the evaluated applications: `F64` for physics
/// state and `I64` for mesh connectivity (element pointers, which also
/// feed image/preimage partition operators).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldType {
    /// 64-bit float.
    F64,
    /// 64-bit signed integer (element pointers / connectivity).
    I64,
}

impl FieldType {
    /// Size of one element of this type in bytes (used by the
    /// communication model to convert element counts to wire bytes).
    pub fn size_bytes(self) -> u64 {
        8
    }
}

/// Definition of a single field.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Human-readable name (unique within the field space).
    pub name: String,
    /// Primitive type.
    pub ty: FieldType,
}

/// An ordered collection of field definitions shared by every region in
/// one region tree.
#[derive(Clone, Debug, Default)]
pub struct FieldSpace {
    fields: Vec<FieldDef>,
}

impl FieldSpace {
    /// Creates an empty field space.
    pub fn new() -> Self {
        FieldSpace::default()
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(fields: &[(&str, FieldType)]) -> Self {
        let mut fs = FieldSpace::new();
        for (name, ty) in fields {
            fs.add(name, *ty);
        }
        fs
    }

    /// Adds a field, returning its id.
    ///
    /// # Panics
    /// If a field with the same name already exists.
    pub fn add(&mut self, name: &str, ty: FieldType) -> FieldId {
        assert!(self.lookup(name).is_none(), "duplicate field name {name:?}");
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(FieldDef {
            name: name.to_string(),
            ty,
        });
        id
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the space has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The definition of `id`.
    pub fn def(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.0 as usize]
    }

    /// Finds a field by name.
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u32))
    }

    /// Iterates `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldDef)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, d)| (FieldId(i as u32), d))
    }

    /// All field ids.
    pub fn ids(&self) -> impl Iterator<Item = FieldId> {
        (0..self.fields.len() as u32).map(FieldId)
    }

    /// Total bytes per element across all fields.
    pub fn bytes_per_element(&self) -> u64 {
        self.fields.iter().map(|f| f.ty.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut fs = FieldSpace::new();
        let a = fs.add("voltage", FieldType::F64);
        let b = fs.add("node_ptr", FieldType::I64);
        assert_ne!(a, b);
        assert_eq!(fs.lookup("voltage"), Some(a));
        assert_eq!(fs.lookup("charge"), None);
        assert_eq!(fs.def(b).ty, FieldType::I64);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.bytes_per_element(), 16);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_name_panics() {
        let mut fs = FieldSpace::new();
        fs.add("x", FieldType::F64);
        fs.add("x", FieldType::F64);
    }

    #[test]
    fn of_constructor() {
        let fs = FieldSpace::of(&[("a", FieldType::F64), ("b", FieldType::I64)]);
        assert_eq!(fs.ids().count(), 2);
        assert_eq!(fs.iter().count(), 2);
        assert!(!fs.is_empty());
    }
}
