//! The region forest: logical regions, partitions, and the region-tree
//! disjointness analysis of §2.3.
//!
//! Every top-level region created by a program is the root of a *region
//! tree*: regions are partitioned into subregions, which may themselves
//! be partitioned, recursively (§4.5). The forest is an arena holding
//! every region and partition ever created, with parent/child links. The
//! key query is [`RegionForest::provably_disjoint`]: walk both regions to
//! their least common ancestor; if the paths diverge at a *disjoint*
//! partition through different children, the regions cannot overlap.
//! This is the static test the control-replication compiler relies on to
//! avoid inserting copies between non-interfering partitions (§3.1).

use crate::field::FieldSpace;
use regent_geometry::{Domain, DynPoint};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a logical region in a [`RegionForest`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Identifier of a partition in a [`RegionForest`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The *color* of a subregion: its index within its partition's color
/// space. Block partitions over a 1-D launch domain use 1-D colors.
pub type Color = DynPoint;

/// Static disjointness classification of a partition (§2.1).
///
/// Block partitions are disjoint by construction; image partitions over
/// an unconstrained function must be assumed aliased.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disjointness {
    /// Subregions are guaranteed pairwise disjoint.
    Disjoint,
    /// Subregions may overlap.
    Aliased,
}

/// A logical region node.
#[derive(Clone, Debug)]
pub struct RegionNode {
    /// The set of element indices in the region.
    pub domain: Domain,
    /// Link to the parent partition and this region's color in it
    /// (`None` for tree roots).
    pub parent: Option<(PartitionId, Color)>,
    /// Partitions of this region.
    pub partitions: Vec<PartitionId>,
    /// The root of this region's tree.
    pub root: RegionId,
    /// Depth in the tree (root = 0, counting region levels only).
    pub depth: u32,
}

/// A partition node: a named set of subregions of one parent region.
#[derive(Clone, Debug)]
pub struct PartitionNode {
    /// The region being partitioned.
    pub parent: RegionId,
    /// Static disjointness classification.
    pub disjointness: Disjointness,
    /// Children indexed by color, in insertion (color) order.
    pub children: Vec<(Color, RegionId)>,
    child_index: HashMap<Color, RegionId>,
}

impl PartitionNode {
    /// The subregion of color `c`, if present.
    pub fn child(&self, c: Color) -> Option<RegionId> {
        self.child_index.get(&c).copied()
    }

    /// Number of subregions.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the partition has no subregions.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Iterates `(color, region)` pairs in color order.
    pub fn iter(&self) -> impl Iterator<Item = (Color, RegionId)> + '_ {
        self.children.iter().copied()
    }

    /// All child region ids in color order.
    pub fn child_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.children.iter().map(|&(_, r)| r)
    }
}

/// Arena of all regions and partitions, with the tree queries used by
/// both the compiler and the runtime.
///
/// Cloning a forest is a deep copy of the metadata (domains, links) —
/// used by the range-local control replication driver, which compiles
/// each replicable range against its own forest snapshot.
#[derive(Default, Clone)]
pub struct RegionForest {
    regions: Vec<RegionNode>,
    partitions: Vec<PartitionNode>,
    field_spaces: Vec<FieldSpace>,
    /// Field space of each tree root (indexed in lockstep with the root's
    /// position in `roots`).
    root_fs: HashMap<RegionId, usize>,
    /// Mutation counter, bumped by every structural change (region or
    /// partition creation). Consumers that cache derived schedules —
    /// the epoch-trace memoizer in `regent-runtime` — compare versions
    /// to detect that a cached analysis went stale.
    version: u64,
}

impl RegionForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        RegionForest::default()
    }

    /// Creates a new top-level region over `domain` with the given field
    /// space, returning the root region id.
    pub fn create_region(&mut self, domain: Domain, fields: FieldSpace) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionNode {
            domain,
            parent: None,
            partitions: Vec::new(),
            root: id,
            depth: 0,
        });
        let fs_idx = self.field_spaces.len();
        self.field_spaces.push(fields);
        self.root_fs.insert(id, fs_idx);
        self.version += 1;
        id
    }

    /// The forest's structural version: incremented by every region or
    /// partition creation. Equal versions on the same forest value mean
    /// no region-tree mutation happened in between (the memoization
    /// precondition of the implicit executor's epoch templates).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Creates a partition of `parent` from explicit `(color, domain)`
    /// pairs. `disjointness` is the *static* classification: callers such
    /// as the block operator pass [`Disjointness::Disjoint`]; operators
    /// that cannot guarantee it (e.g. image) pass
    /// [`Disjointness::Aliased`].
    ///
    /// Subdomains are *not* required to be subsets of the parent: Regent
    /// images clip to the parent, which we enforce here by intersecting.
    pub fn create_partition(
        &mut self,
        parent: RegionId,
        disjointness: Disjointness,
        subdomains: Vec<(Color, Domain)>,
    ) -> PartitionId {
        let pid = PartitionId(self.partitions.len() as u32);
        let parent_node = &self.regions[parent.0 as usize];
        let (root, depth) = (parent_node.root, parent_node.depth);
        let parent_domain = parent_node.domain.clone();
        let mut children = Vec::with_capacity(subdomains.len());
        let mut child_index = HashMap::with_capacity(subdomains.len());
        for (color, dom) in subdomains {
            let clipped = dom.intersect(&parent_domain);
            let rid = RegionId(self.regions.len() as u32);
            self.regions.push(RegionNode {
                domain: clipped,
                parent: Some((pid, color)),
                partitions: Vec::new(),
                root,
                depth: depth + 1,
            });
            children.push((color, rid));
            let dup = child_index.insert(color, rid);
            assert!(dup.is_none(), "duplicate color {color:?} in partition");
        }
        self.partitions.push(PartitionNode {
            parent,
            disjointness,
            children,
            child_index,
        });
        self.regions[parent.0 as usize].partitions.push(pid);
        self.version += 1;
        pid
    }

    /// The node for `r`.
    pub fn region(&self, r: RegionId) -> &RegionNode {
        &self.regions[r.0 as usize]
    }

    /// The node for `p`.
    pub fn partition(&self, p: PartitionId) -> &PartitionNode {
        &self.partitions[p.0 as usize]
    }

    /// The domain of `r`.
    pub fn domain(&self, r: RegionId) -> &Domain {
        &self.regions[r.0 as usize].domain
    }

    /// The subregion of partition `p` with color `c`.
    ///
    /// # Panics
    /// If the color is not present.
    pub fn subregion(&self, p: PartitionId, c: Color) -> RegionId {
        self.partition(p)
            .child(c)
            .unwrap_or_else(|| panic!("partition {p:?} has no color {c:?}"))
    }

    /// 1-D convenience wrapper for [`RegionForest::subregion`].
    pub fn subregion_i(&self, p: PartitionId, i: i64) -> RegionId {
        self.subregion(p, DynPoint::from(i))
    }

    /// The field space of the tree containing `r`.
    pub fn fields(&self, r: RegionId) -> &FieldSpace {
        let root = self.regions[r.0 as usize].root;
        &self.field_spaces[self.root_fs[&root]]
    }

    /// Number of regions in the forest.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of partitions in the forest.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The chain of `(partition, color)` links from `r` up to its root
    /// (nearest first).
    fn ancestry(&self, mut r: RegionId) -> Vec<(PartitionId, Color, RegionId)> {
        let mut out = Vec::new();
        while let Some((p, c)) = self.regions[r.0 as usize].parent {
            out.push((p, c, r));
            r = self.partitions[p.0 as usize].parent;
        }
        out
    }

    /// The static disjointness test of §2.3: returns `true` only when the
    /// region tree *proves* `a` and `b` cannot share elements.
    ///
    /// Walk both regions to their least common ancestor. If the paths
    /// reach the LCA through the same partition but different colors, and
    /// that partition is disjoint, the regions are disjoint. Any other
    /// configuration (different partitions of the same region, aliased
    /// partition, ancestor/descendant relationship) must conservatively
    /// answer `false`.
    pub fn provably_disjoint(&self, a: RegionId, b: RegionId) -> bool {
        if a == b {
            return false;
        }
        if self.regions[a.0 as usize].root != self.regions[b.0 as usize].root {
            // Different trees never share elements.
            return true;
        }
        // Paths from root down to each region: reverse ancestry.
        let mut pa = self.ancestry(a);
        let mut pb = self.ancestry(b);
        pa.reverse();
        pb.reverse();
        // Find the first divergence.
        let mut i = 0;
        while i < pa.len() && i < pb.len() && pa[i].2 == pb[i].2 {
            i += 1;
        }
        if i >= pa.len() || i >= pb.len() {
            // One region is an ancestor of the other (or equal): overlap.
            return false;
        }
        let (p1, c1, _) = pa[i];
        let (p2, c2, _) = pb[i];
        if p1 == p2 && c1 != c2 {
            return self.partitions[p1.0 as usize].disjointness == Disjointness::Disjoint;
        }
        // Divergence through different partitions of the same region:
        // nothing is proven statically.
        false
    }

    /// Exact dynamic disjointness: compares the actual domains. Used by
    /// runtime checks and as the oracle for the static test's soundness
    /// property (static `true` must imply dynamic `true`).
    pub fn dynamically_disjoint(&self, a: RegionId, b: RegionId) -> bool {
        !self.domain(a).overlaps(self.domain(b))
    }

    /// True when `anc` is `desc` or an ancestor region of `desc`.
    pub fn is_ancestor_or_self(&self, anc: RegionId, desc: RegionId) -> bool {
        let mut cur = desc;
        loop {
            if cur == anc {
                return true;
            }
            match self.regions[cur.0 as usize].parent {
                Some((p, _)) => cur = self.partitions[p.0 as usize].parent,
                None => return false,
            }
        }
    }

    /// The root region of `r`'s tree.
    pub fn root_of(&self, r: RegionId) -> RegionId {
        self.regions[r.0 as usize].root
    }
}

impl fmt::Debug for RegionForest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RegionForest({} regions, {} partitions)",
            self.regions.len(),
            self.partitions.len()
        )?;
        for (i, r) in self.regions.iter().enumerate() {
            if r.parent.is_none() {
                self.fmt_region(f, RegionId(i as u32), 0)?;
            }
        }
        Ok(())
    }
}

impl RegionForest {
    fn fmt_region(&self, f: &mut fmt::Formatter<'_>, r: RegionId, indent: usize) -> fmt::Result {
        let node = self.region(r);
        writeln!(
            f,
            "{:indent$}{:?} vol={} {:?}",
            "",
            r,
            node.domain.volume(),
            node.domain.bounds(),
            indent = indent
        )?;
        for &p in &node.partitions {
            let pn = self.partition(p);
            writeln!(
                f,
                "{:indent$}{:?} [{:?}] ({} children)",
                "",
                p,
                pn.disjointness,
                pn.len(),
                indent = indent + 2
            )?;
            for (_, child) in pn.iter() {
                self.fmt_region(f, child, indent + 4)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_geometry::DynRect;

    fn two_block_forest() -> (RegionForest, RegionId, PartitionId) {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(10), FieldSpace::new());
        let p = f.create_partition(
            r,
            Disjointness::Disjoint,
            vec![
                (DynPoint::from(0), Domain::from_rect(DynRect::span(0, 4))),
                (DynPoint::from(1), Domain::from_rect(DynRect::span(5, 9))),
            ],
        );
        (f, r, p)
    }

    #[test]
    fn block_children_disjoint() {
        let (f, r, p) = two_block_forest();
        let a = f.subregion_i(p, 0);
        let b = f.subregion_i(p, 1);
        assert!(f.provably_disjoint(a, b));
        assert!(f.dynamically_disjoint(a, b));
        assert!(!f.provably_disjoint(a, a));
        assert!(!f.provably_disjoint(a, r), "child overlaps its parent");
        assert!(f.is_ancestor_or_self(r, a));
        assert!(!f.is_ancestor_or_self(a, r));
    }

    #[test]
    fn aliased_partition_not_proven() {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(10), FieldSpace::new());
        let q = f.create_partition(
            r,
            Disjointness::Aliased,
            vec![
                (DynPoint::from(0), Domain::from_rect(DynRect::span(0, 6))),
                (DynPoint::from(1), Domain::from_rect(DynRect::span(4, 9))),
            ],
        );
        let a = f.subregion_i(q, 0);
        let b = f.subregion_i(q, 1);
        assert!(!f.provably_disjoint(a, b));
        assert!(!f.dynamically_disjoint(a, b));
    }

    #[test]
    fn cross_partition_conservative() {
        // Two different partitions of the same region: even disjoint ones
        // cannot be compared statically (their subregions may overlap).
        let (mut f, r, p) = two_block_forest();
        let q = f.create_partition(
            r,
            Disjointness::Disjoint,
            vec![
                (DynPoint::from(0), Domain::from_rect(DynRect::span(0, 2))),
                (DynPoint::from(1), Domain::from_rect(DynRect::span(3, 9))),
            ],
        );
        let a = f.subregion_i(p, 0); // [0,4]
        let b = f.subregion_i(q, 1); // [3,9]
        assert!(!f.provably_disjoint(a, b));
        assert!(!f.dynamically_disjoint(a, b));
        // Static soundness even when dynamically disjoint:
        let c = f.subregion_i(q, 0); // [0,2] vs p[1]=[5,9]
        let d = f.subregion_i(p, 1);
        assert!(!f.provably_disjoint(c, d), "conservative across partitions");
        assert!(f.dynamically_disjoint(c, d));
    }

    #[test]
    fn nested_hierarchy_disjointness() {
        // §4.5 structure: region → {private, ghost} (disjoint), each
        // partitioned again. Subregions of private must be provably
        // disjoint from subregions of ghost.
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(100), FieldSpace::new());
        let top = f.create_partition(
            r,
            Disjointness::Disjoint,
            vec![
                (DynPoint::from(0), Domain::from_rect(DynRect::span(0, 79))),
                (DynPoint::from(1), Domain::from_rect(DynRect::span(80, 99))),
            ],
        );
        let private = f.subregion_i(top, 0);
        let ghost = f.subregion_i(top, 1);
        let pp = f.create_partition(
            private,
            Disjointness::Disjoint,
            vec![
                (DynPoint::from(0), Domain::from_rect(DynRect::span(0, 39))),
                (DynPoint::from(1), Domain::from_rect(DynRect::span(40, 79))),
            ],
        );
        let gp = f.create_partition(
            ghost,
            Disjointness::Aliased,
            vec![
                (DynPoint::from(0), Domain::from_rect(DynRect::span(80, 95))),
                (DynPoint::from(1), Domain::from_rect(DynRect::span(85, 99))),
            ],
        );
        let p0 = f.subregion_i(pp, 0);
        let g0 = f.subregion_i(gp, 0);
        let g1 = f.subregion_i(gp, 1);
        assert!(f.provably_disjoint(p0, g0), "divergence at disjoint top");
        assert!(f.provably_disjoint(p0, g1));
        assert!(!f.provably_disjoint(g0, g1), "aliased ghost partition");
    }

    #[test]
    fn different_trees_disjoint() {
        let mut f = RegionForest::new();
        let a = f.create_region(Domain::range(10), FieldSpace::new());
        let b = f.create_region(Domain::range(10), FieldSpace::new());
        assert!(f.provably_disjoint(a, b));
    }

    #[test]
    fn partition_clips_to_parent() {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(10), FieldSpace::new());
        let p = f.create_partition(
            r,
            Disjointness::Aliased,
            vec![(DynPoint::from(0), Domain::from_rect(DynRect::span(5, 20)))],
        );
        let s = f.subregion_i(p, 0);
        assert_eq!(f.domain(s).volume(), 5); // [5,9]
    }

    #[test]
    fn version_tracks_structural_mutations() {
        let mut f = RegionForest::new();
        assert_eq!(f.version(), 0);
        let r = f.create_region(Domain::range(10), FieldSpace::new());
        let v1 = f.version();
        assert!(v1 > 0);
        f.create_partition(
            r,
            Disjointness::Disjoint,
            vec![(DynPoint::from(0), Domain::range(5))],
        );
        assert!(f.version() > v1, "partition creation must bump the version");
        // Clones carry the version; queries do not perturb it.
        let snap = f.clone();
        let _ = f.provably_disjoint(r, r);
        assert_eq!(snap.version(), f.version());
    }

    #[test]
    #[should_panic(expected = "duplicate color")]
    fn duplicate_color_panics() {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(4), FieldSpace::new());
        f.create_partition(
            r,
            Disjointness::Disjoint,
            vec![
                (DynPoint::from(0), Domain::range(2)),
                (DynPoint::from(0), Domain::range(2)),
            ],
        );
    }
}
