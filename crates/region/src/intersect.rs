//! Dynamic region intersections: the runtime half of the copy
//! intersection optimization (§3.3) and the data behind Table 1.
//!
//! The compiler emits copies between a *source* partition and a
//! *destination* partition; only elements in `dst[j] ∩ src[i]` actually
//! move. The dynamic analysis runs in two phases:
//!
//! 1. **Shallow intersections** determine *which* pairs `(i, j)` overlap
//!    — but not the extent — using an interval tree for 1-D
//!    (unstructured) domains or a BVH for multi-dimensional (structured)
//!    domains. This avoids the O(N²) all-pairs comparison; for the O(1)
//!    neighbors-per-region patterns of scalable scientific codes it is
//!    O(N log N).
//! 2. **Complete intersections** compute the exact overlapping element
//!    sets for the known-intersecting pairs only. After sharding, each
//!    shard performs this for its own pairs (O(M²) where M is the number
//!    of non-empty intersections owned by the shard).

use crate::bvh::{Bvh, TaggedRect};
use crate::forest::{Color, PartitionId, RegionForest};
use crate::interval::{Interval, IntervalTree};
use regent_geometry::Domain;
use std::collections::HashSet;

/// A pair of overlapping subregions found by the shallow pass:
/// `src` is the color of the producing subregion, `dst` of the consuming
/// one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OverlapPair {
    /// Color of the source subregion.
    pub src: Color,
    /// Color of the destination subregion.
    pub dst: Color,
}

/// A complete intersection: the exact shared element set of a pair.
#[derive(Clone, Debug)]
pub struct CompleteIntersection {
    /// The pair of subregion colors.
    pub pair: OverlapPair,
    /// The exact set of shared elements (non-empty).
    pub elements: Domain,
}

/// Shallow intersection of two partitions: every `(src, dst)` color pair
/// whose subregions share at least one element.
///
/// Because domains are stored as exact disjoint rectangle unions, a
/// rectangle-level hit is an element-level hit — there are no false
/// positives to filter.
pub fn shallow_intersections(
    forest: &RegionForest,
    src: PartitionId,
    dst: PartitionId,
) -> Vec<OverlapPair> {
    let src_children: Vec<(Color, Domain)> = forest
        .partition(src)
        .iter()
        .map(|(c, r)| (c, forest.domain(r).clone()))
        .collect();
    let dst_children: Vec<(Color, Domain)> = forest
        .partition(dst)
        .iter()
        .map(|(c, r)| (c, forest.domain(r).clone()))
        .collect();
    shallow_intersections_of(&src_children, &dst_children)
}

/// Shallow intersection over explicit `(color, domain)` lists (the form
/// used inside shard tasks, which own only a slice of the colors).
pub fn shallow_intersections_of(
    src: &[(Color, Domain)],
    dst: &[(Color, Domain)],
) -> Vec<OverlapPair> {
    let dim = src
        .iter()
        .chain(dst)
        .map(|(_, d)| d.dim())
        .next()
        .unwrap_or(1);
    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    if dim == 1 {
        // Interval tree over every run of every src child.
        let mut runs = Vec::new();
        for (i, (_, dom)) in src.iter().enumerate() {
            for r in dom.rects() {
                runs.push(Interval::new(r.lo().coord(0), r.hi().coord(0), i as u32));
            }
        }
        let tree = IntervalTree::build(runs);
        for (j, (_, dom)) in dst.iter().enumerate() {
            for r in dom.rects() {
                tree.query(r.lo().coord(0), r.hi().coord(0), |iv| {
                    pairs.insert((iv.id as usize, j));
                });
            }
        }
    } else {
        // BVH over every rectangle of every src child.
        let mut rects = Vec::new();
        for (i, (_, dom)) in src.iter().enumerate() {
            for r in dom.rects() {
                rects.push(TaggedRect {
                    rect: *r,
                    id: i as u32,
                });
            }
        }
        let bvh = Bvh::build(rects);
        for (j, (_, dom)) in dst.iter().enumerate() {
            for r in dom.rects() {
                bvh.query(r, |t| {
                    pairs.insert((t.id as usize, j));
                });
            }
        }
    }
    let mut out: Vec<OverlapPair> = pairs
        .into_iter()
        .map(|(i, j)| OverlapPair {
            src: src[i].0,
            dst: dst[j].0,
        })
        .collect();
    out.sort_unstable();
    out
}

/// Naive O(N²) shallow intersection — the unaccelerated baseline used by
/// tests and the ablation benchmark.
pub fn shallow_intersections_naive(
    src: &[(Color, Domain)],
    dst: &[(Color, Domain)],
) -> Vec<OverlapPair> {
    let mut out = Vec::new();
    for (sc, sd) in src {
        for (dc, dd) in dst {
            if sd.overlaps(dd) {
                out.push(OverlapPair { src: *sc, dst: *dc });
            }
        }
    }
    out.sort_unstable();
    out
}

/// Complete intersections for a set of known-overlapping pairs.
pub fn complete_intersections(
    forest: &RegionForest,
    src: PartitionId,
    dst: PartitionId,
    pairs: &[OverlapPair],
) -> Vec<CompleteIntersection> {
    pairs
        .iter()
        .map(|&pair| {
            let s = forest.domain(forest.subregion(src, pair.src));
            let d = forest.domain(forest.subregion(dst, pair.dst));
            let elements = s.intersect(d);
            debug_assert!(!elements.is_empty(), "shallow pass reported a false pair");
            CompleteIntersection { pair, elements }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpace;
    use crate::ops;
    use regent_geometry::DynPoint;

    /// Stencil-like setup: block partition + shifted image partition.
    fn halo_setup(n: u64, parts: usize) -> (RegionForest, PartitionId, PartitionId) {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(n), FieldSpace::new());
        let pb = ops::block(&mut f, r, parts);
        let qb = ops::image(&mut f, r, pb, |p, sink| {
            sink.push(DynPoint::from(p.coord(0) - 1));
            sink.push(DynPoint::from(p.coord(0) + 1));
        });
        (f, pb, qb)
    }

    #[test]
    fn shallow_matches_naive_1d() {
        let (f, pb, qb) = halo_setup(100, 8);
        let src: Vec<_> = f
            .partition(pb)
            .iter()
            .map(|(c, r)| (c, f.domain(r).clone()))
            .collect();
        let dst: Vec<_> = f
            .partition(qb)
            .iter()
            .map(|(c, r)| (c, f.domain(r).clone()))
            .collect();
        let fast = shallow_intersections_of(&src, &dst);
        let naive = shallow_intersections_naive(&src, &dst);
        assert_eq!(fast, naive);
        // Each ghost region overlaps its own block and both neighbors:
        // the pair count is O(parts), not O(parts²).
        assert!(fast.len() <= 3 * 8);
        assert!(fast.len() >= 8);
    }

    #[test]
    fn complete_gives_exact_elements() {
        let (f, pb, qb) = halo_setup(40, 4);
        let pairs = shallow_intersections(&f, pb, qb);
        let complete = complete_intersections(&f, pb, qb, &pairs);
        for ci in &complete {
            let s = f.domain(f.subregion(pb, ci.pair.src));
            let d = f.domain(f.subregion(qb, ci.pair.dst));
            assert!(ci.elements.is_subset_of(s));
            assert!(ci.elements.is_subset_of(d));
            assert!(!ci.elements.is_empty());
        }
        // Cross-block halo pairs exchange exactly one element each
        // (radius-1 halo): src block i, dst ghost j with i != j.
        for ci in complete.iter().filter(|c| c.pair.src != c.pair.dst) {
            assert_eq!(ci.elements.volume(), 1);
        }
    }

    #[test]
    fn shallow_2d_bvh() {
        use regent_geometry::DynRect;
        let mut f = RegionForest::new();
        let rect = DynRect::new(DynPoint::new(&[0, 0]), DynPoint::new(&[39, 39]));
        let r = f.create_region(Domain::from_rect(rect), FieldSpace::new());
        let tiles = ops::block2d(&mut f, r, 4, 4);
        // Ghost tiles: each tile grown by 1.
        let grown: Vec<(Color, Domain)> = f
            .partition(tiles)
            .iter()
            .map(|(c, reg)| {
                let g = f.domain(reg).bounds().grow(1).intersection(&rect);
                (c, Domain::from_rect(g))
            })
            .collect();
        let src: Vec<_> = f
            .partition(tiles)
            .iter()
            .map(|(c, reg)| (c, f.domain(reg).clone()))
            .collect();
        let fast = shallow_intersections_of(&src, &grown);
        let naive = shallow_intersections_naive(&src, &grown);
        assert_eq!(fast, naive);
        // Interior tile's halo touches 9 tiles (self + 8 neighbors).
        let interior = DynPoint::new(&[1, 1]);
        let touching = fast.iter().filter(|p| p.dst == interior).count();
        assert_eq!(touching, 9);
    }

    #[test]
    fn disjoint_partitions_no_pairs() {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(100), FieldSpace::new());
        let p = ops::block(&mut f, r, 4);
        let evens: Vec<_> = f
            .partition(p)
            .iter()
            .step_by(2)
            .map(|(c, reg)| (c, f.domain(reg).clone()))
            .collect();
        let odds: Vec<_> = f
            .partition(p)
            .iter()
            .skip(1)
            .step_by(2)
            .map(|(c, reg)| (c, f.domain(reg).clone()))
            .collect();
        assert!(shallow_intersections_of(&evens, &odds).is_empty());
    }
}
