//! Centered interval tree over 1-D integer intervals.
//!
//! §3.3: "For unstructured regions, an interval tree acceleration data
//! structure makes this operation O(N log N)" — the shallow-intersection
//! pass inserts every run of every subregion into this tree and queries
//! it with the runs of the other partition, replacing the naive
//! all-pairs O(N²) comparison.

/// An inclusive 1-D interval tagged with a caller-supplied id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Caller tag (e.g. the index of the subregion owning this run).
    pub id: u32,
}

impl Interval {
    /// Creates an interval; empty intervals (`lo > hi`) are rejected.
    pub fn new(lo: i64, hi: i64, id: u32) -> Self {
        assert!(lo <= hi, "empty interval [{lo},{hi}]");
        Interval { lo, hi, id }
    }

    #[inline]
    fn overlaps(&self, lo: i64, hi: i64) -> bool {
        self.lo <= hi && lo <= self.hi
    }
}

/// A node of the centered interval tree.
struct Node {
    center: i64,
    /// Intervals crossing `center`, sorted ascending by `lo`.
    by_lo: Vec<Interval>,
    /// The same intervals sorted descending by `hi`.
    by_hi: Vec<Interval>,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// Static centered interval tree: build once, query many times.
///
/// Build is O(n log n); a query reporting `k` hits is O(log n + k).
pub struct IntervalTree {
    root: Option<Box<Node>>,
    len: usize,
}

impl IntervalTree {
    /// Builds the tree from a set of intervals.
    pub fn build(intervals: Vec<Interval>) -> Self {
        let len = intervals.len();
        IntervalTree {
            root: Self::build_node(intervals),
            len,
        }
    }

    fn build_node(mut intervals: Vec<Interval>) -> Option<Box<Node>> {
        if intervals.is_empty() {
            return None;
        }
        // Center on the median of interval midpoints for balance.
        let mut mids: Vec<i64> = intervals
            .iter()
            .map(|iv| iv.lo + (iv.hi - iv.lo) / 2)
            .collect();
        let mid_idx = mids.len() / 2;
        let (_, center, _) = mids.select_nth_unstable(mid_idx);
        let center = *center;
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut here = Vec::new();
        for iv in intervals.drain(..) {
            if iv.hi < center {
                left.push(iv);
            } else if iv.lo > center {
                right.push(iv);
            } else {
                here.push(iv);
            }
        }
        let mut by_lo = here.clone();
        by_lo.sort_unstable_by_key(|iv| iv.lo);
        let mut by_hi = here;
        by_hi.sort_unstable_by_key(|iv| std::cmp::Reverse(iv.hi));
        Some(Box::new(Node {
            center,
            by_lo,
            by_hi,
            left: Self::build_node(left),
            right: Self::build_node(right),
        }))
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Invokes `hit` for every stored interval overlapping `[lo, hi]`.
    pub fn query(&self, lo: i64, hi: i64, mut hit: impl FnMut(&Interval)) {
        assert!(lo <= hi, "empty query interval");
        let mut stack: Vec<&Node> = Vec::new();
        if let Some(ref root) = self.root {
            stack.push(root);
        }
        while let Some(node) = stack.pop() {
            if hi < node.center {
                // Query is entirely left of center: crossing intervals
                // overlap iff their lo <= hi.
                for iv in &node.by_lo {
                    if iv.lo > hi {
                        break;
                    }
                    hit(iv);
                }
                if let Some(ref l) = node.left {
                    stack.push(l);
                }
            } else if lo > node.center {
                // Entirely right of center: overlap iff hi >= lo.
                for iv in &node.by_hi {
                    if iv.hi < lo {
                        break;
                    }
                    hit(iv);
                }
                if let Some(ref r) = node.right {
                    stack.push(r);
                }
            } else {
                // Query spans the center: every crossing interval hits.
                for iv in &node.by_lo {
                    debug_assert!(iv.overlaps(lo, hi));
                    hit(iv);
                }
                if let Some(ref l) = node.left {
                    stack.push(l);
                }
                if let Some(ref r) = node.right {
                    stack.push(r);
                }
            }
        }
    }

    /// Collects the ids of all intervals overlapping `[lo, hi]`
    /// (may contain duplicates when one id was inserted with several
    /// runs).
    pub fn query_ids(&self, lo: i64, hi: i64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query(lo, hi, |iv| out.push(iv.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(intervals: &[Interval], lo: i64, hi: i64) -> Vec<u32> {
        let mut v: Vec<u32> = intervals
            .iter()
            .filter(|iv| iv.overlaps(lo, hi))
            .map(|iv| iv.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn basic_overlap() {
        let ivs = vec![
            Interval::new(0, 4, 0),
            Interval::new(5, 9, 1),
            Interval::new(3, 6, 2),
            Interval::new(20, 30, 3),
        ];
        let t = IntervalTree::build(ivs.clone());
        assert_eq!(t.len(), 4);
        let mut hits = t.query_ids(4, 5);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 2]);
        assert_eq!(t.query_ids(10, 19), Vec::<u32>::new());
        assert_eq!(t.query_ids(25, 25), vec![3]);
    }

    #[test]
    fn empty_tree() {
        let t = IntervalTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.query_ids(0, 100), Vec::<u32>::new());
    }

    #[test]
    fn point_intervals() {
        let ivs: Vec<Interval> = (0..100)
            .map(|i| Interval::new(i * 2, i * 2, i as u32))
            .collect();
        let t = IntervalTree::build(ivs);
        assert_eq!(t.query_ids(50, 50), vec![25]);
        assert_eq!(t.query_ids(51, 51), Vec::<u32>::new());
        let mut r = t.query_ids(10, 20);
        r.sort_unstable();
        assert_eq!(r, vec![5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn randomized_vs_naive() {
        // Deterministic pseudo-random intervals; compare against the
        // brute-force oracle.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let ivs: Vec<Interval> = (0..500)
            .map(|i| {
                let lo = (next() % 2000) as i64 - 1000;
                let len = (next() % 50) as i64;
                Interval::new(lo, lo + len, i)
            })
            .collect();
        let t = IntervalTree::build(ivs.clone());
        for _ in 0..200 {
            let lo = (next() % 2200) as i64 - 1100;
            let len = (next() % 80) as i64;
            let mut got = t.query_ids(lo, lo + len);
            got.sort_unstable();
            assert_eq!(got, naive(&ivs, lo, lo + len));
        }
    }
}
