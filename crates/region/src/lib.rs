//! # regent-region
//!
//! Logical regions with first-class partitioning — the programming-model
//! substrate control replication leverages (§2 of *Control Replication*,
//! SC'17).
//!
//! * [`forest`] — the region forest: regions, partitions, region trees,
//!   and the static disjointness analysis of §2.3.
//! * [`ops`] — the partitioning sublanguage: `block`, `image`,
//!   `preimage`, `by_color`, restriction and color-wise set operations,
//!   with per-operator static disjointness classification.
//! * [`field`] — field spaces (per-element payload schemas).
//! * [`hierarchy`] — the private/ghost hierarchical region trees of
//!   §4.5.
//! * [`intersect`] — dynamic shallow/complete region intersections
//!   (§3.3), accelerated by an [`interval`] tree (unstructured) and a
//!   [`bvh`] (structured).
//! * [`checksum`] — FNV-1a hashing used by the integrity layer to seal
//!   instances and frame exchange payloads.

#![warn(missing_docs)]

pub mod bvh;
pub mod checksum;
pub mod field;
pub mod forest;
pub mod hierarchy;
pub mod instance;
pub mod intersect;
pub mod interval;
pub mod ops;

pub use checksum::{fnv1a, fnv1a_mix, mul_fold, striped_fnv, MulFold, StripedFnv};
pub use field::{FieldDef, FieldId, FieldSpace, FieldType};
pub use forest::{Color, Disjointness, PartitionId, RegionForest, RegionId};
pub use hierarchy::{private_ghost_split, PrivateGhost};
pub use instance::{copy_fields, reduce_fields, ColumnData, DomainIndexer, Instance, ReductionOp};
pub use intersect::{CompleteIntersection, OverlapPair};

// Re-export the geometric vocabulary for downstream convenience.
pub use regent_geometry::{Domain, DynPoint, DynRect};
