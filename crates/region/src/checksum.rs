//! FNV-1a checksums over 64-bit words.
//!
//! The integrity layer frames every physical instance and every SPMD
//! exchange payload with a checksum so that silent bit flips are caught
//! at the dataflow boundaries where the compiler inserts copies and
//! synchronization (§3.4, §4). FNV-1a over the raw bit patterns is
//! cheap (one xor-multiply per word), dependency-free, and — because it
//! hashes `to_bits()` rather than values — distinguishes every distinct
//! f64 representation, including NaN payloads and signed zeros, which
//! is exactly the bit-identity the differential harness demands.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into a running FNV-1a hash.
#[inline]
pub fn fnv1a_mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// FNV-1a hash of a word stream.
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    words.into_iter().fold(FNV_OFFSET, fnv1a_mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let a = fnv1a([1u64, 2, 3]);
        assert_eq!(a, fnv1a([1u64, 2, 3]));
        assert_ne!(a, fnv1a([1u64, 2, 4]));
        assert_ne!(a, fnv1a([2u64, 1, 3]), "order matters");
        assert_ne!(fnv1a([]), fnv1a([0u64]), "length matters");
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let words = [0x1234_5678_9abc_def0u64, 42, u64::MAX];
        let base = fnv1a(words);
        for i in 0..words.len() {
            for bit in [0u32, 31, 63] {
                let mut w = words;
                w[i] ^= 1u64 << bit;
                assert_ne!(base, fnv1a(w), "flip word {i} bit {bit} undetected");
            }
        }
    }
}
