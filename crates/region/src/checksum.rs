//! Checksums over 64-bit words: FNV-1a — scalar and the 4-lane
//! striped [`StripedFnv`] the integrity layer's seals and frames use
//! — plus the multiply-fold [`MulFold`] benchmarked alternative.
//!
//! The integrity layer frames every physical instance and every SPMD
//! exchange payload with a checksum so that silent bit flips are caught
//! at the dataflow boundaries where the compiler inserts copies and
//! synchronization (§3.4, §4). FNV-1a over the raw bit patterns is
//! cheap (one xor-multiply per word), dependency-free, and — because it
//! hashes `to_bits()` rather than values — distinguishes every distinct
//! f64 representation, including NaN payloads and signed zeros, which
//! is exactly the bit-identity the differential harness demands.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into a running FNV-1a hash.
#[inline]
pub fn fnv1a_mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// FNV-1a hash of a word stream.
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    words.into_iter().fold(FNV_OFFSET, fnv1a_mix)
}

/// Number of independent FNV lanes in [`StripedFnv`].
const LANES: usize = 4;

/// A 4-lane interleaved FNV-1a hasher for bulk checksums.
///
/// Plain FNV-1a is a strict xor-multiply dependency chain, ~4 cycles
/// per word no matter how wide the core is — and instance seals and
/// exchange frames hash megabytes of it per epoch (the measured
/// +10.8% rate-0 integrity overhead was almost entirely this chain).
/// Striping round-robins words over four independent chains, so the
/// multiplies pipeline (and, because the lanes share no data, the
/// bulk loops are auto-vectorizable), then folds the lane states with
/// the total word count at the end.
///
/// Detection strength is preserved for the faults the integrity layer
/// models: a single flipped bit lands in exactly one lane, changing
/// that lane's state and therefore the finished digest; word count and
/// lane position keep length and order sensitivity. The digest is
/// *different* from plain [`fnv1a`] over the same words — both sides
/// of every frame/seal use the same function, and nothing persists
/// checksums across versions, so the change is invisible outside this
/// crate.
///
/// The digest is a pure function of the word sequence: mixing word by
/// word with [`StripedFnv::mix`] or in bulk with the slice helpers
/// produces identical state.
#[derive(Clone, Copy, Debug)]
pub struct StripedFnv {
    lanes: [u64; LANES],
    count: u64,
}

impl StripedFnv {
    /// A fresh hasher with distinct per-lane seeds.
    pub fn new() -> Self {
        let mut lanes = [0u64; LANES];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = fnv1a_mix(FNV_OFFSET, i as u64);
        }
        StripedFnv { lanes, count: 0 }
    }

    /// Folds one word into the next lane.
    #[inline]
    pub fn mix(&mut self, word: u64) {
        let lane = (self.count % LANES as u64) as usize;
        self.lanes[lane] = fnv1a_mix(self.lanes[lane], word);
        self.count += 1;
    }

    /// Bulk-folds a `u64` slice, four independent lanes per iteration.
    #[inline]
    pub fn mix_words(&mut self, words: &[u64]) {
        let mut i = 0;
        // Align to a lane boundary so bulk and word-by-word mixing
        // produce identical state.
        while !self.count.is_multiple_of(LANES as u64) && i < words.len() {
            self.mix(words[i]);
            i += 1;
        }
        let rest = &words[i..];
        let mut chunks = rest.chunks_exact(LANES);
        let [mut l0, mut l1, mut l2, mut l3] = self.lanes;
        for c in &mut chunks {
            l0 = fnv1a_mix(l0, c[0]);
            l1 = fnv1a_mix(l1, c[1]);
            l2 = fnv1a_mix(l2, c[2]);
            l3 = fnv1a_mix(l3, c[3]);
        }
        self.lanes = [l0, l1, l2, l3];
        self.count += (rest.len() - chunks.remainder().len()) as u64;
        for &w in chunks.remainder() {
            self.mix(w);
        }
    }

    /// Bulk-folds an `f64` slice by bit pattern.
    #[inline]
    pub fn mix_f64s(&mut self, vals: &[f64]) {
        let mut i = 0;
        while !self.count.is_multiple_of(LANES as u64) && i < vals.len() {
            self.mix(vals[i].to_bits());
            i += 1;
        }
        let rest = &vals[i..];
        let mut chunks = rest.chunks_exact(LANES);
        let [mut l0, mut l1, mut l2, mut l3] = self.lanes;
        for c in &mut chunks {
            l0 = fnv1a_mix(l0, c[0].to_bits());
            l1 = fnv1a_mix(l1, c[1].to_bits());
            l2 = fnv1a_mix(l2, c[2].to_bits());
            l3 = fnv1a_mix(l3, c[3].to_bits());
        }
        self.lanes = [l0, l1, l2, l3];
        self.count += (rest.len() - chunks.remainder().len()) as u64;
        for &v in chunks.remainder() {
            self.mix(v.to_bits());
        }
    }

    /// Bulk-folds an `i64` slice by bit pattern.
    #[inline]
    pub fn mix_i64s(&mut self, vals: &[i64]) {
        let mut i = 0;
        while !self.count.is_multiple_of(LANES as u64) && i < vals.len() {
            self.mix(vals[i] as u64);
            i += 1;
        }
        let rest = &vals[i..];
        let mut chunks = rest.chunks_exact(LANES);
        let [mut l0, mut l1, mut l2, mut l3] = self.lanes;
        for c in &mut chunks {
            l0 = fnv1a_mix(l0, c[0] as u64);
            l1 = fnv1a_mix(l1, c[1] as u64);
            l2 = fnv1a_mix(l2, c[2] as u64);
            l3 = fnv1a_mix(l3, c[3] as u64);
        }
        self.lanes = [l0, l1, l2, l3];
        self.count += (rest.len() - chunks.remainder().len()) as u64;
        for &v in chunks.remainder() {
            self.mix(v as u64);
        }
    }

    /// Folds lanes and word count into the final digest.
    pub fn finish(&self) -> u64 {
        let mut h = fnv1a_mix(FNV_OFFSET, self.count);
        for l in self.lanes {
            h = fnv1a_mix(h, l);
        }
        h
    }
}

impl Default for StripedFnv {
    fn default() -> Self {
        StripedFnv::new()
    }
}

/// First multiply key: ⌊2⁶⁴/φ⌋, odd.
const MF_K1: u64 = 0x9e37_79b9_7f4a_7c15;
/// Second multiply key (odd, unrelated to `MF_K1`).
const MF_K2: u64 = 0xd1b5_4a32_d192_ed03;
/// Number of independent accumulator lanes in [`MulFold`].
const MF_LANES: usize = 2;

/// Folds the 128-bit product of two keyed words into 64 bits — one
/// widening multiply covers *two* data words.
#[inline]
fn mum(x: u64, y: u64) -> u64 {
    let p = (x as u128).wrapping_mul(y as u128);
    (p as u64) ^ ((p >> 64) as u64)
}

/// One chain link: the accumulator rotates (cheap, order- and
/// position-sensitive) while the multiply stays *off* the dependency
/// chain, so the multiplies of successive links pipeline freely. The
/// direct `^ a ^ b` terms keep both words visible even in the
/// astronomically unlikely event one keyed factor is zero (a zero
/// factor would otherwise mask its partner's bits).
#[inline]
fn mf_link(l: u64, a: u64, b: u64) -> u64 {
    l.rotate_left(23) ^ mum(a ^ MF_K1, b ^ MF_K2) ^ a ^ b
}

/// A multiply-fold hasher for bulk checksums — the scalar-codegen
/// alternative to [`StripedFnv`], benchmarked against it in
/// `fig_dataplane` but **not** what the integrity layer ships with.
///
/// The idea: [`StripedFnv`] pipelines FNV's xor-multiply chain across
/// four lanes but still spends one 64-bit multiply *per word*.
/// `MulFold` spends one *widening* multiply per **pair** of words and
/// keeps the multiply off the serial chain entirely (the accumulator
/// chain is a rotate-xor), so wherever both compile to scalar code it
/// wins — measured ~2.5× over scalar FNV and ~1.7× over the striped
/// lanes in the benchmark's hot loop. The catch, and the reason the
/// seal/frame paths stayed on [`StripedFnv`]: the striped lanes are
/// four *independent* xor-multiply recurrences, which LLVM
/// auto-vectorizes in the instance-seal path, while `MulFold`'s
/// 64×64→128 widening product has no SIMD equivalent and pins it to
/// scalar code everywhere. In situ, the vectorized stripes hash a
/// column ~1.6× faster than this hasher does. Keep `MulFold` in mind
/// for targets without wide 64-bit SIMD multiplies; measure, don't
/// assume.
///
/// Detection strength for the faults the integrity layer models: a
/// single flipped bit changes its keyed factor, which changes the
/// full 128-bit product and therefore the folded link whp; the direct
/// xor terms guarantee a flip is never masked by a zero factor; lane
/// assignment and the rotating accumulator keep order sensitivity,
/// and the finish fold includes the word count for length
/// sensitivity. Like [`StripedFnv`], both sides of every frame/seal
/// use the same function and nothing persists digests across
/// versions.
///
/// The digest is a pure function of the word sequence: mixing word by
/// word with [`MulFold::mix`] or in bulk with the slice helpers
/// produces identical state.
#[derive(Clone, Copy, Debug)]
pub struct MulFold {
    lanes: [u64; MF_LANES],
    /// The first word of a half-complete pair (valid when `count` is
    /// odd).
    pend: u64,
    count: u64,
}

impl MulFold {
    /// A fresh hasher with distinct per-lane seeds.
    pub fn new() -> Self {
        let mut lanes = [0u64; MF_LANES];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = fnv1a_mix(FNV_OFFSET, i as u64);
        }
        MulFold {
            lanes,
            pend: 0,
            count: 0,
        }
    }

    /// Lane index of the pair the next complete pair belongs to.
    #[inline]
    fn lane(&self) -> usize {
        ((self.count / 2) % MF_LANES as u64) as usize
    }

    /// Folds one word: buffered until its pair partner arrives.
    #[inline]
    pub fn mix(&mut self, word: u64) {
        if self.count.is_multiple_of(2) {
            self.pend = word;
        } else {
            let lane = self.lane();
            self.lanes[lane] = mf_link(self.lanes[lane], self.pend, word);
        }
        self.count += 1;
    }

    /// Bulk-folds a `u64` slice, one link per pair, two independent
    /// lanes per iteration.
    #[inline]
    pub fn mix_words(&mut self, words: &[u64]) {
        let mut i = 0;
        // Align to a full lane cycle (2 lanes × 2 words) so bulk and
        // word-by-word mixing produce identical state.
        while !self.count.is_multiple_of(2 * MF_LANES as u64) && i < words.len() {
            self.mix(words[i]);
            i += 1;
        }
        let rest = &words[i..];
        let mut chunks = rest.chunks_exact(2 * MF_LANES);
        let [mut l0, mut l1] = self.lanes;
        for c in &mut chunks {
            l0 = mf_link(l0, c[0], c[1]);
            l1 = mf_link(l1, c[2], c[3]);
        }
        self.lanes = [l0, l1];
        self.count += (rest.len() - chunks.remainder().len()) as u64;
        for &w in chunks.remainder() {
            self.mix(w);
        }
    }

    /// Bulk-folds an `f64` slice by bit pattern.
    #[inline]
    pub fn mix_f64s(&mut self, vals: &[f64]) {
        let mut i = 0;
        while !self.count.is_multiple_of(2 * MF_LANES as u64) && i < vals.len() {
            self.mix(vals[i].to_bits());
            i += 1;
        }
        let rest = &vals[i..];
        let mut chunks = rest.chunks_exact(2 * MF_LANES);
        let [mut l0, mut l1] = self.lanes;
        for c in &mut chunks {
            l0 = mf_link(l0, c[0].to_bits(), c[1].to_bits());
            l1 = mf_link(l1, c[2].to_bits(), c[3].to_bits());
        }
        self.lanes = [l0, l1];
        self.count += (rest.len() - chunks.remainder().len()) as u64;
        for &v in chunks.remainder() {
            self.mix(v.to_bits());
        }
    }

    /// Bulk-folds an `i64` slice by bit pattern.
    #[inline]
    pub fn mix_i64s(&mut self, vals: &[i64]) {
        let mut i = 0;
        while !self.count.is_multiple_of(2 * MF_LANES as u64) && i < vals.len() {
            self.mix(vals[i] as u64);
            i += 1;
        }
        let rest = &vals[i..];
        let mut chunks = rest.chunks_exact(2 * MF_LANES);
        let [mut l0, mut l1] = self.lanes;
        for c in &mut chunks {
            l0 = mf_link(l0, c[0] as u64, c[1] as u64);
            l1 = mf_link(l1, c[2] as u64, c[3] as u64);
        }
        self.lanes = [l0, l1];
        self.count += (rest.len() - chunks.remainder().len()) as u64;
        for &v in chunks.remainder() {
            self.mix(v as u64);
        }
    }

    /// Folds lanes, a trailing unpaired word, and the word count into
    /// the final digest.
    pub fn finish(&self) -> u64 {
        let mut h = fnv1a_mix(FNV_OFFSET, self.count);
        for l in self.lanes {
            h = fnv1a_mix(h, l);
        }
        if self.count % 2 == 1 {
            h = fnv1a_mix(h, self.pend);
        }
        h
    }
}

impl Default for MulFold {
    fn default() -> Self {
        MulFold::new()
    }
}

/// [`MulFold`] digest of a word stream.
pub fn mul_fold(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = MulFold::new();
    for w in words {
        h.mix(w);
    }
    h.finish()
}

/// [`StripedFnv`] digest of a word stream.
pub fn striped_fnv(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = StripedFnv::new();
    for w in words {
        h.mix(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let a = fnv1a([1u64, 2, 3]);
        assert_eq!(a, fnv1a([1u64, 2, 3]));
        assert_ne!(a, fnv1a([1u64, 2, 4]));
        assert_ne!(a, fnv1a([2u64, 1, 3]), "order matters");
        assert_ne!(fnv1a([]), fnv1a([0u64]), "length matters");
    }

    #[test]
    fn striped_granularity_invariance() {
        // Word-by-word, bulk, and mixed-granularity mixing must all
        // produce the same digest — producers hash slices, consumers
        // may hash word streams.
        let words: Vec<u64> = (0..23u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let floats: Vec<f64> = words.iter().map(|&w| f64::from_bits(w | 1)).collect();
        let ints: Vec<i64> = words.iter().map(|&w| w as i64).collect();

        let bulk = {
            let mut h = StripedFnv::new();
            h.mix_words(&words);
            h.finish()
        };
        assert_eq!(bulk, striped_fnv(words.iter().copied()));
        let split = {
            let mut h = StripedFnv::new();
            h.mix(words[0]);
            h.mix_words(&words[1..7]);
            h.mix_words(&words[7..]);
            h.finish()
        };
        assert_eq!(bulk, split, "granularity changed the digest");

        let f_bulk = {
            let mut h = StripedFnv::new();
            h.mix_f64s(&floats);
            h.finish()
        };
        assert_eq!(f_bulk, striped_fnv(floats.iter().map(|v| v.to_bits())));
        let i_bulk = {
            let mut h = StripedFnv::new();
            h.mix_i64s(&ints);
            h.finish()
        };
        assert_eq!(i_bulk, striped_fnv(ints.iter().map(|&v| v as u64)));
    }

    #[test]
    fn striped_is_order_length_and_bit_sensitive() {
        let base: Vec<u64> = (0..9u64).collect();
        let d = striped_fnv(base.iter().copied());
        assert_eq!(d, striped_fnv(base.iter().copied()), "deterministic");
        let mut swapped = base.clone();
        swapped.swap(0, 4); // same lane (stride 4): state-level order check
        assert_ne!(d, striped_fnv(swapped.iter().copied()), "order matters");
        let mut cross = base.clone();
        cross.swap(0, 1); // different lanes
        assert_ne!(
            d,
            striped_fnv(cross.iter().copied()),
            "lane identity matters"
        );
        assert_ne!(
            d,
            striped_fnv(base.iter().copied().chain([0u64])),
            "length matters"
        );
        for i in 0..base.len() {
            for bit in [0u32, 31, 63] {
                let mut w = base.clone();
                w[i] ^= 1u64 << bit;
                assert_ne!(d, striped_fnv(w), "flip word {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn mul_fold_granularity_invariance() {
        // Word-by-word, bulk, and mixed-granularity mixing must all
        // produce the same digest — including splits that leave a
        // half-complete pair buffered.
        let words: Vec<u64> = (0..23u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let floats: Vec<f64> = words.iter().map(|&w| f64::from_bits(w | 1)).collect();
        let ints: Vec<i64> = words.iter().map(|&w| w as i64).collect();

        let bulk = {
            let mut h = MulFold::new();
            h.mix_words(&words);
            h.finish()
        };
        assert_eq!(bulk, mul_fold(words.iter().copied()));
        for split in [1, 2, 3, 4, 5, 7] {
            let h = {
                let mut h = MulFold::new();
                h.mix_words(&words[..split]);
                h.mix_words(&words[split..]);
                h.finish()
            };
            assert_eq!(bulk, h, "split at {split} changed the digest");
        }
        let mixed = {
            let mut h = MulFold::new();
            h.mix(words[0]);
            h.mix_words(&words[1..8]);
            h.mix(words[8]);
            h.mix_words(&words[9..]);
            h.finish()
        };
        assert_eq!(bulk, mixed, "granularity changed the digest");

        let f_bulk = {
            let mut h = MulFold::new();
            h.mix_f64s(&floats);
            h.finish()
        };
        assert_eq!(f_bulk, mul_fold(floats.iter().map(|v| v.to_bits())));
        let i_bulk = {
            let mut h = MulFold::new();
            h.mix_i64s(&ints);
            h.finish()
        };
        assert_eq!(i_bulk, mul_fold(ints.iter().map(|&v| v as u64)));
    }

    #[test]
    fn mul_fold_is_order_length_and_bit_sensitive() {
        let base: Vec<u64> = (0..9u64).collect();
        let d = mul_fold(base.iter().copied());
        assert_eq!(d, mul_fold(base.iter().copied()), "deterministic");
        let mut in_pair = base.clone();
        in_pair.swap(0, 1); // within one pair
        assert_ne!(d, mul_fold(in_pair.iter().copied()), "pair order matters");
        let mut same_lane = base.clone();
        same_lane.swap(0, 4); // same lane (stride 4), different link
        assert_ne!(d, mul_fold(same_lane.iter().copied()), "link order matters");
        let mut cross = base.clone();
        cross.swap(0, 2); // different lanes
        assert_ne!(d, mul_fold(cross.iter().copied()), "lane identity matters");
        assert_ne!(
            d,
            mul_fold(base.iter().copied().chain([0u64])),
            "length matters"
        );
        // Every word position (paired and the trailing unpaired one),
        // every representative bit.
        for i in 0..base.len() {
            for bit in 0..64u32 {
                let mut w = base.clone();
                w[i] ^= 1u64 << bit;
                assert_ne!(d, mul_fold(w), "flip word {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let words = [0x1234_5678_9abc_def0u64, 42, u64::MAX];
        let base = fnv1a(words);
        for i in 0..words.len() {
            for bit in [0u32, 31, 63] {
                let mut w = words;
                w[i] ^= 1u64 << bit;
                assert_ne!(base, fnv1a(w), "flip word {i} bit {bit} undetected");
            }
        }
    }
}
