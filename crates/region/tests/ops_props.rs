//! Property tests for the partitioning sublanguage: the algebraic laws
//! each operator must satisfy, checked against brute-force models on
//! random domains and random access functions.
//!
//! Gated behind the `proptest-tests` cargo feature: proptest is not
//! part of the offline dependency set, so the default `cargo test`
//! skips this file (see the workspace Cargo.toml for how to restore
//! the dev-dependency).

#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use regent_geometry::{Domain, DynPoint};
use regent_region::{ops, Disjointness, FieldSpace, RegionForest};
use std::collections::HashSet;

fn arb_sparse_domain() -> impl Strategy<Value = Domain> {
    prop::collection::hash_set(0i64..200, 1..80).prop_map(Domain::from_ids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn block_partition_laws(dom in arb_sparse_domain(), parts in 1usize..9) {
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let p = ops::block(&mut f, r, parts);
        prop_assert_eq!(f.partition(p).len(), parts);
        prop_assert_eq!(f.partition(p).disjointness, Disjointness::Disjoint);
        // Children are pairwise disjoint, sizes balanced, union == dom.
        let children: Vec<Domain> = f
            .partition(p)
            .child_regions()
            .map(|c| f.domain(c).clone())
            .collect();
        let mut union = Domain::empty(1);
        let mut sizes = Vec::new();
        for (i, a) in children.iter().enumerate() {
            for b in &children[i + 1..] {
                prop_assert!(!a.overlaps(b));
            }
            union = union.union(a);
            sizes.push(a.volume());
        }
        prop_assert!(union.set_eq(&dom));
        let mx = *sizes.iter().max().unwrap();
        let mn = *sizes.iter().min().unwrap();
        prop_assert!(mx - mn <= 1, "unbalanced: {sizes:?}");
        // Tree proves disjointness of every child pair.
        let ids: Vec<_> = f.partition(p).child_regions().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                prop_assert!(f.provably_disjoint(a, b));
            }
        }
    }

    #[test]
    fn image_partition_membership(
        dom in arb_sparse_domain(),
        parts in 1usize..6,
        mul in 1i64..13,
        off in 0i64..50,
    ) {
        let mut f = RegionForest::new();
        let target_n = 256u64;
        let tgt = f.create_region(Domain::range(target_n), FieldSpace::new());
        let src = f.create_region(dom.clone(), FieldSpace::new());
        let p = ops::block(&mut f, src, parts);
        let h = move |i: i64| (i * mul + off).rem_euclid(target_n as i64);
        let q = ops::image(&mut f, tgt, p, move |pt, sink| {
            sink.push(DynPoint::from(h(pt.coord(0))));
        });
        prop_assert_eq!(f.partition(q).disjointness, Disjointness::Aliased);
        // q[i] == { h(x) : x ∈ p[i] } exactly (model check).
        for (c, qi) in f.partition(q).iter().collect::<Vec<_>>() {
            let pi = f.subregion(p, c);
            let expect: HashSet<i64> = f
                .domain(pi)
                .iter()
                .map(|x| h(x.coord(0)))
                .collect();
            let got: HashSet<i64> = f.domain(qi).iter().map(|x| x.coord(0)).collect();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn preimage_partition_membership(
        n_src in 10u64..120,
        parts in 1usize..6,
        mul in 1i64..9,
        off in 0i64..20,
    ) {
        let mut f = RegionForest::new();
        let tgt = f.create_region(Domain::range(64), FieldSpace::new());
        let src = f.create_region(Domain::range(n_src), FieldSpace::new());
        let pt_part = ops::block(&mut f, tgt, parts);
        let g = move |i: i64| (i * mul + off).rem_euclid(64);
        let q = ops::preimage(&mut f, src, pt_part, move |pt| DynPoint::from(g(pt.coord(0))));
        // Disjoint target → disjoint preimage; model check membership.
        prop_assert_eq!(f.partition(q).disjointness, Disjointness::Disjoint);
        for (c, qi) in f.partition(q).iter().collect::<Vec<_>>() {
            let ti = f.subregion(pt_part, c);
            let tgt_dom = f.domain(ti).clone();
            let expect: HashSet<i64> = (0..n_src as i64)
                .filter(|&x| tgt_dom.contains(DynPoint::from(g(x))))
                .collect();
            let got: HashSet<i64> = f.domain(qi).iter().map(|x| x.coord(0)).collect();
            prop_assert_eq!(got, expect);
        }
        // Preimage children cover the source exactly (g is total and the
        // target partition covers the target).
        let union = ops::union_of_children(&f, q);
        prop_assert!(union.set_eq(f.domain(src)));
    }

    #[test]
    fn by_color_is_exact_partition(
        dom in arb_sparse_domain(),
        ncolors in 1usize..5,
    ) {
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let colors: Vec<_> = (0..ncolors as i64).map(DynPoint::from).collect();
        let p = ops::by_color(&mut f, r, &colors, |pt| {
            DynPoint::from(pt.coord(0).rem_euclid(ncolors as i64))
        });
        // Exact: each element in exactly the child of its color.
        for pt in dom.iter() {
            let c = pt.coord(0).rem_euclid(ncolors as i64);
            for (col, child) in f.partition(p).iter().collect::<Vec<_>>() {
                let inside = f.domain(child).contains(pt);
                prop_assert_eq!(inside, col.coord(0) == c);
            }
        }
    }

    #[test]
    fn private_ghost_laws(n in 16u64..120, parts in 2usize..7, radius in 1i64..4) {
        let mut f = RegionForest::new();
        let r = f.create_region(Domain::range(n), FieldSpace::new());
        let owned = ops::block(&mut f, r, parts);
        let halo = ops::image(&mut f, r, owned, move |p, sink| {
            for d in -radius..=radius {
                sink.push(DynPoint::from(p.coord(0) + d));
            }
        });
        let pg = regent_region::private_ghost_split(&mut f, owned, halo);
        // Partition of the region.
        let priv_d = f.domain(pg.all_private).clone();
        let ghost_d = f.domain(pg.all_ghost).clone();
        prop_assert!(!priv_d.overlaps(&ghost_d));
        prop_assert!(priv_d.union(&ghost_d).set_eq(f.domain(r)));
        // Every ghost element is in some *other* piece's halo.
        for g in ghost_d.iter() {
            let mut found = false;
            for (c, h) in f.partition(halo).iter().collect::<Vec<_>>() {
                let own = f.subregion(owned, c);
                if f.domain(h).contains(g) && !f.domain(own).contains(g) {
                    found = true;
                    break;
                }
            }
            prop_assert!(found, "ghost element {g:?} not justified");
        }
        // Every private element is in no other piece's halo.
        for pvt in priv_d.iter() {
            for (c, h) in f.partition(halo).iter().collect::<Vec<_>>() {
                let own = f.subregion(owned, c);
                if f.domain(h).contains(pvt) {
                    prop_assert!(
                        f.domain(own).contains(pvt),
                        "private element {pvt:?} appears in a foreign halo"
                    );
                }
            }
        }
    }

    #[test]
    fn static_disjointness_is_sound(
        dom in arb_sparse_domain(),
        parts in 2usize..6,
        mul in 1i64..9,
    ) {
        // For every pair of subregions across all partitions created,
        // provably_disjoint == true must imply actual disjointness.
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let p = ops::block(&mut f, r, parts);
        let bound = dom.bounds().hi().coord(0) + 1;
        let q = ops::image(&mut f, r, p, move |pt, sink| {
            sink.push(DynPoint::from((pt.coord(0) * mul).rem_euclid(bound.max(1))));
        });
        let mut regions: Vec<_> = f.partition(p).child_regions().collect();
        regions.extend(f.partition(q).child_regions());
        regions.push(r);
        for &a in &regions {
            for &b in &regions {
                if f.provably_disjoint(a, b) {
                    prop_assert!(
                        f.dynamically_disjoint(a, b),
                        "unsound: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
