//! Property tests for the dynamic intersection machinery (§3.3) and the
//! set-operation partition constructors: the accelerated shallow
//! intersections (1-D interval tree, multi-D BVH) must agree with the
//! brute-force all-pairs oracle on random partition trees, and the
//! set-op partitions must preserve their claimed disjointness.
//!
//! Gated behind the `proptest-tests` cargo feature: proptest is not
//! part of the offline dependency set, so the default `cargo test`
//! skips this file (see the workspace Cargo.toml for how to restore
//! the dev-dependency).

#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use regent_geometry::{Domain, DynPoint, DynRect};
use regent_region::intersect::{shallow_intersections_naive, shallow_intersections_of};
use regent_region::{ops, Color, Disjointness, FieldSpace, RegionForest};

fn arb_sparse_domain() -> impl Strategy<Value = Domain> {
    prop::collection::hash_set(0i64..200, 1..80).prop_map(Domain::from_ids)
}

/// A colored child list — the input shape `shallow_intersections_of`
/// consumes inside shard tasks.
fn arb_children_1d() -> impl Strategy<Value = Vec<(Color, Domain)>> {
    prop::collection::vec(arb_sparse_domain(), 1..8).prop_map(|doms| {
        doms.into_iter()
            .enumerate()
            .map(|(i, d)| (DynPoint::from(i as i64), d))
            .collect()
    })
}

fn arb_rect_2d() -> impl Strategy<Value = DynRect> {
    (0i64..40, 1i64..10, 0i64..40, 1i64..10).prop_map(|(x, w, y, h)| {
        DynRect::new(
            DynPoint::new(&[x, y]),
            DynPoint::new(&[x + w - 1, y + h - 1]),
        )
    })
}

fn arb_children_2d() -> impl Strategy<Value = Vec<(Color, Domain)>> {
    prop::collection::vec(prop::collection::vec(arb_rect_2d(), 1..5), 1..8).prop_map(|kids| {
        kids.into_iter()
            .enumerate()
            .map(|(i, rects)| (DynPoint::from(i as i64), Domain::from_rects(rects)))
            .collect()
    })
}

/// Pairwise actual (element-level) disjointness of a partition's
/// children — the ground truth a `Disjointness::Disjoint` label claims.
fn actually_disjoint(f: &RegionForest, p: regent_region::PartitionId) -> bool {
    let doms: Vec<Domain> = f
        .partition(p)
        .child_regions()
        .map(|c| f.domain(c).clone())
        .collect();
    doms.iter()
        .enumerate()
        .all(|(i, a)| doms[i + 1..].iter().all(|b| !a.overlaps(b)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn interval_tree_matches_naive_1d(
        src in arb_children_1d(),
        dst in arb_children_1d(),
    ) {
        let fast = shallow_intersections_of(&src, &dst);
        let naive = shallow_intersections_naive(&src, &dst);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn bvh_matches_naive_2d(
        src in arb_children_2d(),
        dst in arb_children_2d(),
    ) {
        let fast = shallow_intersections_of(&src, &dst);
        let naive = shallow_intersections_naive(&src, &dst);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn random_partition_tree_intersections_match_oracle(
        dom in arb_sparse_domain(),
        parts in 1usize..7,
        mul in 1i64..11,
        radius in 0i64..4,
    ) {
        // A block partition against a random image partition of the same
        // region — the (src, dst) shape every coherence copy evaluates.
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let p = ops::block(&mut f, r, parts);
        let bound = dom.bounds().hi().coord(0) + 1;
        let q = ops::image(&mut f, r, p, move |pt, sink| {
            for d in -radius..=radius {
                sink.push(DynPoint::from(
                    (pt.coord(0) * mul + d).rem_euclid(bound.max(1)),
                ));
            }
        });
        let collect = |f: &RegionForest, part| {
            f.partition(part)
                .iter()
                .map(|(c, reg)| (c, f.domain(reg).clone()))
                .collect::<Vec<(Color, Domain)>>()
        };
        let src = collect(&f, p);
        let dst = collect(&f, q);
        prop_assert_eq!(
            shallow_intersections_of(&src, &dst),
            shallow_intersections_naive(&src, &dst)
        );
        // And in the transposed direction (dst-side tree build).
        prop_assert_eq!(
            shallow_intersections_of(&dst, &src),
            shallow_intersections_naive(&dst, &src)
        );
    }

    #[test]
    fn restrict_preserves_disjointness(
        dom in arb_sparse_domain(),
        window in arb_sparse_domain(),
        parts in 1usize..7,
    ) {
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let w = f.create_region(window.clone(), FieldSpace::new());
        let p = ops::block(&mut f, r, parts);
        let q = ops::restrict(&mut f, w, p);
        // Restriction inherits the Disjoint label — and the label must
        // still be true at the element level.
        prop_assert_eq!(f.partition(q).disjointness, Disjointness::Disjoint);
        prop_assert!(actually_disjoint(&f, q));
        // Model: q[i] == p[i] ∩ window.
        for (c, child) in f.partition(q).iter().collect::<Vec<_>>() {
            let pi = f.subregion(p, c);
            let expect = f.domain(pi).intersect(&window);
            prop_assert!(f.domain(child).set_eq(&expect));
        }
    }

    #[test]
    fn difference_preserves_disjointness(
        dom in arb_sparse_domain(),
        window in arb_sparse_domain(),
        parts in 1usize..7,
    ) {
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let w = f.create_region(window.clone(), FieldSpace::new());
        let a = ops::block(&mut f, r, parts);
        let b = ops::restrict(&mut f, w, a); // same color space as `a`
        let d = ops::difference(&mut f, a, b);
        prop_assert_eq!(f.partition(d).disjointness, Disjointness::Disjoint);
        prop_assert!(actually_disjoint(&f, d));
        // Model: d[i] == a[i] \ b[i]; disjoint from b[i]; within a[i].
        for (c, child) in f.partition(d).iter().collect::<Vec<_>>() {
            let ai = f.domain(f.subregion(a, c)).clone();
            let bi = f.domain(f.subregion(b, c)).clone();
            prop_assert!(f.domain(child).set_eq(&ai.subtract(&bi)));
            prop_assert!(!f.domain(child).overlaps(&bi) || f.domain(child).is_empty());
            prop_assert!(f.domain(child).is_subset_of(&ai));
        }
    }

    #[test]
    fn union_is_colorwise_and_conservatively_aliased(
        dom in arb_sparse_domain(),
        window in arb_sparse_domain(),
        parts in 1usize..7,
    ) {
        let mut f = RegionForest::new();
        let r = f.create_region(dom.clone(), FieldSpace::new());
        let w = f.create_region(window.clone(), FieldSpace::new());
        let a = ops::block(&mut f, r, parts);
        let b = ops::restrict(&mut f, w, a);
        let u = ops::union(&mut f, a, b);
        // Union never claims disjointness it cannot prove.
        prop_assert_eq!(f.partition(u).disjointness, Disjointness::Aliased);
        for (c, child) in f.partition(u).iter().collect::<Vec<_>>() {
            let ai = f.domain(f.subregion(a, c)).clone();
            let bi = f.domain(f.subregion(b, c)).clone();
            prop_assert!(f.domain(child).set_eq(&ai.union(&bi)));
        }
        // union_of_children is the fold of every child domain.
        let total = ops::union_of_children(&f, u);
        let expect = f
            .partition(u)
            .child_regions()
            .collect::<Vec<_>>()
            .into_iter()
            .fold(Domain::empty(1), |acc, reg| acc.union(f.domain(reg)));
        prop_assert!(total.set_eq(&expect));
    }
}
