//! # regent-apps
//!
//! The four applications of the paper's evaluation (§5), each provided
//! in two forms:
//!
//! 1. a real, runnable implicitly parallel [`regent_ir::Program`] with
//!    actual kernels — executed by the sequential interpreter, the
//!    implicit executor, and (after control replication) the SPMD
//!    executor, with cross-checked results; and
//! 2. a [`regent_machine::TimestepSpec`] generator reproducing the
//!    paper's full-scale workload shape (task counts, compute costs,
//!    halo volumes) for the weak-scaling figures.
//!
//! * [`stencil`] — PRK 2-D star stencil, radius 2 (Fig. 6).
//! * [`miniaero`] — 3-D unstructured compressible Navier–Stokes
//!   (Fig. 7).
//! * [`pennant`] — 2-D Lagrangian hydrodynamics with dynamic dt
//!   (Fig. 8).
//! * [`circuit`] — sparse circuit simulation on a random graph
//!   (Fig. 9).

#![warn(missing_docs)]

pub mod circuit;
pub mod miniaero;
pub mod pennant;
pub mod rng;
pub mod stencil;
