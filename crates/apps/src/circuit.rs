//! Circuit: sparse circuit simulation on an unstructured graph (§5.4),
//! after the Legion paper's canonical example.
//!
//! The circuit is a set of *pieces*; each piece owns nodes and wires.
//! A fraction of wires cross piece boundaries. Each time step:
//!
//! 1. `calc_new_currents` — per wire, update current from the voltage
//!    difference of its endpoints (reads node voltages through the
//!    aliased *ghost node* partition — the image of wire endpoints).
//! 2. `distribute_charge` — per wire, deposit charge on its endpoints
//!    (reduce-add through the ghost partition, §4.3).
//! 3. `update_voltages` — per node, integrate charge into voltage
//!    (read-write on the disjoint node partition).
//!
//! "The input for this problem was a randomly generated sparse graph
//! with 100k edges and 25k vertices per compute node."

use crate::rng::SplitMix64;
use regent_geometry::{Domain, DynPoint};
use regent_ir::{expr::c, Privilege, Program, ProgramBuilder, RegionArg, RegionParam, TaskDecl};
use regent_machine::{CopyEdge, MachineConfig, PhaseSpec, TimestepSpec};
use regent_region::{ops, FieldSpace, FieldType, ReductionOp, RegionId};
use std::sync::Arc;

/// Configuration of a circuit run.
#[derive(Clone, Copy, Debug)]
pub struct CircuitConfig {
    /// Number of pieces (one per launch point).
    pub pieces: usize,
    /// Nodes per piece.
    pub nodes_per_piece: usize,
    /// Wires per piece.
    pub wires_per_piece: usize,
    /// Fraction of wires whose far end is in another piece.
    pub cross_fraction: f64,
    /// Time steps.
    pub steps: u64,
    /// Inner RLC substeps per wire per time step.
    pub substeps: u32,
    /// RNG seed for graph generation.
    pub seed: u64,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            pieces: 4,
            nodes_per_piece: 64,
            wires_per_piece: 256,
            cross_fraction: 0.1,
            steps: 4,
            substeps: 10,
            seed: 0xC1C1_0001,
        }
    }
}

/// The generated graph: wire endpoints, in piece-major node numbering.
pub struct CircuitGraph {
    /// Per wire: (in node, out node).
    pub endpoints: Vec<(i64, i64)>,
    /// Total nodes.
    pub num_nodes: u64,
    /// Total wires.
    pub num_wires: u64,
}

/// Generates the random sparse graph: wires attach to a random node of
/// their own piece and, with probability `cross_fraction`, to a random
/// node of a *neighbouring* piece (ring topology — matching the O(1)
/// neighbours-per-piece property of scalable codes, §3.3).
pub fn generate_graph(cfg: &CircuitConfig) -> CircuitGraph {
    let mut rng = SplitMix64::new(cfg.seed);
    let npp = cfg.nodes_per_piece as i64;
    let mut endpoints = Vec::with_capacity(cfg.pieces * cfg.wires_per_piece);
    for piece in 0..cfg.pieces as i64 {
        for _ in 0..cfg.wires_per_piece {
            let a = piece * npp + rng.gen_range(npp as u64) as i64;
            let b = if cfg.pieces > 1 && rng.gen_bool(cfg.cross_fraction) {
                let dir = if rng.gen_bool(0.5) { 1 } else { -1 };
                let other = (piece + dir).rem_euclid(cfg.pieces as i64);
                other * npp + rng.gen_range(npp as u64) as i64
            } else {
                piece * npp + rng.gen_range(npp as u64) as i64
            };
            endpoints.push((a, b));
        }
    }
    CircuitGraph {
        endpoints,
        num_nodes: (cfg.pieces * cfg.nodes_per_piece) as u64,
        num_wires: (cfg.pieces * cfg.wires_per_piece) as u64,
    }
}

/// Handles for initialization/verification.
pub struct CircuitHandles {
    /// Node region.
    pub nodes: RegionId,
    /// Wire region.
    pub wires: RegionId,
    /// Node voltage.
    pub f_voltage: regent_region::FieldId,
    /// Node accumulated charge.
    pub f_charge: regent_region::FieldId,
    /// Node capacitance (inverse integrated each step).
    pub f_cap: regent_region::FieldId,
    /// Wire endpoint pointers.
    pub f_in: regent_region::FieldId,
    /// Wire endpoint pointers.
    pub f_out: regent_region::FieldId,
    /// Wire current.
    pub f_current: regent_region::FieldId,
    /// Wire conductance.
    pub f_cond: regent_region::FieldId,
    /// Wire inductance.
    pub f_ind: regent_region::FieldId,
}

/// Builds the implicitly parallel circuit program over a generated
/// graph.
pub fn circuit_program(cfg: CircuitConfig, graph: &CircuitGraph) -> (Program, CircuitHandles) {
    let mut b = ProgramBuilder::new();
    let nfs = FieldSpace::of(&[
        ("voltage", FieldType::F64),
        ("charge", FieldType::F64),
        ("cap", FieldType::F64),
    ]);
    let f_voltage = nfs.lookup("voltage").unwrap();
    let f_charge = nfs.lookup("charge").unwrap();
    let f_cap = nfs.lookup("cap").unwrap();
    let wfs = FieldSpace::of(&[
        ("in", FieldType::I64),
        ("out", FieldType::I64),
        ("current", FieldType::F64),
        ("cond", FieldType::F64),
        ("ind", FieldType::F64),
    ]);
    let f_in = wfs.lookup("in").unwrap();
    let f_out = wfs.lookup("out").unwrap();
    let f_current = wfs.lookup("current").unwrap();
    let f_cond = wfs.lookup("cond").unwrap();
    let f_ind = wfs.lookup("ind").unwrap();

    let nodes = b.forest.create_region(Domain::range(graph.num_nodes), nfs);
    let wires = b.forest.create_region(Domain::range(graph.num_wires), wfs);
    // Application-specific partitioning (§6: "explicit language support
    // for partitioning allows control replication to leverage
    // application-specific partitioning algorithms"): nodes and wires
    // by piece, ghost nodes = image of wire endpoints.
    let pn = ops::block(&mut b.forest, nodes, cfg.pieces);
    let pw = ops::block(&mut b.forest, wires, cfg.pieces);
    let endpoints = graph.endpoints.clone();
    let gn = ops::image(&mut b.forest, nodes, pw, move |w, sink| {
        let (a, bnode) = endpoints[w.coord(0) as usize];
        sink.push(DynPoint::from(a));
        sink.push(DynPoint::from(bnode));
    });

    let substeps = cfg.substeps.max(1);
    let calc_currents = b.task(TaskDecl {
        name: "calc_new_currents".into(),
        params: vec![
            RegionParam::read_write(&[f_current]),
            RegionParam::read(&[f_in, f_out, f_cond, f_ind]),
            RegionParam::read(&[f_voltage]),
        ],
        num_scalar_args: 1, // dt
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dt = ctx.scalars[0];
            let dt_sub = dt / substeps as f64;
            let dom = ctx.domain(0).clone();
            for w in dom.iter() {
                let a = ctx.read_i64(1, f_in, w);
                let bn = ctx.read_i64(1, f_out, w);
                let g = ctx.read_f64(1, f_cond, w);
                let l = ctx.read_f64(1, f_ind, w);
                let va = ctx.read_f64(2, f_voltage, DynPoint::from(a));
                let vb = ctx.read_f64(2, f_voltage, DynPoint::from(bn));
                // Inner RLC solve: L·di/dt = Δv − i/g, integrated
                // explicitly over the substeps.
                let dv = va - vb;
                let mut i_now = ctx.read_f64(0, f_current, w);
                for _ in 0..substeps {
                    i_now += dt_sub * (dv - i_now / g) / l;
                }
                ctx.write_f64(0, f_current, w, i_now);
            }
        }),
        cost_per_element: 3.0 + 2.0 * substeps as f64,
    });
    let distribute = b.task(TaskDecl {
        name: "distribute_charge".into(),
        params: vec![
            RegionParam::read(&[f_in, f_out, f_current]),
            RegionParam {
                privilege: Privilege::Reduce(ReductionOp::Add),
                fields: vec![f_charge],
            },
        ],
        num_scalar_args: 1, // dt
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dt = ctx.scalars[0];
            let dom = ctx.domain(0).clone();
            for w in dom.iter() {
                let a = ctx.read_i64(0, f_in, w);
                let bn = ctx.read_i64(0, f_out, w);
                let i = ctx.read_f64(0, f_current, w);
                ctx.reduce_f64(1, f_charge, DynPoint::from(a), -dt * i);
                ctx.reduce_f64(1, f_charge, DynPoint::from(bn), dt * i);
            }
        }),
        cost_per_element: 2.0,
    });
    let update = b.task(TaskDecl {
        name: "update_voltages".into(),
        params: vec![RegionParam::read_write(&[f_voltage, f_charge, f_cap])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let v = ctx.read_f64(0, f_voltage, p);
                let q = ctx.read_f64(0, f_charge, p);
                let cap = ctx.read_f64(0, f_cap, p);
                ctx.write_f64(0, f_voltage, p, v + q / cap);
                ctx.write_f64(0, f_charge, p, 0.0);
            }
        }),
        cost_per_element: 2.0,
    });

    let dt = b.scalar("dt", 1e-2);
    let l = b.for_loop(c(cfg.steps as f64));
    b.index_launch_full(
        calc_currents,
        cfg.pieces as u64,
        vec![
            RegionArg::Part(pw),
            RegionArg::Part(pw),
            RegionArg::Part(gn),
        ],
        vec![regent_ir::expr::var(dt)],
        None,
    );
    b.index_launch_full(
        distribute,
        cfg.pieces as u64,
        vec![RegionArg::Part(pw), RegionArg::Part(gn)],
        vec![regent_ir::expr::var(dt)],
        None,
    );
    b.index_launch(update, cfg.pieces as u64, vec![RegionArg::Part(pn)]);
    b.end(l);

    (
        b.build(),
        CircuitHandles {
            nodes,
            wires,
            f_voltage,
            f_charge,
            f_cap,
            f_in,
            f_out,
            f_current,
            f_cond,
            f_ind,
        },
    )
}

/// Initializes circuit state: deterministic pseudo-random voltages and
/// conductances, unit-ish capacitances, graph connectivity.
pub fn init_circuit(
    program: &Program,
    store: &mut regent_ir::Store,
    h: &CircuitHandles,
    graph: &CircuitGraph,
) {
    store.fill_f64(program, h.nodes, h.f_voltage, |p| {
        ((p.coord(0) * 2654435761 % 1000) as f64) / 500.0 - 1.0
    });
    store.fill_f64(program, h.nodes, h.f_charge, |_| 0.0);
    store.fill_f64(program, h.nodes, h.f_cap, |p| {
        1.0 + ((p.coord(0) * 40503 % 100) as f64) / 100.0
    });
    store.fill_i64(program, h.wires, h.f_in, |w| {
        graph.endpoints[w.coord(0) as usize].0
    });
    store.fill_i64(program, h.wires, h.f_out, |w| {
        graph.endpoints[w.coord(0) as usize].1
    });
    store.fill_f64(program, h.wires, h.f_current, |_| 0.0);
    store.fill_f64(program, h.wires, h.f_cond, |w| {
        0.1 + ((w.coord(0) * 48271 % 50) as f64) / 100.0
    });
    store.fill_f64(program, h.wires, h.f_ind, |w| {
        0.2 + ((w.coord(0) * 69621 % 30) as f64) / 100.0
    });
}

/// Builds the machine-simulation spec for Fig. 9: 100k wires + 25k
/// nodes per node of the machine, ring-neighbour ghost exchanges.
///
/// Per-phase volumes follow the graph structure: the ghost update and
/// charge reductions move `cross_fraction × wires_per_piece` endpoint
/// values to each ring neighbour.
pub fn circuit_spec(nodes: usize, machine: &MachineConfig) -> TimestepSpec {
    let wires_per_node: u64 = 100_000;
    let nodes_per_node: u64 = 25_000;
    // Calibration for Fig. 9's ~80 k graph-nodes/s/node flat CR line
    // (~0.31 s per step per node): wire kernels do an inner RLC solve,
    // ~6 µs per wire-op per core.
    let per_wire = 6.1e-6;
    let tasks = machine.regent_compute_cores();
    let wire_work = wires_per_node as f64 * 3.0 * per_wire / tasks as f64;
    let node_work = nodes_per_node as f64 * 2.0 * per_wire / tasks as f64;
    let cross = 0.10;
    // Each piece exchanges ghost voltages / charge contributions with
    // its two ring neighbours.
    let ghost_bytes = wires_per_node as f64 * cross / 2.0 * 8.0;
    let ring = |copies: &mut Vec<CopyEdge>, bytes: f64| {
        for i in 0..nodes as u32 {
            let l = (i + nodes as u32 - 1) % nodes as u32;
            let r = (i + 1) % nodes as u32;
            if l != i {
                copies.push(CopyEdge {
                    src: i,
                    dst: l,
                    bytes,
                });
            }
            if r != i && r != l {
                copies.push(CopyEdge {
                    src: i,
                    dst: r,
                    bytes,
                });
            }
        }
    };
    let mut ghost_v = Vec::new();
    ring(&mut ghost_v, ghost_bytes);
    let mut charge = Vec::new();
    ring(&mut charge, ghost_bytes);
    TimestepSpec {
        num_nodes: nodes,
        elements_per_node: nodes_per_node,
        phases: vec![
            PhaseSpec {
                name: "calc_new_currents".into(),
                tasks_per_node: tasks,
                task_compute_s: wire_work,
                copies: charge, // charge reductions flow after this phase
                collective: false,
                consumes_collective: false,
            },
            PhaseSpec {
                name: "distribute_charge".into(),
                tasks_per_node: tasks,
                task_compute_s: wire_work * 0.7,
                copies: ghost_v, // ghost voltages refresh after update
                collective: false,
                consumes_collective: false,
            },
            PhaseSpec {
                name: "update_voltages".into(),
                tasks_per_node: tasks,
                task_compute_s: node_work,
                copies: vec![],
                collective: false,
                consumes_collective: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_ir::{interp, Store};

    #[test]
    fn graph_generation_properties() {
        let cfg = CircuitConfig::default();
        let g = generate_graph(&cfg);
        assert_eq!(g.num_wires as usize, cfg.pieces * cfg.wires_per_piece);
        let npp = cfg.nodes_per_piece as i64;
        let mut crossing = 0usize;
        for (i, &(a, b)) in g.endpoints.iter().enumerate() {
            let piece = (i / cfg.wires_per_piece) as i64;
            assert_eq!(a / npp, piece, "in-endpoint stays in piece");
            assert!(b >= 0 && (b as u64) < g.num_nodes);
            if b / npp != piece {
                crossing += 1;
                // Ring topology: neighbours only.
                let d = (b / npp - piece).rem_euclid(cfg.pieces as i64);
                assert!(d == 1 || d == cfg.pieces as i64 - 1);
            }
        }
        let frac = crossing as f64 / g.endpoints.len() as f64;
        assert!(frac > 0.03 && frac < 0.2, "crossing fraction {frac}");
        // Deterministic.
        let g2 = generate_graph(&cfg);
        assert_eq!(g.endpoints, g2.endpoints);
    }

    #[test]
    fn charge_is_conserved() {
        // Sum of voltages*cap (total charge) is invariant under the
        // update because every wire deposits +q and −q.
        let cfg = CircuitConfig::default();
        let g = generate_graph(&cfg);
        let (prog, h) = circuit_program(cfg, &g);
        regent_ir::validate(&prog).unwrap();
        let mut store = Store::new(&prog);
        init_circuit(&prog, &mut store, &h, &g);
        let total_before: f64 = {
            let inst = store.instance(&prog, h.nodes);
            prog.forest
                .domain(h.nodes)
                .iter()
                .map(|p| inst.read_f64(h.f_voltage, p) * inst.read_f64(h.f_cap, p))
                .sum()
        };
        interp::run(&prog, &mut store);
        let total_after: f64 = {
            let inst = store.instance(&prog, h.nodes);
            prog.forest
                .domain(h.nodes)
                .iter()
                .map(|p| inst.read_f64(h.f_voltage, p) * inst.read_f64(h.f_cap, p))
                .sum()
        };
        assert!(
            (total_before - total_after).abs() < 1e-9 * total_before.abs().max(1.0),
            "charge drifted: {total_before} -> {total_after}"
        );
    }

    #[test]
    fn currents_settle_toward_equilibrium() {
        // With enough steps the voltage spread shrinks.
        let cfg = CircuitConfig {
            steps: 50,
            ..Default::default()
        };
        let g = generate_graph(&cfg);
        let (prog, h) = circuit_program(cfg, &g);
        let mut store = Store::new(&prog);
        init_circuit(&prog, &mut store, &h, &g);
        let spread = |store: &Store, prog: &Program| {
            let inst = store.instance(prog, h.nodes);
            let vs: Vec<f64> = prog
                .forest
                .domain(h.nodes)
                .iter()
                .map(|p| inst.read_f64(h.f_voltage, p))
                .collect();
            let mx = vs.iter().cloned().fold(f64::MIN, f64::max);
            let mn = vs.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        let before = spread(&store, &prog);
        interp::run(&prog, &mut store);
        let after = spread(&store, &prog);
        assert!(after < before, "spread {before} -> {after}");
    }

    #[test]
    fn spec_ring_edges() {
        let m = MachineConfig::piz_daint(8);
        let spec = circuit_spec(8, &m);
        // Two ring exchanges of 2 edges per node each.
        assert_eq!(spec.phases[0].copies.len(), 16);
        assert_eq!(spec.phases[1].copies.len(), 16);
    }
}
