//! A small deterministic PRNG for input generation, replacing the
//! external `rand` crate so the workspace builds with zero
//! dependencies.
//!
//! [`SplitMix64`] (Steele, Lea & Flood 2014) seeds and steps a 64-bit
//! state through a Weyl sequence with a finalizing mix; it is the
//! standard seeder for larger generators and is more than adequate for
//! generating test inputs. Output quality is far beyond what graph
//! generation needs, and — unlike `StdRng` — the sequence is fixed
//! forever, so generated inputs are stable across toolchains.

/// SplitMix64: 64 bits of state, 64 bits out per step.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal
    /// sequences, on every platform, forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer from `[0, bound)` (`bound > 0`). Uses Lemire's
    /// multiply-then-check rejection, so the draw is exactly uniform.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference sequence for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it/splitmix64.c).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn f64_in_unit_interval_and_bool_frequency() {
        let mut r = SplitMix64::new(99);
        let mut hits = 0u32;
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.25) {
                hits += 1;
            }
        }
        // 4 sigma around 2500 for n=10k, p=.25 is about ±173.
        assert!((2300..=2700).contains(&hits), "hits = {hits}");
    }
}
