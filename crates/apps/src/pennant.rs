//! PENNANT: Lagrangian staggered-grid hydrodynamics on a 2-D
//! unstructured mesh (§5.3), after the Los Alamos proxy app.
//!
//! State lives on a staggered mesh: thermodynamic variables on *zones*
//! (quad cells), kinematics on *points* (vertices). One time step:
//!
//! 1. `zone_state` — per zone: gather the four corner points (through
//!    the aliased *ghost point* partition), compute area/volume,
//!    density and EOS pressure.
//! 2. `point_forces` — per zone: scatter pressure forces to the four
//!    corners (reduce-add through the ghost point partition, §4.3).
//! 3. `advance_points` — per point: integrate velocity and position
//!    (read-write on the disjoint point partition).
//! 4. `zone_dt` — per zone: a CFL estimate, min-reduced into the `dt`
//!    scalar that drives the `While` time loop (§4.4's dynamic time
//!    stepping — PENNANT is the paper's example of "dt in the next
//!    timestep").
//!
//! Physics is a reduced ideal-gas variant of the proxy app with the
//! same region/partition/communication structure (see DESIGN.md).

use regent_geometry::{Domain, DynPoint};
use regent_ir::{
    expr::{c, var},
    Privilege, Program, ProgramBuilder, RegionArg, RegionParam, TaskDecl,
};
use regent_machine::{CopyEdge, MachineConfig, PhaseSpec, TimestepSpec};
use regent_region::{ops, FieldSpace, FieldType, ReductionOp, RegionId};
use std::sync::Arc;

/// EOS γ.
pub const GAMMA: f64 = 5.0 / 3.0;

/// Configuration of a PENNANT run.
#[derive(Clone, Copy, Debug)]
pub struct PennantConfig {
    /// Zones along x.
    pub nzx: usize,
    /// Zones along y.
    pub nzy: usize,
    /// Mesh pieces (column blocks of zones).
    pub pieces: usize,
    /// Simulated end time (the While loop runs until `t >= tstop`).
    pub tstop: f64,
    /// Maximum dt (initial value; CFL may shrink it).
    pub dtmax: f64,
}

impl Default for PennantConfig {
    fn default() -> Self {
        PennantConfig {
            nzx: 12,
            nzy: 6,
            pieces: 3,
            tstop: 4e-2,
            dtmax: 2e-2,
        }
    }
}

/// The quad mesh connectivity: each zone's four corner point ids.
pub struct PennantMesh {
    /// Per zone: corner points (counter-clockwise).
    pub zone_points: Vec<[i64; 4]>,
    /// Total points.
    pub num_points: u64,
    /// Total zones.
    pub num_zones: u64,
}

/// Builds the rectangular quad mesh (`nzx × nzy` zones,
/// `(nzx+1) × (nzy+1)` points, x-major point numbering).
pub fn build_mesh(cfg: &PennantConfig) -> PennantMesh {
    let (nzx, nzy) = (cfg.nzx as i64, cfg.nzy as i64);
    let npy = nzy + 1;
    let pt = |x: i64, y: i64| x * npy + y;
    let mut zone_points = Vec::with_capacity((nzx * nzy) as usize);
    for x in 0..nzx {
        for y in 0..nzy {
            zone_points.push([pt(x, y), pt(x + 1, y), pt(x + 1, y + 1), pt(x, y + 1)]);
        }
    }
    PennantMesh {
        zone_points,
        num_points: ((nzx + 1) * npy) as u64,
        num_zones: (nzx * nzy) as u64,
    }
}

/// Region/field handles.
pub struct PennantHandles {
    /// Zone region.
    pub zones: RegionId,
    /// Point region.
    pub points: RegionId,
    /// Point coordinates.
    pub f_px: regent_region::FieldId,
    /// Point coordinates.
    pub f_py: regent_region::FieldId,
    /// Point velocities.
    pub f_vx: regent_region::FieldId,
    /// Point velocities.
    pub f_vy: regent_region::FieldId,
    /// Point forces.
    pub f_fx: regent_region::FieldId,
    /// Point forces.
    pub f_fy: regent_region::FieldId,
    /// Point mass.
    pub f_pm: regent_region::FieldId,
    /// Zone corner pointers.
    pub f_zp: [regent_region::FieldId; 4],
    /// Zone mass.
    pub f_zm: regent_region::FieldId,
    /// Zone internal energy.
    pub f_ze: regent_region::FieldId,
    /// Zone volume (area).
    pub f_zvol: regent_region::FieldId,
    /// Zone pressure.
    pub f_zp_pres: regent_region::FieldId,
}

/// Builds the implicitly parallel PENNANT program.
pub fn pennant_program(cfg: PennantConfig, mesh: &PennantMesh) -> (Program, PennantHandles) {
    let mut b = ProgramBuilder::new();
    let pfs = FieldSpace::of(&[
        ("px", FieldType::F64),
        ("py", FieldType::F64),
        ("vx", FieldType::F64),
        ("vy", FieldType::F64),
        ("fx", FieldType::F64),
        ("fy", FieldType::F64),
        ("pm", FieldType::F64),
    ]);
    let f_px = pfs.lookup("px").unwrap();
    let f_py = pfs.lookup("py").unwrap();
    let f_vx = pfs.lookup("vx").unwrap();
    let f_vy = pfs.lookup("vy").unwrap();
    let f_fx = pfs.lookup("fx").unwrap();
    let f_fy = pfs.lookup("fy").unwrap();
    let f_pm = pfs.lookup("pm").unwrap();
    let zfs = FieldSpace::of(&[
        ("zp0", FieldType::I64),
        ("zp1", FieldType::I64),
        ("zp2", FieldType::I64),
        ("zp3", FieldType::I64),
        ("zm", FieldType::F64),
        ("ze", FieldType::F64),
        ("zvol", FieldType::F64),
        ("zpres", FieldType::F64),
    ]);
    let f_zp = [
        zfs.lookup("zp0").unwrap(),
        zfs.lookup("zp1").unwrap(),
        zfs.lookup("zp2").unwrap(),
        zfs.lookup("zp3").unwrap(),
    ];
    let f_zm = zfs.lookup("zm").unwrap();
    let f_ze = zfs.lookup("ze").unwrap();
    let f_zvol = zfs.lookup("zvol").unwrap();
    let f_zpres = zfs.lookup("zpres").unwrap();

    let zones = b.forest.create_region(Domain::range(mesh.num_zones), zfs);
    let points = b.forest.create_region(Domain::range(mesh.num_points), pfs);
    let pz = ops::block(&mut b.forest, zones, cfg.pieces);
    let pp = ops::block(&mut b.forest, points, cfg.pieces);
    // Ghost points: the corners of each piece's zones (aliased — pieces
    // share their boundary points).
    let zp = mesh.zone_points.clone();
    let gp = ops::image(&mut b.forest, points, pz, move |z, sink| {
        for &p in &zp[z.coord(0) as usize] {
            sink.push(DynPoint::from(p));
        }
    });

    // 1. Zone geometry + EOS.
    let zone_state = b.task(TaskDecl {
        name: "zone_state".into(),
        params: vec![
            RegionParam::read_write(&[f_zvol, f_zpres]),
            RegionParam::read(&[f_zp[0], f_zp[1], f_zp[2], f_zp[3], f_zm, f_ze]),
            RegionParam::read(&[f_px, f_py]),
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for z in dom.iter() {
                let mut xs = [0.0; 4];
                let mut ys = [0.0; 4];
                for k in 0..4 {
                    let p = DynPoint::from(ctx.read_i64(1, f_zp[k], z));
                    xs[k] = ctx.read_f64(2, f_px, p);
                    ys[k] = ctx.read_f64(2, f_py, p);
                }
                // Shoelace area of the quad.
                let mut area = 0.0;
                for k in 0..4 {
                    let k2 = (k + 1) % 4;
                    area += xs[k] * ys[k2] - xs[k2] * ys[k];
                }
                area = 0.5 * area.abs().max(1e-12);
                let zm = ctx.read_f64(1, f_zm, z);
                let ze = ctx.read_f64(1, f_ze, z);
                let rho = zm / area;
                let pres = (GAMMA - 1.0) * rho * ze;
                ctx.write_f64(0, f_zvol, z, area);
                ctx.write_f64(0, f_zpres, z, pres);
            }
        }),
        cost_per_element: 15.0,
    });

    // 2. Corner force scatter.
    let point_forces = b.task(TaskDecl {
        name: "point_forces".into(),
        params: vec![
            RegionParam::read(&[f_zp[0], f_zp[1], f_zp[2], f_zp[3], f_zpres]),
            RegionParam::read(&[f_px, f_py]),
            RegionParam {
                privilege: Privilege::Reduce(ReductionOp::Add),
                fields: vec![f_fx, f_fy],
            },
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for z in dom.iter() {
                let pres = ctx.read_f64(0, f_zpres, z);
                let mut pts = [DynPoint::from(0); 4];
                let mut xs = [0.0; 4];
                let mut ys = [0.0; 4];
                #[allow(clippy::needless_range_loop)]
                // Lockstep fill of pts/xs/ys.
                for k in 0..4 {
                    pts[k] = DynPoint::from(ctx.read_i64(0, f_zp[k], z));
                    xs[k] = ctx.read_f64(1, f_px, pts[k]);
                    ys[k] = ctx.read_f64(1, f_py, pts[k]);
                }
                // Pressure force on each corner: p × the outward edge
                // normal of the half-edges adjacent to the corner.
                for (k, &pt) in pts.iter().enumerate() {
                    let prev = (k + 3) % 4;
                    let next = (k + 1) % 4;
                    let nx = 0.5 * (ys[next] - ys[prev]);
                    let ny = -0.5 * (xs[next] - xs[prev]);
                    ctx.reduce_f64(2, f_fx, pt, pres * nx);
                    ctx.reduce_f64(2, f_fy, pt, pres * ny);
                }
            }
        }),
        cost_per_element: 20.0,
    });

    // 3. Point kinematics.
    let advance = b.task(TaskDecl {
        name: "advance_points".into(),
        params: vec![RegionParam::read_write(&[
            f_px, f_py, f_vx, f_vy, f_fx, f_fy, f_pm,
        ])],
        num_scalar_args: 1, // dt
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dt = ctx.scalars[0];
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let m = ctx.read_f64(0, f_pm, p).max(1e-12);
                let fx = ctx.read_f64(0, f_fx, p);
                let fy = ctx.read_f64(0, f_fy, p);
                let vx = ctx.read_f64(0, f_vx, p) + dt * fx / m;
                let vy = ctx.read_f64(0, f_vy, p) + dt * fy / m;
                ctx.write_f64(0, f_vx, p, vx);
                ctx.write_f64(0, f_vy, p, vy);
                ctx.write_f64(0, f_px, p, ctx.read_f64(0, f_px, p) + dt * vx);
                ctx.write_f64(0, f_py, p, ctx.read_f64(0, f_py, p) + dt * vy);
                ctx.write_f64(0, f_fx, p, 0.0);
                ctx.write_f64(0, f_fy, p, 0.0);
            }
        }),
        cost_per_element: 10.0,
    });

    // 4. CFL estimate per zone.
    let dtmax = cfg.dtmax;
    let zone_dt = b.task(TaskDecl {
        name: "zone_dt".into(),
        params: vec![RegionParam::read(&[f_zvol, f_zpres, f_zm])],
        num_scalar_args: 0,
        returns_value: true,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            let mut dt = dtmax;
            for z in dom.iter() {
                let vol = ctx.read_f64(0, f_zvol, z).max(1e-12);
                let zm = ctx.read_f64(0, f_zm, z);
                let pres = ctx.read_f64(0, f_zpres, z).max(1e-12);
                let rho = zm / vol;
                let cs = (GAMMA * pres / rho.max(1e-12)).sqrt();
                let dx = vol.sqrt();
                dt = dt.min(0.25 * dx / cs.max(1e-12));
            }
            ctx.set_return(dt);
        }),
        cost_per_element: 8.0,
    });

    let t = b.scalar("t", 0.0);
    let dt = b.scalar("dt", cfg.dtmax);
    let w = b.while_loop(var(t).lt(c(cfg.tstop)));
    b.index_launch(
        zone_state,
        cfg.pieces as u64,
        vec![
            RegionArg::Part(pz),
            RegionArg::Part(pz),
            RegionArg::Part(gp),
        ],
    );
    b.index_launch(
        point_forces,
        cfg.pieces as u64,
        vec![
            RegionArg::Part(pz),
            RegionArg::Part(gp),
            RegionArg::Part(gp),
        ],
    );
    b.index_launch_full(
        advance,
        cfg.pieces as u64,
        vec![RegionArg::Part(pp)],
        vec![var(dt)],
        None,
    );
    b.set_scalar(t, var(t).add(var(dt)));
    b.index_launch_full(
        zone_dt,
        cfg.pieces as u64,
        vec![RegionArg::Part(pz)],
        vec![],
        Some((dt, ReductionOp::Min)),
    );
    b.end(w);

    (
        b.build(),
        PennantHandles {
            zones,
            points,
            f_px,
            f_py,
            f_vx,
            f_vy,
            f_fx,
            f_fy,
            f_pm,
            f_zp,
            f_zm,
            f_ze,
            f_zvol,
            f_zp_pres: f_zpres,
        },
    )
}

/// Initializes a Sedov-like problem: unit-density gas at rest on a unit
/// mesh with an energy spike in the corner zone.
pub fn init_pennant(
    program: &Program,
    store: &mut regent_ir::Store,
    h: &PennantHandles,
    cfg: &PennantConfig,
    mesh: &PennantMesh,
) {
    let npy = (cfg.nzy + 1) as i64;
    let dx = 1.0 / cfg.nzx as f64;
    let dy = 1.0 / cfg.nzy as f64;
    store.fill_f64(program, h.points, h.f_px, |p| {
        (p.coord(0) / npy) as f64 * dx
    });
    store.fill_f64(program, h.points, h.f_py, |p| {
        (p.coord(0) % npy) as f64 * dy
    });
    for f in [h.f_vx, h.f_vy, h.f_fx, h.f_fy] {
        store.fill_f64(program, h.points, f, |_| 0.0);
    }
    store.fill_f64(program, h.points, h.f_pm, |_| dx * dy);
    let zp = mesh.zone_points.clone();
    for k in 0..4 {
        let zp = zp.clone();
        store.fill_i64(program, h.zones, h.f_zp[k], move |z| {
            zp[z.coord(0) as usize][k]
        });
    }
    store.fill_f64(program, h.zones, h.f_zm, |_| dx * dy);
    store.fill_f64(program, h.zones, h.f_ze, |z| {
        if z.coord(0) == 0 {
            10.0
        } else {
            0.1
        }
    });
    store.fill_f64(program, h.zones, h.f_zvol, |_| dx * dy);
    store.fill_f64(program, h.zones, h.f_zp_pres, |_| 0.0);
}

/// Builds the machine-simulation spec for Fig. 8: 7.4M zones per node,
/// column decomposition, four phases with a scalar collective closing
/// the step (the dt reduction).
pub fn pennant_spec(nodes: usize, machine: &MachineConfig) -> TimestepSpec {
    let zones_per_node: u64 = 7_400_000;
    // Calibration: Fig. 8's CR line sits near ~14e6 zones/s/node →
    // ~0.53 s per step per node across the four phases → ~0.79 µs per
    // zone per core. PENNANT is compute-bound (cache-blocked kernels).
    let per_zone_total = 7.9e-7;
    let tasks = machine.regent_compute_cores();
    let phase_cost = |frac: f64| zones_per_node as f64 * per_zone_total * frac / tasks as f64;
    // Column decomposition: boundary points of one column of zones.
    let col_points = (zones_per_node as f64).sqrt();
    let ghost_bytes = col_points * 4.0 * 8.0; // px, py, fx, fy
    let mut copies = Vec::new();
    for i in 0..nodes as u32 {
        if i > 0 {
            copies.push(CopyEdge {
                src: i,
                dst: i - 1,
                bytes: ghost_bytes,
            });
        }
        if (i as usize) < nodes - 1 {
            copies.push(CopyEdge {
                src: i,
                dst: i + 1,
                bytes: ghost_bytes,
            });
        }
    }
    TimestepSpec {
        num_nodes: nodes,
        elements_per_node: zones_per_node,
        phases: vec![
            PhaseSpec {
                name: "zone_state".into(),
                tasks_per_node: tasks,
                task_compute_s: phase_cost(0.3),
                copies: vec![],
                collective: false,
                consumes_collective: false,
            },
            PhaseSpec {
                name: "point_forces".into(),
                tasks_per_node: tasks,
                task_compute_s: phase_cost(0.4),
                copies: copies.clone(),
                collective: false,
                consumes_collective: false,
            },
            PhaseSpec {
                name: "advance_points".into(),
                tasks_per_node: tasks,
                task_compute_s: phase_cost(0.2),
                copies,
                collective: false,
                // Needs the dt produced by the previous step's
                // zone_dt collective.
                consumes_collective: true,
            },
            PhaseSpec {
                name: "zone_dt".into(),
                tasks_per_node: tasks,
                task_compute_s: phase_cost(0.1),
                copies: vec![],
                collective: true, // the global dt min-reduction
                consumes_collective: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_ir::{interp, Store};

    #[test]
    fn mesh_connectivity() {
        let cfg = PennantConfig::default();
        let mesh = build_mesh(&cfg);
        assert_eq!(mesh.num_zones as usize, cfg.nzx * cfg.nzy);
        assert_eq!(mesh.num_points as usize, (cfg.nzx + 1) * (cfg.nzy + 1));
        for zp in &mesh.zone_points {
            for &p in zp {
                assert!(p >= 0 && (p as u64) < mesh.num_points);
            }
            // Corners are distinct.
            let mut s = zp.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn sedov_blast_expands() {
        let cfg = PennantConfig::default();
        let mesh = build_mesh(&cfg);
        let (prog, h) = pennant_program(cfg, &mesh);
        regent_ir::validate(&prog).unwrap();
        let mut store = Store::new(&prog);
        init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        let (env, stats) = interp::run(&prog, &mut store);
        // The While loop ran some steps and advanced t beyond tstop.
        assert!(stats.loop_iterations >= 2);
        assert!(env[0] >= cfg.tstop);
        // dt was dynamically reduced below dtmax by the CFL condition.
        assert!(env[1] < cfg.dtmax);
        // The blast pushed the points near the energy spike outward.
        let inst = store.instance(&prog, h.points);
        let p0 = DynPoint::from(0);
        let moved = inst.read_f64(h.f_px, p0).abs() + inst.read_f64(h.f_py, p0).abs();
        // Corner point is pushed into negative x/y (outward from the
        // hot zone) or at least moved.
        assert!(moved > 0.0, "blast should move the corner point");
        // Points remain finite.
        for p in prog.forest.domain(h.points).iter() {
            assert!(inst.read_f64(h.f_px, p).is_finite());
            assert!(inst.read_f64(h.f_py, p).is_finite());
        }
    }

    #[test]
    fn momentum_is_bounded_symmetric() {
        // Forces from a uniform-pressure region cancel on interior
        // points: with uniform energy everywhere, interior points feel
        // zero net force after one step.
        let cfg = PennantConfig {
            nzx: 6,
            nzy: 6,
            pieces: 2,
            tstop: 1e-9, // exactly one step
            dtmax: 1e-9,
        };
        let mesh = build_mesh(&cfg);
        let (prog, h) = pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        // Uniform energy.
        store.fill_f64(&prog, h.zones, h.f_ze, |_| 1.0);
        interp::run(&prog, &mut store);
        let inst = store.instance(&prog, h.points);
        let npy = (cfg.nzy + 1) as i64;
        for p in prog.forest.domain(h.points).iter() {
            let (x, y) = (p.coord(0) / npy, p.coord(0) % npy);
            let interior = x > 0 && x < cfg.nzx as i64 && y > 0 && y < cfg.nzy as i64;
            if interior {
                let v = inst.read_f64(h.f_vx, p).abs() + inst.read_f64(h.f_vy, p).abs();
                assert!(v < 1e-10, "interior point {p:?} moved: {v}");
            }
        }
    }

    #[test]
    fn spec_has_collective() {
        let m = MachineConfig::piz_daint(4);
        let spec = pennant_spec(4, &m);
        assert!(spec.phases.iter().any(|p| p.collective));
        assert_eq!(spec.phases.len(), 4);
    }
}
