//! MiniAero: an explicit solver for the compressible Navier–Stokes
//! equations on a 3-D unstructured mesh (§5.2), after the Mantevo
//! mini-app.
//!
//! The mesh is a hex grid treated as unstructured: cells carry the five
//! conserved variables (ρ, ρu, ρv, ρw, E) plus residuals; faces carry
//! connectivity (left/right cell pointers) and geometry. A time step
//! is a four-stage Jameson-style Runge–Kutta integration (the
//! mini-app's scheme):
//!
//! 1. `save_state` — per cell, snapshot `u₀ = u`.
//! 2. per stage k = 1..4: `compute_face_flux` — per face, a
//!    Rusanov-type numerical flux from the two adjacent cell states
//!    (read through the aliased *ghost cell* partition), reduce-added
//!    into both cells' residuals — then `apply_stage` — per cell,
//!    `u = u₀ + (dt / (5 − k)) · R(u)`, clearing the residual.
//!
//! The task/region/communication structure (face loop gathering from
//! and scattering to cells across partition boundaries, one halo
//! refresh per stage) is exactly the mini-app's; the flux physics is a
//! reduced first-order variant (substitution documented in DESIGN.md).

use regent_geometry::{Domain, DynPoint};
use regent_ir::{expr::c, Privilege, Program, ProgramBuilder, RegionArg, RegionParam, TaskDecl};
use regent_machine::{CopyEdge, MachineConfig, PhaseSpec, TimestepSpec};
use regent_region::{ops, FieldSpace, FieldType, ReductionOp, RegionId};
use std::sync::Arc;

/// Gas constant γ for the ideal-gas EOS.
pub const GAMMA: f64 = 1.4;

/// Configuration of a MiniAero run.
#[derive(Clone, Copy, Debug)]
pub struct MiniAeroConfig {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    /// Mesh pieces (blocks along x).
    pub pieces: usize,
    /// Time steps (RK stages).
    pub steps: u64,
    /// Time-step size.
    pub dt: f64,
}

impl Default for MiniAeroConfig {
    fn default() -> Self {
        MiniAeroConfig {
            nx: 16,
            ny: 4,
            nz: 4,
            pieces: 4,
            steps: 3,
            dt: 1e-3,
        }
    }
}

/// The unstructured view of the hex mesh: interior faces with left and
/// right cell ids.
pub struct AeroMesh {
    /// Per face: (left cell, right cell).
    pub faces: Vec<(i64, i64)>,
    /// Total cells.
    pub num_cells: u64,
}

/// Enumerates the interior faces of the `nx × ny × nz` hex mesh.
/// Cells are numbered x-major so a block partition of cell ids is a
/// slab decomposition along x (faces between slabs are the halo).
pub fn build_mesh(cfg: &MiniAeroConfig) -> AeroMesh {
    let (nx, ny, nz) = (cfg.nx as i64, cfg.ny as i64, cfg.nz as i64);
    let cell = |x: i64, y: i64, z: i64| x * ny * nz + y * nz + z;
    let mut faces = Vec::new();
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                if x + 1 < nx {
                    faces.push((cell(x, y, z), cell(x + 1, y, z)));
                }
                if y + 1 < ny {
                    faces.push((cell(x, y, z), cell(x, y + 1, z)));
                }
                if z + 1 < nz {
                    faces.push((cell(x, y, z), cell(x, y, z + 1)));
                }
            }
        }
    }
    AeroMesh {
        faces,
        num_cells: (nx * ny * nz) as u64,
    }
}

/// The five conserved fields plus residuals, and the face fields.
pub struct AeroHandles {
    /// Cell region.
    pub cells: RegionId,
    /// Face region.
    pub faces: RegionId,
    /// Conserved state fields (ρ, ρu, ρv, ρw, E).
    pub state: [regent_region::FieldId; 5],
    /// Residual fields.
    pub resid: [regent_region::FieldId; 5],
    /// Face left/right cell pointers.
    pub f_left: regent_region::FieldId,
    /// Right pointer.
    pub f_right: regent_region::FieldId,
}

/// Pressure from conserved state (ideal gas).
fn pressure(u: [f64; 5]) -> f64 {
    let ke = 0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0].max(1e-300);
    (GAMMA - 1.0) * (u[4] - ke)
}

/// Rusanov flux through a unit face with normal along `axis`
/// (0 = x, 1 = y, 2 = z) between states `l` and `r`.
pub fn rusanov_flux(l: [f64; 5], r: [f64; 5], axis: usize) -> [f64; 5] {
    let f = |u: [f64; 5]| -> [f64; 5] {
        let rho = u[0].max(1e-300);
        let vel = [u[1] / rho, u[2] / rho, u[3] / rho];
        let p = pressure(u);
        let vn = vel[axis];
        let mut flux = [u[0] * vn, u[1] * vn, u[2] * vn, u[3] * vn, (u[4] + p) * vn];
        flux[1 + axis] += p;
        flux
    };
    let wave = |u: [f64; 5]| -> f64 {
        let rho = u[0].max(1e-300);
        let a = (GAMMA * pressure(u).max(0.0) / rho).sqrt();
        (u[1 + axis] / rho).abs() + a
    };
    let fl = f(l);
    let fr = f(r);
    let s = wave(l).max(wave(r));
    let mut out = [0.0; 5];
    for k in 0..5 {
        out[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * s * (r[k] - l[k]);
    }
    out
}

/// Builds the implicitly parallel MiniAero program.
pub fn miniaero_program(cfg: MiniAeroConfig, mesh: &AeroMesh) -> (Program, AeroHandles) {
    let mut b = ProgramBuilder::new();
    let cfs = FieldSpace::of(&[
        ("rho", FieldType::F64),
        ("mx", FieldType::F64),
        ("my", FieldType::F64),
        ("mz", FieldType::F64),
        ("e", FieldType::F64),
        ("r0", FieldType::F64),
        ("r1", FieldType::F64),
        ("r2", FieldType::F64),
        ("r3", FieldType::F64),
        ("r4", FieldType::F64),
        ("u0_0", FieldType::F64),
        ("u0_1", FieldType::F64),
        ("u0_2", FieldType::F64),
        ("u0_3", FieldType::F64),
        ("u0_4", FieldType::F64),
    ]);
    let state = [
        cfs.lookup("rho").unwrap(),
        cfs.lookup("mx").unwrap(),
        cfs.lookup("my").unwrap(),
        cfs.lookup("mz").unwrap(),
        cfs.lookup("e").unwrap(),
    ];
    let resid = [
        cfs.lookup("r0").unwrap(),
        cfs.lookup("r1").unwrap(),
        cfs.lookup("r2").unwrap(),
        cfs.lookup("r3").unwrap(),
        cfs.lookup("r4").unwrap(),
    ];
    let saved = [
        cfs.lookup("u0_0").unwrap(),
        cfs.lookup("u0_1").unwrap(),
        cfs.lookup("u0_2").unwrap(),
        cfs.lookup("u0_3").unwrap(),
        cfs.lookup("u0_4").unwrap(),
    ];
    let ffs = FieldSpace::of(&[
        ("left", FieldType::I64),
        ("right", FieldType::I64),
        ("axis", FieldType::I64),
    ]);
    let f_left = ffs.lookup("left").unwrap();
    let f_right = ffs.lookup("right").unwrap();
    let f_axis = ffs.lookup("axis").unwrap();

    let cells = b.forest.create_region(Domain::range(mesh.num_cells), cfs);
    let faces = b
        .forest
        .create_region(Domain::range(mesh.faces.len() as u64), ffs);
    let pc = ops::block(&mut b.forest, cells, cfg.pieces);
    // Faces partitioned by the piece of their left cell (a preimage
    // through the left pointer — disjoint by construction).
    let face_left: Vec<i64> = mesh.faces.iter().map(|&(l, _)| l).collect();
    let pf = ops::preimage(&mut b.forest, faces, pc, move |f| {
        DynPoint::from(face_left[f.coord(0) as usize])
    });
    // Ghost cells per piece: both endpoints of the piece's faces.
    let eps = mesh.faces.clone();
    let gc = ops::image(&mut b.forest, cells, pf, move |f, sink| {
        let (l, r) = eps[f.coord(0) as usize];
        sink.push(DynPoint::from(l));
        sink.push(DynPoint::from(r));
    });

    let flux_task = b.task(TaskDecl {
        name: "compute_face_flux".into(),
        params: vec![
            RegionParam::read(&[f_left, f_right, f_axis]),
            RegionParam::read(&state),
            RegionParam {
                privilege: Privilege::Reduce(ReductionOp::Add),
                fields: resid.to_vec(),
            },
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for fp in dom.iter() {
                let l = DynPoint::from(ctx.read_i64(0, f_left, fp));
                let r = DynPoint::from(ctx.read_i64(0, f_right, fp));
                let axis = ctx.read_i64(0, f_axis, fp) as usize;
                let mut ul = [0.0; 5];
                let mut ur = [0.0; 5];
                for k in 0..5 {
                    ul[k] = ctx.read_f64(1, state[k], l);
                    ur[k] = ctx.read_f64(1, state[k], r);
                }
                let flux = rusanov_flux(ul, ur, axis);
                for k in 0..5 {
                    ctx.reduce_f64(2, resid[k], l, -flux[k]);
                    ctx.reduce_f64(2, resid[k], r, flux[k]);
                }
            }
        }),
        cost_per_element: 20.0,
    });
    let dt = cfg.dt;
    // Snapshot task: u₀ = u at the start of each RK step.
    let save_task = b.task(TaskDecl {
        name: "save_state".into(),
        params: vec![RegionParam::read_write(
            &state
                .iter()
                .chain(saved.iter())
                .copied()
                .collect::<Vec<_>>(),
        )],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                for k in 0..5 {
                    let u = ctx.read_f64(0, state[k], p);
                    ctx.write_f64(0, saved[k], p, u);
                }
            }
        }),
        cost_per_element: 5.0,
    });
    // Stage task: u = u₀ + α·dt·R(u), residual cleared. The stage
    // coefficient α arrives as a scalar argument.
    let apply_task = b.task(TaskDecl {
        name: "apply_stage".into(),
        params: vec![RegionParam::read_write(
            &state
                .iter()
                .chain(resid.iter())
                .chain(saved.iter())
                .copied()
                .collect::<Vec<_>>(),
        )],
        num_scalar_args: 1,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let alpha_dt = ctx.scalars[0];
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                for k in 0..5 {
                    let u0 = ctx.read_f64(0, saved[k], p);
                    let r = ctx.read_f64(0, resid[k], p);
                    ctx.write_f64(0, state[k], p, u0 + alpha_dt * r);
                    ctx.write_f64(0, resid[k], p, 0.0);
                }
            }
        }),
        cost_per_element: 8.0,
    });

    let l = b.for_loop(c(cfg.steps as f64));
    b.index_launch(save_task, cfg.pieces as u64, vec![RegionArg::Part(pc)]);
    // Jameson low-storage RK4: α_k = 1/(5−k) for k = 1..4.
    for stage in 1..=4u32 {
        let alpha = 1.0 / (5.0 - stage as f64);
        b.index_launch(
            flux_task,
            cfg.pieces as u64,
            vec![
                RegionArg::Part(pf),
                RegionArg::Part(gc),
                RegionArg::Part(gc),
            ],
        );
        b.index_launch_full(
            apply_task,
            cfg.pieces as u64,
            vec![RegionArg::Part(pc)],
            vec![c(alpha * dt)],
            None,
        );
    }
    b.end(l);

    // Stash the axis of each face into the region at init time via the
    // handles (see init_miniaero).
    (
        b.build(),
        AeroHandles {
            cells,
            faces,
            state,
            resid,
            f_left,
            f_right,
        },
    )
}

/// Initializes a Sod-like shock tube along x: high density/pressure in
/// the left half, low in the right, fluid at rest.
pub fn init_miniaero(
    program: &Program,
    store: &mut regent_ir::Store,
    h: &AeroHandles,
    cfg: &MiniAeroConfig,
    mesh: &AeroMesh,
) {
    let half = (cfg.nx / 2) as i64 * (cfg.ny * cfg.nz) as i64;
    store.fill_f64(program, h.cells, h.state[0], |p| {
        if p.coord(0) < half {
            1.0
        } else {
            0.125
        }
    });
    for k in 1..4 {
        store.fill_f64(program, h.cells, h.state[k], |_| 0.0);
    }
    store.fill_f64(program, h.cells, h.state[4], |p| {
        // E = p/(γ-1) for a gas at rest.
        let pr = if p.coord(0) < half { 1.0 } else { 0.1 };
        pr / (GAMMA - 1.0)
    });
    for k in 0..5 {
        store.fill_f64(program, h.cells, h.resid[k], |_| 0.0);
    }
    let faces = mesh.faces.clone();
    store.fill_i64(program, h.faces, h.f_left, |f| faces[f.coord(0) as usize].0);
    let faces = mesh.faces.clone();
    store.fill_i64(program, h.faces, h.f_right, |f| {
        faces[f.coord(0) as usize].1
    });
    // Axis: faces between x-neighbours have |l-r| = ny*nz, y-neighbours
    // nz, z-neighbours 1.
    let (ny, nz) = (cfg.ny as i64, cfg.nz as i64);
    let faces = mesh.faces.clone();
    let axis_field = program
        .forest
        .fields(h.faces)
        .lookup("axis")
        .expect("axis field");
    store.fill_i64(program, h.faces, axis_field, move |f| {
        let (l, r) = faces[f.coord(0) as usize];
        let d = (r - l).abs();
        if d == ny * nz {
            0
        } else if d == nz {
            1
        } else {
            2
        }
    });
}

/// Total mass/momentum/energy of the gas (conserved quantities).
pub fn conserved_totals(program: &Program, store: &regent_ir::Store, h: &AeroHandles) -> [f64; 5] {
    let inst = store.instance(program, h.cells);
    let mut tot = [0.0; 5];
    for p in program.forest.domain(h.cells).iter() {
        for (k, t) in tot.iter_mut().enumerate() {
            *t += inst.read_f64(h.state[k], p);
        }
    }
    tot
}

/// Builds the machine-simulation spec for Fig. 7: 512k cells per node,
/// slab decomposition, one RK4 step = 4 stages of flux + apply.
pub fn miniaero_spec(nodes: usize, machine: &MachineConfig) -> TimestepSpec {
    let cells_per_node: u64 = 512 * 1024;
    // Calibration: Fig. 7's CR line sits at ~1.5e6 cells/s/node for the
    // full RK4 step (~340 ms per step per node) → ~1.8 µs per cell per
    // core per stage (3 face fluxes + state update).
    let per_cell_stage = 1.78e-6;
    let tasks = machine.regent_compute_cores();
    let stage_compute = cells_per_node as f64 * per_cell_stage / tasks as f64;
    // Slab halo: one x-plane of cells each way, 5 conserved fields.
    let plane_cells = (cells_per_node as f64).powf(2.0 / 3.0);
    let halo_bytes = plane_cells * 5.0 * 8.0;
    let mut copies = Vec::new();
    for i in 0..nodes as u32 {
        if i > 0 {
            copies.push(CopyEdge {
                src: i,
                dst: i - 1,
                bytes: halo_bytes,
            });
        }
        if (i as usize) < nodes - 1 {
            copies.push(CopyEdge {
                src: i,
                dst: i + 1,
                bytes: halo_bytes,
            });
        }
    }
    // 4 RK stages; each = flux (with the ghost exchange afterwards)
    // and apply.
    let mut phases = Vec::new();
    for stage in 0..4 {
        phases.push(PhaseSpec {
            name: format!("flux{stage}"),
            tasks_per_node: tasks,
            task_compute_s: stage_compute * 0.8,
            copies: vec![],
            collective: false,
            consumes_collective: false,
        });
        phases.push(PhaseSpec {
            name: format!("apply{stage}"),
            tasks_per_node: tasks,
            task_compute_s: stage_compute * 0.2,
            copies: copies.clone(),
            collective: false,
            consumes_collective: false,
        });
    }
    TimestepSpec {
        num_nodes: nodes,
        elements_per_node: cells_per_node,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_ir::{interp, Store};

    #[test]
    fn mesh_face_counts() {
        let cfg = MiniAeroConfig::default();
        let mesh = build_mesh(&cfg);
        let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
        let expect = (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
        assert_eq!(mesh.faces.len(), expect);
        assert_eq!(mesh.num_cells, (nx * ny * nz) as u64);
        for &(l, r) in &mesh.faces {
            assert!(l < r, "left cell id below right");
            assert!((r as u64) < mesh.num_cells);
        }
    }

    #[test]
    fn conservation_under_time_stepping() {
        let cfg = MiniAeroConfig::default();
        let mesh = build_mesh(&cfg);
        let (prog, h) = miniaero_program(cfg, &mesh);
        regent_ir::validate(&prog).unwrap();
        let mut store = Store::new(&prog);
        init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
        let before = conserved_totals(&prog, &store, &h);
        interp::run(&prog, &mut store);
        let after = conserved_totals(&prog, &store, &h);
        // Interior fluxes cancel exactly; boundary faces don't exist
        // (no flux through the domain boundary) → exact conservation.
        for k in 0..5 {
            assert!(
                (before[k] - after[k]).abs() < 1e-9 * before[k].abs().max(1.0),
                "component {k}: {} -> {}",
                before[k],
                after[k]
            );
        }
        // And the shock actually moves: momentum becomes non-zero
        // somewhere even though the total stays ~0.
        let inst = store.instance(&prog, h.cells);
        let any_moving = prog
            .forest
            .domain(h.cells)
            .iter()
            .any(|p| inst.read_f64(h.state[1], p).abs() > 1e-9);
        assert!(any_moving, "expansion should induce momentum");
    }

    #[test]
    fn rusanov_flux_symmetry() {
        let u = [1.0, 0.1, 0.0, 0.0, 2.5];
        // Identical states: flux reduces to the analytic flux, no
        // dissipation term.
        let f = rusanov_flux(u, u, 0);
        let rho = u[0];
        let vx = u[1] / rho;
        let p = pressure(u);
        assert!((f[0] - u[0] * vx).abs() < 1e-12);
        assert!((f[1] - (u[1] * vx + p)).abs() < 1e-12);
        // Mirrored states along x produce mirrored mass flux.
        let l = [1.0, 0.2, 0.0, 0.0, 2.5];
        let r = [1.0, -0.2, 0.0, 0.0, 2.5];
        let f_lr = rusanov_flux(l, r, 0);
        let f_rl = rusanov_flux(r, l, 0);
        assert!((f_lr[0] + f_rl[0]).abs() < 1e-12);
    }

    #[test]
    fn spec_shape() {
        let m = MachineConfig::piz_daint(4);
        let spec = miniaero_spec(4, &m);
        assert_eq!(spec.phases.len(), 8); // 4 RK stages × 2
                                          // Slab chain: 2*(nodes-1) edges per exchange.
        assert_eq!(spec.phases[1].copies.len(), 6);
    }
}
