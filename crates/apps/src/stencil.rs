//! Stencil: the PRK 2-D star-shaped stencil benchmark (§5.1).
//!
//! "The code performs a stencil of configurable shape and radius over a
//! regular grid. Our experiments used a radius-2 star-shaped stencil on
//! a grid of double-precision floating point values with 40k² grid
//! points per node."
//!
//! The implicitly parallel program is the PRK iteration: each time step
//! applies `out += star(in)` (reading a cross-shaped halo around each
//! tile) and then `in += 1.0`. Tiles are a 2-D block partition; the
//! halo partition is the star-image of each tile, which aliases
//! neighbouring tiles — exactly the multiple-partition structure
//! control replication leverages.

use regent_geometry::{Domain, DynPoint, DynRect};
use regent_ir::{expr::c, Program, ProgramBuilder, RegionArg, RegionParam, TaskDecl};
use regent_machine::{CopyEdge, MachineConfig, PhaseSpec, TimestepSpec};
use regent_region::{ops, Color, Disjointness, FieldSpace, FieldType, RegionId};
use std::sync::Arc;

/// Configuration of a Stencil run.
#[derive(Clone, Copy, Debug)]
pub struct StencilConfig {
    /// Grid side length (the grid is `n × n`).
    pub n: u64,
    /// Tiles along x.
    pub ntx: usize,
    /// Tiles along y.
    pub nty: usize,
    /// Stencil radius (PRK default 2).
    pub radius: i64,
    /// Time steps.
    pub steps: u64,
}

impl Default for StencilConfig {
    fn default() -> Self {
        StencilConfig {
            n: 64,
            ntx: 2,
            nty: 2,
            radius: 2,
            steps: 4,
        }
    }
}

/// Handles to the program's regions/fields for initialization and
/// verification.
pub struct StencilHandles {
    /// The grid region.
    pub grid: RegionId,
    /// Input field.
    pub f_in: regent_region::FieldId,
    /// Output field.
    pub f_out: regent_region::FieldId,
}

/// The PRK star-stencil weights for radius `r`: `w(±k) = 1/(2kr)` on
/// each arm.
pub fn star_weight(r: i64, k: i64) -> f64 {
    1.0 / (2.0 * k as f64 * r as f64)
}

/// Builds the implicitly parallel Stencil program.
pub fn stencil_program(cfg: StencilConfig) -> (Program, StencilHandles) {
    assert!(cfg.radius >= 1);
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("in", FieldType::F64), ("out", FieldType::F64)]);
    let f_in = fs.lookup("in").unwrap();
    let f_out = fs.lookup("out").unwrap();
    let grid_rect = DynRect::new(
        DynPoint::new(&[0, 0]),
        DynPoint::new(&[cfg.n as i64 - 1, cfg.n as i64 - 1]),
    );
    let grid = b.forest.create_region(Domain::from_rect(grid_rect), fs);
    let tiles = ops::block2d(&mut b.forest, grid, cfg.ntx, cfg.nty);
    let colors: Vec<Color> = b.forest.partition(tiles).iter().map(|(c, _)| c).collect();

    // Halo partition: for each tile, the cross-shaped star image —
    // the tile extended by `radius` along x and along y (no corners),
    // clipped to the grid. Built directly as rectangle unions (the
    // image of the star stencil over a rectangle), classified aliased.
    let halo_subdomains: Vec<(Color, Domain)> = colors
        .iter()
        .map(|&col| {
            let tile = b.forest.domain(b.forest.subregion(tiles, col)).bounds();
            let row_band = DynRect::new(
                DynPoint::new(&[tile.lo().coord(0) - cfg.radius, tile.lo().coord(1)]),
                DynPoint::new(&[tile.hi().coord(0) + cfg.radius, tile.hi().coord(1)]),
            );
            let col_band = DynRect::new(
                DynPoint::new(&[tile.lo().coord(0), tile.lo().coord(1) - cfg.radius]),
                DynPoint::new(&[tile.hi().coord(0), tile.hi().coord(1) + cfg.radius]),
            );
            let dom = Domain::from_rects([
                row_band.intersection(&grid_rect),
                col_band.intersection(&grid_rect),
            ]);
            (col, dom)
        })
        .collect();
    let halo = b
        .forest
        .create_partition(grid, Disjointness::Aliased, halo_subdomains);

    let radius = cfg.radius;
    let n = cfg.n as i64;
    let stencil_task = b.task(TaskDecl {
        name: "stencil".into(),
        params: vec![
            RegionParam::read_write(&[f_out]),
            RegionParam::read(&[f_in]),
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let tile = ctx.domain(0).bounds();
            for i in tile.lo().coord(0)..=tile.hi().coord(0) {
                for j in tile.lo().coord(1)..=tile.hi().coord(1) {
                    // PRK skips the boundary ring of width `radius`.
                    if i < radius || i >= n - radius || j < radius || j >= n - radius {
                        continue;
                    }
                    let mut acc = 0.0;
                    for k in 1..=radius {
                        let w = star_weight(radius, k);
                        acc += w * ctx.read_f64(1, f_in, DynPoint::new(&[i + k, j]));
                        acc -= w * ctx.read_f64(1, f_in, DynPoint::new(&[i - k, j]));
                        acc += w * ctx.read_f64(1, f_in, DynPoint::new(&[i, j + k]));
                        acc -= w * ctx.read_f64(1, f_in, DynPoint::new(&[i, j - k]));
                    }
                    let p = DynPoint::new(&[i, j]);
                    let old = ctx.read_f64(0, f_out, p);
                    ctx.write_f64(0, f_out, p, old + acc);
                }
            }
        }),
        cost_per_element: 4.0 * radius as f64 + 1.0,
    });
    let add_task = b.task(TaskDecl {
        name: "increment_in".into(),
        params: vec![RegionParam::read_write(&[f_in])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let v = ctx.read_f64(0, f_in, p);
                ctx.write_f64(0, f_in, p, v + 1.0);
            }
        }),
        cost_per_element: 1.0,
    });

    let l = b.for_loop(c(cfg.steps as f64));
    b.index_launch_colors(
        stencil_task,
        colors.clone(),
        vec![RegionArg::Part(tiles), RegionArg::Part(halo)],
    );
    b.index_launch_colors(add_task, colors, vec![RegionArg::Part(tiles)]);
    b.end(l);

    (b.build(), StencilHandles { grid, f_in, f_out })
}

/// The PRK initial condition: `in(i,j) = i + j`, `out = 0`.
pub fn init_stencil(program: &Program, store: &mut regent_ir::Store, h: &StencilHandles) {
    store.fill_f64(program, h.grid, h.f_in, |p| {
        (p.coord(0) + p.coord(1)) as f64
    });
    store.fill_f64(program, h.grid, h.f_out, |_| 0.0);
}

/// Direct reference computation of the expected `out` value after
/// `steps` iterations (closed form: each step adds `star(in_t)` where
/// `in_t = in_0 + t`; the star of a constant is 0 and the star of
/// `i + j` is 0 too… except near boundaries, so we compute honestly).
pub fn reference_stencil(cfg: StencilConfig) -> Vec<Vec<(f64, f64)>> {
    let n = cfg.n as usize;
    let r = cfg.radius;
    let mut fin: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| (i + j) as f64).collect())
        .collect();
    let mut fout = vec![vec![0.0f64; n]; n];
    for _ in 0..cfg.steps {
        for i in 0..n {
            for j in 0..n {
                let (ii, jj) = (i as i64, j as i64);
                if ii < r || ii >= n as i64 - r || jj < r || jj >= n as i64 - r {
                    continue;
                }
                let mut acc = 0.0;
                for k in 1..=r {
                    let w = star_weight(r, k);
                    acc += w * fin[(ii + k) as usize][j];
                    acc -= w * fin[(ii - k) as usize][j];
                    acc += w * fin[i][(jj + k) as usize];
                    acc -= w * fin[i][(jj - k) as usize];
                }
                fout[i][j] += acc;
            }
        }
        for row in fin.iter_mut() {
            for v in row.iter_mut() {
                *v += 1.0;
            }
        }
    }
    (0..n)
        .map(|i| (0..n).map(|j| (fin[i][j], fout[i][j])).collect())
        .collect()
}

/// Builds the machine-simulation time-step spec for `nodes` nodes
/// (Fig. 6 workload: 40k² points per node, radius-2 star).
///
/// Nodes form a near-square grid; each exchanges `radius × side`
/// element rows/columns with its 4 neighbours. Per-node compute is
/// tiled one task per Regent compute core. The per-element compute
/// rate is calibrated so a single node matches the paper's ~1.4×10⁹
/// points/s (Fig. 6's flat CR line).
pub fn stencil_spec(nodes: usize, machine: &MachineConfig) -> TimestepSpec {
    let points_per_node: u64 = 40_000 * 40_000;
    let side = 40_000.0_f64; // per-node tile side
                             // Near-square node grid.
    let (nx, ny) = near_square(nodes);
    // Calibration: a node sustains ~1.45e9 pts/s on the 9-point
    // radius-2 star (memory-bandwidth bound) → ~6.2e-9 s per point per
    // compute core including memory traffic.
    let per_point = 6.2e-9;
    let tasks = machine.regent_compute_cores();
    let task_compute = points_per_node as f64 * per_point / machine.cores_per_node as f64
        * (machine.cores_per_node as f64 / tasks as f64);
    let halo_bytes = 2.0 * side * 8.0; // radius 2 × side × f64
    let mut copies = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            let me = (i * ny + j) as u32;
            let mut push = |di: i64, dj: i64| {
                let (ni, nj) = (i as i64 + di, j as i64 + dj);
                if ni >= 0 && ni < nx as i64 && nj >= 0 && nj < ny as i64 {
                    copies.push(CopyEdge {
                        src: me,
                        dst: (ni as usize * ny + nj as usize) as u32,
                        bytes: halo_bytes,
                    });
                }
            };
            push(-1, 0);
            push(1, 0);
            push(0, -1);
            push(0, 1);
        }
    }
    TimestepSpec {
        num_nodes: nodes,
        elements_per_node: points_per_node,
        phases: vec![
            PhaseSpec {
                name: "stencil".into(),
                tasks_per_node: tasks,
                task_compute_s: task_compute,
                copies: vec![],
                collective: false,
                consumes_collective: false,
            },
            PhaseSpec {
                name: "increment".into(),
                tasks_per_node: tasks,
                // `in += 1` is ~1/9 the stencil work.
                task_compute_s: task_compute / 9.0,
                copies,
                collective: false,
                consumes_collective: false,
            },
        ],
    }
}

/// Factors `n` into the most-square `(a, b)` with `a * b = n`.
pub fn near_square(n: usize) -> (usize, usize) {
    let mut a = (n as f64).sqrt() as usize;
    while a > 1 && !n.is_multiple_of(a) {
        a -= 1;
    }
    (a.max(1), n / a.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_ir::{interp, Store};

    #[test]
    fn matches_reference() {
        let cfg = StencilConfig {
            n: 24,
            ntx: 3,
            nty: 2,
            radius: 2,
            steps: 3,
        };
        let (prog, h) = stencil_program(cfg);
        regent_ir::validate(&prog).unwrap();
        let mut store = Store::new(&prog);
        init_stencil(&prog, &mut store, &h);
        interp::run(&prog, &mut store);
        let reference = reference_stencil(cfg);
        let inst = store.instance(&prog, h.grid);
        for i in 0..cfg.n as i64 {
            for j in 0..cfg.n as i64 {
                let p = DynPoint::new(&[i, j]);
                let (rin, rout) = reference[i as usize][j as usize];
                assert_eq!(inst.read_f64(h.f_in, p), rin, "in at ({i},{j})");
                assert!(
                    (inst.read_f64(h.f_out, p) - rout).abs() < 1e-12,
                    "out at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn radius_one_and_uneven_tiles() {
        let cfg = StencilConfig {
            n: 17,
            ntx: 3,
            nty: 4,
            radius: 1,
            steps: 2,
        };
        let (prog, h) = stencil_program(cfg);
        let mut store = Store::new(&prog);
        init_stencil(&prog, &mut store, &h);
        interp::run(&prog, &mut store);
        let reference = reference_stencil(cfg);
        let inst = store.instance(&prog, h.grid);
        for i in 0..cfg.n as i64 {
            for j in 0..cfg.n as i64 {
                let p = DynPoint::new(&[i, j]);
                assert!(
                    (inst.read_f64(h.f_out, p) - reference[i as usize][j as usize].1).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn near_square_factors() {
        assert_eq!(near_square(1), (1, 1));
        assert_eq!(near_square(4), (2, 2));
        assert_eq!(near_square(8), (2, 4));
        assert_eq!(near_square(1024), (32, 32));
        assert_eq!(near_square(7), (1, 7));
    }

    #[test]
    fn spec_shape() {
        let m = MachineConfig::piz_daint(4);
        let spec = stencil_spec(4, &m);
        assert_eq!(spec.num_nodes, 4);
        // 2x2 grid: each node has 2 neighbors → 8 edges.
        assert_eq!(spec.phases[1].copies.len(), 8);
        assert_eq!(spec.phases.len(), 2);
    }

    #[test]
    fn star_weights() {
        assert_eq!(star_weight(2, 1), 0.25);
        assert_eq!(star_weight(2, 2), 0.125);
        assert_eq!(star_weight(1, 1), 0.5);
    }
}

#[cfg(test)]
mod spec_invariant_tests {
    use super::*;
    use crate::circuit;
    use crate::miniaero;
    use crate::pennant;
    use regent_machine::MachineConfig;

    /// Every app's spec must satisfy the invariants the simulator
    /// assumes: positive task counts and compute times, copy endpoints
    /// in range, and per-node elements matching the paper's workload.
    #[test]
    fn all_specs_are_well_formed() {
        for nodes in [1usize, 2, 7, 64] {
            let m = MachineConfig::piz_daint(nodes);
            let specs = [
                ("stencil", stencil_spec(nodes, &m)),
                ("miniaero", miniaero::miniaero_spec(nodes, &m)),
                ("pennant", pennant::pennant_spec(nodes, &m)),
                ("circuit", circuit::circuit_spec(nodes, &m)),
            ];
            for (name, spec) in specs {
                assert_eq!(spec.num_nodes, nodes, "{name}");
                assert!(spec.elements_per_node > 0, "{name}");
                assert!(!spec.phases.is_empty(), "{name}");
                for ph in &spec.phases {
                    assert!(ph.tasks_per_node > 0, "{name}/{}", ph.name);
                    assert!(ph.task_compute_s > 0.0, "{name}/{}", ph.name);
                    for e in &ph.copies {
                        assert!((e.src as usize) < nodes, "{name}/{}", ph.name);
                        assert!((e.dst as usize) < nodes, "{name}/{}", ph.name);
                        assert!(e.src != e.dst, "{name}/{}: self copy", ph.name);
                        assert!(e.bytes > 0.0, "{name}/{}", ph.name);
                    }
                }
            }
        }
    }

    #[test]
    fn paper_workload_sizes() {
        let m = MachineConfig::piz_daint(4);
        assert_eq!(stencil_spec(4, &m).elements_per_node, 40_000 * 40_000);
        assert_eq!(miniaero::miniaero_spec(4, &m).elements_per_node, 512 * 1024);
        assert_eq!(pennant::pennant_spec(4, &m).elements_per_node, 7_400_000);
        assert_eq!(circuit::circuit_spec(4, &m).elements_per_node, 25_000);
    }
}
