//! Cross-executor differential harness: every evaluation application,
//! executed through every executor path in the stack, must agree.
//!
//! For each app (and several sizes / shard counts / seeds):
//!
//! * **sequential** (`regent_ir::interp`) — the reference semantics;
//! * **implicit** — must match the reference *bit-for-bit* (dynamic
//!   dependence analysis serializes reductions, so no reassociation);
//! * **implicit + memo** — epoch-trace replay must match the plain
//!   implicit run bit-for-bit and record at least one template hit;
//! * **SPMD** (control replication) — matches the reference under the
//!   app's reduction tolerance (0.0 for Stencil, which has none);
//! * **hybrid** (range-local replication, §2.2) — must match the SPMD
//!   run bit-for-bit: the apps' bodies are a single replicable range,
//!   so both paths execute the identical sharded schedule;
//! * **log** (shared-log control replication) — a single sequencer
//!   appends the control program to a flat-combining launch log and
//!   per-shard executors tail it; the data plane is the SPMD one, so
//!   regions must match the SPMD run bit-for-bit and the env must
//!   match the sequential reference exactly.
//!
//! Every traced run is additionally certified by the Legion Spy-style
//! validator: the happens-before graph reconstructed from the event log
//! must order every overlapping-privilege pair — including the edges a
//! memoized run *replays* instead of re-deriving.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::hybrid::{replicate_ranges, Segment};
use regent_cr::{control_replicate, CrOptions, ForestOracle};
use regent_ir::{interp, Program, Store};
use regent_region::{FieldType, RegionForest, RegionId};
use regent_runtime::{
    execute_hybrid_traced, execute_implicit, execute_log_traced, execute_spmd_traced,
    ImplicitOptions, MemoCache,
};
use regent_trace::{memo_summary, validate, Trace, Tracer};

/// Compares every root region of two executions. `rel_tol == 0.0`
/// demands bit-identical f64 contents (NaN bit patterns included).
fn compare_roots(
    label: &str,
    roots: &[RegionId],
    fa: &RegionForest,
    sa: &Store,
    fb: &RegionForest,
    sb: &Store,
    rel_tol: f64,
) {
    for &root in roots {
        let ia = sa.instance_in(fa, root);
        let ib = sb.instance_in(fb, root);
        for (fid, def) in fa.fields(root).iter() {
            for p in fa.domain(root).iter() {
                match def.ty {
                    FieldType::F64 => {
                        let a = ia.read_f64(fid, p);
                        let b = ib.read_f64(fid, p);
                        if rel_tol == 0.0 {
                            assert!(
                                a.to_bits() == b.to_bits(),
                                "{label}: field {:?} at {:?}: {a} vs {b}",
                                def.name,
                                p
                            );
                        } else {
                            let scale = a.abs().max(b.abs()).max(1.0);
                            assert!(
                                (a - b).abs() <= rel_tol * scale,
                                "{label}: field {:?} at {:?}: {a} vs {b}",
                                def.name,
                                p
                            );
                        }
                    }
                    FieldType::I64 => {
                        assert_eq!(
                            ia.read_i64(fid, p),
                            ib.read_i64(fid, p),
                            "{label}: field {:?} at {:?}",
                            def.name,
                            p
                        );
                    }
                }
            }
        }
    }
}

/// Spy-certifies a trace against the given forest's overlap oracle.
fn certify(label: &str, forest: &RegionForest, trace: &Trace) {
    let oracle = ForestOracle::new(forest);
    let report = validate(trace, &oracle).unwrap_or_else(|e| panic!("{label}: corrupt log: {e}"));
    assert!(
        report.ok(),
        "{label}: spy violations ({} certified):\n{:?}",
        report.certified,
        report.violations
    );
    assert!(report.certified > 0, "{label}: no dependences exercised");
}

/// Runs one program factory through all five executor paths and checks
/// the full agreement matrix described in the module docs.
fn differential(name: &str, mk: &dyn Fn() -> (Program, Store), shard_counts: &[usize], tol: f64) {
    // Sequential reference.
    let (prog_seq, mut store_seq) = mk();
    let roots = prog_seq.root_regions();
    let (env_seq, _) = interp::run(&prog_seq, &mut store_seq);

    // Implicit, traced: bit-identical to the reference.
    let (prog_imp, mut store_imp) = mk();
    let tracer = Tracer::enabled();
    let opts = ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    };
    let (env_imp, istats) = execute_implicit(&prog_imp, &mut store_imp, opts);
    assert_eq!(env_seq, env_imp, "{name}: implicit env diverged");
    assert!(istats.tasks_launched > 0);
    compare_roots(
        &format!("{name}/implicit"),
        &roots,
        &prog_seq.forest,
        &store_seq,
        &prog_imp.forest,
        &store_imp,
        0.0,
    );
    certify(
        &format!("{name}/implicit"),
        &prog_imp.forest,
        &tracer.take(),
    );

    // Implicit + memo, traced: bit-identical to the implicit run, with
    // at least one epoch replayed from a captured template.
    let (prog_memo, mut store_memo) = mk();
    let tracer = Tracer::enabled();
    let opts = ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    }
    .with_memo(MemoCache::shared());
    let (env_memo, mstats) = execute_implicit(&prog_memo, &mut store_memo, opts);
    assert_eq!(env_imp, env_memo, "{name}: memoized env diverged");
    assert!(
        mstats.memo_hits >= 1,
        "{name}: no template hit (captures={}, misses={})",
        mstats.memo_captures,
        mstats.memo_misses
    );
    assert!(mstats.memo_replayed_tasks > 0);
    compare_roots(
        &format!("{name}/memo"),
        &roots,
        &prog_imp.forest,
        &store_imp,
        &prog_memo.forest,
        &store_memo,
        0.0,
    );
    certify(&format!("{name}/memo"), &prog_memo.forest, &tracer.take());

    for &ns in shard_counts {
        // SPMD, traced: matches the reference under the app tolerance.
        let (prog_cr, mut store_cr) = mk();
        let spmd = control_replicate(prog_cr, &CrOptions::new(ns)).unwrap();
        let tracer = Tracer::enabled();
        let r = execute_spmd_traced(&spmd, &mut store_cr, &tracer);
        assert_eq!(env_seq, r.env, "{name}/spmd ns={ns}: env diverged");
        certify(
            &format!("{name}/spmd ns={ns}"),
            &spmd.forest,
            &tracer.take(),
        );
        compare_roots(
            &format!("{name}/spmd ns={ns}"),
            &roots,
            &prog_seq.forest,
            &store_seq,
            &spmd.forest,
            &store_cr,
            tol,
        );

        // Hybrid, traced: bit-identical to the SPMD run.
        let (prog_h, mut store_h) = mk();
        let hybrid = replicate_ranges(prog_h, &CrOptions::new(ns)).unwrap();
        assert_eq!(
            hybrid.num_replicated(),
            1,
            "{name}: app body should be one replicable range"
        );
        let tracer = Tracer::enabled();
        let rh = execute_hybrid_traced(&hybrid, &mut store_h, &tracer);
        assert_eq!(r.env, rh.env, "{name}/hybrid ns={ns}: env diverged");
        let seg_forest = hybrid
            .segments
            .iter()
            .find_map(|s| match s {
                Segment::Replicated(sp) => Some(&sp.forest),
                Segment::Sequential(_) => None,
            })
            .unwrap();
        certify(
            &format!("{name}/hybrid ns={ns}"),
            seg_forest,
            &tracer.take(),
        );
        compare_roots(
            &format!("{name}/hybrid ns={ns}"),
            &roots,
            &spmd.forest,
            &store_cr,
            &hybrid.base.forest,
            &store_h,
            0.0,
        );

        // Shared-log, traced: same checksummed data plane as SPMD, so
        // regions are bit-identical to the SPMD run; scalar feedback
        // keeps the env exact vs the sequential reference.
        let (prog_l, mut store_l) = mk();
        let spmd_l = control_replicate(prog_l, &CrOptions::new(ns)).unwrap();
        let tracer = Tracer::enabled();
        let rl = execute_log_traced(&spmd_l, &mut store_l, &tracer);
        assert_eq!(env_seq, rl.env, "{name}/log ns={ns}: env diverged");
        assert!(
            rl.log.batches > 0 && rl.log.appended_records > 0,
            "{name}/log ns={ns}: log never combined ({:?})",
            rl.log
        );
        certify(
            &format!("{name}/log ns={ns}"),
            &spmd_l.forest,
            &tracer.take(),
        );
        compare_roots(
            &format!("{name}/log-vs-spmd ns={ns}"),
            &roots,
            &spmd.forest,
            &store_cr,
            &spmd_l.forest,
            &store_l,
            0.0,
        );
        compare_roots(
            &format!("{name}/log ns={ns}"),
            &roots,
            &prog_seq.forest,
            &store_seq,
            &spmd_l.forest,
            &store_l,
            tol,
        );
    }
}

#[test]
fn differential_stencil() {
    // Stencil has no reductions: every path is bit-exact. Two sizes.
    for (n, ntx, nty, steps) in [(32u64, 2usize, 2usize, 4u64), (40, 4, 2, 5)] {
        let mk = move || {
            let cfg = stencil::StencilConfig {
                n,
                ntx,
                nty,
                radius: 2,
                steps,
            };
            let (prog, h) = stencil::stencil_program(cfg);
            let mut store = Store::new(&prog);
            stencil::init_stencil(&prog, &mut store, &h);
            (prog, store)
        };
        differential(&format!("stencil n={n}"), &mk, &[1, 2, 3], 0.0);
    }
}

#[test]
fn differential_circuit() {
    // Two seeds: different random graphs, hence different ghost-node
    // communication patterns.
    for seed in [42u64, 1234] {
        let mk = move || {
            let cfg = circuit::CircuitConfig {
                pieces: 6,
                nodes_per_piece: 30,
                wires_per_piece: 90,
                cross_fraction: 0.12,
                steps: 4,
                substeps: 4,
                seed,
            };
            let g = circuit::generate_graph(&cfg);
            let (prog, h) = circuit::circuit_program(cfg, &g);
            let mut store = Store::new(&prog);
            circuit::init_circuit(&prog, &mut store, &h, &g);
            (prog, store)
        };
        differential(&format!("circuit seed={seed}"), &mk, &[1, 3], 1e-12);
    }
}

#[test]
fn differential_miniaero() {
    let mk = || {
        let cfg = miniaero::MiniAeroConfig {
            nx: 12,
            ny: 4,
            nz: 3,
            pieces: 4,
            steps: 4,
            dt: 5e-4,
        };
        let mesh = miniaero::build_mesh(&cfg);
        let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    differential("miniaero", &mk, &[1, 3], 1e-11);
}

#[test]
fn differential_pennant() {
    // PENNANT's While loop is driven by a Min-reduced dt: every
    // executor must take the same trip count for the stores to agree.
    let mk = || {
        let cfg = pennant::PennantConfig {
            nzx: 10,
            nzy: 5,
            pieces: 3,
            tstop: 3e-2,
            dtmax: 2e-2,
        };
        let mesh = pennant::build_mesh(&cfg);
        let (prog, h) = pennant::pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    differential("pennant", &mk, &[1, 2, 3], 1e-11);
}

/// The Fig. 6 acceptance shape: a memoized stencil run long enough to
/// reach steady state reports a ≥90% hit rate, with per-epoch analysis
/// cost collapsing to near zero after the first (captured) epoch.
#[test]
fn memoized_stencil_amortizes_analysis() {
    let cfg = stencil::StencilConfig {
        n: 48,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 12,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    let tracer = Tracer::enabled();
    let opts = ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    }
    .with_memo(MemoCache::shared());
    let (_, stats) = execute_implicit(&prog, &mut store, opts);
    let summary = memo_summary(&tracer.take(), "control");
    assert_eq!(summary.captures, 1, "{summary:?}");
    assert!(
        summary.steady_state_hit_rate() >= 0.9,
        "steady-state hit rate {:.2} ({summary:?})",
        summary.steady_state_hit_rate()
    );
    assert!(
        summary.steady_state_analysis_ns < summary.first_epoch_analysis_ns as f64 / 10.0,
        "analysis not amortized: first {} ns, steady {} ns",
        summary.first_epoch_analysis_ns,
        summary.steady_state_analysis_ns
    );
    assert_eq!(stats.memo_hits, 11, "one capture + 11 replays");
}
