//! Checkpoint–restart recovery on the evaluation applications: for
//! every app, a resilient run with injected shard crashes must produce
//! region contents and scalar environments *bit-identical* to the
//! fault-free SPMD run (tolerance 0.0 — replay re-executes the exact
//! same kernels on the exact same snapshots), and the Spy validator
//! must certify the recovered trace like any other: replayed work gets
//! fresh trace identities, so the happens-before graph stays sound.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::{control_replicate, CrOptions, ForestOracle, SpmdProgram};
use regent_ir::{Program, Store};
use regent_region::FieldType;
use regent_runtime::{
    execute_spmd, execute_spmd_resilient_traced, FaultPlan, ResilienceOptions, SpmdRunResult,
};
use regent_trace::{validate, EventKind, Tracer};

/// Runs `mk`'s program fault-free and resilient (traced), asserts
/// bit-identical results, certifies the recovered trace, and returns
/// the resilient result for extra assertions.
fn assert_recovers(
    mk: impl Fn() -> (Program, Store),
    ns: usize,
    opts: &ResilienceOptions,
) -> SpmdRunResult {
    let (prog_a, mut store_a) = mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd_a, &mut store_a);

    let (prog_b, mut store_b) = mk();
    let spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let resilient = execute_spmd_resilient_traced(&spmd_b, &mut store_b, opts, &tracer);
    let trace = tracer.take();

    // Values: bit-identical env and regions; useful-work stats exclude
    // replays and must also match the fault-free run.
    assert_eq!(
        plain.env, resilient.env,
        "scalar env diverged after recovery"
    );
    assert_eq!(plain.stats.tasks_executed, resilient.stats.tasks_executed);
    assert_eq!(plain.stats.copies_executed, resilient.stats.copies_executed);
    assert_eq!(plain.stats.messages_sent, resilient.stats.messages_sent);
    assert_eq!(plain.stats.collectives, resilient.stats.collectives);
    for root in roots {
        compare_root(&spmd_a, &store_a, &spmd_b, &store_b, root);
    }

    // Ordering: the Spy certifies the recovered trace.
    let oracle = ForestOracle::new(&spmd_b.forest);
    let report = validate(&trace, &oracle).expect("structurally valid recovered log");
    assert!(
        report.ok(),
        "spy violations on recovered trace:\n{:?}",
        report.violations
    );
    assert!(report.certified > 0, "no dependences were exercised");

    // The recovery actually happened and left its marks in the trace.
    if opts.plan.has_crashes() && resilient.per_shard[0].restores > 0 {
        let crashes = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.kind, EventKind::ShardCrash { .. }))
            .count();
        let restores = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.kind, EventKind::CheckpointRestore { .. }))
            .count();
        assert!(crashes > 0, "crash never recorded");
        assert_eq!(
            restores as u64, resilient.stats.restores,
            "every shard records each restore"
        );
    }
    resilient
}

fn compare_root(
    spmd_a: &SpmdProgram,
    store_a: &Store,
    spmd_b: &SpmdProgram,
    store_b: &Store,
    root: regent_region::RegionId,
) {
    let ia = store_a.instance_in(&spmd_a.forest, root);
    let ib = store_b.instance_in(&spmd_b.forest, root);
    for (fid, def) in spmd_a.forest.fields(root).iter() {
        for pt in spmd_a.forest.domain(root).iter() {
            match def.ty {
                FieldType::F64 => {
                    let a = ia.read_f64(fid, pt);
                    let b = ib.read_f64(fid, pt);
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "field {:?} at {:?}: plain={a} recovered={b}",
                        def.name,
                        pt
                    );
                }
                FieldType::I64 => {
                    assert_eq!(
                        ia.read_i64(fid, pt),
                        ib.read_i64(fid, pt),
                        "field {:?} at {:?}",
                        def.name,
                        pt
                    );
                }
            }
        }
    }
}

#[test]
fn stencil_recovers_bit_identical() {
    let mk = || {
        let cfg = stencil::StencilConfig {
            n: 40,
            ntx: 4,
            nty: 2,
            radius: 2,
            steps: 5,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(7).crash_shard(1, 3),
        ..Default::default()
    };
    let res = assert_recovers(mk, 3, &opts);
    assert_eq!(res.per_shard[0].restores, 1);
    assert_eq!(res.per_shard[0].epochs_replayed, 1);
}

#[test]
fn circuit_recovers_bit_identical() {
    let mk = || {
        let cfg = circuit::CircuitConfig {
            pieces: 6,
            nodes_per_piece: 30,
            wires_per_piece: 90,
            cross_fraction: 0.12,
            steps: 4,
            substeps: 3,
            seed: 42,
        };
        let g = circuit::generate_graph(&cfg);
        let (prog, h) = circuit::circuit_program(cfg, &g);
        let mut store = Store::new(&prog);
        circuit::init_circuit(&prog, &mut store, &h, &g);
        (prog, store)
    };
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(13).crash_shard(2, 3),
        ..Default::default()
    };
    let res = assert_recovers(mk, 3, &opts);
    assert!(res.per_shard[0].restores > 0);
}

#[test]
fn miniaero_recovers_bit_identical() {
    let mk = || {
        let cfg = miniaero::MiniAeroConfig {
            nx: 12,
            ny: 4,
            nz: 3,
            pieces: 4,
            steps: 4,
            dt: 5e-4,
        };
        let mesh = miniaero::build_mesh(&cfg);
        let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(21).crash_shard(0, 2),
        ..Default::default()
    };
    let res = assert_recovers(mk, 3, &opts);
    assert!(res.per_shard[0].restores > 0);
}

#[test]
fn pennant_recovers_bit_identical() {
    // PENNANT's outer loop is a While driven by a Min-reduced dt — the
    // rollback must restore the replicated scalar state so every shard
    // re-derives the same trip decisions.
    let mk = || {
        let cfg = pennant::PennantConfig {
            nzx: 10,
            nzy: 5,
            pieces: 3,
            tstop: 2e-2,
            dtmax: 2e-2,
        };
        let mesh = pennant::build_mesh(&cfg);
        let (prog, h) = pennant::pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(33).crash_shard(1, 2),
        ..Default::default()
    };
    assert_recovers(mk, 3, &opts);
}

#[test]
fn stencil_seeded_plan_recovers() {
    // The REGENT_FAULT_SEED-shaped plan (seeded single crash, K=2):
    // what the CI fault smoke exercises on every app test.
    let mk = || {
        let cfg = stencil::StencilConfig {
            n: 32,
            ntx: 2,
            nty: 2,
            radius: 2,
            steps: 5,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };
    for seed in [42u64, 7, 99] {
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::seeded_crash(seed, 4, 4),
            ..Default::default()
        };
        assert_recovers(mk, 4, &opts);
    }
}
