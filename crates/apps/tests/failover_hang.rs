//! Hang-detection failover: a shard that *stalls* (no panic, no exit —
//! it just stops producing) past `REGENT_HANG_TIMEOUT_MS` must be
//! blamed `Hung` by the peers waiting on its messages, evicted from
//! the membership, and the run completed bit-identically by the
//! survivors.
//!
//! This lives in its own test binary: `hang_timeout()` caches the env
//! var in a process-wide `OnceLock`, so the short timeout must be set
//! before any other test touches the exchange paths.

use regent_apps::stencil;
use regent_cr::{control_replicate, CrOptions};
use regent_ir::Store;
use regent_region::FieldType;
use regent_runtime::{
    classify_failure, execute_spmd, execute_spmd_failover, DeathCause, FailoverOptions,
    FailureClass, FaultPlan, ResilienceOptions,
};

#[test]
fn stalled_shard_is_blamed_hung_and_evicted() {
    // Must precede the first hang_timeout() call in this process.
    std::env::set_var("REGENT_HANG_TIMEOUT_MS", "500");

    // Keep shard-loss poison cascades off stderr; real failures still
    // report.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| {
                classify_failure(m) != FailureClass::Permanent
                    || m.starts_with("copy channel closed")
            });
        if !expected {
            prev(info);
        }
    }));

    let mk = || {
        let cfg = stencil::StencilConfig {
            n: 40,
            ntx: 4,
            nty: 2,
            radius: 2,
            steps: 5,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };

    let (prog_a, mut store_a) = mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(3)).unwrap();
    let plain = execute_spmd(&spmd_a, &mut store_a);

    let (prog_b, mut store_b) = mk();
    let mut spmd_b = control_replicate(prog_b, &CrOptions::new(3)).unwrap();
    // Stall shard 1 for 4x the hang timeout at the epoch-2 boundary:
    // its peers' bounded waits expire first and blame it on the death
    // board; the woken victim then dies on the poisoned collectives.
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(17).stall_shard(1, 2, 2_000),
        ..Default::default()
    };
    let r = execute_spmd_failover(
        &mut spmd_b,
        &mut store_b,
        &opts,
        &FailoverOptions::default(),
    );

    assert_eq!(r.attempts, 2, "the stall must cost exactly one attempt");
    assert_eq!(
        r.final_shards, 2,
        "the hung shard must leave the membership"
    );
    assert_eq!(r.deaths.len(), 1);
    assert_eq!(r.deaths[0].shard, 1, "blame must land on the stalled shard");
    assert_eq!(
        r.deaths[0].cause,
        DeathCause::Hung,
        "a stall is a hang, not a kill or panic"
    );

    assert_eq!(plain.env, r.run.env, "scalar env diverged after eviction");
    for &root in &roots {
        let ia = store_a.instance_in(&spmd_a.forest, root);
        let ib = store_b.instance_in(&spmd_b.forest, root);
        for (fid, def) in spmd_a.forest.fields(root).iter() {
            for pt in spmd_a.forest.domain(root).iter() {
                match def.ty {
                    FieldType::F64 => {
                        assert!(
                            ia.read_f64(fid, pt).to_bits() == ib.read_f64(fid, pt).to_bits(),
                            "field {:?} at {:?} diverged",
                            def.name,
                            pt
                        );
                    }
                    FieldType::I64 => {
                        assert_eq!(ia.read_i64(fid, pt), ib.read_i64(fid, pt));
                    }
                }
            }
        }
    }
}
