//! Legion Spy-style validation of real executions: run each evaluation
//! application through control replication with tracing enabled,
//! reconstruct the happens-before graph from the shard event logs, and
//! certify that every RAW/WAR/WAW dependence implied by the tasks'
//! privileges was actually ordered — by program order, a conflict edge,
//! or a delivered copy (§3.4's consumer-applied protocol).
//!
//! This is an independent correctness oracle beside the bit-identical
//! store comparisons of `cr_apps.rs`: those check the *values*, the Spy
//! checks the *ordering mechanism* that produced them.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::{control_replicate, CrOptions, ForestOracle, SpmdProgram};
use regent_ir::Store;
use regent_runtime::execute_spmd_traced;
use regent_trace::{validate, EventKind, SpyReport, Trace, Tracer};

/// Runs an SPMD program with tracing and returns the recorded trace.
fn traced_run(spmd: &SpmdProgram, store: &mut Store) -> Trace {
    let tracer = Tracer::enabled();
    execute_spmd_traced(spmd, store, &tracer);
    tracer.take()
}

fn certify(spmd: &SpmdProgram, trace: &Trace) -> SpyReport {
    let oracle = ForestOracle::new(&spmd.forest);
    let report = validate(trace, &oracle).expect("structurally valid log");
    assert!(
        report.ok(),
        "spy violations ({} tasks, {} pairs, {} certified):\n{:?}",
        report.tasks,
        report.pairs_checked,
        report.certified,
        report.violations
    );
    assert!(report.certified > 0, "no dependences were exercised");
    report
}

#[test]
fn spy_certifies_stencil() {
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 4,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    let spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let trace = traced_run(&spmd, &mut store);
    certify(&spmd, &trace);
    // Halo exchange across shards: certification must have rested on
    // actual copy deliveries, not just program order.
    let applies: usize = trace
        .tracks
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| matches!(e.kind, EventKind::CopyApply { .. }))
        .count();
    assert!(applies > 0, "stencil must exchange halos across shards");
}

#[test]
fn spy_certifies_circuit() {
    let cfg = circuit::CircuitConfig {
        pieces: 6,
        nodes_per_piece: 30,
        wires_per_piece: 90,
        cross_fraction: 0.12,
        steps: 3,
        substeps: 4,
        seed: 42,
    };
    let g = circuit::generate_graph(&cfg);
    let (prog, h) = circuit::circuit_program(cfg, &g);
    let mut store = Store::new(&prog);
    circuit::init_circuit(&prog, &mut store, &h, &g);
    let spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let trace = traced_run(&spmd, &mut store);
    certify(&spmd, &trace);
}

#[test]
fn spy_certifies_miniaero() {
    let cfg = miniaero::MiniAeroConfig {
        nx: 12,
        ny: 4,
        nz: 3,
        pieces: 4,
        steps: 3,
        dt: 5e-4,
    };
    let mesh = miniaero::build_mesh(&cfg);
    let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
    let mut store = Store::new(&prog);
    miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
    let spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let trace = traced_run(&spmd, &mut store);
    certify(&spmd, &trace);
}

#[test]
fn spy_certifies_pennant() {
    let cfg = pennant::PennantConfig {
        nzx: 10,
        nzy: 5,
        pieces: 3,
        tstop: 2e-2,
        dtmax: 2e-2,
    };
    let mesh = pennant::build_mesh(&cfg);
    let (prog, h) = pennant::pennant_program(cfg, &mesh);
    let mut store = Store::new(&prog);
    pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
    let spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let trace = traced_run(&spmd, &mut store);
    certify(&spmd, &trace);
}

#[test]
fn spy_certifies_stencil_under_implicit_executor() {
    use regent_runtime::{execute_implicit, ImplicitOptions};
    let cfg = stencil::StencilConfig {
        n: 32,
        ntx: 2,
        nty: 2,
        radius: 2,
        steps: 3,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    let tracer = Tracer::enabled();
    let opts = ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    };
    let (_, stats) = execute_implicit(&prog, &mut store, opts);
    assert!(stats.tasks_launched > 0);
    let trace = tracer.take();
    let oracle = ForestOracle::new(&prog.forest);
    let report = validate(&trace, &oracle).expect("structurally valid log");
    assert!(report.ok(), "spy violations: {:?}", report.violations);
    assert!(report.certified > 0);
}

/// Corrupting the log must be detected, in both the structural and the
/// semantic direction — this is what makes a passing Spy report
/// meaningful.
#[test]
fn spy_fails_on_corrupted_log() {
    let cfg = stencil::StencilConfig {
        n: 32,
        ntx: 2,
        nty: 2,
        radius: 2,
        steps: 3,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    let spmd = control_replicate(prog, &CrOptions::new(2)).unwrap();
    let trace = traced_run(&spmd, &mut store);
    let oracle = ForestOracle::new(&spmd.forest);
    assert!(validate(&trace, &oracle).unwrap().ok());

    // Drop every CopyApply: cross-shard RAW dependences lose their
    // delivery evidence → "missing-delivery" violations.
    let mut no_applies = Trace {
        tracks: trace.tracks.clone(),
    };
    let mut dropped = 0;
    for t in &mut no_applies.tracks {
        let before = t.events.len();
        t.events
            .retain(|e| !matches!(e.kind, EventKind::CopyApply { .. }));
        dropped += before - t.events.len();
    }
    assert!(dropped > 0, "trace had no applies to corrupt");
    let report = validate(&no_applies, &oracle).unwrap();
    assert!(!report.ok(), "stripped deliveries must fail certification");
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind == "missing-delivery"));

    // Drop every CopyIssue instead: the surviving applies have no
    // producer → structural corruption, reported as an error.
    let mut no_issues = Trace {
        tracks: trace.tracks.clone(),
    };
    for t in &mut no_issues.tracks {
        t.events
            .retain(|e| !matches!(e.kind, EventKind::CopyIssue { .. }));
    }
    let err = validate(&no_issues, &oracle).unwrap_err();
    assert!(err.contains("no matching CopyIssue"), "{err}");
    let _ = h;
}
