//! Silent-data-corruption survival on the evaluation applications: for
//! every app and several corruption seeds, an SPMD run with seeded
//! bit flips injected into exchange payloads, collective contributions,
//! and resident instances must
//!
//! * detect every injected flip at a checksum verification point,
//! * repair it (payload retransmission) or escalate it (coordinated
//!   rollback of resident corruption), and
//! * finish with region contents and scalar environments *bit-identical*
//!   to the fault-free run, with the Spy certifying the repaired trace.
//!
//! This is the end-to-end contract of the integrity layer: corruption
//! is invisible in the results, visible in the trace.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::{control_replicate, CrOptions, ForestOracle, SpmdProgram};
use regent_ir::{Program, Store};
use regent_region::FieldType;
use regent_runtime::{
    execute_spmd, execute_spmd_resilient_traced, FaultPlan, ResilienceOptions, SpmdRunResult,
};
use regent_trace::{integrity_summary, validate, Tracer};

/// Runs `mk`'s program fault-free and under corruption (traced),
/// asserts bit-identical results and a coherent, Spy-certified trace,
/// and returns the corrupted run's result for extra assertions.
fn assert_survives_corruption(
    mk: impl Fn() -> (Program, Store),
    ns: usize,
    seed: u64,
    rate: f64,
) -> SpmdRunResult {
    let (prog_a, mut store_a) = mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd_a, &mut store_a);

    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(seed).with_corrupt_rate(rate),
        ..Default::default()
    };
    let (prog_b, mut store_b) = mk();
    let spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let corrupted = execute_spmd_resilient_traced(&spmd_b, &mut store_b, &opts, &tracer);
    let trace = tracer.take();

    // Values: bit-identical env and regions; useful-work stats exclude
    // retransmits and replays, so they match the fault-free run too.
    assert_eq!(
        plain.env, corrupted.env,
        "scalar env diverged under corruption (seed {seed})"
    );
    assert_eq!(plain.stats.tasks_executed, corrupted.stats.tasks_executed);
    assert_eq!(plain.stats.copies_executed, corrupted.stats.copies_executed);
    assert_eq!(plain.stats.messages_sent, corrupted.stats.messages_sent);
    assert_eq!(plain.stats.collectives, corrupted.stats.collectives);
    for root in roots {
        compare_root(&spmd_a, &store_a, &spmd_b, &store_b, root, seed);
    }

    // Every injected flip was caught, and the trace's event record
    // balances: detections resolve into repairs or escalations.
    let st = &corrupted.stats;
    assert!(
        st.corruptions_detected >= 1,
        "seed {seed} injected nothing — raise the rate or change the seed"
    );
    assert_eq!(
        st.corruptions_injected, st.corruptions_detected,
        "a silent flip escaped the checksums (seed {seed})"
    );
    assert!(
        st.corruptions_repaired + st.corruptions_escalated >= 1,
        "detections must resolve (seed {seed}): {st:?}"
    );
    let s = integrity_summary(&trace);
    assert!(s.coherent(), "incoherent integrity summary: {s:?}");
    assert_eq!(s.detected, st.corruptions_detected);
    assert_eq!(s.escalated, st.corruptions_escalated);

    // Ordering: the Spy certifies the repaired trace like any other.
    let oracle = ForestOracle::new(&spmd_b.forest);
    let report = validate(&trace, &oracle).expect("structurally valid corrupted-run log");
    assert!(
        report.ok(),
        "spy violations on repaired trace (seed {seed}):\n{:?}",
        report.violations
    );
    assert!(report.certified > 0, "no dependences were exercised");
    corrupted
}

fn compare_root(
    spmd_a: &SpmdProgram,
    store_a: &Store,
    spmd_b: &SpmdProgram,
    store_b: &Store,
    root: regent_region::RegionId,
    seed: u64,
) {
    let ia = store_a.instance_in(&spmd_a.forest, root);
    let ib = store_b.instance_in(&spmd_b.forest, root);
    for (fid, def) in spmd_a.forest.fields(root).iter() {
        for pt in spmd_a.forest.domain(root).iter() {
            match def.ty {
                FieldType::F64 => {
                    let a = ia.read_f64(fid, pt);
                    let b = ib.read_f64(fid, pt);
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "field {:?} at {:?} (seed {seed}): plain={a} repaired={b}",
                        def.name,
                        pt
                    );
                }
                FieldType::I64 => {
                    assert_eq!(
                        ia.read_i64(fid, pt),
                        ib.read_i64(fid, pt),
                        "field {:?} at {:?} (seed {seed})",
                        def.name,
                        pt
                    );
                }
            }
        }
    }
}

#[test]
fn stencil_survives_corruption() {
    let mk = || {
        let cfg = stencil::StencilConfig {
            n: 40,
            ntx: 4,
            nty: 2,
            radius: 2,
            steps: 5,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };
    let mut escalations = 0;
    for seed in [3, 11, 29] {
        let res = assert_survives_corruption(mk, 3, seed, 0.2);
        escalations += res.stats.corruptions_escalated;
    }
    // Across the seeds at this rate, at least one resident corruption
    // exercised the rollback path (not just payload retransmits).
    assert!(escalations >= 1, "no seed escalated — deterministic check");
}

#[test]
fn circuit_survives_corruption() {
    let mk = || {
        let cfg = circuit::CircuitConfig {
            pieces: 6,
            nodes_per_piece: 30,
            wires_per_piece: 90,
            cross_fraction: 0.12,
            steps: 4,
            substeps: 3,
            seed: 42,
        };
        let g = circuit::generate_graph(&cfg);
        let (prog, h) = circuit::circuit_program(cfg, &g);
        let mut store = Store::new(&prog);
        circuit::init_circuit(&prog, &mut store, &h, &g);
        (prog, store)
    };
    for seed in [13, 77] {
        assert_survives_corruption(mk, 3, seed, 0.15);
    }
}

#[test]
fn miniaero_survives_corruption() {
    let mk = || {
        let cfg = miniaero::MiniAeroConfig {
            nx: 12,
            ny: 4,
            nz: 3,
            pieces: 4,
            steps: 4,
            dt: 5e-4,
        };
        let mesh = miniaero::build_mesh(&cfg);
        let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    for seed in [21, 57] {
        assert_survives_corruption(mk, 3, seed, 0.15);
    }
}

#[test]
fn pennant_survives_corruption() {
    // PENNANT's outer While is driven by a Min-reduced dt: corrupted
    // collective contributions must repair before the fold, or every
    // shard's trip count would diverge.
    let mk = || {
        let cfg = pennant::PennantConfig {
            nzx: 10,
            nzy: 5,
            pieces: 3,
            tstop: 2e-2,
            dtmax: 2e-2,
        };
        let mesh = pennant::build_mesh(&cfg);
        let (prog, h) = pennant::pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    for seed in [33, 5] {
        assert_survives_corruption(mk, 3, seed, 0.15);
    }
}
