//! Data-plane differential matrix: every evaluation application must
//! produce identical results no matter which transport carries the
//! shard exchanges and whether shard threads are pinned.
//!
//! The matrix: {SPSC ring (default), legacy mpsc channel} ×
//! {`REGENT_PIN_CORES` off, on} × {stencil, circuit, MiniAero,
//! PENNANT} × {SPMD, hybrid, shared-log}. Each cell is compared
//! against the sequential reference (bit-exact for stencil, app
//! tolerance elsewhere — the same contracts as `differential.rs`) and
//! Spy-certified from its trace.
//!
//! On top of the matrix, the resilience protocols are regressed on
//! both planes: checkpointed crash recovery and corruption
//! retransmission must stay bit-identical, and an unrecoverable
//! mid-exchange shard death must unwind its peers *promptly* (ring
//! seals / barrier poisoning, not the hang timeout) with the same
//! diagnostics the channel plane produced.
//!
//! `REGENT_DATA_PLANE` and `REGENT_PIN_CORES` are process-global, so
//! the whole matrix lives in ONE sequential `#[test]` in its own
//! binary (the `env_opts.rs` idiom); the executors re-read the
//! variables at every launch, which is what makes the toggling valid.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::hybrid::{replicate_ranges, Segment};
use regent_cr::{control_replicate, CrOptions, ForestOracle};
use regent_ir::{interp, Program, Store};
use regent_region::{FieldType, RegionForest, RegionId};
use regent_runtime::{
    execute_hybrid_traced, execute_log_traced, execute_spmd, execute_spmd_resilient,
    execute_spmd_traced, FaultPlan, ResilienceOptions,
};
use regent_trace::{validate, Trace, Tracer};

type AppFactory = Box<dyn Fn() -> (Program, Store)>;

/// The four evaluation apps at differential-test sizes, with their
/// reduction tolerances (0.0 ⇒ bit-exact vs the sequential reference).
fn apps() -> Vec<(&'static str, AppFactory, f64)> {
    vec![
        (
            "stencil",
            Box::new(|| {
                let cfg = stencil::StencilConfig {
                    n: 32,
                    ntx: 2,
                    nty: 2,
                    radius: 2,
                    steps: 4,
                };
                let (prog, h) = stencil::stencil_program(cfg);
                let mut store = Store::new(&prog);
                stencil::init_stencil(&prog, &mut store, &h);
                (prog, store)
            }) as AppFactory,
            0.0,
        ),
        (
            "circuit",
            Box::new(|| {
                let cfg = circuit::CircuitConfig {
                    pieces: 6,
                    nodes_per_piece: 30,
                    wires_per_piece: 90,
                    cross_fraction: 0.12,
                    steps: 3,
                    substeps: 3,
                    seed: 42,
                };
                let g = circuit::generate_graph(&cfg);
                let (prog, h) = circuit::circuit_program(cfg, &g);
                let mut store = Store::new(&prog);
                circuit::init_circuit(&prog, &mut store, &h, &g);
                (prog, store)
            }),
            1e-12,
        ),
        (
            "miniaero",
            Box::new(|| {
                let cfg = miniaero::MiniAeroConfig {
                    nx: 12,
                    ny: 4,
                    nz: 3,
                    pieces: 4,
                    steps: 3,
                    dt: 5e-4,
                };
                let mesh = miniaero::build_mesh(&cfg);
                let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
                let mut store = Store::new(&prog);
                miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
                (prog, store)
            }),
            1e-11,
        ),
        (
            "pennant",
            Box::new(|| {
                let cfg = pennant::PennantConfig {
                    nzx: 10,
                    nzy: 5,
                    pieces: 3,
                    tstop: 2e-2,
                    dtmax: 2e-2,
                };
                let mesh = pennant::build_mesh(&cfg);
                let (prog, h) = pennant::pennant_program(cfg, &mesh);
                let mut store = Store::new(&prog);
                pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
                (prog, store)
            }),
            1e-11,
        ),
    ]
}

/// Compares every root region of two executions; `rel_tol == 0.0`
/// demands bit-identical f64 contents.
fn compare_roots(
    label: &str,
    roots: &[RegionId],
    fa: &RegionForest,
    sa: &Store,
    fb: &RegionForest,
    sb: &Store,
    rel_tol: f64,
) {
    for &root in roots {
        let ia = sa.instance_in(fa, root);
        let ib = sb.instance_in(fb, root);
        for (fid, def) in fa.fields(root).iter() {
            for p in fa.domain(root).iter() {
                match def.ty {
                    FieldType::F64 => {
                        let a = ia.read_f64(fid, p);
                        let b = ib.read_f64(fid, p);
                        if rel_tol == 0.0 {
                            assert!(
                                a.to_bits() == b.to_bits(),
                                "{label}: field {:?} at {:?}: {a} vs {b}",
                                def.name,
                                p
                            );
                        } else {
                            let scale = a.abs().max(b.abs()).max(1.0);
                            assert!(
                                (a - b).abs() <= rel_tol * scale,
                                "{label}: field {:?} at {:?}: {a} vs {b}",
                                def.name,
                                p
                            );
                        }
                    }
                    FieldType::I64 => {
                        assert_eq!(
                            ia.read_i64(fid, p),
                            ib.read_i64(fid, p),
                            "{label}: field {:?} at {:?}",
                            def.name,
                            p
                        );
                    }
                }
            }
        }
    }
}

/// Spy-certifies a trace against the forest's overlap oracle.
fn certify(label: &str, forest: &RegionForest, trace: &Trace) {
    let oracle = ForestOracle::new(forest);
    let report = validate(trace, &oracle).unwrap_or_else(|e| panic!("{label}: corrupt log: {e}"));
    assert!(
        report.ok(),
        "{label}: spy violations ({} certified):\n{:?}",
        report.certified,
        report.violations
    );
    assert!(report.certified > 0, "{label}: no dependences exercised");
}

/// One matrix cell: the app through SPMD, hybrid, and shared-log under
/// the *current* environment, each certified and compared.
fn run_cell(label: &str, mk: &dyn Fn() -> (Program, Store), ns: usize, tol: f64) {
    let (prog_seq, mut store_seq) = mk();
    let roots = prog_seq.root_regions();
    let (env_seq, _) = interp::run(&prog_seq, &mut store_seq);

    // SPMD.
    let (prog_cr, mut store_cr) = mk();
    let spmd = control_replicate(prog_cr, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let r = execute_spmd_traced(&spmd, &mut store_cr, &tracer);
    assert_eq!(env_seq, r.env, "{label}/spmd: env diverged");
    certify(&format!("{label}/spmd"), &spmd.forest, &tracer.take());
    compare_roots(
        &format!("{label}/spmd"),
        &roots,
        &prog_seq.forest,
        &store_seq,
        &spmd.forest,
        &store_cr,
        tol,
    );

    // Hybrid: bit-identical to the SPMD run.
    let (prog_h, mut store_h) = mk();
    let hybrid = replicate_ranges(prog_h, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let rh = execute_hybrid_traced(&hybrid, &mut store_h, &tracer);
    assert_eq!(r.env, rh.env, "{label}/hybrid: env diverged");
    let seg_forest = hybrid
        .segments
        .iter()
        .find_map(|s| match s {
            Segment::Replicated(sp) => Some(&sp.forest),
            Segment::Sequential(_) => None,
        })
        .unwrap();
    certify(&format!("{label}/hybrid"), seg_forest, &tracer.take());
    compare_roots(
        &format!("{label}/hybrid"),
        &roots,
        &spmd.forest,
        &store_cr,
        &hybrid.base.forest,
        &store_h,
        0.0,
    );

    // Shared-log: bit-identical regions to the SPMD run, exact env.
    let (prog_l, mut store_l) = mk();
    let spmd_l = control_replicate(prog_l, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let rl = execute_log_traced(&spmd_l, &mut store_l, &tracer);
    assert_eq!(env_seq, rl.env, "{label}/log: env diverged");
    certify(&format!("{label}/log"), &spmd_l.forest, &tracer.take());
    compare_roots(
        &format!("{label}/log-vs-spmd"),
        &roots,
        &spmd.forest,
        &store_cr,
        &spmd_l.forest,
        &store_l,
        0.0,
    );
}

/// Crash recovery and corruption retransmission on the current plane:
/// both must be bit-identical to the plain SPMD run, with the fault
/// machinery demonstrably exercised.
fn run_resilience_cell(label: &str) {
    let mk = || {
        let cfg = stencil::StencilConfig {
            n: 40,
            ntx: 4,
            nty: 2,
            radius: 2,
            steps: 5,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };
    let ns = 3;
    let (prog_a, mut store_a) = mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd_a, &mut store_a);

    // Crash + rollback: shard 1 dies at epoch 3, replays from the
    // last snapshot, and the result is bit-identical.
    let crash_opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(7).crash_shard(1, 3),
        ..Default::default()
    };
    let (prog_b, mut store_b) = mk();
    let spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
    let recovered = execute_spmd_resilient(&spmd_b, &mut store_b, &crash_opts);
    assert_eq!(
        plain.env, recovered.env,
        "{label}: env diverged after recovery"
    );
    assert!(
        recovered.per_shard[0].restores >= 1,
        "{label}: crash never rolled back"
    );
    compare_roots(
        &format!("{label}/crash"),
        &roots,
        &spmd_a.forest,
        &store_a,
        &spmd_b.forest,
        &store_b,
        0.0,
    );

    // Corruption + retransmission: every injected flip detected, the
    // result still bit-identical, useful-work stats unchanged.
    let corrupt_opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(3).with_corrupt_rate(0.2),
        ..Default::default()
    };
    let (prog_c, mut store_c) = mk();
    let spmd_c = control_replicate(prog_c, &CrOptions::new(ns)).unwrap();
    let repaired = execute_spmd_resilient(&spmd_c, &mut store_c, &corrupt_opts);
    assert_eq!(
        plain.env, repaired.env,
        "{label}: env diverged under corruption"
    );
    let st = &repaired.stats;
    assert!(
        st.corruptions_detected >= 1,
        "{label}: seed injected nothing"
    );
    assert_eq!(
        st.corruptions_injected, st.corruptions_detected,
        "{label}: a silent flip escaped the checksums"
    );
    assert_eq!(plain.stats.tasks_executed, repaired.stats.tasks_executed);
    assert_eq!(plain.stats.messages_sent, repaired.stats.messages_sent);
    compare_roots(
        &format!("{label}/corruption"),
        &roots,
        &spmd_a.forest,
        &store_a,
        &spmd_c.forest,
        &store_c,
        0.0,
    );
}

/// A shard that dies unrecoverably mid-exchange (its retry budget
/// exhausts while producing) must take the whole run down *promptly*:
/// peers unwind through sealed rings / the poisoned barrier, not the
/// 30 s hang timeout, and the combined diagnostic names the root
/// cause. Identical contract on both planes.
fn run_peer_death_cell(label: &str) {
    let t0 = std::time::Instant::now();
    let handle = std::thread::spawn(|| {
        let cfg = stencil::StencilConfig {
            n: 32,
            ntx: 2,
            nty: 2,
            radius: 2,
            steps: 4,
        };
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        let spmd = control_replicate(prog, &CrOptions::new(2)).unwrap();
        // Rate 1.0: every transmission corrupts, so the producer burns
        // its whole retry budget and dies mid-exchange.
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::new(5).with_corrupt_rate(1.0),
            ..Default::default()
        };
        execute_spmd_resilient(&spmd, &mut store, &opts);
    });
    let err = handle.join().expect_err("run should fail, not hang");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("unrecoverable exchange corruption"),
        "{label}: diagnostic should carry the root cause: {msg}"
    );
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(20),
        "{label}: failure took {:?} — survivors likely hung on the dead peer",
        t0.elapsed()
    );
}

/// One sequential matrix (see module docs for why one `#[test]`).
#[test]
fn data_plane_matrix() {
    let ns = 3;
    for plane in ["ring", "channel"] {
        for pin in ["0", "1"] {
            std::env::set_var("REGENT_DATA_PLANE", plane);
            std::env::set_var("REGENT_PIN_CORES", pin);
            let label = format!("plane={plane} pin={pin}");
            for (name, mk, tol) in &apps() {
                run_cell(&format!("{name} {label}"), mk, ns, *tol);
            }
            // The fault protocols ride the same transport; regress
            // them per plane (pinning is orthogonal — once is enough).
            if pin == "0" {
                run_resilience_cell(&label);
                run_peer_death_cell(&label);
            }
        }
    }
    std::env::remove_var("REGENT_DATA_PLANE");
    std::env::remove_var("REGENT_PIN_CORES");
}
