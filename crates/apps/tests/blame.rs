//! Critical-path blame attribution on real executions of the four
//! evaluation applications.
//!
//! Two invariants per app, over both executors:
//!
//! 1. The per-phase blame decomposition sums exactly to the
//!    critical-path length (nothing on the path is unattributed).
//! 2. The SPMD executor attributes *strictly less* time to
//!    `DepAnalysis` than the implicit executor — the paper's central
//!    claim: control replication compiles the control thread's O(N)
//!    dynamic dependence analysis away entirely, so the SPMD trace
//!    contains no analysis at all while the implicit one must.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::{control_replicate, CrOptions};
use regent_ir::{Program, Store};
use regent_runtime::{execute_implicit, execute_log_traced, execute_spmd_traced, ImplicitOptions};
use regent_trace::{blame_report, classify, Blame, BlameReport, Phase, Trace, Tracer};

/// One executor's observability record: the critical-path blame report
/// plus the whole-trace per-phase time (every span, on or off the
/// path).
struct ExecRecord {
    report: BlameReport,
    phase_totals: Blame,
}

/// Sums every span's duration into its phase, across all tracks.
fn phase_totals(trace: &Trace) -> Blame {
    let mut b = Blame::default();
    for t in &trace.tracks {
        for e in &t.events {
            if e.dur > 0 {
                b.add(classify(&e.kind), e.dur);
            }
        }
    }
    b
}

fn record(trace: &Trace, exec: &str) -> ExecRecord {
    ExecRecord {
        report: blame_report(trace).unwrap_or_else(|e| panic!("{exec} trace malformed: {e}")),
        phase_totals: phase_totals(trace),
    }
}

/// Runs an app under both executors with tracing and returns the two
/// records `(implicit, spmd)`. `build` constructs a fresh initialized
/// `(Program, Store)` pair per executor (programs are consumed by
/// `control_replicate`, so each run rebuilds its own).
fn blame_both(build: impl Fn() -> (Program, Store)) -> (ExecRecord, ExecRecord) {
    let (prog, mut store) = build();
    let tracer = Tracer::enabled();
    let opts = ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    };
    let (_, stats) = execute_implicit(&prog, &mut store, opts);
    assert!(stats.tasks_launched > 0);
    let implicit = record(&tracer.take(), "implicit");

    let (prog, mut store) = build();
    let spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let tracer = Tracer::enabled();
    execute_spmd_traced(&spmd, &mut store, &tracer);
    let spmd_rec = record(&tracer.take(), "spmd");
    (implicit, spmd_rec)
}

/// The two invariants, applied to one app's pair of records.
fn assert_blame_invariants(app: &str, implicit: &ExecRecord, spmd: &ExecRecord) {
    for (exec, rec) in [("implicit", implicit), ("spmd", spmd)] {
        assert_eq!(
            rec.report.total.total(),
            rec.report.critical_path_ns,
            "{app}/{exec}: blame must sum to the critical-path length"
        );
        assert!(
            rec.report.critical_path_ns > 0,
            "{app}/{exec}: empty critical path"
        );
    }
    let imp_dep = implicit.phase_totals.get(Phase::DepAnalysis);
    let spmd_dep = spmd.phase_totals.get(Phase::DepAnalysis);
    assert!(
        imp_dep > 0,
        "{app}: implicit executor must spend time in dependence analysis"
    );
    assert_eq!(
        spmd_dep, 0,
        "{app}: the SPMD executor must record no dependence analysis at all"
    );
    assert!(
        spmd_dep < imp_dep,
        "{app}: SPMD DepAnalysis time ({spmd_dep} ns) must be strictly below implicit ({imp_dep} ns)"
    );
}

/// The shared-log executor's amortization acceptance: at 8 shards, the
/// per-replica once-per-batch dependence analysis must cost strictly
/// less than the implicit executor's per-task analysis of the same
/// program — while still being nonzero (the log path *does* analyze,
/// unlike SPMD whose compile-time transform removes analysis
/// entirely) — and its sequencer/consume time lands in the dedicated
/// `log_control` phase.
#[test]
fn blame_log_amortizes_analysis_below_implicit() {
    let cfg = stencil::StencilConfig {
        n: 64,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 4,
    };
    let build = || {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    };

    let (prog, mut store) = build();
    let tracer = Tracer::enabled();
    let opts = ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    };
    let (_, stats) = execute_implicit(&prog, &mut store, opts);
    assert!(stats.tasks_launched > 0);
    let imp = phase_totals(&tracer.take());
    let imp_dep = imp.get(Phase::DepAnalysis);
    assert!(imp_dep > 0, "implicit must spend time in analysis");

    let (prog, mut store) = build();
    let spmd = control_replicate(prog, &CrOptions::new(8)).unwrap();
    let tracer = Tracer::enabled();
    let r = execute_log_traced(&spmd, &mut store, &tracer);
    assert!(r.log.batches > 0);
    let log = phase_totals(&tracer.take());
    let log_dep = log.get(Phase::DepAnalysis);
    assert!(
        log_dep > 0,
        "the log executor's replica leaders must record their analysis"
    );
    assert!(
        log_dep < imp_dep,
        "per-replica per-batch analysis ({log_dep} ns) must amortize strictly \
         below implicit's per-task analysis ({imp_dep} ns) at 8 shards"
    );
    assert!(
        log.get(Phase::LogControl) > 0,
        "append/combine/consume time must land in the log_control phase"
    );
}

#[test]
fn blame_stencil() {
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 4,
    };
    let (implicit, spmd) = blame_both(|| {
        let (prog, h) = stencil::stencil_program(cfg);
        let mut store = Store::new(&prog);
        stencil::init_stencil(&prog, &mut store, &h);
        (prog, store)
    });
    assert_blame_invariants("stencil", &implicit, &spmd);
}

#[test]
fn blame_circuit() {
    let cfg = circuit::CircuitConfig {
        pieces: 6,
        nodes_per_piece: 30,
        wires_per_piece: 90,
        cross_fraction: 0.12,
        steps: 3,
        substeps: 4,
        seed: 42,
    };
    let g = circuit::generate_graph(&cfg);
    let (implicit, spmd) = blame_both(|| {
        let (prog, h) = circuit::circuit_program(cfg, &g);
        let mut store = Store::new(&prog);
        circuit::init_circuit(&prog, &mut store, &h, &g);
        (prog, store)
    });
    assert_blame_invariants("circuit", &implicit, &spmd);
}

#[test]
fn blame_miniaero() {
    let cfg = miniaero::MiniAeroConfig {
        nx: 12,
        ny: 4,
        nz: 3,
        pieces: 4,
        steps: 3,
        dt: 5e-4,
    };
    let mesh = miniaero::build_mesh(&cfg);
    let (implicit, spmd) = blame_both(|| {
        let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    });
    assert_blame_invariants("miniaero", &implicit, &spmd);
}

#[test]
fn blame_pennant() {
    let cfg = pennant::PennantConfig {
        nzx: 10,
        nzy: 5,
        pieces: 3,
        tstop: 2e-2,
        dtmax: 2e-2,
    };
    let mesh = pennant::build_mesh(&cfg);
    let (implicit, spmd) = blame_both(|| {
        let (prog, h) = pennant::pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    });
    assert_blame_invariants("pennant", &implicit, &spmd);
}
