//! Fault injection under the **shared-log** executor: checkpoint
//! recovery from injected shard crashes must leave region contents and
//! the scalar environment *bit-identical* to the fault-free log run,
//! and the Spy validator must certify the recovered trace (replayed
//! work gets fresh trace identities, so the happens-before graph stays
//! sound). Also covers the supervisor-facing transient path: a log job
//! killed by an injected transient fault is retried *from scratch*
//! (the sequencer cannot re-derive skipped scalar feedback, so log
//! jobs carry no rescue slot), and the retry is bit-identical too.

use regent_apps::{circuit, pennant, stencil};
use regent_cr::{control_replicate, CrOptions, ForestOracle, SpmdProgram};
use regent_ir::{Program, Store};
use regent_region::FieldType;
use regent_runtime::{
    classify_failure, execute_log, execute_log_resilient, execute_log_resilient_traced,
    CancelToken, FailureClass, FaultPlan, LogRunResult, ResilienceOptions,
};
use regent_trace::{validate, EventKind, Tracer};

/// Runs `mk`'s program through the log executor fault-free and
/// resilient (traced), asserts bit-identical results, certifies the
/// recovered trace, and returns the resilient result.
fn assert_log_recovers(
    mk: impl Fn() -> (Program, Store),
    ns: usize,
    opts: &ResilienceOptions,
) -> LogRunResult {
    let (prog_a, mut store_a) = mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
    let plain = execute_log(&spmd_a, &mut store_a);

    let (prog_b, mut store_b) = mk();
    let spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
    let tracer = Tracer::enabled();
    let resilient = execute_log_resilient_traced(&spmd_b, &mut store_b, opts, &tracer);
    let trace = tracer.take();

    assert_eq!(
        plain.env, resilient.env,
        "scalar env diverged after log recovery"
    );
    // Useful-work stats exclude replays and must match the fault-free
    // run; the log itself must have been exercised both times.
    assert_eq!(plain.stats.tasks_executed, resilient.stats.tasks_executed);
    assert_eq!(plain.stats.copies_executed, resilient.stats.copies_executed);
    assert!(resilient.log.batches > 0 && resilient.log.appended_records > 0);
    for &root in &roots {
        compare_root(&spmd_a, &store_a, &spmd_b, &store_b, root);
    }

    let oracle = ForestOracle::new(&spmd_b.forest);
    let report = validate(&trace, &oracle).expect("structurally valid recovered log trace");
    assert!(
        report.ok(),
        "spy violations on recovered log trace:\n{:?}",
        report.violations
    );
    assert!(report.certified > 0, "no dependences were exercised");

    if opts.plan.has_crashes() && resilient.stats.restores > 0 {
        let crashes = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.kind, EventKind::ShardCrash { .. }))
            .count();
        assert!(crashes > 0, "crash never recorded in the log trace");
    }
    resilient
}

fn compare_root(
    spmd_a: &SpmdProgram,
    store_a: &Store,
    spmd_b: &SpmdProgram,
    store_b: &Store,
    root: regent_region::RegionId,
) {
    let ia = store_a.instance_in(&spmd_a.forest, root);
    let ib = store_b.instance_in(&spmd_b.forest, root);
    for (fid, def) in spmd_a.forest.fields(root).iter() {
        for pt in spmd_a.forest.domain(root).iter() {
            match def.ty {
                FieldType::F64 => {
                    let a = ia.read_f64(fid, pt);
                    let b = ib.read_f64(fid, pt);
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "field {:?} at {:?}: plain={a} recovered={b}",
                        def.name,
                        pt
                    );
                }
                FieldType::I64 => {
                    assert_eq!(
                        ia.read_i64(fid, pt),
                        ib.read_i64(fid, pt),
                        "field {:?} at {:?}",
                        def.name,
                        pt
                    );
                }
            }
        }
    }
}

fn stencil_mk() -> (Program, Store) {
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 5,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    (prog, store)
}

#[test]
fn stencil_log_recovers_bit_identical() {
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(7).crash_shard(1, 3),
        ..Default::default()
    };
    let res = assert_log_recovers(stencil_mk, 3, &opts);
    assert!(
        res.stats.restores > 0,
        "the injected crash never rolled back"
    );
}

#[test]
fn circuit_log_recovers_bit_identical() {
    let mk = || {
        let cfg = circuit::CircuitConfig {
            pieces: 6,
            nodes_per_piece: 30,
            wires_per_piece: 90,
            cross_fraction: 0.12,
            steps: 4,
            substeps: 3,
            seed: 42,
        };
        let g = circuit::generate_graph(&cfg);
        let (prog, h) = circuit::circuit_program(cfg, &g);
        let mut store = Store::new(&prog);
        circuit::init_circuit(&prog, &mut store, &h, &g);
        (prog, store)
    };
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(13).crash_shard(2, 3),
        ..Default::default()
    };
    let res = assert_log_recovers(mk, 3, &opts);
    assert!(res.stats.restores > 0);
}

#[test]
fn pennant_log_recovers_bit_identical() {
    // While-loop app: the rollback must restore the sequencer's
    // replicated scalar state so the Min-reduced dt re-derives the
    // same trip decisions through the log.
    let mk = || {
        let cfg = pennant::PennantConfig {
            nzx: 10,
            nzy: 5,
            pieces: 3,
            tstop: 2e-2,
            dtmax: 2e-2,
        };
        let mesh = pennant::build_mesh(&cfg);
        let (prog, h) = pennant::pennant_program(cfg, &mesh);
        let mut store = Store::new(&prog);
        pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
        (prog, store)
    };
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(33).crash_shard(1, 2),
        ..Default::default()
    };
    assert_log_recovers(mk, 3, &opts);
}

#[test]
fn stencil_log_seeded_plans_recover() {
    // The REGENT_FAULT_SEED-shaped plan (seeded single crash): the CI
    // fault-smoke configuration, through the log executor.
    for seed in [42u64, 7, 99] {
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::seeded_crash(seed, 3, 4),
            ..Default::default()
        };
        assert_log_recovers(stencil_mk, 3, &opts);
    }
}

#[test]
fn log_transient_fault_then_scratch_retry_bit_identical() {
    // A transient fault (injected through the cancel token's epoch
    // hook — the service supervisor's mechanism) kills the whole log
    // run with a TRANSIENT-classified unwind; the retry starts from
    // scratch and must be bit-identical to the fault-free run. This is
    // exactly the supervisor's retry path for log jobs, which carry no
    // rescue slot.
    let (prog_a, mut store_a) = stencil_mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(3)).unwrap();
    let plain = execute_log(&spmd_a, &mut store_a);

    let (prog_b, mut store_b) = stencil_mk();
    let spmd_b = control_replicate(prog_b, &CrOptions::new(3)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        cancel: Some(CancelToken::with_transient_at(2)),
        ..Default::default()
    };
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_log_resilient(&spmd_b, &mut store_b, &opts);
    }))
    .expect_err("the injected transient must kill the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "opaque".to_string());
    assert_eq!(
        classify_failure(&msg),
        FailureClass::Transient,
        "unexpected failure class for: {msg}"
    );

    // Scratch retry (fresh program, store, and clean options), traced
    // and certified like any healthy run.
    let (prog_c, mut store_c) = stencil_mk();
    let spmd_c = control_replicate(prog_c, &CrOptions::new(3)).unwrap();
    let tracer = Tracer::enabled();
    let retry = execute_log_resilient_traced(
        &spmd_c,
        &mut store_c,
        &ResilienceOptions {
            checkpoint_interval: 2,
            ..Default::default()
        },
        &tracer,
    );
    assert_eq!(plain.env, retry.env, "scratch retry env diverged");
    for &root in &roots {
        compare_root(&spmd_a, &store_a, &spmd_c, &store_c, root);
    }
    let oracle = ForestOracle::new(&spmd_c.forest);
    let report = validate(&tracer.take(), &oracle).expect("structurally valid retry trace");
    assert!(report.ok(), "spy violations: {:?}", report.violations);
}
