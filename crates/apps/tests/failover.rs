//! Live shard failover on the evaluation applications: for every app,
//! killing a shard's *thread* mid-run (membership loss, not rollback)
//! must shrink the run to the survivors, reconstruct the victim's
//! subregion instances from the last coordinated checkpoint, and
//! produce region contents and scalar environments *bit-identical* to
//! an undisturbed run — with the recovered trace Spy-certified like any
//! other. Also covers the loss-budget fail-stop (a double failure past
//! `max_failovers` must quarantine cleanly, not hang), the shared-log
//! executor's from-scratch failover, the hybrid executor's per-segment
//! checkpoint remap, and seeded chaos schedules (the soak variant is
//! `#[ignore]`d for the dedicated CI job).

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::hybrid::replicate_ranges;
use regent_cr::{control_replicate, CrOptions, ForestOracle};
use regent_ir::{Program, Store};
use regent_region::{FieldType, RegionForest};
use regent_runtime::{
    classify_failure, execute_hybrid, execute_hybrid_failover_traced, execute_hybrid_resilient,
    execute_log, execute_log_failover, execute_spmd, execute_spmd_failover_traced, DeathCause,
    FailoverOptions, FailoverRunResult, FailureClass, FaultPlan, HybridRescue, ResilienceOptions,
    FAILOVER_EXHAUSTED_PREFIX,
};
use regent_trace::{validate, EventKind, Tracer};

/// Swallows the default stderr report for panics that are failover
/// control flow here (shard losses, poison cascades, the expected
/// budget fail-stop) so test output stays readable. Genuine assertion
/// failures still report normally.
fn install_quiet_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| {
                    classify_failure(m) != FailureClass::Permanent
                        || m.starts_with(FAILOVER_EXHAUSTED_PREFIX)
                        || m.starts_with("copy channel closed")
                });
            if !expected {
                prev(info);
            }
        }));
    });
}

fn compare_root(
    forest_a: &RegionForest,
    store_a: &Store,
    forest_b: &RegionForest,
    store_b: &Store,
    root: regent_region::RegionId,
) {
    let ia = store_a.instance_in(forest_a, root);
    let ib = store_b.instance_in(forest_b, root);
    for (fid, def) in forest_a.fields(root).iter() {
        for pt in forest_a.domain(root).iter() {
            match def.ty {
                FieldType::F64 => {
                    let a = ia.read_f64(fid, pt);
                    let b = ib.read_f64(fid, pt);
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "field {:?} at {:?}: undisturbed={a} failover={b}",
                        def.name,
                        pt
                    );
                }
                FieldType::I64 => {
                    assert_eq!(
                        ia.read_i64(fid, pt),
                        ib.read_i64(fid, pt),
                        "field {:?} at {:?}",
                        def.name,
                        pt
                    );
                }
            }
        }
    }
}

/// Runs `mk`'s program undisturbed at `ns` shards and under the
/// failover driver with `plan`'s losses, asserts bit-identical results,
/// Spy-certifies the recovered trace, checks the failover track's
/// structured events, and returns the failover result.
fn assert_fails_over(
    mk: &dyn Fn() -> (Program, Store),
    ns: usize,
    plan: FaultPlan,
    fo: &FailoverOptions,
    expect_losses: usize,
) -> FailoverRunResult {
    install_quiet_hook();
    let (prog_a, mut store_a) = mk();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd_a, &mut store_a);

    let (prog_b, mut store_b) = mk();
    let mut spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan,
        ..Default::default()
    };
    let tracer = Tracer::enabled();
    let r = execute_spmd_failover_traced(&mut spmd_b, &mut store_b, &opts, fo, &tracer);
    let trace = tracer.take();

    assert_eq!(r.deaths.len(), expect_losses, "losses survived");
    assert_eq!(
        r.attempts as usize,
        expect_losses + 1,
        "one attempt per loss"
    );
    assert_eq!(r.final_shards, ns - expect_losses, "membership shrank");
    assert_eq!(spmd_b.num_shards, r.final_shards);

    // Values: bit-identical env and regions despite the re-sharding.
    assert_eq!(plain.env, r.run.env, "scalar env diverged across failover");
    for &root in &roots {
        compare_root(&spmd_a.forest, &store_a, &spmd_b.forest, &store_b, root);
    }

    // Ordering: the Spy certifies the surviving attempt's trace.
    let oracle = ForestOracle::new(&spmd_b.forest);
    let report = validate(&trace, &oracle).expect("structurally valid recovered log");
    assert!(
        report.ok(),
        "spy violations on failover trace:\n{:?}",
        report.violations
    );
    assert!(report.certified > 0, "no dependences were exercised");

    // The failover track records one structured death and one
    // membership change per loss.
    let fo_events = |pred: &dyn Fn(&EventKind) -> bool| {
        trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| pred(&e.kind))
            .count()
    };
    assert_eq!(
        fo_events(&|k| matches!(k, EventKind::PeerDeath { .. })),
        expect_losses,
        "PeerDeath events"
    );
    assert_eq!(
        fo_events(&|k| matches!(k, EventKind::MembershipChange { .. })),
        expect_losses,
        "MembershipChange events"
    );
    r
}

fn mk_stencil() -> (Program, Store) {
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 5,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut store, &h);
    (prog, store)
}

fn mk_circuit() -> (Program, Store) {
    let cfg = circuit::CircuitConfig {
        pieces: 6,
        nodes_per_piece: 30,
        wires_per_piece: 90,
        cross_fraction: 0.12,
        steps: 4,
        substeps: 3,
        seed: 42,
    };
    let g = circuit::generate_graph(&cfg);
    let (prog, h) = circuit::circuit_program(cfg, &g);
    let mut store = Store::new(&prog);
    circuit::init_circuit(&prog, &mut store, &h, &g);
    (prog, store)
}

fn mk_miniaero() -> (Program, Store) {
    let cfg = miniaero::MiniAeroConfig {
        nx: 12,
        ny: 4,
        nz: 3,
        pieces: 4,
        steps: 4,
        dt: 5e-4,
    };
    let mesh = miniaero::build_mesh(&cfg);
    let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
    let mut store = Store::new(&prog);
    miniaero::init_miniaero(&prog, &mut store, &h, &cfg, &mesh);
    (prog, store)
}

fn mk_pennant() -> (Program, Store) {
    let cfg = pennant::PennantConfig {
        nzx: 10,
        nzy: 5,
        pieces: 3,
        // dtmax well below tstop so the While loop runs at least four
        // steps — the swept kill epochs must actually be reached.
        tstop: 2e-2,
        dtmax: 5e-3,
    };
    let mesh = pennant::build_mesh(&cfg);
    let (prog, h) = pennant::pennant_program(cfg, &mesh);
    let mut store = Store::new(&prog);
    pennant::init_pennant(&prog, &mut store, &h, &cfg, &mesh);
    (prog, store)
}

/// Kill every shard at every checkpoint boundary: the differential
/// sweep the issue's acceptance names. One sweep per app keeps the
/// failure attribution per-app.
fn kill_sweep(mk: &dyn Fn() -> (Program, Store), ns: usize, epochs: &[u64]) {
    for victim in 0..ns as u32 {
        for &epoch in epochs {
            let r = assert_fails_over(
                mk,
                ns,
                FaultPlan::new(victim as u64).kill_shard(victim, epoch),
                &FailoverOptions::default(),
                1,
            );
            assert_eq!(r.deaths[0].shard, victim);
            assert!(
                matches!(r.deaths[0].cause, DeathCause::Killed { epoch: e } if e == epoch),
                "wrong cause: {:?}",
                r.deaths[0].cause
            );
        }
    }
}

#[test]
fn stencil_failover_sweep() {
    kill_sweep(&mk_stencil, 3, &[1, 2, 3]);
}

#[test]
fn circuit_failover_sweep() {
    kill_sweep(&mk_circuit, 3, &[1, 2]);
}

#[test]
fn miniaero_failover_sweep() {
    kill_sweep(&mk_miniaero, 3, &[1, 2]);
}

#[test]
fn pennant_failover_sweep() {
    // PENNANT's outer loop is a While driven by a Min-reduced dt: the
    // reconstructed survivors must re-derive the same trip decisions.
    kill_sweep(&mk_pennant, 3, &[1, 2]);
}

#[test]
fn double_failure_within_budget_shrinks_twice() {
    let fo = FailoverOptions {
        max_failovers: 2,
        min_shards: 1,
    };
    let r = assert_fails_over(
        &mk_stencil,
        3,
        FaultPlan::new(5).kill_shard(0, 1).kill_shard(1, 3),
        &fo,
        2,
    );
    assert_eq!(r.final_shards, 1, "3 shards minus two losses");
}

#[test]
fn budget_exhausted_fails_permanently_not_hangs() {
    install_quiet_hook();
    // Two losses against the default budget of one: the second loss
    // must fail-stop with the structured exhaustion diagnostic — a
    // clean permanent failure the supervisor quarantines, never a hang.
    let (prog, mut store) = mk_stencil();
    let mut spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(5).kill_shard(0, 1).kill_shard(1, 3),
        ..Default::default()
    };
    let fo = FailoverOptions::default();
    let payload = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_spmd_failover_traced(&mut spmd, &mut store, &opts, &fo, &Tracer::disabled())
    })) {
        Ok(_) => panic!("second loss must exhaust the budget"),
        Err(p) => p,
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string payload".into());
    assert!(
        msg.starts_with(FAILOVER_EXHAUSTED_PREFIX),
        "unexpected diagnostic: {msg}"
    );
    assert_eq!(
        classify_failure(&msg),
        FailureClass::Permanent,
        "exhaustion must quarantine, not retry"
    );
}

#[test]
fn membership_floor_fails_permanently() {
    install_quiet_hook();
    // A loss that would shrink below min_shards is refused even with
    // budget left.
    let (prog, mut store) = mk_stencil();
    let mut spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(5).kill_shard(2, 2),
        ..Default::default()
    };
    let fo = FailoverOptions {
        max_failovers: 4,
        min_shards: 3,
    };
    let payload = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_spmd_failover_traced(&mut spmd, &mut store, &opts, &fo, &Tracer::disabled())
    })) {
        Ok(_) => panic!("loss below the membership floor must fail"),
        Err(p) => p,
    };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.starts_with(FAILOVER_EXHAUSTED_PREFIX), "{msg}");
}

#[test]
fn log_failover_retries_from_scratch() {
    install_quiet_hook();
    // The shared-log executor has no resume path (its sequencer cannot
    // re-derive consumed AllReduce feedback): a loss shrinks the
    // membership and re-executes from scratch. Proof: the surviving
    // attempt performs the *full* task count — the per-epoch task total
    // is the color count, independent of the shard count, so a resumed
    // run would report strictly fewer.
    let (prog_a, mut store_a) = mk_stencil();
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(3)).unwrap();
    let plain = execute_log(&spmd_a, &mut store_a);

    let (prog_b, mut store_b) = mk_stencil();
    let mut spmd_b = control_replicate(prog_b, &CrOptions::new(3)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(9).kill_shard(1, 2),
        ..Default::default()
    };
    let r = execute_log_failover(
        &mut spmd_b,
        &mut store_b,
        &opts,
        &FailoverOptions::default(),
    );
    assert_eq!(r.attempts, 2);
    assert_eq!(r.final_shards, 2);
    assert_eq!(r.deaths.len(), 1);
    assert_eq!(plain.env, r.run.env, "scalar env diverged");
    for &root in &roots {
        compare_root(&spmd_a.forest, &store_a, &spmd_b.forest, &store_b, root);
    }
    assert_eq!(
        r.run.stats.tasks_executed, plain.stats.tasks_executed,
        "log failover must re-execute the whole program from scratch"
    );
}

#[test]
fn hybrid_failover_bit_identical() {
    install_quiet_hook();
    // The hybrid driver carries the shrunken membership across every
    // replicated segment and remaps each segment's committed checkpoint
    // individually.
    let (prog_a, mut store_a) = mk_stencil();
    let roots = prog_a.root_regions();
    let hybrid_a = replicate_ranges(prog_a, &CrOptions::new(3)).unwrap();
    let plain = execute_hybrid(&hybrid_a, &mut store_a);

    let (prog_b, mut store_b) = mk_stencil();
    let mut hybrid_b = replicate_ranges(prog_b, &CrOptions::new(3)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(11).kill_shard(1, 1),
        ..Default::default()
    };
    let tracer = Tracer::enabled();
    let r = execute_hybrid_failover_traced(
        &mut hybrid_b,
        &mut store_b,
        &opts,
        &FailoverOptions::default(),
        &tracer,
    );
    let trace = tracer.take();
    assert_eq!(r.attempts, 2);
    assert_eq!(r.final_shards, 2);
    assert_eq!(plain.env, r.run.env, "scalar env diverged");
    for &root in &roots {
        compare_root(
            &hybrid_a.base.forest,
            &store_a,
            &hybrid_b.base.forest,
            &store_b,
            root,
        );
    }
    let oracle = ForestOracle::new(&hybrid_b.base.forest);
    let report = validate(&trace, &oracle).expect("structurally valid hybrid failover log");
    assert!(report.ok(), "spy violations:\n{:?}", report.violations);
    assert!(report.certified > 0);
}

#[test]
fn hybrid_rescue_resumes_across_attempts() {
    install_quiet_hook();
    // Satellite proof for cross-attempt resume in the *supervisor's*
    // classic retry path: a failed hybrid attempt leaves its committed
    // per-segment checkpoints in the `HybridRescue`, and the retry
    // fast-forwards from them instead of re-executing from scratch.
    let (prog_a, mut store_a) = mk_stencil();
    let roots = prog_a.root_regions();
    let hybrid_a = replicate_ranges(prog_a, &CrOptions::new(3)).unwrap();
    let plain = execute_hybrid(&hybrid_a, &mut store_a);

    let rescue = HybridRescue::new();
    // Attempt 1: the kill fires at epoch 2, after that boundary's
    // checkpoint was offered, so the epoch-2 snapshot commits before
    // the attempt dies.
    let opts = ResilienceOptions {
        checkpoint_interval: 1,
        plan: FaultPlan::new(13).kill_shard(1, 2),
        ..Default::default()
    };
    {
        let (prog, mut store) = mk_stencil();
        let hybrid = replicate_ranges(prog, &CrOptions::new(3)).unwrap();
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_hybrid_resilient(&hybrid, &mut store, &opts, Some(&rescue))
            }))
            .is_err(),
            "the injected kill must fail attempt 1"
        );
    }
    let resume_epoch = rescue
        .max_checkpoint_epoch()
        .expect("attempt 1 committed no checkpoint");
    assert!(resume_epoch >= 2, "epoch-2 snapshot must have committed");

    // Attempt 2: fresh program and store (sequential segments are not
    // idempotent against a flushed store), same plan — the resume
    // fast-forward skips the already-fired kill.
    let (prog_b, mut store_b) = mk_stencil();
    let hybrid_b = replicate_ranges(prog_b, &CrOptions::new(3)).unwrap();
    let r2 = execute_hybrid_resilient(&hybrid_b, &mut store_b, &opts, Some(&rescue));

    assert_eq!(plain.env, r2.env, "scalar env diverged across resume");
    for &root in &roots {
        compare_root(
            &hybrid_a.base.forest,
            &store_a,
            &hybrid_b.base.forest,
            &store_b,
            root,
        );
    }
    assert!(
        r2.spmd_stats.tasks_executed < plain.spmd_stats.tasks_executed,
        "attempt 2 must fast-forward past committed epochs ({} vs {} tasks)",
        r2.spmd_stats.tasks_executed,
        plain.spmd_stats.tasks_executed
    );
}

/// One seeded chaos case: a randomized kill schedule against one
/// strategy, asserting bit-identity with the undisturbed run. Losses
/// are opportunistic (a drawn kill epoch past the app's last boundary
/// never fires) — determinism and membership accounting are asserted
/// either way.
fn chaos_case(mk: &dyn Fn() -> (Program, Store), ns: usize, seed: u64, strategy: &str) {
    install_quiet_hook();
    let plan = FaultPlan::seeded_kill(seed, ns, 3);
    let fo = FailoverOptions::default();
    match strategy {
        "spmd" => {
            let (prog_a, mut store_a) = mk();
            let roots = prog_a.root_regions();
            let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
            let plain = execute_spmd(&spmd_a, &mut store_a);
            let (prog_b, mut store_b) = mk();
            let mut spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
            let opts = ResilienceOptions {
                checkpoint_interval: 2,
                plan,
                ..Default::default()
            };
            let tracer = Tracer::enabled();
            let r = execute_spmd_failover_traced(&mut spmd_b, &mut store_b, &opts, &fo, &tracer);
            assert_eq!(plain.env, r.run.env, "seed {seed}: env diverged");
            assert_eq!(r.final_shards, ns - r.deaths.len());
            for &root in &roots {
                compare_root(&spmd_a.forest, &store_a, &spmd_b.forest, &store_b, root);
            }
            let report = validate(&tracer.take(), &ForestOracle::new(&spmd_b.forest))
                .expect("structurally valid chaos log");
            assert!(report.ok(), "seed {seed}: {:?}", report.violations);
        }
        "hybrid" => {
            let (prog_a, mut store_a) = mk();
            let roots = prog_a.root_regions();
            let hybrid_a = replicate_ranges(prog_a, &CrOptions::new(ns)).unwrap();
            let plain = execute_hybrid(&hybrid_a, &mut store_a);
            let (prog_b, mut store_b) = mk();
            let mut hybrid_b = replicate_ranges(prog_b, &CrOptions::new(ns)).unwrap();
            let opts = ResilienceOptions {
                checkpoint_interval: 2,
                plan,
                ..Default::default()
            };
            let r = execute_hybrid_failover_traced(
                &mut hybrid_b,
                &mut store_b,
                &opts,
                &fo,
                &Tracer::disabled(),
            );
            assert_eq!(plain.env, r.run.env, "seed {seed}: env diverged");
            for &root in &roots {
                compare_root(
                    &hybrid_a.base.forest,
                    &store_a,
                    &hybrid_b.base.forest,
                    &store_b,
                    root,
                );
            }
        }
        "log" => {
            let (prog_a, mut store_a) = mk();
            let roots = prog_a.root_regions();
            let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
            let plain = execute_log(&spmd_a, &mut store_a);
            let (prog_b, mut store_b) = mk();
            let mut spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
            let opts = ResilienceOptions {
                checkpoint_interval: 2,
                plan,
                ..Default::default()
            };
            let r = execute_log_failover(&mut spmd_b, &mut store_b, &opts, &fo);
            assert_eq!(plain.env, r.run.env, "seed {seed}: env diverged");
            for &root in &roots {
                compare_root(&spmd_a.forest, &store_a, &spmd_b.forest, &store_b, root);
            }
        }
        other => panic!("unknown strategy {other}"),
    }
}

#[test]
fn failover_chaos_smoke() {
    // The non-ignored slice of the soak: a couple of seeds per
    // strategy on the cheapest app.
    for seed in [3, 8] {
        chaos_case(&mk_stencil, 3, seed, "spmd");
    }
    chaos_case(&mk_stencil, 3, 5, "hybrid");
    chaos_case(&mk_stencil, 3, 5, "log");
}

/// The chaos soak the CI `failover-soak` job runs: randomized kill
/// schedules × four apps × all three failover-capable strategies.
/// `#[ignore]`d so the plain suite stays fast; run with
/// `cargo test -p regent-apps --test failover -- --ignored`.
#[test]
#[ignore = "chaos soak: run explicitly in the failover-soak CI job"]
fn failover_chaos_soak() {
    type AppFactory<'a> = &'a dyn Fn() -> (Program, Store);
    let apps: [(&str, AppFactory); 4] = [
        ("stencil", &mk_stencil),
        ("circuit", &mk_circuit),
        ("miniaero", &mk_miniaero),
        ("pennant", &mk_pennant),
    ];
    for (name, mk) in apps {
        for strategy in ["spmd", "hybrid", "log"] {
            for seed in 0..4u64 {
                eprintln!("soak: {name}/{strategy} seed {seed}");
                chaos_case(mk, 3, seed, strategy);
            }
        }
    }
}
