//! Each evaluation application, end-to-end through control
//! replication: build the implicit program, transform (§3), execute on
//! the multithreaded SPMD runtime, and compare every region against
//! the sequential reference.
//!
//! Apps without region reductions (Stencil) must match bit-for-bit.
//! Apps with reductions (Circuit, MiniAero, PENNANT) are compared with
//! a tight relative tolerance: reduction copies apply per-temporary
//! partial sums, which reassociates the (associative, commutative but
//! not exactly associative in floating point) fold the sequential
//! interpreter performs element-by-element — the same freedom Legion's
//! reduction instances have.

use regent_apps::{circuit, miniaero, pennant, stencil};
use regent_cr::{control_replicate, CrOptions};
use regent_geometry::DynPoint;
use regent_ir::{interp, Program, Store};
use regent_region::{FieldType, RegionForest, RegionId};
use regent_runtime::execute_spmd;

/// Compares all root regions of two executions.
fn compare_stores(prog: &Program, seq: &Store, forest_cr: &RegionForest, cr: &Store, rel_tol: f64) {
    for root in prog.root_regions() {
        let a = seq.instance(prog, root);
        let b = cr.instance_in(forest_cr, root);
        let fields = prog.forest.fields(root);
        for (fid, def) in fields.iter() {
            for p in prog.forest.domain(root).iter() {
                match def.ty {
                    FieldType::F64 => {
                        let x = a.read_f64(fid, p);
                        let y = b.read_f64(fid, p);
                        let scale = x.abs().max(y.abs()).max(1.0);
                        assert!(
                            (x - y).abs() <= rel_tol * scale,
                            "{:?}.{} at {:?}: seq={x} cr={y}",
                            root,
                            def.name,
                            p
                        );
                    }
                    FieldType::I64 => {
                        assert_eq!(a.read_i64(fid, p), b.read_i64(fid, p));
                    }
                }
            }
        }
    }
}

#[test]
fn stencil_through_cr_bit_exact() {
    let cfg = stencil::StencilConfig {
        n: 40,
        ntx: 4,
        nty: 2,
        radius: 2,
        steps: 5,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut seq_store = Store::new(&prog);
    stencil::init_stencil(&prog, &mut seq_store, &h);
    let (seq_env, _) = interp::run(&prog, &mut seq_store);

    for ns in [1, 2, 3, 8] {
        let (prog2, h2) = stencil::stencil_program(cfg);
        let mut cr_store = Store::new(&prog2);
        stencil::init_stencil(&prog2, &mut cr_store, &h2);
        let spmd = control_replicate(prog2, &CrOptions::new(ns)).unwrap();
        let result = execute_spmd(&spmd, &mut cr_store);
        assert_eq!(seq_env, result.env);
        compare_stores(&prog, &seq_store, &spmd.forest, &cr_store, 0.0);
        // Exactly one coherence copy per step: tiles → halo on the
        // `in` field.
        assert_eq!(spmd.count_copies(), 1);
    }
}

#[test]
fn circuit_through_cr() {
    let cfg = circuit::CircuitConfig {
        pieces: 6,
        nodes_per_piece: 40,
        wires_per_piece: 150,
        cross_fraction: 0.12,
        steps: 6,
        substeps: 8,
        seed: 42,
    };
    let g = circuit::generate_graph(&cfg);
    let (prog, h) = circuit::circuit_program(cfg, &g);
    let mut seq_store = Store::new(&prog);
    circuit::init_circuit(&prog, &mut seq_store, &h, &g);
    interp::run(&prog, &mut seq_store);

    for ns in [1, 2, 4] {
        let g2 = circuit::generate_graph(&cfg);
        let (prog2, h2) = circuit::circuit_program(cfg, &g2);
        let mut cr_store = Store::new(&prog2);
        circuit::init_circuit(&prog2, &mut cr_store, &h2, &g2);
        let spmd = control_replicate(prog2, &CrOptions::new(ns)).unwrap();
        let result = execute_spmd(&spmd, &mut cr_store);
        compare_stores(&prog, &seq_store, &spmd.forest, &cr_store, 1e-12);
        if ns > 1 {
            assert!(result.stats.messages_sent > 0);
        }
    }
}

#[test]
fn miniaero_through_cr() {
    let cfg = miniaero::MiniAeroConfig {
        nx: 12,
        ny: 4,
        nz: 3,
        pieces: 4,
        steps: 4,
        dt: 5e-4,
    };
    let mesh = miniaero::build_mesh(&cfg);
    let (prog, h) = miniaero::miniaero_program(cfg, &mesh);
    let mut seq_store = Store::new(&prog);
    miniaero::init_miniaero(&prog, &mut seq_store, &h, &cfg, &mesh);
    interp::run(&prog, &mut seq_store);

    for ns in [1, 3, 4] {
        let mesh2 = miniaero::build_mesh(&cfg);
        let (prog2, h2) = miniaero::miniaero_program(cfg, &mesh2);
        let mut cr_store = Store::new(&prog2);
        miniaero::init_miniaero(&prog2, &mut cr_store, &h2, &cfg, &mesh2);
        let spmd = control_replicate(prog2, &CrOptions::new(ns)).unwrap();
        execute_spmd(&spmd, &mut cr_store);
        compare_stores(&prog, &seq_store, &spmd.forest, &cr_store, 1e-11);
    }
}

#[test]
fn pennant_through_cr() {
    let cfg = pennant::PennantConfig {
        nzx: 10,
        nzy: 5,
        pieces: 3,
        tstop: 3e-2,
        dtmax: 2e-2,
    };
    let mesh = pennant::build_mesh(&cfg);
    let (prog, h) = pennant::pennant_program(cfg, &mesh);
    let mut seq_store = Store::new(&prog);
    pennant::init_pennant(&prog, &mut seq_store, &h, &cfg, &mesh);
    let (seq_env, seq_stats) = interp::run(&prog, &mut seq_store);
    assert!(seq_stats.loop_iterations >= 2, "needs several dt steps");

    for ns in [1, 2, 3, 5] {
        let mesh2 = pennant::build_mesh(&cfg);
        let (prog2, h2) = pennant::pennant_program(cfg, &mesh2);
        let mut cr_store = Store::new(&prog2);
        pennant::init_pennant(&prog2, &mut cr_store, &h2, &cfg, &mesh2);
        let spmd = control_replicate(prog2, &CrOptions::new(ns)).unwrap();
        let result = execute_spmd(&spmd, &mut cr_store);
        // The dynamically-computed dt sequence must agree (it controls
        // the While trip count); scalar collectives preserve fold
        // order, so the env matches exactly.
        assert_eq!(seq_env, result.env, "ns={ns}");
        assert!(result.stats.collectives > 0);
        compare_stores(&prog, &seq_store, &spmd.forest, &cr_store, 1e-11);
    }
}

#[test]
fn implicit_executor_runs_apps() {
    use regent_runtime::{execute_implicit, ImplicitOptions};
    // Stencil under the implicit executor: bit-exact (no reductions).
    let cfg = stencil::StencilConfig {
        n: 32,
        ntx: 2,
        nty: 2,
        radius: 2,
        steps: 3,
    };
    let (prog, h) = stencil::stencil_program(cfg);
    let mut s1 = Store::new(&prog);
    stencil::init_stencil(&prog, &mut s1, &h);
    interp::run(&prog, &mut s1);
    let (prog2, h2) = stencil::stencil_program(cfg);
    let mut s2 = Store::new(&prog2);
    stencil::init_stencil(&prog2, &mut s2, &h2);
    let (_, stats) = execute_implicit(&prog2, &mut s2, ImplicitOptions::with_workers(4));
    assert!(stats.tasks_launched > 0);
    let inst1 = s1.instance(&prog, h.grid);
    let inst2 = s2.instance(&prog2, h2.grid);
    for p in prog.forest.domain(h.grid).iter() {
        assert_eq!(inst1.read_f64(h.f_out, p), inst2.read_f64(h2.f_out, p));
    }
}

#[test]
fn stencil_halo_traffic_scales_with_boundary() {
    // The elements exchanged per step are the tile boundaries, not the
    // tile interiors — O(√elements), the property §3.3 relies on.
    let small = stencil::StencilConfig {
        n: 24,
        ntx: 2,
        nty: 2,
        radius: 1,
        steps: 1,
    };
    let large = stencil::StencilConfig {
        n: 48,
        ntx: 2,
        nty: 2,
        radius: 1,
        steps: 1,
    };
    let volumes: Vec<u64> = [small, large]
        .into_iter()
        .map(|cfg| {
            let (prog, h) = stencil::stencil_program(cfg);
            let mut store = Store::new(&prog);
            stencil::init_stencil(&prog, &mut store, &h);
            let spmd = control_replicate(prog, &CrOptions::new(4)).unwrap();
            let r = execute_spmd(&spmd, &mut store);
            r.stats.elements_sent
        })
        .collect();
    // Grid area ×4, boundary ×2: traffic should roughly double, far
    // below 4×.
    assert!(volumes[1] > volumes[0]);
    assert!(
        volumes[1] < volumes[0] * 3,
        "traffic grew like area: {volumes:?}"
    );
}

#[test]
fn circuit_equilibrium_preserved_under_cr() {
    // Physical invariant after CR execution: total charge conserved.
    let cfg = circuit::CircuitConfig {
        steps: 20,
        ..Default::default()
    };
    let g = circuit::generate_graph(&cfg);
    let (prog, h) = circuit::circuit_program(cfg, &g);
    let mut store = Store::new(&prog);
    circuit::init_circuit(&prog, &mut store, &h, &g);
    let total = |store: &Store, forest: &RegionForest| -> f64 {
        let inst = store.instance_in(forest, RegionId(0));
        forest
            .domain(h.nodes)
            .iter()
            .map(|p: DynPoint| inst.read_f64(h.f_voltage, p) * inst.read_f64(h.f_cap, p))
            .sum()
    };
    let before = total(&store, &prog.forest);
    let spmd = control_replicate(prog, &CrOptions::new(3)).unwrap();
    execute_spmd(&spmd, &mut store);
    let after = total(&store, &spmd.forest);
    assert!((before - after).abs() < 1e-9 * before.abs().max(1.0));
}
