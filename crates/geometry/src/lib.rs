//! # regent-geometry
//!
//! Geometric substrate for the control-replication stack: integer points,
//! axis-aligned rectangles with inclusive bounds, and *domains* —
//! possibly-sparse point sets represented as disjoint unions of
//! rectangles.
//!
//! Logical regions (see the `regent-region` crate) are collections of
//! elements indexed by a domain; the partitioning sublanguage of the
//! source programming model (§2.1 of *Control Replication*, SC'17) slices
//! domains into subdomains, and the dynamic half of the copy intersection
//! optimization (§3.3) computes exact intersections between them. All of
//! that set algebra lives here.
//!
//! Two parallel type families are provided:
//! * const-generic [`Point<D>`]/[`Rect<D>`] for dimension-static
//!   application kernels, and
//! * dimension-erased [`DynPoint`]/[`DynRect`]/[`Domain`] for the
//!   compiler and runtime layers which handle mixed dimensionality.

#![warn(missing_docs)]

pub mod domain;
pub mod dynrect;
pub mod point;
pub mod rect;

pub use domain::Domain;
pub use dynrect::{DynPoint, DynRect, MAX_DIM};
pub use point::{Point, Point1, Point2, Point3};
pub use rect::{Rect, Rect1, Rect2, Rect3};
