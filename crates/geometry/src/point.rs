//! N-dimensional integer points.
//!
//! Points are the coordinates of elements inside index spaces (§2.1 of the
//! paper). Regent supports structured (multi-dimensional) and unstructured
//! (1-D) index spaces; we model both with a single `Point<D>` type carrying
//! the dimensionality as a const generic.

#![allow(clippy::needless_range_loop)] // lockstep indexing of coordinate arrays

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// An integer point in `D`-dimensional space.
///
/// Coordinates are `i64`; negative coordinates are permitted (useful for
/// ghost cells surrounding a zero-based grid).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point<const D: usize>(pub [i64; D]);

/// Unstructured (1-D) point, the element type of unstructured index spaces.
pub type Point1 = Point<1>;
/// 2-D structured point.
pub type Point2 = Point<2>;
/// 3-D structured point.
pub type Point3 = Point<3>;

impl<const D: usize> Point<D> {
    /// The number of dimensions of this point type.
    pub const DIM: usize = D;

    /// Creates a point from raw coordinates.
    #[inline]
    pub const fn new(coords: [i64; D]) -> Self {
        Point(coords)
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn zero() -> Self {
        Point([0; D])
    }

    /// A point with every coordinate equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        Point([v; D])
    }

    /// Coordinate-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] = out[d].min(other.0[d]);
        }
        Point(out)
    }

    /// Coordinate-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] = out[d].max(other.0[d]);
        }
        Point(out)
    }

    /// True when every coordinate of `self` is `<=` the matching coordinate
    /// of `other` (the partial order used for rectangle containment).
    #[inline]
    pub fn dominates_le(self, other: Self) -> bool {
        (0..D).all(|d| self.0[d] <= other.0[d])
    }

    /// Raw coordinate access.
    #[inline]
    pub fn coords(&self) -> &[i64; D] {
        &self.0
    }
}

impl Point<1> {
    /// Convenience accessor for the single coordinate of a 1-D point.
    #[inline]
    pub fn idx(self) -> i64 {
        self.0[0]
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = i64;
    #[inline]
    fn index(&self, d: usize) -> &i64 {
        &self.0[d]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.0[d]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] += rhs.0[d];
        }
        Point(out)
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] -= rhs.0[d];
        }
        Point(out)
    }
}

impl<const D: usize> Mul<i64> for Point<D> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: i64) -> Self {
        let mut out = self.0;
        for c in &mut out {
            *c *= rhs;
        }
        Point(out)
    }
}

impl From<i64> for Point<1> {
    #[inline]
    fn from(v: i64) -> Self {
        Point([v])
    }
}

impl From<(i64, i64)> for Point<2> {
    #[inline]
    fn from(v: (i64, i64)) -> Self {
        Point([v.0, v.1])
    }
}

impl From<(i64, i64, i64)> for Point<3> {
    #[inline]
    fn from(v: (i64, i64, i64)) -> Self {
        Point([v.0, v.1, v.2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new([1, 2]);
        let b = Point::new([3, -1]);
        assert_eq!(a + b, Point::new([4, 1]));
        assert_eq!(a - b, Point::new([-2, 3]));
        assert_eq!(a * 3, Point::new([3, 6]));
    }

    #[test]
    fn min_max_dominance() {
        let a = Point::new([1, 5]);
        let b = Point::new([3, 2]);
        assert_eq!(a.min(b), Point::new([1, 2]));
        assert_eq!(a.max(b), Point::new([3, 5]));
        assert!(!a.dominates_le(b));
        assert!(a.min(b).dominates_le(a));
        assert!(a.dominates_le(a));
    }

    #[test]
    fn conversions() {
        assert_eq!(Point::from(7i64).idx(), 7);
        assert_eq!(Point::from((1, 2)), Point::new([1, 2]));
        assert_eq!(Point::from((1, 2, 3)), Point::new([1, 2, 3]));
    }

    #[test]
    fn indexing() {
        let mut p = Point::new([4, 9, 16]);
        assert_eq!(p[2], 16);
        p[0] = -1;
        assert_eq!(p, Point::new([-1, 9, 16]));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Point::new([1, -2])), "(1,-2)");
    }
}
