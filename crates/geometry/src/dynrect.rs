//! Dynamically-dimensioned points and rectangles.
//!
//! The compiler and runtime layers handle regions of mixed dimensionality
//! (1-D unstructured meshes, 2-D grids, 3-D grids) uniformly, so alongside
//! the const-generic [`Point`]/[`Rect`] types we
//! provide erased equivalents with the dimension stored at runtime
//! (capped at [`MAX_DIM`], like Legion's `Domain`).

use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// Maximum supported dimensionality.
pub const MAX_DIM: usize = 3;

/// A point with runtime-known dimensionality (1..=[`MAX_DIM`]).
///
/// Unused trailing coordinates are kept at 0 so that equality and hashing
/// work structurally.
// (Empty rectangles are canonicalized on construction so `==` is
// structural set equality for them too.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DynPoint {
    dim: u8,
    coords: [i64; MAX_DIM],
}

impl DynPoint {
    /// Creates a point from its leading `coords.len()` coordinates.
    ///
    /// # Panics
    /// If `coords` is empty or longer than [`MAX_DIM`].
    pub fn new(coords: &[i64]) -> Self {
        assert!(
            (1..=MAX_DIM).contains(&coords.len()),
            "DynPoint dimension must be 1..={MAX_DIM}, got {}",
            coords.len()
        );
        let mut c = [0i64; MAX_DIM];
        c[..coords.len()].copy_from_slice(coords);
        DynPoint {
            dim: coords.len() as u8,
            coords: c,
        }
    }

    /// The dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The active coordinates.
    #[inline]
    pub fn coords(&self) -> &[i64] {
        &self.coords[..self.dim as usize]
    }

    /// Coordinate in dimension `d`.
    #[inline]
    pub fn coord(&self, d: usize) -> i64 {
        debug_assert!(d < self.dim());
        self.coords[d]
    }

    /// Converts to a static-dimension point.
    ///
    /// # Panics
    /// If `D` does not match the runtime dimension.
    pub fn to_static<const D: usize>(&self) -> Point<D> {
        assert_eq!(D, self.dim(), "dimension mismatch");
        let mut out = [0i64; D];
        out.copy_from_slice(&self.coords[..D]);
        Point(out)
    }
}

impl<const D: usize> From<Point<D>> for DynPoint {
    fn from(p: Point<D>) -> Self {
        DynPoint::new(&p.0)
    }
}

impl From<i64> for DynPoint {
    fn from(v: i64) -> Self {
        DynPoint::new(&[v])
    }
}

impl fmt::Debug for DynPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A rectangle with runtime-known dimensionality and inclusive bounds.
///
/// The canonical empty rectangle of dimension `d` has `lo = 0, hi = -1`
/// in every active coordinate; construction canonicalizes all empty
/// rectangles to it so equality is structural.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynRect {
    dim: u8,
    lo: [i64; MAX_DIM],
    hi: [i64; MAX_DIM],
}

impl DynRect {
    /// Creates `[lo, hi]` with matching dimensions.
    pub fn new(lo: DynPoint, hi: DynPoint) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "bound dimensions differ");
        DynRect {
            dim: lo.dim,
            lo: lo.coords,
            hi: hi.coords,
        }
        .normalized()
    }

    /// The canonical empty rectangle of dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        assert!((1..=MAX_DIM).contains(&dim));
        let mut hi = [0i64; MAX_DIM];
        for h in hi.iter_mut().take(dim) {
            *h = -1;
        }
        DynRect {
            dim: dim as u8,
            lo: [0; MAX_DIM],
            hi,
        }
    }

    /// The 1-D interval `[lo, hi]`.
    pub fn span(lo: i64, hi: i64) -> Self {
        DynRect::new(DynPoint::new(&[lo]), DynPoint::new(&[hi]))
    }

    /// The 1-D interval `[0, n)`.
    pub fn range(n: u64) -> Self {
        DynRect::span(0, n as i64 - 1)
    }

    fn normalized(self) -> Self {
        if self.is_empty() {
            DynRect::empty(self.dim())
        } else {
            self
        }
    }

    /// The dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn lo(&self) -> DynPoint {
        DynPoint {
            dim: self.dim,
            coords: self.lo,
        }
    }

    /// Inclusive upper bound.
    #[inline]
    pub fn hi(&self) -> DynPoint {
        DynPoint {
            dim: self.dim,
            coords: self.hi,
        }
    }

    /// True when the rectangle has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..self.dim()).any(|d| self.lo[d] > self.hi[d])
    }

    /// Number of points.
    #[inline]
    pub fn volume(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut v = 1u64;
        for d in 0..self.dim() {
            v *= (self.hi[d] - self.lo[d] + 1) as u64;
        }
        v
    }

    /// True when `p` lies inside (requires matching dimensions).
    #[inline]
    pub fn contains(&self, p: DynPoint) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        (0..self.dim()).all(|d| self.lo[d] <= p.coords[d] && p.coords[d] <= self.hi[d])
    }

    /// True when `other` lies entirely within `self`.
    #[inline]
    pub fn contains_rect(&self, other: &DynRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        other.is_empty()
            || (0..self.dim()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Intersection (possibly empty, canonicalized).
    #[inline]
    pub fn intersection(&self, other: &DynRect) -> DynRect {
        debug_assert_eq!(self.dim(), other.dim());
        let mut out = *self;
        for d in 0..self.dim() {
            out.lo[d] = self.lo[d].max(other.lo[d]);
            out.hi[d] = self.hi[d].min(other.hi[d]);
        }
        out.normalized()
    }

    /// True when the rectangles share a point.
    #[inline]
    pub fn overlaps(&self, other: &DynRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
            && !self.is_empty()
            && !other.is_empty()
    }

    /// Smallest rectangle containing both (empty inputs are identities).
    pub fn union_bbox(&self, other: &DynRect) -> DynRect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        debug_assert_eq!(self.dim(), other.dim());
        let mut out = *self;
        for d in 0..self.dim() {
            out.lo[d] = self.lo[d].min(other.lo[d]);
            out.hi[d] = self.hi[d].max(other.hi[d]);
        }
        out
    }

    /// Subtracts `other`, producing up to `2 * dim` disjoint rectangles
    /// that exactly cover `self \ other`.
    ///
    /// Uses the standard axis-sweep decomposition: for each dimension,
    /// peel off the slabs of `self` strictly below and strictly above
    /// `other`, then shrink the working rectangle to `other`'s bounds in
    /// that dimension.
    pub fn subtract(&self, other: &DynRect) -> Vec<DynRect> {
        debug_assert_eq!(self.dim(), other.dim());
        if self.is_empty() {
            return Vec::new();
        }
        let inter = self.intersection(other);
        if inter.is_empty() {
            return vec![*self];
        }
        if inter == *self {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut work = *self;
        for d in 0..self.dim() {
            if work.lo[d] < inter.lo[d] {
                let mut below = work;
                below.hi[d] = inter.lo[d] - 1;
                out.push(below);
                work.lo[d] = inter.lo[d];
            }
            if work.hi[d] > inter.hi[d] {
                let mut above = work;
                above.lo[d] = inter.hi[d] + 1;
                out.push(above);
                work.hi[d] = inter.hi[d];
            }
        }
        out
    }

    /// Row-major linearization of `p` relative to `lo` (see
    /// [`Rect::linearize`]).
    #[inline]
    pub fn linearize(&self, p: DynPoint) -> Option<u64> {
        if !self.contains(p) {
            return None;
        }
        let mut idx = 0u64;
        for d in 0..self.dim() {
            let extent = (self.hi[d] - self.lo[d] + 1) as u64;
            idx = idx * extent + (p.coords[d] - self.lo[d]) as u64;
        }
        Some(idx)
    }

    /// Inverse of [`DynRect::linearize`].
    pub fn delinearize(&self, mut idx: u64) -> Option<DynPoint> {
        if idx >= self.volume() {
            return None;
        }
        let mut p = self.lo();
        for d in (0..self.dim()).rev() {
            let extent = (self.hi[d] - self.lo[d] + 1) as u64;
            p.coords[d] = self.lo[d] + (idx % extent) as i64;
            idx /= extent;
        }
        Some(p)
    }

    /// Iterates all points in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = DynPoint> + '_ {
        let vol = self.volume();
        (0..vol).map(move |i| self.delinearize(i).unwrap())
    }

    /// Splits into `parts` blocks along `dim` (see
    /// [`Rect::block_split`]).
    pub fn block_split(&self, parts: usize, dim: usize) -> Vec<DynRect> {
        assert!(dim < self.dim());
        assert!(parts > 0);
        let mut out = Vec::with_capacity(parts);
        if self.is_empty() {
            out.resize(parts, DynRect::empty(self.dim()));
            return out;
        }
        let extent = (self.hi[dim] - self.lo[dim] + 1) as u64;
        let base = extent / parts as u64;
        let rem = extent % parts as u64;
        let mut lo = self.lo[dim];
        for i in 0..parts {
            let len = base + u64::from((i as u64) < rem);
            if len == 0 {
                out.push(DynRect::empty(self.dim()));
                continue;
            }
            let mut r = *self;
            r.lo[dim] = lo;
            r.hi[dim] = lo + len as i64 - 1;
            lo += len as i64;
            out.push(r);
        }
        out
    }

    /// Grows the rectangle by `radius` in every direction.
    pub fn grow(&self, radius: i64) -> DynRect {
        if self.is_empty() {
            return *self;
        }
        let mut out = *self;
        for d in 0..self.dim() {
            out.lo[d] -= radius;
            out.hi[d] += radius;
        }
        out.normalized()
    }

    /// Converts to a static-dimension rectangle.
    ///
    /// # Panics
    /// If `D` does not match the runtime dimension.
    pub fn to_static<const D: usize>(&self) -> Rect<D> {
        Rect::new(self.lo().to_static(), self.hi().to_static())
    }
}

impl<const D: usize> From<Rect<D>> for DynRect {
    fn from(r: Rect<D>) -> Self {
        if r.is_empty() {
            DynRect::empty(D)
        } else {
            DynRect::new(r.lo.into(), r.hi.into())
        }
    }
}

impl fmt::Debug for DynRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty{}d]", self.dim())
        } else {
            write!(f, "[{:?}..{:?}]", self.lo(), self.hi())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_static() {
        let r = Rect::new(Point([1, 2]), Point([3, 4]));
        let d: DynRect = r.into();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.volume(), r.volume());
        assert_eq!(d.to_static::<2>(), r);
    }

    #[test]
    fn empty_canonical() {
        let a = DynRect::span(5, 2);
        let b = DynRect::empty(1);
        assert_eq!(a, b);
        assert!(a.is_empty());
    }

    #[test]
    fn subtract_1d() {
        let a = DynRect::span(0, 9);
        let b = DynRect::span(3, 5);
        let parts = a.subtract(&b);
        assert_eq!(parts, vec![DynRect::span(0, 2), DynRect::span(6, 9)]);
        let vol: u64 = parts.iter().map(DynRect::volume).sum();
        assert_eq!(vol, a.volume() - b.volume());
    }

    #[test]
    fn subtract_disjoint_and_covering() {
        let a = DynRect::span(0, 4);
        assert_eq!(a.subtract(&DynRect::span(10, 20)), vec![a]);
        assert!(a.subtract(&DynRect::span(-5, 50)).is_empty());
    }

    #[test]
    fn subtract_2d_cover() {
        let a: DynRect = Rect::new(Point([0, 0]), Point([9, 9])).into();
        let b: DynRect = Rect::new(Point([3, 3]), Point([6, 6])).into();
        let parts = a.subtract(&b);
        // Pieces are disjoint and tile a \ b.
        let vol: u64 = parts.iter().map(DynRect::volume).sum();
        assert_eq!(vol, a.volume() - b.volume());
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.overlaps(&b));
            for q in &parts[i + 1..] {
                assert!(!p.overlaps(q));
            }
        }
    }

    #[test]
    fn linearize_roundtrip() {
        let r: DynRect = Rect::new(Point([2, -1, 0]), Point([4, 1, 2])).into();
        for i in 0..r.volume() {
            let p = r.delinearize(i).unwrap();
            assert_eq!(r.linearize(p), Some(i));
        }
        assert_eq!(r.iter().count() as u64, r.volume());
    }

    #[test]
    fn block_split_matches_static() {
        let r = Rect::span(0, 99);
        let d: DynRect = r.into();
        let s = r.block_split(7, 0);
        let ds = d.block_split(7, 0);
        for (a, b) in s.iter().zip(&ds) {
            assert_eq!(DynRect::from(*a), *b);
        }
    }
}
