//! Axis-aligned rectangles with inclusive bounds.
//!
//! Rectangles are the dense building block of index spaces: a structured
//! region's index space is a rectangle, and block partitions slice
//! rectangles into sub-rectangles. Bounds are *inclusive* on both ends
//! (matching Legion's `Rect`), so the empty rectangle is represented by any
//! `lo` that fails to dominate `hi`.

use crate::point::Point;
use std::fmt;

/// An axis-aligned `D`-dimensional rectangle with inclusive bounds
/// `[lo, hi]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect<const D: usize> {
    /// Inclusive lower bound.
    pub lo: Point<D>,
    /// Inclusive upper bound.
    pub hi: Point<D>,
}

/// 1-D rectangle (an integer interval).
pub type Rect1 = Rect<1>;
/// 2-D rectangle.
pub type Rect2 = Rect<2>;
/// 3-D rectangle.
pub type Rect3 = Rect<3>;

impl<const D: usize> Rect<D> {
    /// Creates the rectangle `[lo, hi]` (inclusive both ends).
    #[inline]
    pub const fn new(lo: Point<D>, hi: Point<D>) -> Self {
        Rect { lo, hi }
    }

    /// The canonical empty rectangle (`lo > hi` in every dimension).
    #[inline]
    pub const fn empty() -> Self {
        Rect {
            lo: Point::splat(0),
            hi: Point::splat(-1),
        }
    }

    /// True when this rectangle contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.lo.dominates_le(self.hi)
    }

    /// The number of points in the rectangle.
    #[inline]
    pub fn volume(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut v: u64 = 1;
        for d in 0..D {
            v *= (self.hi[d] - self.lo[d] + 1) as u64;
        }
        v
    }

    /// True when `p` lies within the rectangle.
    #[inline]
    pub fn contains(&self, p: Point<D>) -> bool {
        self.lo.dominates_le(p) && p.dominates_le(self.hi)
    }

    /// True when `other` is entirely within `self`. Empty rectangles are
    /// contained in everything.
    #[inline]
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        other.is_empty() || (self.lo.dominates_le(other.lo) && other.hi.dominates_le(self.hi))
    }

    /// The intersection of two rectangles (possibly empty).
    #[inline]
    pub fn intersection(&self, other: &Rect<D>) -> Rect<D> {
        Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// True when the two rectangles share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Rect<D>) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The smallest rectangle containing both inputs. Empty inputs are
    /// identity elements.
    #[inline]
    pub fn union_bbox(&self, other: &Rect<D>) -> Rect<D> {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Iterates every point of the rectangle in lexicographic
    /// (row-major, last dimension fastest) order.
    pub fn iter(&self) -> RectIter<D> {
        RectIter {
            rect: *self,
            next: if self.is_empty() { None } else { Some(self.lo) },
        }
    }

    /// Row-major linearization of `p` relative to `self.lo`.
    ///
    /// Returns `None` when `p` is outside the rectangle. The mapping is a
    /// bijection between the rectangle's points and `0..volume()`, used to
    /// address physical instance storage.
    #[inline]
    pub fn linearize(&self, p: Point<D>) -> Option<u64> {
        if !self.contains(p) {
            return None;
        }
        let mut idx: u64 = 0;
        for d in 0..D {
            let extent = (self.hi[d] - self.lo[d] + 1) as u64;
            idx = idx * extent + (p[d] - self.lo[d]) as u64;
        }
        Some(idx)
    }

    /// Inverse of [`Rect::linearize`].
    #[inline]
    pub fn delinearize(&self, mut idx: u64) -> Option<Point<D>> {
        if idx >= self.volume() {
            return None;
        }
        let mut p = self.lo;
        for d in (0..D).rev() {
            let extent = (self.hi[d] - self.lo[d] + 1) as u64;
            p[d] = self.lo[d] + (idx % extent) as i64;
            idx /= extent;
        }
        Some(p)
    }

    /// Splits the rectangle into `parts` contiguous blocks along dimension
    /// `dim`, distributing the remainder one element at a time to the
    /// leading blocks (the classic block-distribution rule used by
    /// Regent's `block` partition operator).
    ///
    /// Always returns exactly `parts` rectangles; trailing ones are empty
    /// when there are fewer elements than parts.
    pub fn block_split(&self, parts: usize, dim: usize) -> Vec<Rect<D>> {
        assert!(dim < D, "split dimension {dim} out of range for Rect<{D}>");
        assert!(parts > 0, "cannot split into zero parts");
        let mut out = Vec::with_capacity(parts);
        if self.is_empty() {
            out.resize(parts, Rect::empty());
            return out;
        }
        let extent = (self.hi[dim] - self.lo[dim] + 1) as u64;
        let base = extent / parts as u64;
        let rem = extent % parts as u64;
        let mut lo = self.lo[dim];
        for i in 0..parts {
            let len = base + u64::from((i as u64) < rem);
            if len == 0 {
                out.push(Rect::empty());
                continue;
            }
            let mut r = *self;
            r.lo[dim] = lo;
            r.hi[dim] = lo + len as i64 - 1;
            lo += len as i64;
            out.push(r);
        }
        out
    }

    /// Grows the rectangle by `radius` in every direction (the halo
    /// expansion used by stencil ghost regions).
    #[inline]
    pub fn grow(&self, radius: i64) -> Rect<D> {
        if self.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo - Point::splat(radius),
            hi: self.hi + Point::splat(radius),
        }
    }
}

impl Rect<1> {
    /// The 1-D interval `[lo, hi]` inclusive.
    #[inline]
    pub fn span(lo: i64, hi: i64) -> Rect<1> {
        Rect::new(Point([lo]), Point([hi]))
    }

    /// The half-open interval `[0, n)` as an inclusive rectangle.
    #[inline]
    pub fn range(n: u64) -> Rect<1> {
        Rect::new(Point([0]), Point([n as i64 - 1]))
    }
}

impl<const D: usize> fmt::Debug for Rect<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{:?}..{:?}]", self.lo, self.hi)
        }
    }
}

/// Iterator over all points of a rectangle, produced by [`Rect::iter`].
pub struct RectIter<const D: usize> {
    rect: Rect<D>,
    next: Option<Point<D>>,
}

impl<const D: usize> Iterator for RectIter<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        let cur = self.next?;
        // Advance with carry, last dimension fastest (matches linearize).
        let mut nxt = cur;
        let mut d = D;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            if nxt[d] < self.rect.hi[d] {
                nxt[d] += 1;
                self.next = Some(nxt);
                break;
            }
            nxt[d] = self.rect.lo[d];
        }
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next {
            None => (0, Some(0)),
            Some(p) => {
                // Remaining = volume - linearized position of p.
                let done = self.rect.linearize(p).unwrap_or(0);
                let rem = (self.rect.volume() - done) as usize;
                (rem, Some(rem))
            }
        }
    }
}

impl<const D: usize> ExactSizeIterator for RectIter<D> {}

impl<const D: usize> IntoIterator for Rect<D> {
    type Item = Point<D>;
    type IntoIter = RectIter<D>;
    fn into_iter(self) -> RectIter<D> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_empty() {
        let r = Rect::new(Point([0, 0]), Point([3, 1]));
        assert_eq!(r.volume(), 8);
        assert!(!r.is_empty());
        assert!(Rect::<2>::empty().is_empty());
        assert_eq!(Rect::<2>::empty().volume(), 0);
        // Inverted bounds are empty too.
        let inv = Rect::new(Point([5]), Point([2]));
        assert!(inv.is_empty());
    }

    #[test]
    fn contains_and_overlap() {
        let a = Rect::span(0, 9);
        let b = Rect::span(5, 14);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersection(&b), Rect::span(5, 9));
        assert!(a.contains(Point([9])));
        assert!(!a.contains(Point([10])));
        let c = Rect::span(20, 30);
        assert!(!a.overlaps(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn union_bbox_identity() {
        let a = Rect::span(0, 3);
        assert_eq!(a.union_bbox(&Rect::empty()), a);
        assert_eq!(Rect::empty().union_bbox(&a), a);
        assert_eq!(a.union_bbox(&Rect::span(10, 12)), Rect::span(0, 12));
    }

    #[test]
    fn iter_matches_linearize() {
        let r = Rect::new(Point([1, 2]), Point([3, 4]));
        let pts: Vec<_> = r.iter().collect();
        assert_eq!(pts.len() as u64, r.volume());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(r.linearize(*p), Some(i as u64));
            assert_eq!(r.delinearize(i as u64), Some(*p));
        }
        // First point is lo, last is hi.
        assert_eq!(pts[0], r.lo);
        assert_eq!(*pts.last().unwrap(), r.hi);
    }

    #[test]
    fn iter_empty() {
        assert_eq!(Rect::<3>::empty().iter().count(), 0);
    }

    #[test]
    fn exact_size() {
        let r = Rect::new(Point([0, 0]), Point([4, 4]));
        let mut it = r.iter();
        assert_eq!(it.len(), 25);
        it.next();
        assert_eq!(it.len(), 24);
    }

    #[test]
    fn block_split_even_and_remainder() {
        let r = Rect::span(0, 9);
        let parts = r.block_split(3, 0);
        assert_eq!(
            parts,
            vec![Rect::span(0, 3), Rect::span(4, 6), Rect::span(7, 9)]
        );
        // Splitting into more parts than elements yields empties.
        let tiny = Rect::span(0, 1).block_split(4, 0);
        assert_eq!(tiny.iter().filter(|r| !r.is_empty()).count(), 2);
        assert_eq!(tiny.len(), 4);
        // Blocks tile the original exactly.
        let total: u64 = parts.iter().map(Rect::volume).sum();
        assert_eq!(total, r.volume());
    }

    #[test]
    fn block_split_2d() {
        let r = Rect::new(Point([0, 0]), Point([9, 9]));
        let rows = r.block_split(2, 0);
        assert_eq!(rows[0], Rect::new(Point([0, 0]), Point([4, 9])));
        assert_eq!(rows[1], Rect::new(Point([5, 0]), Point([9, 9])));
        let cols = r.block_split(2, 1);
        assert_eq!(cols[0], Rect::new(Point([0, 0]), Point([9, 4])));
    }

    #[test]
    fn grow_halo() {
        let r = Rect::new(Point([2, 2]), Point([5, 5]));
        assert_eq!(r.grow(2), Rect::new(Point([0, 0]), Point([7, 7])));
        assert!(Rect::<2>::empty().grow(3).is_empty());
    }
}
