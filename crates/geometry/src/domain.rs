//! Domains: possibly-sparse sets of points, represented as disjoint
//! unions of rectangles.
//!
//! A logical region's index space is a domain, and so is every subregion
//! produced by the partitioning sublanguage (§2.1). Dense structured
//! subregions are single rectangles; unstructured subsets (e.g. the image
//! of an arbitrary function `h`, §2.1 line 22) are unions of 1-D runs;
//! halo regions of structured grids are unions of a few rectangles. The
//! disjoint-rectangle-union representation covers all of these while
//! keeping exact set algebra (union / intersection / difference)
//! tractable, which is what the dynamic half of the copy intersection
//! optimization (§3.3) computes.

use crate::dynrect::{DynPoint, DynRect};
use std::fmt;

/// A set of points of uniform dimensionality, stored as a normalized
/// list of pairwise-disjoint rectangles.
///
/// Invariants (maintained by every constructor and operation):
/// * all rectangles share the domain's dimensionality;
/// * no rectangle is empty;
/// * rectangles are pairwise disjoint;
/// * rectangles are sorted by `lo` (canonical order, so `==` is set
///   equality for 1-D domains after run coalescing; for multi-D domains
///   equality is representation equality — use [`Domain::set_eq`] for
///   semantic comparison).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Domain {
    dim: u8,
    rects: Vec<DynRect>,
}

impl Domain {
    /// The empty domain of dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        assert!((1..=crate::dynrect::MAX_DIM).contains(&dim));
        Domain {
            dim: dim as u8,
            rects: Vec::new(),
        }
    }

    /// A domain consisting of a single rectangle.
    pub fn from_rect(r: DynRect) -> Self {
        let mut d = Domain::empty(r.dim());
        if !r.is_empty() {
            d.rects.push(r);
        }
        d
    }

    /// A 1-D domain over `[0, n)`.
    pub fn range(n: u64) -> Self {
        Domain::from_rect(DynRect::range(n))
    }

    /// Builds a 1-D domain from a set of ids, coalescing consecutive ids
    /// into runs. Duplicates are allowed and ignored.
    pub fn from_ids(ids: impl IntoIterator<Item = i64>) -> Self {
        let mut ids: Vec<i64> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let mut rects = Vec::new();
        let mut iter = ids.into_iter();
        if let Some(first) = iter.next() {
            let (mut lo, mut hi) = (first, first);
            for id in iter {
                if id == hi + 1 {
                    hi = id;
                } else {
                    rects.push(DynRect::span(lo, hi));
                    lo = id;
                    hi = id;
                }
            }
            rects.push(DynRect::span(lo, hi));
        }
        Domain { dim: 1, rects }
    }

    /// Builds a domain from arbitrary points (deduplicated). All points
    /// must share a dimensionality. For 1-D points, runs are coalesced.
    pub fn from_points(points: impl IntoIterator<Item = DynPoint>) -> Self {
        let mut pts: Vec<DynPoint> = points.into_iter().collect();
        if pts.is_empty() {
            return Domain::empty(1);
        }
        let dim = pts[0].dim();
        assert!(pts.iter().all(|p| p.dim() == dim), "mixed dimensionality");
        if dim == 1 {
            return Domain::from_ids(pts.into_iter().map(|p| p.coord(0)));
        }
        pts.sort_unstable();
        pts.dedup();
        // Coalesce runs along the last (fastest-varying) dimension.
        let mut rects: Vec<DynRect> = Vec::new();
        for p in pts {
            let r = DynRect::new(p, p);
            if let Some(last) = rects.last_mut() {
                // Extend if p continues the run in the final dimension.
                let d = dim - 1;
                let continues = (0..d).all(|k| last.lo().coord(k) == p.coord(k))
                    && last.hi().coord(d) + 1 == p.coord(d)
                    && (0..d).all(|k| last.hi().coord(k) == p.coord(k));
                if continues {
                    let mut hi = last.hi();
                    let mut coords: Vec<i64> = hi.coords().to_vec();
                    coords[d] += 1;
                    hi = DynPoint::new(&coords);
                    *last = DynRect::new(last.lo(), hi);
                    continue;
                }
            }
            rects.push(r);
        }
        let mut out = Domain::empty(dim);
        for r in rects {
            out = out.union(&Domain::from_rect(r));
        }
        out
    }

    /// Builds a domain from a list of (possibly overlapping) rectangles.
    pub fn from_rects(rects: impl IntoIterator<Item = DynRect>) -> Self {
        let mut it = rects.into_iter();
        let first = loop {
            match it.next() {
                None => return Domain::empty(1),
                Some(r) if r.is_empty() => continue,
                Some(r) => break r,
            }
        };
        let mut d = Domain::from_rect(first);
        for r in it {
            d = d.union(&Domain::from_rect(r));
        }
        d
    }

    /// The dimensionality of the domain.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The normalized disjoint rectangles making up the domain.
    #[inline]
    pub fn rects(&self) -> &[DynRect] {
        &self.rects
    }

    /// True when the domain has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total number of points.
    pub fn volume(&self) -> u64 {
        self.rects.iter().map(DynRect::volume).sum()
    }

    /// True when `p` belongs to the domain.
    pub fn contains(&self, p: DynPoint) -> bool {
        self.rects.iter().any(|r| r.contains(p))
    }

    /// The bounding box of the domain (empty rect when empty).
    pub fn bounds(&self) -> DynRect {
        self.rects
            .iter()
            .fold(DynRect::empty(self.dim()), |acc, r| acc.union_bbox(r))
    }

    /// Iterates all points in canonical (per-rect row-major) order.
    pub fn iter(&self) -> impl Iterator<Item = DynPoint> + '_ {
        self.rects.iter().flat_map(|r| r.iter())
    }

    /// Set intersection. Linear-time two-pointer sweep for 1-D domains
    /// (whose runs are sorted and disjoint); pairwise for multi-D.
    pub fn intersect(&self, other: &Domain) -> Domain {
        debug_assert_eq!(self.dim(), other.dim());
        if self.dim() == 1 {
            return self.intersect_1d(other);
        }
        let mut rects = Vec::new();
        for a in &self.rects {
            for b in &other.rects {
                let i = a.intersection(b);
                if !i.is_empty() {
                    rects.push(i);
                }
            }
        }
        // Inputs are internally disjoint, so outputs are disjoint too.
        rects.sort_unstable_by_key(|r| r.lo());
        let mut d = Domain {
            dim: self.dim,
            rects,
        };
        d.coalesce();
        d
    }

    fn intersect_1d(&self, other: &Domain) -> Domain {
        let (a, b) = (&self.rects, &other.rects);
        let mut rects = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (alo, ahi) = (a[i].lo().coord(0), a[i].hi().coord(0));
            let (blo, bhi) = (b[j].lo().coord(0), b[j].hi().coord(0));
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                rects.push(DynRect::span(lo, hi));
            }
            // Advance whichever run ends first.
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        Domain { dim: 1, rects }
    }

    /// True when the domains share at least one point (cheaper than
    /// materializing the intersection); linear sweep for 1-D, pairwise
    /// for multi-D.
    pub fn overlaps(&self, other: &Domain) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        if self.dim() == 1 {
            let (a, b) = (&self.rects, &other.rects);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                let (alo, ahi) = (a[i].lo().coord(0), a[i].hi().coord(0));
                let (blo, bhi) = (b[j].lo().coord(0), b[j].hi().coord(0));
                if alo.max(blo) <= ahi.min(bhi) {
                    return true;
                }
                if ahi < bhi {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            return false;
        }
        self.rects
            .iter()
            .any(|a| other.rects.iter().any(|b| a.overlaps(b)))
    }

    /// Set difference `self \ other`. Linear-time sweep for 1-D.
    pub fn subtract(&self, other: &Domain) -> Domain {
        debug_assert_eq!(self.dim(), other.dim());
        if self.dim() == 1 {
            return self.subtract_1d(other);
        }
        let mut rects = self.rects.clone();
        for b in &other.rects {
            let mut next = Vec::with_capacity(rects.len());
            for a in rects {
                next.extend(a.subtract(b));
            }
            rects = next;
        }
        rects.sort_unstable_by_key(|r| r.lo());
        let mut d = Domain {
            dim: self.dim,
            rects,
        };
        d.coalesce();
        d
    }

    fn subtract_1d(&self, other: &Domain) -> Domain {
        let b = &other.rects;
        let mut rects = Vec::new();
        let mut j = 0usize;
        for a in &self.rects {
            let mut lo = a.lo().coord(0);
            let ahi = a.hi().coord(0);
            // Skip subtrahend runs entirely before this run.
            while j < b.len() && b[j].hi().coord(0) < lo {
                j += 1;
            }
            let mut k = j;
            while lo <= ahi {
                if k >= b.len() || b[k].lo().coord(0) > ahi {
                    rects.push(DynRect::span(lo, ahi));
                    break;
                }
                let (blo, bhi) = (b[k].lo().coord(0), b[k].hi().coord(0));
                if blo > lo {
                    rects.push(DynRect::span(lo, blo - 1));
                }
                lo = lo.max(bhi + 1);
                if bhi <= ahi {
                    k += 1;
                } else {
                    break;
                }
            }
        }
        Domain { dim: 1, rects }
    }

    /// Set union. Linear-time merge for 1-D.
    pub fn union(&self, other: &Domain) -> Domain {
        debug_assert_eq!(self.dim(), other.dim());
        if self.dim() == 1 {
            return self.union_1d(other);
        }
        // Keep self intact; add only the parts of other not already here.
        let extra = other.subtract(self);
        let mut rects = self.rects.clone();
        rects.extend(extra.rects);
        rects.sort_unstable_by_key(|r| r.lo());
        let mut d = Domain {
            dim: self.dim,
            rects,
        };
        d.coalesce();
        d
    }

    fn union_1d(&self, other: &Domain) -> Domain {
        let (a, b) = (&self.rects, &other.rects);
        let mut rects: Vec<DynRect> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        let push = |rects: &mut Vec<DynRect>, lo: i64, hi: i64| {
            if let Some(last) = rects.last_mut() {
                if last.hi().coord(0) + 1 >= lo {
                    let nlo = last.lo().coord(0);
                    let nhi = last.hi().coord(0).max(hi);
                    *last = DynRect::span(nlo, nhi);
                    return;
                }
            }
            rects.push(DynRect::span(lo, hi));
        };
        while i < a.len() || j < b.len() {
            let take_a = j >= b.len() || (i < a.len() && a[i].lo().coord(0) <= b[j].lo().coord(0));
            let r = if take_a {
                let r = a[i];
                i += 1;
                r
            } else {
                let r = b[j];
                j += 1;
                r
            };
            push(&mut rects, r.lo().coord(0), r.hi().coord(0));
        }
        Domain { dim: 1, rects }
    }

    /// Semantic set equality (independent of rectangle decomposition).
    pub fn set_eq(&self, other: &Domain) -> bool {
        self.dim == other.dim && self.volume() == other.volume() && self.subtract(other).is_empty()
    }

    /// True when every point of `self` is in `other`.
    pub fn is_subset_of(&self, other: &Domain) -> bool {
        self.subtract(other).is_empty()
    }

    /// Merge adjacent rectangles where cheaply possible (exact for 1-D
    /// runs; best-effort pairwise merging for multi-D).
    fn coalesce(&mut self) {
        if self.rects.len() < 2 {
            return;
        }
        let dim = self.dim();
        let mut out: Vec<DynRect> = Vec::with_capacity(self.rects.len());
        for &r in &self.rects {
            if let Some(last) = out.last_mut() {
                if let Some(merged) = try_merge(last, &r, dim) {
                    *last = merged;
                    continue;
                }
            }
            out.push(r);
        }
        self.rects = out;
    }
}

/// Merges two rectangles when their union is exactly a rectangle
/// (identical in all dimensions but one, adjacent or overlapping in that
/// one).
fn try_merge(a: &DynRect, b: &DynRect, dim: usize) -> Option<DynRect> {
    let mut diff_dim = None;
    for d in 0..dim {
        let same = a.lo().coord(d) == b.lo().coord(d) && a.hi().coord(d) == b.hi().coord(d);
        if !same {
            if diff_dim.is_some() {
                return None;
            }
            diff_dim = Some(d);
        }
    }
    let d = match diff_dim {
        None => return Some(*a), // identical
        Some(d) => d,
    };
    // Adjacent or overlapping along d?
    let (alo, ahi) = (a.lo().coord(d), a.hi().coord(d));
    let (blo, bhi) = (b.lo().coord(d), b.hi().coord(d));
    if ahi + 1 >= blo && bhi + 1 >= alo {
        let mut lo: Vec<i64> = a.lo().coords().to_vec();
        let mut hi: Vec<i64> = a.hi().coords().to_vec();
        lo[d] = alo.min(blo);
        hi[d] = ahi.max(bhi);
        Some(DynRect::new(DynPoint::new(&lo), DynPoint::new(&hi)))
    } else {
        None
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.rects.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{r:?}")?;
        }
        write!(f, "}}")
    }
}

impl From<DynRect> for Domain {
    fn from(r: DynRect) -> Self {
        Domain::from_rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ids_coalesces_runs() {
        let d = Domain::from_ids([5, 1, 2, 3, 9, 10, 2]);
        assert_eq!(
            d.rects(),
            &[
                DynRect::span(1, 3),
                DynRect::span(5, 5),
                DynRect::span(9, 10)
            ]
        );
        assert_eq!(d.volume(), 6);
        assert!(d.contains(2.into()));
        assert!(!d.contains(4.into()));
    }

    #[test]
    fn set_algebra_1d() {
        let a = Domain::from_ids(0..10);
        let b = Domain::from_ids(5..15);
        let i = a.intersect(&b);
        assert_eq!(i.rects(), &[DynRect::span(5, 9)]);
        let u = a.union(&b);
        assert_eq!(u.rects(), &[DynRect::span(0, 14)]);
        let s = a.subtract(&b);
        assert_eq!(s.rects(), &[DynRect::span(0, 4)]);
        assert!(a.overlaps(&b));
        assert!(!s.overlaps(&b));
    }

    #[test]
    fn union_idempotent_and_commutative() {
        let a = Domain::from_ids([1, 2, 3, 7]);
        let b = Domain::from_ids([3, 4, 5]);
        assert!(a.union(&b).set_eq(&b.union(&a)));
        assert!(a.union(&a).set_eq(&a));
    }

    #[test]
    fn multidim_difference_volume() {
        let big = Domain::from_rect(DynRect::new(DynPoint::new(&[0, 0]), DynPoint::new(&[9, 9])));
        let hole = Domain::from_rect(DynRect::new(DynPoint::new(&[2, 2]), DynPoint::new(&[7, 7])));
        let ring = big.subtract(&hole);
        assert_eq!(ring.volume(), 100 - 36);
        assert!(!ring.overlaps(&hole));
        assert!(ring.union(&hole).set_eq(&big));
        assert!(hole.is_subset_of(&big));
        assert!(!big.is_subset_of(&hole));
    }

    #[test]
    fn from_points_multidim() {
        let pts = [
            DynPoint::new(&[0, 0]),
            DynPoint::new(&[0, 1]),
            DynPoint::new(&[0, 2]),
            DynPoint::new(&[2, 2]),
        ];
        let d = Domain::from_points(pts);
        assert_eq!(d.volume(), 4);
        for p in pts {
            assert!(d.contains(p));
        }
        assert!(!d.contains(DynPoint::new(&[1, 1])));
    }

    #[test]
    fn iter_visits_every_point_once() {
        let d = Domain::from_ids([1, 2, 3, 10, 11]);
        let pts: Vec<i64> = d.iter().map(|p| p.coord(0)).collect();
        assert_eq!(pts, vec![1, 2, 3, 10, 11]);
    }

    #[test]
    fn bounds() {
        let d = Domain::from_ids([3, 20]);
        assert_eq!(d.bounds(), DynRect::span(3, 20));
        assert!(Domain::empty(2).bounds().is_empty());
    }

    #[test]
    fn empty_behaviour() {
        let e = Domain::empty(1);
        let a = Domain::from_ids(0..5);
        assert!(e.intersect(&a).is_empty());
        assert!(a.union(&e).set_eq(&a));
        assert!(a.subtract(&e).set_eq(&a));
        assert!(e.is_subset_of(&a));
    }
}
