//! Property-based tests for the geometric set algebra.
//!
//! The copy intersection optimization (§3.3) and the data-replication
//! correctness argument (§3.1) both lean on this algebra being exact, so
//! we check the set-theoretic laws against a brute-force model built from
//! `HashSet<point>`.
//!
//! Gated behind the `proptest-tests` cargo feature: proptest is not
//! part of the offline dependency set, so the default `cargo test`
//! skips this file (see the workspace Cargo.toml for how to restore
//! the dev-dependency).

#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use regent_geometry::{Domain, DynPoint, DynRect};
use std::collections::HashSet;

/// Brute-force model of a domain: the explicit point set.
fn model(d: &Domain) -> HashSet<Vec<i64>> {
    d.iter().map(|p| p.coords().to_vec()).collect()
}

fn arb_rect_1d() -> impl Strategy<Value = DynRect> {
    (-20i64..20, 0i64..12).prop_map(|(lo, len)| DynRect::span(lo, lo + len))
}

fn arb_rect_2d() -> impl Strategy<Value = DynRect> {
    (-8i64..8, 0i64..5, -8i64..8, 0i64..5).prop_map(|(x, w, y, h)| {
        DynRect::new(DynPoint::new(&[x, y]), DynPoint::new(&[x + w, y + h]))
    })
}

fn arb_domain_1d() -> impl Strategy<Value = Domain> {
    prop::collection::vec(arb_rect_1d(), 0..5).prop_map(Domain::from_rects)
}

fn arb_domain_2d() -> impl Strategy<Value = Domain> {
    prop::collection::vec(arb_rect_2d(), 1..4).prop_map(Domain::from_rects)
}

/// Checks the internal invariants of the normalized representation.
fn check_invariants(d: &Domain) {
    for (i, a) in d.rects().iter().enumerate() {
        assert!(!a.is_empty(), "normalized domain contains empty rect");
        for b in &d.rects()[i + 1..] {
            assert!(!a.overlaps(b), "normalized domain has overlapping rects");
        }
    }
    let total: u64 = d.rects().iter().map(DynRect::volume).sum();
    assert_eq!(total, d.volume());
}

macro_rules! algebra_props {
    ($name:ident, $gen:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn union_matches_model(a in $gen, b in $gen) {
                    if a.dim() == b.dim() {
                        let u = a.union(&b);
                        check_invariants(&u);
                        let mut m = model(&a);
                        m.extend(model(&b));
                        prop_assert_eq!(model(&u), m);
                    }
                }

                #[test]
                fn intersect_matches_model(a in $gen, b in $gen) {
                    if a.dim() == b.dim() {
                        let i = a.intersect(&b);
                        check_invariants(&i);
                        let m: HashSet<_> =
                            model(&a).intersection(&model(&b)).cloned().collect();
                        prop_assert_eq!(model(&i), m);
                        prop_assert_eq!(a.overlaps(&b), !i.is_empty());
                    }
                }

                #[test]
                fn subtract_matches_model(a in $gen, b in $gen) {
                    if a.dim() == b.dim() {
                        let s = a.subtract(&b);
                        check_invariants(&s);
                        let m: HashSet<_> =
                            model(&a).difference(&model(&b)).cloned().collect();
                        prop_assert_eq!(model(&s), m);
                    }
                }

                #[test]
                fn partition_identity(a in $gen, b in $gen) {
                    // (a ∩ b) ∪ (a \ b) == a, and the two parts are disjoint.
                    if a.dim() == b.dim() {
                        let i = a.intersect(&b);
                        let s = a.subtract(&b);
                        prop_assert!(!i.overlaps(&s));
                        prop_assert!(i.union(&s).set_eq(&a));
                        prop_assert_eq!(i.volume() + s.volume(), a.volume());
                    }
                }
            }
        }
    };
}

algebra_props!(one_dim, arb_domain_1d());
algebra_props!(two_dim, arb_domain_2d());

proptest! {
    #[test]
    fn from_ids_is_exact(ids in prop::collection::vec(-50i64..50, 0..40)) {
        let d = Domain::from_ids(ids.iter().copied());
        check_invariants(&d);
        let expect: HashSet<i64> = ids.iter().copied().collect();
        let got: HashSet<i64> = d.iter().map(|p| p.coord(0)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn block_split_tiles(lo in -100i64..100, len in 1u64..200, parts in 1usize..10) {
        let r = DynRect::span(lo, lo + len as i64 - 1);
        let blocks = r.block_split(parts, 0);
        prop_assert_eq!(blocks.len(), parts);
        // Tiles are disjoint, ordered, and cover r exactly.
        let total: u64 = blocks.iter().map(DynRect::volume).sum();
        prop_assert_eq!(total, r.volume());
        let union = Domain::from_rects(blocks.iter().copied());
        prop_assert!(union.set_eq(&Domain::from_rect(r)));
        // Balanced: sizes differ by at most 1.
        let sizes: Vec<u64> = blocks.iter().map(DynRect::volume).collect();
        let mx = *sizes.iter().max().unwrap();
        let mn = *sizes.iter().min().unwrap();
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn rect_subtract_exact(a in arb_rect_2d(), b in arb_rect_2d()) {
        let parts = a.subtract(&b);
        // Disjoint, inside a, outside b, and complete.
        let mut vol = 0;
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(a.contains_rect(p));
            prop_assert!(!p.overlaps(&b));
            for q in &parts[i + 1..] {
                prop_assert!(!p.overlaps(q));
            }
            vol += p.volume();
        }
        prop_assert_eq!(vol, a.volume() - a.intersection(&b).volume());
    }

    #[test]
    fn linearize_bijective(a in arb_rect_2d()) {
        let mut seen = HashSet::new();
        for p in a.iter() {
            let i = a.linearize(p).unwrap();
            prop_assert!(i < a.volume());
            prop_assert!(seen.insert(i));
            prop_assert_eq!(a.delinearize(i), Some(p));
        }
    }
}
