//! Weak-scaling series and efficiency computation — the form in which
//! Figures 6–9 report results (throughput per node vs. node count).

use crate::scenario::ScenarioResult;

/// One point of a weak-scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Throughput per node (elements/s/node).
    pub throughput_per_node: f64,
}

/// A named weak-scaling series (one line of a figure).
#[derive(Clone, Debug)]
pub struct ScalingSeries {
    /// Legend label (e.g. "Regent (with CR)").
    pub label: String,
    /// Measured points.
    pub points: Vec<ScalePoint>,
}

impl ScalingSeries {
    /// Creates an empty series.
    pub fn new(label: &str) -> Self {
        ScalingSeries {
            label: label.to_string(),
            points: Vec::new(),
        }
    }

    /// Records a simulated result at `nodes`.
    pub fn push(&mut self, nodes: usize, r: ScenarioResult) {
        self.points.push(ScalePoint {
            nodes,
            throughput_per_node: r.throughput_per_node,
        });
    }

    /// Parallel efficiency at `nodes` relative to the series' smallest
    /// node count.
    pub fn efficiency_at(&self, nodes: usize) -> Option<f64> {
        let base = self
            .points
            .iter()
            .min_by_key(|p| p.nodes)?
            .throughput_per_node;
        let p = self.points.iter().find(|p| p.nodes == nodes)?;
        Some(p.throughput_per_node / base)
    }
}

/// Standard node counts of the paper's figures (powers of two to 1024).
pub fn node_counts_to(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 1;
    while n <= max {
        v.push(n);
        n *= 2;
    }
    v
}

/// Renders series as an aligned text table (one row per node count) —
/// the bench harness prints these as the figure's data.
pub fn format_table(series: &[ScalingSeries]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    write!(out, "{:>6}", "nodes").unwrap();
    for s in series {
        write!(out, "  {:>24}", s.label).unwrap();
    }
    out.push('\n');
    let nodes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.nodes).collect())
        .unwrap_or_default();
    for n in nodes {
        write!(out, "{n:>6}").unwrap();
        for s in series {
            match s.points.iter().find(|p| p.nodes == n) {
                Some(p) => write!(out, "  {:>24.3e}", p.throughput_per_node).unwrap(),
                None => write!(out, "  {:>24}", "-").unwrap(),
            }
        }
        out.push('\n');
    }
    out
}

/// Records scaling series into a trace as `Counter` events: one track
/// per series (named `series/<label>`), timestamped by node count so
/// the Chrome counter plot reads as throughput-per-node vs. machine
/// size.
pub fn trace_series(series: &[ScalingSeries], tracer: &std::sync::Arc<regent_trace::Tracer>) {
    for s in series {
        let mut tb = tracer.buffer(&format!("series/{}", s.label));
        for p in &s.points {
            tb.push(
                p.nodes as u64,
                0,
                regent_trace::EventKind::Counter {
                    name: "throughput_per_node",
                    value: p.throughput_per_node,
                },
            );
        }
        tb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts() {
        assert_eq!(node_counts_to(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(node_counts_to(1), vec![1]);
    }

    #[test]
    fn efficiency() {
        let mut s = ScalingSeries::new("x");
        s.push(
            1,
            ScenarioResult {
                makespan: 1.0,
                throughput_per_node: 100.0,
                graph_size: 0,
            },
        );
        s.push(
            64,
            ScenarioResult {
                makespan: 1.0,
                throughput_per_node: 99.0,
                graph_size: 0,
            },
        );
        assert_eq!(s.efficiency_at(64), Some(0.99));
        assert_eq!(s.efficiency_at(128), None);
    }

    #[test]
    fn table_formatting() {
        let mut s = ScalingSeries::new("a");
        s.push(
            1,
            ScenarioResult {
                makespan: 1.0,
                throughput_per_node: 123.0,
                graph_size: 0,
            },
        );
        let t = format_table(&[s]);
        assert!(t.contains("nodes"));
        assert!(t.contains('1'));
    }
}
