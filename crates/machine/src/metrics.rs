//! Weak-scaling series and efficiency computation — the form in which
//! Figures 6–9 report results (throughput per node vs. node count).

use crate::scenario::ScenarioResult;

/// One point of a weak-scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Throughput per node (elements/s/node), all executed work.
    pub throughput_per_node: f64,
    /// Goodput per node (elements/s/node), useful work only — equal to
    /// throughput in fault-free runs.
    pub goodput_per_node: f64,
}

/// A named weak-scaling series (one line of a figure).
#[derive(Clone, Debug)]
pub struct ScalingSeries {
    /// Legend label (e.g. "Regent (with CR)").
    pub label: String,
    /// Measured points.
    pub points: Vec<ScalePoint>,
}

impl ScalingSeries {
    /// Creates an empty series.
    pub fn new(label: &str) -> Self {
        ScalingSeries {
            label: label.to_string(),
            points: Vec::new(),
        }
    }

    /// Records a simulated result at `nodes`.
    pub fn push(&mut self, nodes: usize, r: ScenarioResult) {
        self.points.push(ScalePoint {
            nodes,
            throughput_per_node: r.throughput_per_node,
            goodput_per_node: r.goodput_per_node,
        });
    }

    /// Parallel efficiency at `nodes` relative to the series' smallest
    /// node count.
    pub fn efficiency_at(&self, nodes: usize) -> Option<f64> {
        let base = self
            .points
            .iter()
            .min_by_key(|p| p.nodes)?
            .throughput_per_node;
        let p = self.points.iter().find(|p| p.nodes == nodes)?;
        Some(p.throughput_per_node / base)
    }
}

/// Standard node counts of the paper's figures (powers of two to 1024).
pub fn node_counts_to(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 1;
    while n <= max {
        v.push(n);
        n *= 2;
    }
    v
}

/// Renders series as an aligned text table (one row per node count) —
/// the bench harness prints these as the figure's data.
pub fn format_table(series: &[ScalingSeries]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    write!(out, "{:>6}", "nodes").unwrap();
    for s in series {
        write!(out, "  {:>24}", s.label).unwrap();
    }
    out.push('\n');
    let nodes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.nodes).collect())
        .unwrap_or_default();
    for n in nodes {
        write!(out, "{n:>6}").unwrap();
        for s in series {
            match s.points.iter().find(|p| p.nodes == n) {
                Some(p) => write!(out, "  {:>24.3e}", p.throughput_per_node).unwrap(),
                None => write!(out, "  {:>24}", "-").unwrap(),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders resilience sweep rows — one labelled [`ScenarioResult`] per
/// configuration — as an aligned text table: makespan, goodput,
/// overhead relative to `baseline_makespan` (the fault-free run), and
/// the fault/recovery counters. The `fig_resilience` bench prints
/// these as its data.
pub fn format_resilience_table(
    rows: &[(String, ScenarioResult)],
    baseline_makespan: f64,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:>28}  {:>12}  {:>12}  {:>9}  {:>7}  {:>7}  {:>6}  {:>7}  {:>12}",
        "config",
        "makespan ms",
        "goodput/node",
        "ovhd %",
        "crashes",
        "replays",
        "lost",
        "retries",
        "recovery ms"
    )
    .unwrap();
    for (label, r) in rows {
        let overhead = (r.makespan / baseline_makespan - 1.0) * 100.0;
        writeln!(
            out,
            "{:>28}  {:>12.3}  {:>12.3e}  {:>9.1}  {:>7}  {:>7}  {:>6}  {:>7}  {:>12.3}",
            label,
            r.makespan * 1e3,
            r.goodput_per_node,
            overhead,
            r.faults.crashes,
            r.faults.epochs_replayed,
            r.faults.messages_lost,
            r.faults.retries,
            r.faults.recovery_time_s * 1e3
        )
        .unwrap();
    }
    out
}

/// Records scaling series into a trace as `Counter` events: one track
/// per series (named `series/<label>`), timestamped by node count so
/// the Chrome counter plot reads as throughput-per-node vs. machine
/// size.
pub fn trace_series(series: &[ScalingSeries], tracer: &std::sync::Arc<regent_trace::Tracer>) {
    for s in series {
        let mut tb = tracer.buffer(&format!("series/{}", s.label));
        for p in &s.points {
            tb.push(
                p.nodes as u64,
                0,
                regent_trace::EventKind::Counter {
                    name: "throughput_per_node",
                    value: p.throughput_per_node,
                },
            );
        }
        tb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts() {
        assert_eq!(node_counts_to(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(node_counts_to(1), vec![1]);
    }

    fn result(throughput: f64) -> ScenarioResult {
        ScenarioResult {
            makespan: 1.0,
            throughput_per_node: throughput,
            goodput_per_node: throughput,
            graph_size: 0,
            faults: Default::default(),
        }
    }

    #[test]
    fn efficiency() {
        let mut s = ScalingSeries::new("x");
        s.push(1, result(100.0));
        s.push(64, result(99.0));
        assert_eq!(s.efficiency_at(64), Some(0.99));
        assert_eq!(s.efficiency_at(128), None);
    }

    #[test]
    fn table_formatting() {
        let mut s = ScalingSeries::new("a");
        s.push(1, result(123.0));
        let t = format_table(&[s]);
        assert!(t.contains("nodes"));
        assert!(t.contains('1'));
    }

    #[test]
    fn resilience_table_formatting() {
        let mut r = result(100.0);
        r.makespan = 1.2;
        r.goodput_per_node = 90.0;
        r.faults.crashes = 1;
        r.faults.epochs_replayed = 3;
        let t = format_resilience_table(&[("k=2 crash".into(), r)], 1.0);
        assert!(t.contains("config"));
        assert!(t.contains("k=2 crash"));
        assert!(t.contains("20.0")); // 20% overhead
    }
}
