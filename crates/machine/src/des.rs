//! A discrete-event simulation engine.
//!
//! The engine executes a DAG of *sim-tasks* over a set of *resources*
//! (FIFO multi-server queues: node core pools, the control thread of
//! the implicit runtime, per-node NICs). Time is virtual; the engine is
//! deterministic. This is the substitute substrate for the paper's
//! 1024-node Piz Daint runs (see DESIGN.md): the quantities being
//! studied — control-thread serialization, halo transfer time,
//! collective latency — are modeled explicitly, while task compute
//! costs are supplied by the workload builders.

//!
//! With an enabled tracer ([`Sim::run_traced`]) the engine records a
//! `SimTask` span for every service interval, tagged via [`Sim::tag`]
//! with its model-level meaning (launch, analysis, compute, copy,
//! collective) and (node, step) coordinates. Virtual seconds map to
//! trace nanoseconds 1:1e9, so the Chrome exporter renders simulated
//! timelines exactly like real ones.

use regent_fault::{FaultPlan, FaultStats, MessageFate, RetryPolicy};
use regent_trace::{EventKind as TraceEventKind, SimKind, TraceBuf, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifier of a sim-task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimTaskId(pub u32);

/// Identifier of a resource (multi-server FIFO queue).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub u32);

/// A unit of simulated work.
#[derive(Clone, Debug)]
pub struct SimTask {
    /// Service time on the resource, in seconds.
    pub duration: f64,
    /// The resource that must serve this task.
    pub resource: ResourceId,
    /// Extra delay between service completion and dependents being
    /// released (e.g. network latency after NIC serialization).
    pub completion_delay: f64,
    /// Tasks that cannot start before this one completes.
    pub dependents: Vec<SimTaskId>,
    /// Number of unsatisfied dependencies.
    pub num_deps: u32,
}

/// A resource: `servers` parallel servers with a shared FIFO queue.
#[derive(Clone, Debug)]
pub struct Resource {
    /// Number of parallel servers (e.g. cores on a node).
    pub servers: u32,
}

/// The simulation: build tasks and resources, then [`Sim::run`].
pub struct Sim {
    tasks: Vec<SimTask>,
    resources: Vec<Resource>,
    /// Trace tags parallel to `tasks`: (kind, node, step).
    meta: Vec<(SimKind, u32, u32)>,
    /// Stable per-task message keys, parallel to `tasks` — a pure
    /// function of the task's `(kind, node, step)` tag plus its
    /// occurrence number within that tag, so fault decisions do not
    /// depend on construction order.
    keys: Vec<u64>,
    /// Occurrence counters behind `keys`.
    occurrence: HashMap<(u8, u32, u32), u64>,
    /// Active fault plan, if any.
    faults: Option<(FaultPlan, RetryPolicy)>,
}

/// Results of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion time of the last task (the makespan), seconds.
    pub makespan: f64,
    /// Completion time of every task, seconds.
    pub finish_times: Vec<f64>,
    /// Total busy time per resource, seconds (for utilization studies).
    pub busy_time: Vec<f64>,
    /// What the fault plan actually did (all-zero without one).
    pub faults: FaultStats,
    /// True when the run completed only because some message was
    /// forced through after exhausting [`RetryPolicy::max_attempts`]
    /// (persistent loss) or delivered corrupt with the retry budget
    /// spent. The makespan is still well-defined — the retry loop is
    /// bounded, so even a 100% loss or corruption rate terminates —
    /// but a real transport would have reported the run failed.
    pub failed: bool,
}

#[derive(PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
    /// Primary tie-break: the subject task's stable order key (tag
    /// hash for tagged tasks, insertion index for untagged ones), so
    /// same-time event ordering — and thus FIFO queue order under
    /// contention — does not depend on construction order.
    order: u64,
    /// Last-resort tie-break for determinism.
    seq: u64,
}

#[derive(PartialEq)]
enum EventKind {
    /// A task's dependencies are satisfied; it joins its resource queue.
    Ready(SimTaskId),
    /// A server finishes serving a task.
    ServerDone(ResourceId, SimTaskId),
    /// A task's completion delay has elapsed; release dependents.
    Complete(SimTaskId),
}

impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap()
            .then(self.order.cmp(&other.order))
            .then(self.seq.cmp(&other.seq))
    }
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Sim {
            tasks: Vec::new(),
            resources: Vec::new(),
            meta: Vec::new(),
            keys: Vec::new(),
            occurrence: HashMap::new(),
            faults: None,
        }
    }

    /// Arms a fault plan: slowdown windows stretch service times,
    /// and `Copy`-tagged tasks are subject to seeded loss (timeout +
    /// exponential-backoff retransmit under `retry`), duplication,
    /// delay, and — when the plan has a
    /// [`corrupt rate`](FaultPlan::with_corrupt_rate) — silent payload
    /// corruption detected by the receiver's checksum and repaired by
    /// retransmission under the same bounded attempt budget. Without
    /// this call the simulation is perfectly reliable.
    pub fn set_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.faults = Some((plan, retry));
    }

    /// Adds a resource with `servers` parallel servers.
    pub fn add_resource(&mut self, servers: u32) -> ResourceId {
        assert!(servers > 0);
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource { servers });
        id
    }

    /// Adds a task; dependencies are added afterwards with
    /// [`Sim::add_dep`].
    pub fn add_task(&mut self, resource: ResourceId, duration: f64) -> SimTaskId {
        self.add_task_delayed(resource, duration, 0.0)
    }

    /// Adds a task with a post-service completion delay.
    pub fn add_task_delayed(
        &mut self,
        resource: ResourceId,
        duration: f64,
        completion_delay: f64,
    ) -> SimTaskId {
        assert!(duration >= 0.0 && completion_delay >= 0.0);
        let id = SimTaskId(self.tasks.len() as u32);
        self.tasks.push(SimTask {
            duration,
            resource,
            completion_delay,
            dependents: Vec::new(),
            num_deps: 0,
        });
        self.meta.push((SimKind::Other, 0, 0));
        let key = self.stable_key(SimKind::Other, 0, 0);
        self.keys.push(key);
        id
    }

    /// Tags a task with its model-level meaning for tracing, and keys
    /// it for fault decisions.
    pub fn tag(&mut self, t: SimTaskId, kind: SimKind, node: u32, step: u32) {
        self.meta[t.0 as usize] = (kind, node, step);
        self.keys[t.0 as usize] = self.stable_key(kind, node, step);
    }

    /// Message key from a tag plus its occurrence count within that
    /// tag: the k-th Copy on (node, step) gets the same key no matter
    /// in which order the workload builder created the tasks.
    fn stable_key(&mut self, kind: SimKind, node: u32, step: u32) -> u64 {
        let occ = self
            .occurrence
            .entry((sim_kind_code(kind), node, step))
            .or_insert(0);
        let k =
            regent_fault::message_key(sim_kind_code(kind) as u64, node as u64, step as u64, *occ);
        *occ += 1;
        k
    }

    /// Declares that `after` cannot start before `before` completes.
    pub fn add_dep(&mut self, before: SimTaskId, after: SimTaskId) {
        self.tasks[before.0 as usize].dependents.push(after);
        self.tasks[after.0 as usize].num_deps += 1;
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    /// If the dependence graph is cyclic (some task never becomes
    /// ready).
    pub fn run(self) -> SimResult {
        let tracer = Tracer::disabled();
        let mut tb = tracer.buffer("sim");
        self.run_traced(&mut tb)
    }

    /// [`Sim::run`] recording a `SimTask` span per service interval
    /// into `tb` (virtual seconds × 1e9 → trace nanoseconds).
    pub fn run_traced(mut self, tb: &mut TraceBuf) -> SimResult {
        let n = self.tasks.len();
        let faults = self.faults.take();
        let mut fstats = FaultStats::default();
        let mut attempts: Vec<u32> = vec![0; n];
        // Per-task count of corrupt deliveries so far, to credit one
        // `corruptions_repaired` when a clean copy finally lands.
        let mut corrupt_tries: Vec<u32> = vec![0; n];
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        // Stable same-time ordering: tagged tasks order by their tag
        // key (construction-order independent), untagged ones by
        // insertion index (plain FIFO).
        let order: Vec<u64> = self
            .meta
            .iter()
            .zip(&self.keys)
            .enumerate()
            .map(|(i, (&(kind, _, _), &key))| {
                if kind == SimKind::Other {
                    i as u64
                } else {
                    key
                }
            })
            .collect();
        let push = |heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time, kind| {
            let tid = match kind {
                EventKind::Ready(t) | EventKind::ServerDone(_, t) | EventKind::Complete(t) => t,
            };
            *seq += 1;
            heap.push(Reverse(Event {
                time,
                kind,
                order: order[tid.0 as usize],
                seq: *seq,
            }));
        };

        // Per-resource state: free servers + FIFO queue.
        let mut free: Vec<u32> = self.resources.iter().map(|r| r.servers).collect();
        let mut queues: Vec<std::collections::VecDeque<SimTaskId>> =
            self.resources.iter().map(|_| Default::default()).collect();
        let mut busy_time: Vec<f64> = vec![0.0; self.resources.len()];

        let mut remaining: Vec<u32> = self.tasks.iter().map(|t| t.num_deps).collect();
        let mut finish: Vec<f64> = vec![f64::NAN; n];
        let mut completed = 0usize;

        for (i, t) in self.tasks.iter().enumerate() {
            if t.num_deps == 0 {
                push(
                    &mut heap,
                    &mut seq,
                    0.0,
                    EventKind::Ready(SimTaskId(i as u32)),
                );
            }
        }

        let mut makespan = 0.0f64;
        while let Some(Reverse(ev)) = heap.pop() {
            let now = ev.time;
            match ev.kind {
                EventKind::Ready(tid) => {
                    let r = self.tasks[tid.0 as usize].resource;
                    if free[r.0 as usize] > 0 {
                        free[r.0 as usize] -= 1;
                        let d = effective_duration(&self.tasks, &self.meta, &faults, tid, now);
                        busy_time[r.0 as usize] += d;
                        record_service(tb, &self.meta, tid, now, d);
                        push(&mut heap, &mut seq, now + d, EventKind::ServerDone(r, tid));
                    } else {
                        queues[r.0 as usize].push_back(tid);
                    }
                }
                EventKind::ServerDone(r, tid) => {
                    // Free the server (possibly starting the next queued
                    // task), then schedule completion after the delay.
                    if let Some(next) = queues[r.0 as usize].pop_front() {
                        let d = effective_duration(&self.tasks, &self.meta, &faults, next, now);
                        busy_time[r.0 as usize] += d;
                        record_service(tb, &self.meta, next, now, d);
                        push(&mut heap, &mut seq, now + d, EventKind::ServerDone(r, next));
                    } else {
                        free[r.0 as usize] += 1;
                    }
                    // Decide the delivery fate of Copy-tagged tasks
                    // under the fault plan: a lost message re-queues on
                    // its resource after a backoff (retransmission pays
                    // the NIC again), a duplicate charges the NIC a
                    // second serialization, a delayed one completes
                    // late.
                    let mut delay = self.tasks[tid.0 as usize].completion_delay;
                    if let Some((plan, retry)) = &faults {
                        if self.meta[tid.0 as usize].0 == SimKind::Copy {
                            let att = attempts[tid.0 as usize];
                            match plan.message_fate(self.keys[tid.0 as usize], att) {
                                MessageFate::Lose if att < retry.max_attempts => {
                                    let backoff = retry.backoff_delay(att);
                                    fstats.messages_lost += 1;
                                    fstats.retries += 1;
                                    fstats.total_backoff_s += backoff;
                                    attempts[tid.0 as usize] = att + 1;
                                    push(&mut heap, &mut seq, now + backoff, EventKind::Ready(tid));
                                    continue;
                                }
                                MessageFate::Lose => {
                                    // Out of retries: force the message
                                    // through so the run terminates (a
                                    // real transport would escalate).
                                    fstats.forced_deliveries += 1;
                                }
                                MessageFate::Duplicate => {
                                    fstats.messages_duplicated += 1;
                                    busy_time[r.0 as usize] += self.tasks[tid.0 as usize].duration;
                                }
                                MessageFate::Delay => {
                                    fstats.messages_delayed += 1;
                                    delay += plan.delay_s;
                                }
                                MessageFate::Deliver => {}
                            }
                            // Independently of the transport fate, the
                            // payload of a delivered message may arrive
                            // bit-flipped; the receiver detects the
                            // checksum mismatch and asks for a
                            // retransmission. Corrupt retransmits share
                            // the loss retries' attempt budget (so a
                            // 100% corruption rate still terminates) but
                            // are counted separately — they are repairs,
                            // not losses.
                            if plan
                                .payload_corruption(self.keys[tid.0 as usize], att)
                                .is_some()
                            {
                                fstats.corruptions_injected += 1;
                                fstats.corruptions_detected += 1;
                                if att < retry.max_attempts {
                                    let backoff = retry.backoff_delay(att);
                                    fstats.total_backoff_s += backoff;
                                    attempts[tid.0 as usize] = att + 1;
                                    corrupt_tries[tid.0 as usize] += 1;
                                    push(&mut heap, &mut seq, now + backoff, EventKind::Ready(tid));
                                    continue;
                                }
                                // Out of retries: accept the corrupted
                                // payload so the run terminates, and
                                // escalate — the result reports failure.
                                fstats.corruptions_escalated += 1;
                            } else if corrupt_tries[tid.0 as usize] > 0 {
                                fstats.corruptions_repaired += 1;
                            }
                        }
                    }
                    if delay == 0.0 {
                        push(&mut heap, &mut seq, now, EventKind::Complete(tid));
                    } else {
                        push(&mut heap, &mut seq, now + delay, EventKind::Complete(tid));
                    }
                }
                EventKind::Complete(tid) => {
                    finish[tid.0 as usize] = now;
                    makespan = makespan.max(now);
                    completed += 1;
                    let deps = std::mem::take(&mut self.tasks[tid.0 as usize].dependents);
                    for d in deps {
                        remaining[d.0 as usize] -= 1;
                        if remaining[d.0 as usize] == 0 {
                            push(&mut heap, &mut seq, now, EventKind::Ready(d));
                        }
                    }
                }
            }
        }
        assert_eq!(
            completed, n,
            "simulation deadlocked: dependence graph is cyclic"
        );
        let failed = fstats.forced_deliveries > 0 || fstats.corruptions_escalated > 0;
        SimResult {
            makespan,
            finish_times: finish,
            busy_time,
            faults: fstats,
            failed,
        }
    }
}

/// Service time of `tid` starting at `now`: the base duration
/// stretched by any slowdown window covering the node at that moment.
fn effective_duration(
    tasks: &[SimTask],
    meta: &[(SimKind, u32, u32)],
    faults: &Option<(FaultPlan, RetryPolicy)>,
    tid: SimTaskId,
    now: f64,
) -> f64 {
    let d = tasks[tid.0 as usize].duration;
    match faults {
        Some((plan, _)) => d * plan.slowdown_factor(meta[tid.0 as usize].1, now),
        None => d,
    }
}

/// Stable small code per [`SimKind`] for occurrence bucketing.
fn sim_kind_code(k: SimKind) -> u8 {
    match k {
        SimKind::Launch => 0,
        SimKind::Analysis => 1,
        SimKind::Compute => 2,
        SimKind::Copy => 3,
        SimKind::Collective => 4,
        SimKind::Other => 5,
        SimKind::Log => 6,
    }
}

/// Records one service interval as a `SimTask` span (virtual seconds
/// scaled to nanoseconds).
fn record_service(tb: &mut TraceBuf, meta: &[(SimKind, u32, u32)], t: SimTaskId, now: f64, d: f64) {
    if tb.is_enabled() {
        let (kind, node, step) = meta[t.0 as usize];
        tb.push(
            (now * 1e9) as u64,
            (d * 1e9) as u64,
            TraceEventKind::SimTask { kind, node, step },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain() {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let a = sim.add_task(r, 1.0);
        let b = sim.add_task(r, 2.0);
        let c = sim.add_task(r, 3.0);
        sim.add_dep(a, b);
        sim.add_dep(b, c);
        let res = sim.run();
        assert_eq!(res.makespan, 6.0);
        assert_eq!(res.finish_times, vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn parallel_servers() {
        let mut sim = Sim::new();
        let r = sim.add_resource(2);
        for _ in 0..4 {
            sim.add_task(r, 1.0);
        }
        let res = sim.run();
        // 4 unit tasks on 2 servers: 2 waves.
        assert_eq!(res.makespan, 2.0);
        assert_eq!(res.busy_time[0], 4.0);
    }

    #[test]
    fn queueing_is_fifo() {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let a = sim.add_task(r, 5.0);
        let b = sim.add_task(r, 1.0);
        let c = sim.add_task(r, 1.0);
        let res = sim.run();
        // Ready order a, b, c → finishes 5, 6, 7.
        assert_eq!(res.finish_times[a.0 as usize], 5.0);
        assert_eq!(res.finish_times[b.0 as usize], 6.0);
        assert_eq!(res.finish_times[c.0 as usize], 7.0);
    }

    #[test]
    fn completion_delay_releases_late() {
        let mut sim = Sim::new();
        let nic = sim.add_resource(1);
        let core = sim.add_resource(1);
        // A message: 1s serialization on the NIC + 2s flight.
        let msg = sim.add_task_delayed(nic, 1.0, 2.0);
        let work = sim.add_task(core, 1.0);
        sim.add_dep(msg, work);
        let res = sim.run();
        assert_eq!(res.finish_times[msg.0 as usize], 3.0);
        assert_eq!(res.makespan, 4.0);
        // The NIC was only busy for the serialization part.
        assert_eq!(res.busy_time[nic.0 as usize], 1.0);
    }

    #[test]
    fn diamond_dag() {
        let mut sim = Sim::new();
        let r = sim.add_resource(4);
        let a = sim.add_task(r, 1.0);
        let b = sim.add_task(r, 2.0);
        let c = sim.add_task(r, 3.0);
        let d = sim.add_task(r, 1.0);
        sim.add_dep(a, b);
        sim.add_dep(a, c);
        sim.add_dep(b, d);
        sim.add_dep(c, d);
        let res = sim.run();
        assert_eq!(res.makespan, 5.0); // 1 + max(2,3) + 1
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cycle_detected() {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let a = sim.add_task(r, 1.0);
        let b = sim.add_task(r, 1.0);
        sim.add_dep(a, b);
        sim.add_dep(b, a);
        sim.run();
    }

    #[test]
    fn traced_run_records_service_spans() {
        let tracer = Tracer::enabled();
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let a = sim.add_task(r, 1.0);
        let b = sim.add_task(r, 2.0);
        sim.add_dep(a, b);
        sim.tag(a, SimKind::Launch, 3, 7);
        sim.tag(b, SimKind::Compute, 3, 7);
        let mut tb = tracer.buffer("sim");
        let res = sim.run_traced(&mut tb);
        tb.flush();
        assert_eq!(res.makespan, 3.0);
        let trace = tracer.take();
        let track = trace.track("sim").unwrap();
        assert_eq!(track.events.len(), 2);
        // Spans in service order with virtual-seconds × 1e9 timestamps.
        assert_eq!(track.events[0].ts, 0);
        assert_eq!(track.events[0].dur, 1_000_000_000);
        assert_eq!(track.events[1].ts, 1_000_000_000);
        assert_eq!(track.events[1].dur, 2_000_000_000);
        match track.events[1].kind {
            TraceEventKind::SimTask { kind, node, step } => {
                assert_eq!(kind, SimKind::Compute);
                assert_eq!(node, 3);
                assert_eq!(step, 7);
            }
            ref k => panic!("unexpected event {k:?}"),
        }
    }

    #[test]
    fn slowdown_window_stretches_service() {
        let build = || {
            let mut sim = Sim::new();
            let r = sim.add_resource(1);
            let a = sim.add_task(r, 1.0);
            let b = sim.add_task(r, 1.0);
            sim.add_dep(a, b);
            sim.tag(a, SimKind::Compute, 2, 0);
            sim.tag(b, SimKind::Compute, 2, 1);
            (sim, a, b)
        };
        // Fault-free: back-to-back unit tasks.
        let (sim, _, _) = build();
        assert_eq!(sim.run().makespan, 2.0);
        // Node 2 is 3× slower during [0.5, 1.5): task a starts at 0
        // (outside the window, unaffected — windows apply at service
        // start), b starts at 1.0 inside it and takes 3s.
        let (mut sim, a, b) = build();
        sim.set_faults(
            FaultPlan::new(1).slow_node(2, 0.5, 1.0, 3.0),
            RetryPolicy::default(),
        );
        let res = sim.run();
        assert_eq!(res.finish_times[a.0 as usize], 1.0);
        assert_eq!(res.finish_times[b.0 as usize], 4.0);
    }

    #[test]
    fn lost_copies_retry_and_complete() {
        let mut sim = Sim::new();
        let nic = sim.add_resource(1);
        let core = sim.add_resource(1);
        let mut copies = Vec::new();
        for i in 0..50 {
            let c = sim.add_task_delayed(nic, 1e-6, 1e-6);
            sim.tag(c, SimKind::Copy, 0, i);
            let w = sim.add_task(core, 1e-6);
            sim.add_dep(c, w);
            copies.push(c);
        }
        sim.set_faults(
            FaultPlan::new(7).with_loss_rate(0.4),
            RetryPolicy::default(),
        );
        let res = sim.run();
        assert!(res.faults.messages_lost > 5, "{:?}", res.faults);
        assert_eq!(res.faults.retries, res.faults.messages_lost);
        assert!(res.faults.total_backoff_s > 0.0);
        // Every copy completed despite losses, and retransmissions
        // made the run strictly slower than the fault-free one.
        assert!(res.finish_times.iter().all(|t| !t.is_nan()));
        assert!(!res.failed, "no retry budget exhausted at rate 0.4");
    }

    #[test]
    fn total_loss_terminates_bounded_and_reports_failure() {
        // Loss rate 1.0: every transmission is lost. The retry loop
        // must stop at `max_attempts` per message and force the
        // delivery — reporting a failed run — instead of livelocking.
        let retry = RetryPolicy::default();
        let mut sim = Sim::new();
        let nic = sim.add_resource(1);
        for i in 0..4 {
            let c = sim.add_task(nic, 1e-6);
            sim.tag(c, SimKind::Copy, 0, i);
        }
        sim.set_faults(FaultPlan::new(3).with_loss_rate(1.0), retry);
        let res = sim.run();
        assert!(res.failed, "exhausted retries must mark the run failed");
        assert_eq!(res.faults.forced_deliveries, 4);
        assert_eq!(res.faults.retries, 4 * retry.max_attempts as u64);
        assert_eq!(res.faults.retries, res.faults.messages_lost);
        assert!(res.finish_times.iter().all(|t| !t.is_nan()));
        assert!(res.makespan.is_finite());
    }

    #[test]
    fn corrupt_copies_retransmit_and_repair() {
        let build = |rate: f64| {
            let mut sim = Sim::new();
            let nic = sim.add_resource(2);
            for i in 0..60 {
                let c = sim.add_task_delayed(nic, 1e-6, 1e-6);
                sim.tag(c, SimKind::Copy, 0, i);
            }
            sim.set_faults(
                FaultPlan::new(9).with_corrupt_rate(rate),
                RetryPolicy::default(),
            );
            sim.run()
        };
        let res = build(0.3);
        assert!(res.faults.corruptions_injected > 5, "{:?}", res.faults);
        assert_eq!(
            res.faults.corruptions_injected,
            res.faults.corruptions_detected
        );
        assert_eq!(
            res.faults.corruptions_escalated, 0,
            "rate 0.3 never exhausts the retry budget"
        );
        assert!(res.faults.corruptions_repaired > 0);
        // Corruption retransmits never masquerade as losses.
        assert_eq!(res.faults.messages_lost, 0);
        assert_eq!(res.faults.retries, 0);
        assert!(!res.failed);
        // Rate 1.0: every attempt is corrupt; each copy burns its
        // budget, escalates, and the run reports failure — bounded.
        let res = build(1.0);
        assert!(res.failed);
        assert_eq!(res.faults.corruptions_escalated, 60);
        assert_eq!(res.faults.corruptions_repaired, 0);
        assert!(res.finish_times.iter().all(|t| !t.is_nan()));
    }

    #[test]
    fn delayed_and_duplicated_copies() {
        let build = |plan: Option<FaultPlan>| {
            let mut sim = Sim::new();
            let nic = sim.add_resource(4);
            for i in 0..100 {
                let c = sim.add_task_delayed(nic, 1e-6, 1e-6);
                sim.tag(c, SimKind::Copy, 0, i);
            }
            if let Some(p) = plan {
                sim.set_faults(p, RetryPolicy::default());
            }
            sim.run()
        };
        let clean = build(None);
        let delayed = build(Some(FaultPlan::new(5).with_delay(0.5, 1e-3)));
        assert!(delayed.faults.messages_delayed > 10);
        assert!(delayed.makespan > clean.makespan);
        let duped = build(Some(FaultPlan::new(5).with_dup_rate(0.5)));
        assert!(duped.faults.messages_duplicated > 10);
        // Duplicates charge the NIC a second serialization.
        assert!(duped.busy_time[0] > clean.busy_time[0]);
    }

    #[test]
    fn zero_duration_tasks() {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let a = sim.add_task(r, 0.0);
        let b = sim.add_task(r, 0.0);
        sim.add_dep(a, b);
        let res = sim.run();
        assert_eq!(res.makespan, 0.0);
    }
}
