//! Execution-model scenarios: build a discrete-event task graph for a
//! workload under each of the paper's execution models and measure the
//! simulated throughput.
//!
//! * [`simulate_cr`] — Regent **with control replication**: every node
//!   runs a long-lived shard that launches its own tasks (cheap,
//!   §3.5), exchanges halos point-to-point (§3.4), and participates in
//!   dynamic collectives (§4.4).
//! * [`simulate_implicit`] — Regent **without control replication**: a
//!   single control thread on node 0 pays the dynamic-analysis cost
//!   for *every* task in the machine (§1's O(N) control overhead), with
//!   deferred execution pipelining the launches.
//! * [`simulate_implicit_memo`] — the same single control thread with
//!   epoch-trace memoization: full analysis only on the first step
//!   (template capture), replay cost on every later step. The control
//!   thread stays serial, so this amortizes the O(N) analysis without
//!   replicating control.
//! * [`simulate_log`] — **shared-log control replication**: one
//!   sequencer appends the control program to an operation log (cost
//!   independent of machine size); per-node replica executors tail it,
//!   paying dependence analysis once per replica per batch before
//!   issuing their shard launches at CR cost.
//! * [`simulate_mpi`] — hand-written SPMD references (MPI,
//!   MPI+OpenMP, MPI+Kokkos): no runtime overhead, all cores compute,
//!   bulk-synchronous neighbor exchanges.

//!
//! Every scenario has a `*_traced` variant that tags each sim-task with
//! its model-level meaning and records the simulated schedule into a
//! [`TraceBuf`]. Per-step control cost extracted from such traces
//! (`regent_trace::sim_control_cost_per_step`) is the simulator's
//! evidence for the paper's O(N)-vs-O(1) control-overhead claim.

use crate::des::{ResourceId, Sim, SimTaskId};
use crate::model::{noise_multiplier, MachineConfig, TimestepSpec};
use regent_fault::{FaultPlan, FaultStats, RetryPolicy};
use regent_trace::{SimKind, TraceBuf, Tracer};

/// Result of simulating one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioResult {
    /// Simulated wall time for all steps, seconds.
    pub makespan: f64,
    /// Application elements processed per second per node, counting
    /// *all* executed work (replayed epochs included).
    pub throughput_per_node: f64,
    /// Application elements per second per node counting only *useful*
    /// work — equal to `throughput_per_node` in a fault-free run,
    /// strictly lower when crashes force epochs to be re-executed.
    pub goodput_per_node: f64,
    /// Sim-tasks in the generated graph (diagnostics).
    pub graph_size: usize,
    /// Fault-injection outcome (all-zero without an active plan).
    pub faults: FaultStats,
}

/// Builds a machine-readable bench-artifact entry from a simulated
/// schedule recorded on `track`: the wall time is the track's extent
/// (virtual nanoseconds), the critical-path length and its phase blame
/// come from [`regent_trace::sim_blame`]. Returns `None` when the
/// trace has no such track or the track recorded no spans. The
/// simulator is deterministic, so entries produced here are bit-stable
/// across machines — which is what lets checked-in baselines be
/// compared exactly in CI.
pub fn sim_bench_entry(
    app: &str,
    size: &str,
    shards: u32,
    executor: &str,
    trace: &regent_trace::Trace,
    track: &str,
) -> Option<regent_trace::BenchEntry> {
    let t = trace.tracks.iter().find(|t| t.name == track)?;
    let wall_ns = t.events.iter().map(|e| e.ts + e.dur).max()?;
    let (critical_path_ns, blame) = regent_trace::sim_blame(trace, track)?;
    Some(regent_trace::BenchEntry {
        app: app.to_string(),
        size: size.to_string(),
        shards,
        executor: executor.to_string(),
        wall_ns,
        critical_path_ns,
        blame,
        metrics: Vec::new(),
    })
}

fn finish(sim: Sim, spec: &TimestepSpec, steps: u64, tb: &mut TraceBuf) -> ScenarioResult {
    let graph_size = sim.num_tasks();
    let res = sim.run_traced(tb);
    let throughput = spec.elements_per_node as f64 * steps as f64 / res.makespan;
    ScenarioResult {
        makespan: res.makespan,
        throughput_per_node: throughput,
        goodput_per_node: throughput,
        graph_size,
        faults: res.faults,
    }
}

/// Simulates Regent **with** control replication.
pub fn simulate_cr(machine: &MachineConfig, spec: &TimestepSpec, steps: u64) -> ScenarioResult {
    let tracer = Tracer::disabled();
    simulate_cr_traced(machine, spec, steps, &mut tracer.buffer("sim"))
}

/// [`simulate_cr`] recording the simulated schedule into `tb`.
pub fn simulate_cr_traced(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_cr_faulted(machine, spec, steps, &FaultPlan::default(), tb)
}

/// [`simulate_cr_traced`] under message-level faults: the plan's loss /
/// duplication / delay rates and slowdown windows apply to the copy
/// traffic and service times (crash events are ignored here — use
/// [`simulate_cr_resilient`] for the crash + checkpoint model).
pub fn simulate_cr_faulted(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    plan: &FaultPlan,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    let mut b = CrBuilder::new(machine, spec);
    for step in 0..steps {
        b.step(step);
    }
    if plan.is_active() {
        b.sim.set_faults(plan.clone(), RetryPolicy::default());
    }
    finish(b.sim, spec, steps, tb)
}

/// Fault + recovery configuration of [`simulate_cr_resilient`].
#[derive(Clone, Debug)]
pub struct ResilienceSpec {
    /// The faults to inject: crash events fire at step boundaries,
    /// message rates apply throughout.
    pub plan: FaultPlan,
    /// Checkpoint every K steps (0 = no checkpoints: a crash replays
    /// everything since step 0).
    pub ckpt_interval: u64,
    /// Failure-detection timeout charged per crash, seconds. Survivors
    /// only learn of the death after their point-to-point waits time
    /// out (§3.4 has no global failure detector), so this models the
    /// deployment's `REGENT_HANG_TIMEOUT_MS` analog — re-point it at
    /// the deployed timeout when studying a specific cluster.
    pub detection_timeout_s: f64,
    /// Survivor-side CPU cost of rebuilding one checkpointed element
    /// after a loss (allocating and filling the remapped instances),
    /// seconds. Charged on top of the network state transfer. The
    /// default is calibrated against the real executor: `fig_failover`
    /// measures the `FailoverReconstruct` span at ~1–2 µs per rebuilt
    /// instance of ~200 elements across shard counts.
    pub reconstruct_s_per_element: f64,
}

impl Default for ResilienceSpec {
    fn default() -> ResilienceSpec {
        ResilienceSpec {
            plan: FaultPlan::default(),
            ckpt_interval: 0,
            detection_timeout_s: DEFAULT_DETECTION_TIMEOUT_S,
            reconstruct_s_per_element: RECONSTRUCT_S_PER_ELEMENT,
        }
    }
}

/// Default failure-detection timeout charged when a node crashes,
/// seconds (see [`ResilienceSpec::detection_timeout_s`]).
const DEFAULT_DETECTION_TIMEOUT_S: f64 = 1.0e-3;

/// Default survivor-side reconstruction cost, seconds per element —
/// `fig_failover`'s measured reconstruct span divided by the rebuilt
/// state size (see [`ResilienceSpec::reconstruct_s_per_element`]).
const RECONSTRUCT_S_PER_ELEMENT: f64 = 8.0e-9;

/// Bytes of checkpoint state per application element (the region
/// fields snapshotted at a checkpoint boundary).
const CKPT_BYTES_PER_ELEMENT: f64 = 8.0;

/// Simulates CR under the full fault model with checkpoint–restart:
/// every `ckpt_interval` steps each shard snapshots its region slice;
/// a scheduled node crash remaps the dead node's shard onto the
/// least-loaded survivor (graceful degradation), pays a detection
/// timeout plus a checkpoint state transfer, and replays every step
/// since the last checkpoint. `goodput_per_node` counts only useful
/// (non-replayed) work; `faults` reports crashes, replays, and
/// recovery time.
pub fn simulate_cr_resilient(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    rspec: &ResilienceSpec,
) -> ScenarioResult {
    let tracer = Tracer::disabled();
    simulate_cr_resilient_traced(machine, spec, steps, rspec, &mut tracer.buffer("sim"))
}

/// [`simulate_cr_resilient`] recording the simulated schedule into `tb`.
pub fn simulate_cr_resilient_traced(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    rspec: &ResilienceSpec,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    let mut b = CrBuilder::new(machine, spec);
    b.detection_timeout_s = rspec.detection_timeout_s;
    b.reconstruct_s_per_element = rspec.reconstruct_s_per_element;
    let crashes = rspec.plan.crash_schedule();
    let mut ci = 0;
    let mut fstats = FaultStats::default();
    let mut replayed = 0u64;
    let mut last_ckpt = 0u64;
    for step in 0..steps {
        if rspec.ckpt_interval > 0 && step % rspec.ckpt_interval == 0 {
            b.checkpoint(step);
            last_ckpt = step;
        }
        // Crashes scheduled for this step boundary: all work since the
        // last checkpoint is lost and must be replayed on the remapped
        // shard assignment.
        while ci < crashes.len() && crashes[ci].1 == step {
            let (node, _) = crashes[ci];
            ci += 1;
            if b.crash(node as usize, step) {
                fstats.crashes += 1;
                for s in last_ckpt..step {
                    b.step(s);
                    replayed += 1;
                }
            }
        }
        b.step(step);
    }
    fstats.epochs_replayed = replayed;
    fstats.recovery_time_s = b.recovery_time_s;
    if rspec.plan.is_active() {
        b.sim.set_faults(rspec.plan.clone(), RetryPolicy::default());
    }
    let graph_size = b.sim.num_tasks();
    let res = b.sim.run_traced(tb);
    fstats.merge(&res.faults);
    let useful = spec.elements_per_node as f64 * steps as f64;
    let executed = spec.elements_per_node as f64 * (steps + replayed) as f64;
    ScenarioResult {
        makespan: res.makespan,
        throughput_per_node: executed / res.makespan,
        goodput_per_node: useful / res.makespan,
        graph_size,
        faults: fstats,
    }
}

/// Task-graph builder for the CR execution model. One long-lived shard
/// per *slot*; `owner[slot]` is the physical node currently hosting it
/// — identity until [`CrBuilder::crash`] remaps a dead node's slot
/// onto a survivor.
struct CrBuilder<'a> {
    sim: Sim,
    machine: &'a MachineConfig,
    spec: &'a TimestepSpec,
    compute: Vec<ResourceId>,
    control: Vec<ResourceId>,
    nic: Vec<ResourceId>,
    owner: Vec<usize>,
    alive: Vec<bool>,
    /// Per slot: the tail of the shard's serial launch chain.
    last_launch: Vec<Option<SimTaskId>>,
    /// Tasks of the previous phase per slot, and copies inbound per slot.
    prev_tasks: Vec<Vec<SimTaskId>>,
    inbound: Vec<Vec<SimTaskId>>,
    /// A collective that gates the next consuming phase (if any).
    pending_collective: Option<SimTaskId>,
    /// A recovery gate every slot's next launch must wait behind.
    gate: Option<SimTaskId>,
    noise_key: u64,
    /// Accumulated detection + state-transfer time, virtual seconds.
    recovery_time_s: f64,
    /// Calibrated recovery costs (see [`ResilienceSpec`]).
    detection_timeout_s: f64,
    reconstruct_s_per_element: f64,
}

impl<'a> CrBuilder<'a> {
    fn new(machine: &'a MachineConfig, spec: &'a TimestepSpec) -> Self {
        let n = spec.num_nodes;
        let mut sim = Sim::new();
        let compute: Vec<ResourceId> = (0..n)
            .map(|_| sim.add_resource(machine.regent_compute_cores()))
            .collect();
        let control: Vec<ResourceId> = (0..n).map(|_| sim.add_resource(1)).collect();
        let nic: Vec<ResourceId> = (0..n).map(|_| sim.add_resource(1)).collect();
        CrBuilder {
            sim,
            machine,
            spec,
            compute,
            control,
            nic,
            owner: (0..n).collect(),
            alive: vec![true; n],
            last_launch: vec![None; n],
            prev_tasks: vec![Vec::new(); n],
            inbound: vec![Vec::new(); n],
            pending_collective: None,
            gate: None,
            noise_key: 0,
            recovery_time_s: 0.0,
            detection_timeout_s: DEFAULT_DETECTION_TIMEOUT_S,
            reconstruct_s_per_element: RECONSTRUCT_S_PER_ELEMENT,
        }
    }

    /// Emits one time step: per slot, the launch chain + point tasks,
    /// then the point-to-point exchanges and any dynamic collective.
    fn step(&mut self, step: u64) {
        let n = self.spec.num_nodes;
        let machine = self.machine;
        for phase in &self.spec.phases {
            let mut cur_tasks: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for (slot, slot_tasks) in cur_tasks.iter_mut().enumerate() {
                let node = self.owner[slot];
                for _ in 0..phase.tasks_per_node {
                    // The shard's launch op (serial per shard, cheap).
                    // Deferred execution: collectives never block the
                    // shard's control flow (§3.4).
                    let op = self
                        .sim
                        .add_task(self.control[node], machine.shard_launch_time);
                    self.sim.tag(op, SimKind::Launch, node as u32, step as u32);
                    if let Some(prev) = self.last_launch[slot] {
                        self.sim.add_dep(prev, op);
                    }
                    if let Some(g) = self.gate {
                        self.sim.add_dep(g, op);
                    }
                    self.last_launch[slot] = Some(op);
                    // The point task (OS noise stretches the duration).
                    self.noise_key += 1;
                    let dur = phase.task_compute_s
                        * noise_multiplier(machine.noise_fraction, self.noise_key);
                    let t = self.sim.add_task(self.compute[node], dur);
                    self.sim.tag(t, SimKind::Compute, node as u32, step as u32);
                    self.sim.add_dep(op, t);
                    for &p in &self.prev_tasks[slot] {
                        self.sim.add_dep(p, t);
                    }
                    for &c in &self.inbound[slot] {
                        self.sim.add_dep(c, t);
                    }
                    // Only the phase that actually reads the reduced
                    // scalar waits for the collective — every other
                    // phase overlaps its latency.
                    if phase.consumes_collective {
                        if let Some(c) = self.pending_collective {
                            self.sim.add_dep(c, t);
                        }
                    }
                    slot_tasks.push(t);
                }
            }
            // Point-to-point exchanges (§3.4): producers send after
            // their phase tasks; only the destination slot waits.
            let mut new_inbound: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for e in &phase.copies {
                let src = self.owner[e.src as usize];
                let c = self.sim.add_task_delayed(
                    self.nic[src],
                    machine.message_overhead + e.bytes / machine.network_bandwidth,
                    machine.network_latency,
                );
                self.sim.tag(c, SimKind::Copy, src as u32, step as u32);
                for &t in &cur_tasks[e.src as usize] {
                    self.sim.add_dep(t, c);
                }
                new_inbound[e.dst as usize].push(c);
            }
            // Dynamic collective (§4.4): the result stays pending until
            // a consuming phase picks it up.
            if phase.collective {
                let root = self.control[self.owner[0]];
                let j = self
                    .sim
                    .add_task_delayed(root, 0.0, machine.collective_latency(n));
                self.sim
                    .tag(j, SimKind::Collective, self.owner[0] as u32, step as u32);
                for tasks in &cur_tasks {
                    for &t in tasks {
                        self.sim.add_dep(t, j);
                    }
                }
                self.pending_collective = Some(j);
            }
            self.prev_tasks = cur_tasks;
            self.inbound = new_inbound;
        }
        self.gate = None;
    }

    /// Bytes each shard snapshots at a checkpoint boundary.
    fn ckpt_bytes(&self) -> f64 {
        self.spec.elements_per_node as f64 * CKPT_BYTES_PER_ELEMENT
    }

    /// Emits a coordinated checkpoint: each shard streams its region
    /// slice out through its NIC; the shard's next step waits on it.
    fn checkpoint(&mut self, step: u64) {
        let dur = self.ckpt_bytes() / self.machine.network_bandwidth;
        for slot in 0..self.spec.num_nodes {
            let node = self.owner[slot];
            let c = self.sim.add_task(self.nic[node], dur);
            self.sim.tag(c, SimKind::Other, node as u32, step as u32);
            for &p in &self.prev_tasks[slot] {
                self.sim.add_dep(p, c);
            }
            if let Some(l) = self.last_launch[slot] {
                self.sim.add_dep(l, c);
            }
            self.inbound[slot].push(c);
        }
    }

    /// Kills `node` at the start of `step`: its slots remap onto the
    /// least-loaded survivor, and a recovery gate (detection timeout +
    /// checkpoint state transfer) blocks all subsequent launches.
    /// Returns false when the node is out of range, already dead, or
    /// the last one standing.
    fn crash(&mut self, node: usize, step: u64) -> bool {
        let n = self.spec.num_nodes;
        if node >= n || !self.alive[node] || self.alive.iter().filter(|a| **a).count() <= 1 {
            return false;
        }
        self.alive[node] = false;
        let survivor = (0..n)
            .filter(|&i| self.alive[i])
            .min_by_key(|&i| self.owner.iter().filter(|&&o| o == i).count())
            .expect("at least one survivor");
        for o in self.owner.iter_mut().filter(|o| **o == node) {
            *o = survivor;
        }
        // Detection (point-to-point waits time out) + the survivor
        // pulling the dead shard's checkpoint slice over the network +
        // rebuilding the remapped instances from it (the real
        // executor's FailoverReconstruct span, per element).
        let elements = self.ckpt_bytes() / CKPT_BYTES_PER_ELEMENT;
        let recovery = self.detection_timeout_s
            + self.ckpt_bytes() / self.machine.network_bandwidth
            + elements * self.reconstruct_s_per_element;
        self.recovery_time_s += recovery;
        let g = self.sim.add_task(self.control[survivor], recovery);
        self.sim
            .tag(g, SimKind::Other, survivor as u32, step as u32);
        for slot in 0..n {
            if let Some(l) = self.last_launch[slot] {
                self.sim.add_dep(l, g);
            }
            for &p in &self.prev_tasks[slot] {
                self.sim.add_dep(p, g);
            }
        }
        self.gate = Some(g);
        true
    }
}

/// Simulates Regent **without** control replication: one control
/// thread launches every task in the machine.
pub fn simulate_implicit(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
) -> ScenarioResult {
    let tracer = Tracer::disabled();
    simulate_implicit_traced(machine, spec, steps, &mut tracer.buffer("sim"))
}

/// [`simulate_implicit`] recording the simulated schedule into `tb`.
/// The dynamic-analysis spans all land on node 0 — the single control
/// thread — which is exactly what the per-step control-cost profile
/// shows growing with machine size.
pub fn simulate_implicit_traced(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_implicit_faulted(machine, spec, steps, &FaultPlan::default(), tb)
}

/// [`simulate_implicit_traced`] under message-level faults (loss /
/// duplication / delay rates and slowdown windows).
pub fn simulate_implicit_faulted(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    plan: &FaultPlan,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_implicit_model(machine, spec, steps, plan, false, tb)
}

/// Simulates Regent without control replication but **with epoch-trace
/// memoization**: the control thread pays full dynamic analysis only
/// for the first time step (template capture); every later step replays
/// the captured schedule at a per-task cost equal to a CR shard's
/// launch cost. The control thread remains a single serial resource —
/// memoization amortizes the analysis, it does not replicate control.
pub fn simulate_implicit_memo(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
) -> ScenarioResult {
    let tracer = Tracer::disabled();
    simulate_implicit_memo_traced(machine, spec, steps, &mut tracer.buffer("sim"))
}

/// [`simulate_implicit_memo`] recording the simulated schedule into
/// `tb`: step 0's per-task spans are tagged `Analysis`, the replayed
/// steps' spans `Launch`, so the per-step control-cost profile shows
/// the amortization curve.
pub fn simulate_implicit_memo_traced(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_implicit_memo_faulted(machine, spec, steps, &FaultPlan::default(), tb)
}

/// [`simulate_implicit_memo_traced`] under message-level faults.
pub fn simulate_implicit_memo_faulted(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    plan: &FaultPlan,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_implicit_model(machine, spec, steps, plan, true, tb)
}

fn simulate_implicit_model(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    plan: &FaultPlan,
    memo: bool,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    let n = spec.num_nodes;
    let mut sim = Sim::new();
    let compute: Vec<ResourceId> = (0..n)
        .map(|_| sim.add_resource(machine.regent_compute_cores()))
        .collect();
    let control = sim.add_resource(1); // the single control thread
    let nic: Vec<ResourceId> = (0..n).map(|_| sim.add_resource(1)).collect();

    let mut last_launch: Option<SimTaskId> = None;
    let mut prev_tasks: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
    let mut inbound: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
    let mut pending_collective: Option<SimTaskId> = None;

    let mut noise_key = 0u64;
    for step in 0..steps {
        for phase in &spec.phases {
            let mut cur_tasks: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for node in 0..n {
                for _ in 0..phase.tasks_per_node {
                    // O(N) per-step work on the control thread: every
                    // point task pays the dynamic-analysis cost there,
                    // then ships to its node (deferred execution — the
                    // control thread does not wait for the task). The
                    // cost grows with the in-flight window (one step's
                    // tasks across the whole machine). With
                    // memoization, only step 0 pays it (template
                    // capture); replayed steps issue each task at a
                    // shard-launch cost.
                    let in_flight = n as f64 * phase.tasks_per_node as f64;
                    let op = if memo && step > 0 {
                        let op = sim.add_task_delayed(
                            control,
                            machine.shard_launch_time,
                            machine.network_latency,
                        );
                        sim.tag(op, SimKind::Launch, 0, step as u32);
                        op
                    } else {
                        let analysis = machine.task_analysis_time
                            + machine.task_analysis_window_cost * in_flight;
                        let op = sim.add_task_delayed(control, analysis, machine.network_latency);
                        // Analysis happens on the control thread (node 0).
                        sim.tag(op, SimKind::Analysis, 0, step as u32);
                        op
                    };
                    if let Some(prev) = last_launch {
                        sim.add_dep(prev, op);
                    }
                    if let Some(c) = pending_collective {
                        sim.add_dep(c, op);
                    }
                    last_launch = Some(op);
                    noise_key += 1;
                    let dur =
                        phase.task_compute_s * noise_multiplier(machine.noise_fraction, noise_key);
                    let t = sim.add_task(compute[node], dur);
                    sim.tag(t, SimKind::Compute, node as u32, step as u32);
                    sim.add_dep(op, t);
                    for &p in &prev_tasks[node] {
                        sim.add_dep(p, t);
                    }
                    for &c in &inbound[node] {
                        sim.add_dep(c, t);
                    }
                    cur_tasks[node].push(t);
                }
            }
            let mut new_inbound: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for e in &phase.copies {
                let c = sim.add_task_delayed(
                    nic[e.src as usize],
                    machine.message_overhead + e.bytes / machine.network_bandwidth,
                    machine.network_latency,
                );
                sim.tag(c, SimKind::Copy, e.src, step as u32);
                for &t in &cur_tasks[e.src as usize] {
                    sim.add_dep(t, c);
                }
                new_inbound[e.dst as usize].push(c);
            }
            pending_collective = if phase.collective {
                // The control thread blocks on the reduced scalar.
                let j = sim.add_task_delayed(control, 0.0, machine.collective_latency(n));
                sim.tag(j, SimKind::Collective, 0, step as u32);
                for tasks in &cur_tasks {
                    for &t in tasks {
                        sim.add_dep(t, j);
                    }
                }
                Some(j)
            } else {
                None
            };
            prev_tasks = cur_tasks;
            inbound = new_inbound;
        }
    }
    if plan.is_active() {
        sim.set_faults(plan.clone(), RetryPolicy::default());
    }
    finish(sim, spec, steps, tb)
}

/// Simulates **shared-log control replication** (`log_exec`): a single
/// sequencer runs the control program once and appends one launch
/// record per index launch to a flat-combining operation log — cost
/// independent of the machine size — while per-node replica executors
/// tail the log, pay dependence analysis **once per replica per batch**
/// (only the first step derives fresh signature pairs; later steps are
/// dedup hits), and then issue their own shard launches at CR cost.
pub fn simulate_log(machine: &MachineConfig, spec: &TimestepSpec, steps: u64) -> ScenarioResult {
    let tracer = Tracer::disabled();
    simulate_log_traced(machine, spec, steps, &mut tracer.buffer("sim"))
}

/// [`simulate_log`] recording the simulated schedule into `tb`: the
/// sequencer's append/combine spans are tagged [`SimKind::Log`] (phase
/// `log_control` under `sim_blame`), the replicas' first-step analysis
/// spans `Analysis`, and their steady-state consume spans `Log`.
pub fn simulate_log_traced(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_log_faulted(machine, spec, steps, &FaultPlan::default(), tb)
}

/// [`simulate_log_traced`] under message-level faults (loss /
/// duplication / delay rates and slowdown windows).
pub fn simulate_log_faulted(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    plan: &FaultPlan,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    let n = spec.num_nodes;
    let mut sim = Sim::new();
    let compute: Vec<ResourceId> = (0..n)
        .map(|_| sim.add_resource(machine.regent_compute_cores()))
        .collect();
    // The sequencer: one serial resource appending to the shared log.
    let seq = sim.add_resource(1);
    let control: Vec<ResourceId> = (0..n).map(|_| sim.add_resource(1)).collect();
    let nic: Vec<ResourceId> = (0..n).map(|_| sim.add_resource(1)).collect();

    let mut last_seq: Option<SimTaskId> = None;
    let mut last_launch: Vec<Option<SimTaskId>> = vec![None; n];
    let mut prev_tasks: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
    let mut inbound: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
    let mut pending_collective: Option<SimTaskId> = None;

    let mut noise_key = 0u64;
    for step in 0..steps {
        for phase in &spec.phases {
            // The sequencer appends one record per *index launch* and
            // publishes the combined batch — O(tasks_per_node) work,
            // independent of the machine size (the whole point of
            // running the control program exactly once).
            let combine = machine.shard_launch_time * (phase.tasks_per_node as f64 + 1.0);
            let seq_op = sim.add_task_delayed(seq, combine, machine.network_latency);
            sim.tag(seq_op, SimKind::Log, 0, step as u32);
            if let Some(prev) = last_seq {
                sim.add_dep(prev, seq_op);
            }
            last_seq = Some(seq_op);

            let mut cur_tasks: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for (node, node_tasks) in cur_tasks.iter_mut().enumerate() {
                // The replica leader consumes the batch: full analysis
                // only the first time a signature pair is seen (step
                // 0), a cheap dedup-hit consume after — once per
                // replica per batch, not per task.
                let batch_op = if step == 0 {
                    let analysis = machine.task_analysis_time * phase.tasks_per_node as f64;
                    let op = sim.add_task(control[node], analysis);
                    sim.tag(op, SimKind::Analysis, node as u32, step as u32);
                    op
                } else {
                    let op = sim.add_task(control[node], machine.shard_launch_time);
                    sim.tag(op, SimKind::Log, node as u32, step as u32);
                    op
                };
                sim.add_dep(seq_op, batch_op);
                if let Some(prev) = last_launch[node] {
                    sim.add_dep(prev, batch_op);
                }
                last_launch[node] = Some(batch_op);
                for _ in 0..phase.tasks_per_node {
                    // The shard's own launch, exactly as under CR.
                    let op = sim.add_task(control[node], machine.shard_launch_time);
                    sim.tag(op, SimKind::Launch, node as u32, step as u32);
                    if let Some(prev) = last_launch[node] {
                        sim.add_dep(prev, op);
                    }
                    last_launch[node] = Some(op);
                    noise_key += 1;
                    let dur =
                        phase.task_compute_s * noise_multiplier(machine.noise_fraction, noise_key);
                    let t = sim.add_task(compute[node], dur);
                    sim.tag(t, SimKind::Compute, node as u32, step as u32);
                    sim.add_dep(op, t);
                    for &p in &prev_tasks[node] {
                        sim.add_dep(p, t);
                    }
                    for &c in &inbound[node] {
                        sim.add_dep(c, t);
                    }
                    if phase.consumes_collective {
                        if let Some(c) = pending_collective {
                            sim.add_dep(c, t);
                        }
                    }
                    node_tasks.push(t);
                }
            }
            let mut new_inbound: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for e in &phase.copies {
                let c = sim.add_task_delayed(
                    nic[e.src as usize],
                    machine.message_overhead + e.bytes / machine.network_bandwidth,
                    machine.network_latency,
                );
                sim.tag(c, SimKind::Copy, e.src, step as u32);
                for &t in &cur_tasks[e.src as usize] {
                    sim.add_dep(t, c);
                }
                new_inbound[e.dst as usize].push(c);
            }
            if phase.collective {
                // The sequencer blocks on the reduced scalar (shard 0
                // feeds the fold back), so the collective gates the
                // *next combine*, not the shards' control flow.
                let j = sim.add_task_delayed(control[0], 0.0, machine.collective_latency(n));
                sim.tag(j, SimKind::Collective, 0, step as u32);
                for tasks in &cur_tasks {
                    for &t in tasks {
                        sim.add_dep(t, j);
                    }
                }
                pending_collective = Some(j);
                last_seq = Some(j);
            }
            prev_tasks = cur_tasks;
            inbound = new_inbound;
        }
    }
    if plan.is_active() {
        sim.set_faults(plan.clone(), RetryPolicy::default());
    }
    finish(sim, spec, steps, tb)
}

/// Configuration of a hand-written SPMD reference.
#[derive(Clone, Copy, Debug)]
pub struct MpiVariant {
    /// MPI ranks per node (1 = MPI+OpenMP / MPI+Kokkos rank-per-node;
    /// `cores_per_node` = flat MPI rank-per-core).
    pub ranks_per_node: u32,
    /// Compute-time multiplier relative to the Regent kernel (models
    /// e.g. OpenMP overheads or data-layout advantages).
    pub compute_multiplier: f64,
    /// Multiplier on the machine's noise fraction (threaded runtimes
    /// amplify noise through their intra-node fork/join barriers).
    pub noise_scale: f64,
    /// Fixed per-phase serial cost per node (thread fork/join, OpenMP
    /// barrier).
    pub sync_cost: f64,
}

impl MpiVariant {
    /// Flat MPI, one rank per core.
    pub fn rank_per_core(machine: &MachineConfig) -> Self {
        MpiVariant {
            ranks_per_node: machine.cores_per_node,
            compute_multiplier: 1.0,
            noise_scale: 1.0,
            sync_cost: 0.0,
        }
    }

    /// One rank per node with threaded compute (OpenMP/Kokkos):
    /// fork/join per phase and stronger noise amplification.
    pub fn rank_per_node() -> Self {
        MpiVariant {
            ranks_per_node: 1,
            compute_multiplier: 1.0,
            noise_scale: 2.5,
            sync_cost: 15.0e-6,
        }
    }
}

/// Simulates a hand-written bulk-synchronous SPMD reference.
pub fn simulate_mpi(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    variant: MpiVariant,
) -> ScenarioResult {
    let tracer = Tracer::disabled();
    simulate_mpi_traced(machine, spec, steps, variant, &mut tracer.buffer("sim"))
}

/// [`simulate_mpi`] recording the simulated schedule into `tb`.
pub fn simulate_mpi_traced(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    variant: MpiVariant,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    simulate_mpi_faulted(machine, spec, steps, variant, &FaultPlan::default(), tb)
}

/// [`simulate_mpi_traced`] under message-level faults (loss /
/// duplication / delay rates and slowdown windows).
pub fn simulate_mpi_faulted(
    machine: &MachineConfig,
    spec: &TimestepSpec,
    steps: u64,
    variant: MpiVariant,
    plan: &FaultPlan,
    tb: &mut TraceBuf,
) -> ScenarioResult {
    let n = spec.num_nodes;
    let mut sim = Sim::new();
    let compute: Vec<ResourceId> = (0..n)
        .map(|_| sim.add_resource(machine.cores_per_node))
        .collect();
    let nic: Vec<ResourceId> = (0..n).map(|_| sim.add_resource(1)).collect();

    let mut prev_barrier: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
    let mut pending_collective: Option<SimTaskId> = None;

    let mut noise_key = 0u64;
    for step in 0..steps {
        for phase in &spec.phases {
            // Per node: total phase work split evenly over the cores.
            let total =
                phase.tasks_per_node as f64 * phase.task_compute_s * variant.compute_multiplier;
            let chunks = machine.cores_per_node;
            let chunk_t = total / chunks as f64 + variant.sync_cost;
            let mut cur_tasks: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for node in 0..n {
                for _ in 0..chunks {
                    noise_key += 1;
                    let dur = chunk_t
                        * noise_multiplier(machine.noise_fraction * variant.noise_scale, noise_key);
                    let t = sim.add_task(compute[node], dur);
                    sim.tag(t, SimKind::Compute, node as u32, step as u32);
                    for &p in &prev_barrier[node] {
                        sim.add_dep(p, t);
                    }
                    if let Some(c) = pending_collective {
                        sim.add_dep(c, t);
                    }
                    cur_tasks[node].push(t);
                }
            }
            // Bulk-synchronous exchange: with R ranks per node, each
            // logical neighbor volume is split into R messages (each
            // rank exchanges its own slice), multiplying the
            // per-message overhead term.
            let r = variant.ranks_per_node.max(1);
            let mut barrier_next: Vec<Vec<SimTaskId>> = vec![Vec::new(); n];
            for e in &phase.copies {
                for _ in 0..r {
                    let c = sim.add_task_delayed(
                        nic[e.src as usize],
                        machine.message_overhead + e.bytes / r as f64 / machine.network_bandwidth,
                        machine.network_latency,
                    );
                    sim.tag(c, SimKind::Copy, e.src, step as u32);
                    for &t in &cur_tasks[e.src as usize] {
                        sim.add_dep(t, c);
                    }
                    // Blocking exchange: both ends wait.
                    barrier_next[e.dst as usize].push(c);
                    barrier_next[e.src as usize].push(c);
                }
            }
            pending_collective = if phase.collective {
                let j =
                    sim.add_task_delayed(nic[0], 0.0, machine.collective_latency(n * r as usize));
                sim.tag(j, SimKind::Collective, 0, step as u32);
                for tasks in &cur_tasks {
                    for &t in tasks {
                        sim.add_dep(t, j);
                    }
                }
                Some(j)
            } else {
                None
            };
            for node in 0..n {
                barrier_next[node].extend(cur_tasks[node].iter().copied());
            }
            prev_barrier = barrier_next;
        }
    }
    if plan.is_active() {
        sim.set_faults(plan.clone(), RetryPolicy::default());
    }
    finish(sim, spec, steps, tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CopyEdge, PhaseSpec};

    /// A stencil-like spec: ring exchange of 1 MB, one ~3 ms task per
    /// Regent compute core (11 on a 12-core node — tiling to the
    /// available cores avoids wave quantization, which is how real
    /// mappers configure these codes).
    fn ring_spec(n: usize) -> TimestepSpec {
        let copies: Vec<CopyEdge> = (0..n as u32)
            .flat_map(|i| {
                let left = (i + n as u32 - 1) % n as u32;
                let right = (i + 1) % n as u32;
                [
                    CopyEdge {
                        src: i,
                        dst: left,
                        bytes: 1.0e6,
                    },
                    CopyEdge {
                        src: i,
                        dst: right,
                        bytes: 1.0e6,
                    },
                ]
            })
            .collect();
        TimestepSpec {
            num_nodes: n,
            elements_per_node: 1_000_000,
            phases: vec![PhaseSpec {
                name: "step".into(),
                tasks_per_node: 11,
                task_compute_s: 3.0e-3,
                copies,
                collective: false,
                consumes_collective: false,
            }],
        }
    }

    #[test]
    fn cr_scales_implicit_does_not() {
        let machine1 = MachineConfig::piz_daint(1);
        let machine64 = MachineConfig::piz_daint(64);
        let s1 = ring_spec(1);
        let s64 = ring_spec(64);
        let steps = 5;

        let cr1 = simulate_cr(&machine1, &s1, steps);
        let cr64 = simulate_cr(&machine64, &s64, steps);
        let eff_cr = cr64.throughput_per_node / cr1.throughput_per_node;
        assert!(eff_cr > 0.9, "CR efficiency at 64 nodes: {eff_cr}");

        let im1 = simulate_implicit(&machine1, &s1, steps);
        let im64 = simulate_implicit(&machine64, &s64, steps);
        let eff_im = im64.throughput_per_node / im1.throughput_per_node;
        assert!(
            eff_im < 0.5,
            "implicit should collapse at 64 nodes: {eff_im}"
        );
        // At one node the two are comparable.
        let ratio = im1.throughput_per_node / cr1.throughput_per_node;
        assert!(ratio > 0.7 && ratio < 1.3, "single node ratio {ratio}");
    }

    #[test]
    fn memoization_amortizes_implicit_analysis() {
        let machine = MachineConfig::piz_daint(64);
        let spec = ring_spec(64);
        let steps = 5;
        let plain = simulate_implicit(&machine, &spec, steps);
        let memo = simulate_implicit_memo(&machine, &spec, steps);
        // Replayed steps skip the O(N) analysis: memoization must beat
        // the plain implicit run at scale, but a single serial control
        // thread still launches every task, so it cannot beat CR.
        assert!(
            memo.makespan < plain.makespan,
            "memo {} vs plain {}",
            memo.makespan,
            plain.makespan
        );
        let cr = simulate_cr(&machine, &spec, steps);
        assert!(memo.makespan >= cr.makespan * 0.99);

        // The traced profile shows the amortization curve: step 0 pays
        // the analysis cost, steady-state steps read far cheaper.
        let tracer = Tracer::enabled();
        simulate_implicit_memo_traced(&machine, &spec, steps, &mut tracer.buffer("sim"));
        let trace = tracer.take();
        let per_step = regent_trace::sim_control_cost_per_step(&trace, "sim");
        assert_eq!(per_step.len(), steps as usize);
        let first = per_step[0].1 as f64;
        for &(_, c) in &per_step[1..] {
            assert!(
                (c as f64) < first / 5.0,
                "steady-state step cost {c} should be well under the capture cost {first}"
            );
        }
    }

    #[test]
    fn log_scales_like_cr_and_blames_log_control() {
        let machine1 = MachineConfig::piz_daint(1);
        let machine64 = MachineConfig::piz_daint(64);
        let steps = 5;
        let l1 = simulate_log(&machine1, &ring_spec(1), steps);
        let l64 = simulate_log(&machine64, &ring_spec(64), steps);
        // The sequencer appends one record per index launch — cost
        // independent of N — and replicas analyze once per batch, so
        // the model weak-scales like CR, not like implicit.
        let eff = l64.throughput_per_node / l1.throughput_per_node;
        assert!(eff > 0.9, "log efficiency at 64 nodes: {eff}");
        let cr64 = simulate_cr(&machine64, &ring_spec(64), steps);
        assert!(
            l64.makespan >= cr64.makespan * 0.99,
            "the log path adds sequencer latency, it cannot beat CR: {} vs {}",
            l64.makespan,
            cr64.makespan
        );

        // The traced schedule blames sequencer time on `log_control`
        // and keeps per-replica analysis to the first step only.
        let tracer = Tracer::enabled();
        simulate_log_traced(&machine64, &ring_spec(64), steps, &mut tracer.buffer("sim"));
        let trace = tracer.take();
        let (_, blame) = regent_trace::sim_blame(&trace, "sim").unwrap();
        assert!(blame.get(regent_trace::Phase::LogControl) > 0);
        let per_step = regent_trace::sim_control_cost_per_step(&trace, "sim");
        assert_eq!(per_step.len(), steps as usize);
        let first = per_step[0].1 as f64;
        for &(_, c) in &per_step[1..] {
            assert!(
                (c as f64) < first,
                "steady-state control cost {c} must sit under the first-batch analysis {first}"
            );
        }
    }

    #[test]
    fn mpi_comparable_to_cr() {
        let machine = MachineConfig::piz_daint(64);
        let spec = ring_spec(64);
        let cr = simulate_cr(&machine, &spec, 5);
        let mpi = simulate_mpi(&machine, &spec, 5, MpiVariant::rank_per_core(&machine));
        // MPI uses all 12 cores (no dedicated runtime core): somewhat
        // faster per node, same order of magnitude.
        let ratio = mpi.throughput_per_node / cr.throughput_per_node;
        assert!(ratio > 0.9 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn collective_costs_grow_with_scale() {
        let mut spec_small = ring_spec(2);
        spec_small.phases[0].collective = true;
        let mut spec_big = ring_spec(256);
        spec_big.phases[0].collective = true;
        let m2 = MachineConfig::piz_daint(2);
        let m256 = MachineConfig::piz_daint(256);
        let a = simulate_cr(&m2, &spec_small, 3);
        let b = simulate_cr(&m256, &spec_big, 3);
        // Efficiency stays high but strictly below 1 due to collective
        // latency.
        let eff = b.throughput_per_node / a.throughput_per_node;
        assert!(eff > 0.8 && eff <= 1.0, "eff {eff}");
    }

    #[test]
    fn deterministic() {
        let machine = MachineConfig::piz_daint(16);
        let spec = ring_spec(16);
        let a = simulate_cr(&machine, &spec, 3);
        let b = simulate_cr(&machine, &spec, 3);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn message_loss_slows_cr_down() {
        let machine = MachineConfig::piz_daint(16);
        let spec = ring_spec(16);
        let tracer = Tracer::disabled();
        let clean = simulate_cr(&machine, &spec, 3);
        let lossy = simulate_cr_faulted(
            &machine,
            &spec,
            3,
            &FaultPlan::from_seed_rate(42, 0.2),
            &mut tracer.buffer("sim"),
        );
        assert!(lossy.faults.messages_lost > 0);
        assert!(
            lossy.makespan > clean.makespan,
            "retransmits must cost time: {} vs {}",
            lossy.makespan,
            clean.makespan
        );
        assert_eq!(clean.faults, FaultStats::default());
    }

    #[test]
    fn node_crash_degrades_gracefully() {
        let machine = MachineConfig::piz_daint(8);
        let spec = ring_spec(8);
        let steps = 8;
        let clean = simulate_cr(&machine, &spec, steps);
        let rspec = ResilienceSpec {
            plan: FaultPlan::new(1).crash_shard(3, 4),
            ckpt_interval: 2,
            ..ResilienceSpec::default()
        };
        let crashed = simulate_cr_resilient(&machine, &spec, steps, &rspec);
        assert_eq!(crashed.faults.crashes, 1);
        // Crash at step 4 with checkpoints at 0/2/4 (the step-4
        // checkpoint lands before the crash fires): nothing to replay
        // beyond the current epoch? No — the checkpoint at 4 happens
        // first, so the replay window `4..4` is empty. Use the stats
        // to pin the exact behaviour.
        assert_eq!(crashed.faults.epochs_replayed, 0);
        assert!(crashed.faults.recovery_time_s > 0.0);
        // Degraded but live: slower than fault-free, goodput equals
        // throughput (no replayed work), both finite.
        assert!(crashed.makespan > clean.makespan);
        assert_eq!(crashed.goodput_per_node, crashed.throughput_per_node);

        // With the crash *between* checkpoints, the lost step replays.
        let rspec = ResilienceSpec {
            plan: FaultPlan::new(1).crash_shard(3, 3),
            ckpt_interval: 2,
            ..ResilienceSpec::default()
        };
        let replayed = simulate_cr_resilient(&machine, &spec, steps, &rspec);
        assert_eq!(replayed.faults.epochs_replayed, 1);
        assert!(
            replayed.goodput_per_node < replayed.throughput_per_node,
            "replayed work is not goodput"
        );
    }

    #[test]
    fn shorter_checkpoint_interval_replays_less() {
        let machine = MachineConfig::piz_daint(4);
        let spec = ring_spec(4);
        let plan = FaultPlan::new(9).crash_shard(1, 7);
        let run = |k| {
            simulate_cr_resilient(
                &machine,
                &spec,
                8,
                &ResilienceSpec {
                    plan: plan.clone(),
                    ckpt_interval: k,
                    ..ResilienceSpec::default()
                },
            )
        };
        let tight = run(1);
        let loose = run(0); // no checkpoints: replay everything
        assert_eq!(tight.faults.epochs_replayed, 0);
        assert_eq!(loose.faults.epochs_replayed, 7);
        assert!(loose.makespan > tight.makespan);
    }

    #[test]
    fn resilient_without_faults_matches_plain_cr() {
        let machine = MachineConfig::piz_daint(8);
        let spec = ring_spec(8);
        let plain = simulate_cr(&machine, &spec, 4);
        let resilient = simulate_cr_resilient(
            &machine,
            &spec,
            4,
            &ResilienceSpec {
                plan: FaultPlan::default(),
                ckpt_interval: 0,
                ..ResilienceSpec::default()
            },
        );
        assert_eq!(plain.makespan, resilient.makespan);
        assert_eq!(plain.goodput_per_node, resilient.goodput_per_node);
    }

    #[test]
    fn slowdown_window_hurts_whole_machine() {
        // Point-to-point CR still waits on the slow node's halos each
        // step, so a single straggler stretches the makespan.
        let machine = MachineConfig::piz_daint(8);
        let spec = ring_spec(8);
        let tracer = Tracer::disabled();
        let clean = simulate_cr(&machine, &spec, 3);
        let slowed = simulate_cr_faulted(
            &machine,
            &spec,
            3,
            &FaultPlan::new(0).slow_node(2, 0.0, 1e9, 2.0),
            &mut tracer.buffer("sim"),
        );
        assert!(slowed.makespan > 1.5 * clean.makespan);
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::model::{CopyEdge, MachineConfig, PhaseSpec, TimestepSpec};

    /// Two-phase step with an expensive collective: when no phase
    /// consumes the result, CR overlaps its latency entirely; when the
    /// first phase of the next step consumes it, the latency lands on
    /// the critical path (§5.3's latency-hiding effect).
    fn spec(n: usize, consumed: bool) -> TimestepSpec {
        TimestepSpec {
            num_nodes: n,
            elements_per_node: 1000,
            phases: vec![
                PhaseSpec {
                    name: "work".into(),
                    tasks_per_node: 11,
                    task_compute_s: 1e-3,
                    copies: vec![],
                    collective: false,
                    consumes_collective: consumed,
                },
                PhaseSpec {
                    name: "dt".into(),
                    tasks_per_node: 11,
                    task_compute_s: 1e-4,
                    copies: vec![],
                    collective: true,
                    consumes_collective: false,
                },
            ],
        }
    }

    #[test]
    fn unconsumed_collective_latency_is_hidden() {
        let mut machine = MachineConfig::piz_daint(64);
        machine.noise_fraction = 0.0;
        // Make the collective grotesquely slow so the difference is
        // unambiguous.
        machine.network_latency = 2e-4;
        let free = simulate_cr(&machine, &spec(64, false), 5);
        let gated = simulate_cr(&machine, &spec(64, true), 5);
        assert!(
            free.makespan < gated.makespan,
            "overlap should beat gating: {} vs {}",
            free.makespan,
            gated.makespan
        );
        // The gated version pays ~one collective latency per step.
        let delta = gated.makespan - free.makespan;
        let one_collective = machine.collective_latency(64);
        assert!(delta > 2.0 * one_collective, "delta {delta}");
    }

    #[test]
    fn noise_hurts_bsp_more_than_cr() {
        // The noise-amplification mechanism behind Fig. 8's reference
        // efficiencies: with identical noise, bulk-synchronous MPI
        // loses more throughput than point-to-point CR.
        let mk_spec = |n: usize| {
            let copies = (0..n as u32)
                .flat_map(|i| {
                    let l = (i + n as u32 - 1) % n as u32;
                    [CopyEdge {
                        src: i,
                        dst: l,
                        bytes: 1e4,
                    }]
                })
                .collect::<Vec<_>>();
            TimestepSpec {
                num_nodes: n,
                elements_per_node: 1000,
                phases: vec![PhaseSpec {
                    name: "w".into(),
                    tasks_per_node: 11,
                    task_compute_s: 1e-3,
                    copies,
                    collective: true, // global sync each step
                    consumes_collective: false,
                }],
            }
        };
        let mut machine = MachineConfig::piz_daint(128);
        machine.noise_fraction = 0.05;
        let spec = mk_spec(128);
        let cr = simulate_cr(&machine, &spec, 5);
        let mpi = simulate_mpi(&machine, &spec, 5, MpiVariant::rank_per_core(&machine));
        // Compare slowdowns against the noise-free baselines.
        let mut quiet = machine.clone();
        quiet.noise_fraction = 0.0;
        let cr0 = simulate_cr(&quiet, &spec, 5);
        let mpi0 = simulate_mpi(&quiet, &spec, 5, MpiVariant::rank_per_core(&quiet));
        let cr_loss = cr.makespan / cr0.makespan;
        let mpi_loss = mpi.makespan / mpi0.makespan;
        assert!(
            mpi_loss > cr_loss,
            "BSP should amplify noise more: cr {cr_loss:.3} vs mpi {mpi_loss:.3}"
        );
    }
}
