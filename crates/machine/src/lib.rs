//! # regent-machine
//!
//! A discrete-event simulator of a distributed-memory machine — the
//! substitute for the paper's 1024-node Piz Daint runs (see the
//! substitution table in DESIGN.md).
//!
//! * [`des`] — the event-driven engine (task DAGs over multi-server
//!   resources).
//! * [`model`] — machine description (nodes, cores, network, runtime
//!   cost parameters) and workload time-step specifications.
//! * [`scenario`] — the three execution models of the evaluation:
//!   Regent with CR, Regent without CR (single control thread), and
//!   hand-written MPI(+X) references.
//! * [`metrics`] — weak-scaling series/efficiency reporting.
//!
//! The engine and every scenario have `*_traced` variants recording
//! the simulated schedule as `SimTask` spans into a `regent-trace`
//! buffer (virtual seconds × 1e9 → nanoseconds), so simulated runs can
//! be profiled and exported exactly like real executor runs.

#![warn(missing_docs)]

pub mod des;
pub mod metrics;
pub mod model;
pub mod scenario;

pub use des::{Resource, ResourceId, Sim, SimResult, SimTask, SimTaskId};
pub use metrics::{
    format_resilience_table, format_table, node_counts_to, trace_series, ScalePoint, ScalingSeries,
};
pub use model::{CopyEdge, MachineConfig, PhaseSpec, TimestepSpec};
pub use regent_fault::{parse_corrupt_spec, FaultPlan, FaultStats, RetryPolicy};
pub use scenario::{
    sim_bench_entry, simulate_cr, simulate_cr_faulted, simulate_cr_resilient,
    simulate_cr_resilient_traced, simulate_cr_traced, simulate_implicit, simulate_implicit_faulted,
    simulate_implicit_memo, simulate_implicit_memo_faulted, simulate_implicit_memo_traced,
    simulate_implicit_traced, simulate_log, simulate_log_faulted, simulate_log_traced,
    simulate_mpi, simulate_mpi_faulted, simulate_mpi_traced, MpiVariant, ResilienceSpec,
    ScenarioResult,
};
