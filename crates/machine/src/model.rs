//! Machine and workload descriptions for the distributed simulator.
//!
//! [`MachineConfig`] approximates a Piz Daint-like Cray XC50 (12-core
//! nodes, ~1 µs network latency, ~10 GB/s injection bandwidth) plus the
//! runtime cost parameters that drive the paper's scaling phenomena:
//! the per-task dynamic-analysis time of the single control thread
//! (implicit execution, §1) and the much smaller per-task cost of a
//! shard launching its own local work (§3.5).

/// Description of the simulated cluster and runtime costs.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Nodes in the machine.
    pub num_nodes: usize,
    /// Cores per node (Piz Daint XC50: 12).
    pub cores_per_node: u32,
    /// One-way network latency, seconds.
    pub network_latency: f64,
    /// Per-node injection bandwidth, bytes/second.
    pub network_bandwidth: f64,
    /// Per-message software overhead (MPI match/progress or runtime
    /// active-message handling), seconds.
    pub message_overhead: f64,
    /// Control-thread base cost per task launch in the implicit model
    /// (Legion's dynamic dependence analysis, mapping, and
    /// completion-event processing — the O(N) per-step term of §1).
    pub task_analysis_time: f64,
    /// Additional per-task analysis cost per in-flight task: the
    /// dependence-analysis window grows with the machine (every node's
    /// tasks are in flight at the single control thread), making
    /// per-task cost super-linear in node count — this is what turns
    /// the implicit model's decline into the sharp collapse of
    /// Figs. 6–9.
    pub task_analysis_window_cost: f64,
    /// Per-task launch cost inside a shard (local analysis only; §3.5
    /// amortizes the global cost away).
    pub shard_launch_time: f64,
    /// Whether the Regent/Legion models dedicate one core per node to
    /// the runtime (§5.3: "the underlying Legion runtime requires a
    /// core be dedicated to analysis of tasks").
    pub dedicate_runtime_core: bool,
    /// OS-noise level: task durations are stretched by
    /// `1 + noise_fraction × Exp(1)` samples (deterministic, hashed).
    /// Bulk-synchronous execution amplifies this with scale (the
    /// classic noise-amplification effect), which is what separates
    /// the reference codes' efficiencies at 1024 nodes in Figs. 6–8;
    /// point-to-point-synchronized CR absorbs more of it.
    pub noise_fraction: f64,
}

/// Deterministic noise multiplier for a task identified by `key`:
/// `1 + fraction × Exp(1)` via a splitmix64 hash.
pub fn noise_multiplier(fraction: f64, key: u64) -> f64 {
    if fraction == 0.0 {
        return 1.0;
    }
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Uniform in (0,1], then exponential tail.
    let u = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    1.0 + fraction * (-u.ln())
}

impl MachineConfig {
    /// A Piz Daint-like configuration with `num_nodes` nodes.
    pub fn piz_daint(num_nodes: usize) -> Self {
        MachineConfig {
            num_nodes,
            cores_per_node: 12,
            network_latency: 1.5e-6,
            network_bandwidth: 10.0e9,
            message_overhead: 1.0e-6,
            task_analysis_time: 1.0e-4,
            task_analysis_window_cost: 1.0e-6,
            shard_launch_time: 10.0e-6,
            dedicate_runtime_core: true,
            noise_fraction: 0.01,
        }
    }

    /// Compute cores available to application kernels under a
    /// Legion-style runtime.
    pub fn regent_compute_cores(&self) -> u32 {
        if self.dedicate_runtime_core && self.cores_per_node > 1 {
            self.cores_per_node - 1
        } else {
            self.cores_per_node
        }
    }

    /// Time to move `bytes` across the network once on the wire
    /// (excluding NIC serialization modeled separately).
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.network_latency + bytes / self.network_bandwidth
    }

    /// Latency of a tree-based collective over `participants` ranks.
    pub fn collective_latency(&self, participants: usize) -> f64 {
        let stages = (participants.max(1) as f64).log2().ceil();
        2.0 * stages * (self.network_latency + self.message_overhead)
    }
}

/// A point-to-point transfer in a communication phase.
#[derive(Clone, Copy, Debug)]
pub struct CopyEdge {
    /// Producing node.
    pub src: u32,
    /// Consuming node.
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// One phase of a time step: an index launch (its per-node share of
/// point tasks), followed by an optional exchange and/or collective.
#[derive(Clone, Debug)]
pub struct PhaseSpec {
    /// Label for diagnostics.
    pub name: String,
    /// Point tasks owned by each node.
    pub tasks_per_node: u32,
    /// Compute time of one point task, seconds.
    pub task_compute_s: f64,
    /// Inter-node copies that the *next* phase's consumers wait for.
    pub copies: Vec<CopyEdge>,
    /// Scalar all-reduce closing the phase (e.g. a dt computation).
    pub collective: bool,
    /// True when this phase *consumes* the most recent collective's
    /// result (e.g. `advance_points` needs dt). Control replication's
    /// deferred execution lets every other phase overlap the
    /// collective's latency (§3.4: point-to-point operators "do not
    /// block the main thread"; §5.3: Regent "hides the latency of the
    /// global scalar reduction"); bulk-synchronous references block at
    /// the all-reduce itself.
    pub consumes_collective: bool,
}

/// The communication-and-compute shape of one application time step at
/// a given node count.
#[derive(Clone, Debug)]
pub struct TimestepSpec {
    /// Node count this spec was generated for.
    pub num_nodes: usize,
    /// Elements of application state per node (for throughput
    /// reporting).
    pub elements_per_node: u64,
    /// Phases in issue order.
    pub phases: Vec<PhaseSpec>,
}

impl TimestepSpec {
    /// Total point tasks per time step across the machine.
    pub fn tasks_per_step(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.tasks_per_node as u64 * self.num_nodes as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_and_collective_scale() {
        let m = MachineConfig::piz_daint(64);
        assert!(m.transfer_time(1e6) > m.transfer_time(1e3));
        assert!(m.collective_latency(1024) > m.collective_latency(2));
        assert_eq!(m.regent_compute_cores(), 11);
        let mut m2 = m.clone();
        m2.dedicate_runtime_core = false;
        assert_eq!(m2.regent_compute_cores(), 12);
    }

    #[test]
    fn tasks_per_step_counts() {
        let spec = TimestepSpec {
            num_nodes: 4,
            elements_per_node: 100,
            phases: vec![
                PhaseSpec {
                    name: "a".into(),
                    tasks_per_node: 3,
                    task_compute_s: 1e-3,
                    copies: vec![],
                    collective: false,
                    consumes_collective: false,
                },
                PhaseSpec {
                    name: "b".into(),
                    tasks_per_node: 2,
                    task_compute_s: 1e-3,
                    copies: vec![],
                    collective: true,
                    consumes_collective: false,
                },
            ],
        };
        assert_eq!(spec.tasks_per_step(), 20);
    }
}
